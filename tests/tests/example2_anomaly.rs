//! E2 / F5 / F6 — Example II (anomaly detection) at test scale: the
//! iteration-variance anomaly of Fig. 5 and the bounding-box read anomaly
//! of Fig. 6, with the injected causes recovered by the analysis phase.

use iokc_analysis::{BoundingBox, IterationVarianceDetector, Verdict};
use iokc_benchmarks::io500::{run_io500, run_io500_with_faults, Io500Config, PhaseFaults};
use iokc_benchmarks::ior::{run_ior, IorConfig, IorRunResult};
use iokc_core::model::Io500Knowledge;
use iokc_extract::{parse_io500_output, parse_ior_output};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::{Fault, FaultPlan, FaultTarget};
use iokc_sim::prelude::SystemConfig;
use iokc_sim::time::SimTime;

/// Scaled-down Fig. 5: 6 iterations, interference during iteration 1.
fn fig5_small(seed: u64) -> iokc_core::model::Knowledge {
    let layout = JobLayout::new(4, 2);
    let mut world = World::new(
        SystemConfig::test_small().with_noise(0.01),
        FaultPlan::none(),
        seed,
    );
    let base =
        IorConfig::parse_command("ior -a mpiio -b 1m -t 512k -s 2 -F -C -e -i 1 -o /scratch/f5 -k")
            .unwrap();
    let mut samples = Vec::new();
    for iteration in 0..6u32 {
        if iteration == 1 {
            let mut plan = FaultPlan::none();
            for target in 0..world.system().pfs.storage_targets {
                plan.push(Fault::slow_target(
                    target,
                    0.3,
                    world.now(),
                    SimTime(u64::MAX),
                ));
            }
            world.set_faults(plan);
        }
        let run = run_ior(&mut world, layout, &base, u64::from(iteration)).unwrap();
        world.set_faults(FaultPlan::none());
        for mut sample in run.samples {
            sample.iter = iteration;
            samples.push(sample);
        }
    }
    let run = IorRunResult {
        config: IorConfig {
            iterations: 6,
            ..base
        },
        np: layout.np,
        ppn: layout.ppn,
        samples,
        phases: Vec::new(),
    };
    parse_ior_output(&run.render()).expect("generated output parses")
}

#[test]
fn fig5_iteration_anomaly_detected_and_corroborated() {
    let knowledge = fig5_small(1);
    let series = knowledge.series("write");
    assert_eq!(series.len(), 6);
    // Shape: the anomalous iteration is well below half the peer mean.
    let anomalous = series[1].1;
    let peers: Vec<f64> = series
        .iter()
        .filter(|(i, _)| *i != 1)
        .map(|(_, bw)| *bw)
        .collect();
    let peer_mean = iokc_util::stats::mean(&peers);
    assert!(
        anomalous < peer_mean * 0.55,
        "anomaly {anomalous} vs peers {peer_mean}"
    );

    // The detector finds exactly that iteration.
    let anomalies = IterationVarianceDetector::default().detect(&knowledge);
    let write_anomalies: Vec<_> = anomalies
        .iter()
        .filter(|a| a.operation == "write")
        .collect();
    assert_eq!(write_anomalies.len(), 1, "{anomalies:?}");
    assert_eq!(write_anomalies[0].iteration, 1);
    // Supporting metrics corroborate (it is not a measurement error).
    assert!(
        write_anomalies[0]
            .corroborated_by
            .contains(&"totalTime".to_owned()),
        "corroborations: {:?}",
        write_anomalies[0].corroborated_by
    );
}

#[test]
fn fig5_healthy_run_reports_nothing() {
    let layout = JobLayout::new(4, 2);
    let mut world = World::new(
        SystemConfig::test_small().with_noise(0.01),
        FaultPlan::none(),
        9,
    );
    let base =
        IorConfig::parse_command("ior -a mpiio -b 1m -t 512k -s 2 -F -C -e -i 6 -o /scratch/ok -k")
            .unwrap();
    let run = run_ior(&mut world, layout, &base, 5).unwrap();
    let knowledge = parse_ior_output(&run.render()).unwrap();
    let anomalies = IterationVarianceDetector::default().detect(&knowledge);
    assert!(anomalies.is_empty(), "{anomalies:?}");
}

/// Scaled-down Fig. 6 runs. The fabric is widened so the storage targets
/// are the bottleneck, matching the FUCHS regime (on the tiny test system
/// the default 2 GB/s fabric would bind instead and put the full noise on
/// the read path too).
fn io500_run(seed: u64, broken_node: bool) -> Io500Knowledge {
    let mut system = SystemConfig::test_small()
        .with_noise(0.18)
        .with_noise_interval(2_000_000_000);
    system.cluster.fabric_bandwidth = 10.0e9;
    system.cluster.nic_bandwidth = 4.0e9;
    let mut world = World::new(system, FaultPlan::none(), seed);
    // Larger ior-easy working set than the unit-test scale so the data
    // phases dominate per-op metadata jitter.
    let mut config = Io500Config::small("/scratch/io500");
    config.ior_easy_bytes_per_rank = 48 << 20;
    let layout = JobLayout::new(4, 2);
    let result = if broken_node {
        let mut schedule = PhaseFaults::new();
        schedule.insert(
            "ior-easy-read".to_owned(),
            FaultPlan::none().with(Fault::permanent(FaultTarget::NodeNic(0), 0.03)),
        );
        run_io500_with_faults(&mut world, layout, &config, &schedule).unwrap()
    } else {
        run_io500(&mut world, layout, &config).unwrap()
    };
    parse_io500_output(&result.render()).expect("io500 output parses")
}

#[test]
fn fig6_bounding_box_flags_broken_node_read() {
    let references: Vec<Io500Knowledge> = [11u64, 22, 33]
        .iter()
        .map(|s| io500_run(*s, false))
        .collect();
    let degraded = io500_run(44, true);

    let refs: Vec<&Io500Knowledge> = references.iter().collect();
    let bbox = BoundingBox::fit(
        &refs,
        &[
            "ior-easy-write",
            "ior-easy-read",
            "ior-hard-write",
            "ior-hard-read",
        ],
        0.25,
    );
    let verdicts = bbox.check(&degraded);
    let verdict_of = |name: &str| {
        verdicts
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, v)| *v)
            .expect("dimension checked")
    };
    assert_eq!(
        verdict_of("ior-easy-read"),
        Verdict::Below,
        "broken node must push ior-easy-read out of the box\n{}",
        bbox.render_check(&degraded)
    );
    // The degraded run's writes stay plausible (the node broke during the
    // read phase only).
    assert_ne!(verdict_of("ior-easy-write"), Verdict::Below);
}

#[test]
fn fig6_reads_are_stabler_than_writes_across_runs() {
    // The Fig. 6 observation: write variance across runs is large, read
    // variance small.
    let runs: Vec<Io500Knowledge> = [5u64, 6, 7, 8]
        .iter()
        .map(|s| io500_run(*s, false))
        .collect();
    let series = |name: &str| -> Vec<f64> {
        runs.iter()
            .map(|r| r.testcase(name).expect("testcase present").value)
            .collect()
    };
    let write_cv = cv(&series("ior-easy-write"));
    let read_cv = cv(&series("ior-easy-read"));
    assert!(
        read_cv < write_cv,
        "read CV {read_cv:.4} should be below write CV {write_cv:.4}"
    );
}

fn cv(values: &[f64]) -> f64 {
    iokc_util::stats::stddev(values) / iokc_util::stats::mean(values).max(1e-9)
}
