//! End-to-end corpus analytics: a deterministic IO500 corpus generated
//! through the normal extract path into a disk-backed, segmented store,
//! then analyzed entirely through aggregation pushdown.
//!
//! Exercises the whole chain the `iokc corpus gen` / `iokc agg`
//! commands and the explorerd distribution endpoints sit on:
//!
//! - benchmark rows sealed into their own segments, corpus rows into
//!   theirs, so kind predicates get real index-block pruning;
//! - group-by percentile aggregates answered without a single
//!   `Knowledge` deserialization (asserted via the recorder's
//!   `store.aggregate.*` counters, the observable contract);
//! - pushdown results equal to the `evaluate_rows` oracle over the
//!   same summaries;
//! - MVCC snapshots pinning aggregate answers while the live store
//!   keeps ingesting;
//! - the corpus bounding-box detector recovering exactly the planted
//!   outlier points.

use iokc_analysis::{CorpusBoxes, DEFAULT_HIGH_Q, DEFAULT_LOW_Q, DEFAULT_MARGIN};
use iokc_benchmarks::CorpusSpec;
use iokc_core::model::{
    IterationResult, Knowledge, KnowledgeItem, KnowledgeSource, OperationSummary,
};
use iokc_core::phases::{Artifact, ArtifactKind, Extractor, PhaseKind};
use iokc_core::PhaseCtx;
use iokc_extract::Io500Extractor;
use iokc_obs::{Clock, NullSink, Recorder};
use iokc_store::{
    AggregateQuery, DeadlineToken, Factor, GroupBy, KnowledgeStore, Query, RunKind, RunPredicate,
    RunSummary, DEFAULT_PERCENTILES,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Corpus size: 64 points plants outliers at indexes 31 and 63 (the
/// default every-32nd cadence), which land in store ids 32 and 64
/// because io500 ids are assigned densely in ingest order.
const RUNS: usize = 64;
const SEED: u64 = 42;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iokc-corpus-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A synthetic benchmark run: enough of a `Knowledge` for the summary
/// projection (api, tasks, bandwidth) that group-by-api aggregates see.
fn bench(api: &str, tasks: u32, write_bw: f64) -> Knowledge {
    let mut k = Knowledge::new(KnowledgeSource::Ior, &format!("ior -a {api}"));
    k.pattern.api = api.to_owned();
    k.pattern.tasks = tasks;
    k.pattern.transfer_size = 1 << 20;
    k.summaries.push(OperationSummary {
        operation: "write".into(),
        api: api.to_owned(),
        max_mib: write_bw * 1.2,
        min_mib: write_bw * 0.8,
        mean_mib: write_bw,
        stddev_mib: 0.0,
        mean_ops: write_bw / 2.0,
        iterations: 1,
    });
    k.results.push(IterationResult {
        operation: "write".into(),
        iteration: 0,
        bw_mib: write_bw,
        ops: 10,
        ops_per_sec: 5.0,
        latency_s: 0.001,
        open_s: 0.002,
        wrrd_s: 1.0,
        close_s: 0.003,
        total_s: 1.1,
    });
    k
}

/// Run one corpus point through the real extract path and return the
/// knowledge items the IO500 extractor produced for it.
fn extract_point(spec: &CorpusSpec, index: usize) -> Vec<KnowledgeItem> {
    let run = spec.execute(index).expect("corpus point simulates");
    let mut artifact = Artifact::text(
        ArtifactKind::Io500Output,
        &format!("corpus-{index}.txt"),
        run.output.clone(),
    )
    .with_meta("tasks", &run.point.tasks.to_string())
    .with_meta("start_time", &run.start_time.to_string())
    .with_meta("system", &format!("sim-{}", run.point.shape));
    for (key, value) in run.point.params() {
        artifact = artifact.with_meta(&key, &value);
    }
    let mut ctx = PhaseCtx::detached(PhaseKind::Extraction, "corpus-e2e");
    Io500Extractor
        .extract(&mut ctx, &[&artifact])
        .expect("extraction succeeds")
}

fn assert_groups_equal(a: &iokc_store::AggregateResult, b: &iokc_store::AggregateResult) {
    assert_eq!(a.rows_aggregated, b.rows_aggregated);
    assert_eq!(a.groups.len(), b.groups.len());
    for (ga, gb) in a.groups.iter().zip(b.groups.iter()) {
        assert_eq!(ga.key, gb.key);
        assert_eq!(ga.count, gb.count);
        assert!((ga.mean - gb.mean).abs() <= 1e-9 * ga.mean.abs().max(1.0));
        assert!((ga.stddev - gb.stddev).abs() <= 1e-9);
        assert_eq!(ga.histogram, gb.histogram);
        for ((qa, va), (qb, vb)) in ga.percentiles.iter().zip(gb.percentiles.iter()) {
            assert_eq!(qa, qb);
            assert!((va - vb).abs() <= 1e-9 * va.abs().max(1.0));
        }
    }
}

#[test]
fn corpus_analytics_pushdown_end_to_end() {
    let dir = scratch_dir("e2e");
    let recorder = Arc::new(Recorder::new(Clock::wall(), Arc::new(NullSink)));
    let metrics = recorder.metrics();
    let mut store = KnowledgeStore::open(dir.join("corpus.iokc.json")).expect("open store");
    store.set_seal_threshold(48);
    store.attach_recorder(Arc::clone(&recorder));

    // Phase 1: benchmark rows first, blocked by task count: the first
    // 48 rows (one full segment at the lowered threshold) run at 1/2/4
    // tasks, the 12-row tail at 8 tasks. A tasks-range predicate can
    // then prune the tail segment via its index block.
    let apis = ["POSIX", "MPIIO", "HDF5"];
    let bench_rows: Vec<KnowledgeItem> = (0..60)
        .map(|i| {
            let tasks = if i < 48 { 1 << (i % 3) } else { 8 };
            KnowledgeItem::Benchmark(bench(apis[i % apis.len()], tasks, 100.0 + i as f64))
        })
        .collect();
    store.save_batch(&bench_rows).expect("save benchmarks");
    store.seal_active().expect("seal benchmark tail");

    // Phase 2: the corpus, through the same extractor the CLI uses.
    let spec = CorpusSpec::new(RUNS, SEED);
    let mut batch: Vec<KnowledgeItem> = Vec::new();
    for index in 0..spec.runs {
        batch.extend(extract_point(&spec, index));
    }
    assert_eq!(batch.len(), RUNS, "one submission per corpus point");
    store.save_batch(&batch).expect("save corpus");
    store.seal_active().expect("seal corpus tail");

    let deadline = DeadlineToken::unbounded();

    // Group-by-api percentile query over the small-task benchmark
    // rows: answered from summaries alone (zero Knowledge
    // deserializations), with the 8-task tail segment pruned by its
    // index block before its body is touched.
    let api_q = AggregateQuery::new(GroupBy::Api, Factor::Bandwidth)
        .with_predicate(
            RunPredicate::Kind(RunKind::Benchmark).and(RunPredicate::TasksBetween(1, 4)),
        )
        .with_percentiles(&DEFAULT_PERCENTILES);
    let api_res = store.aggregate(&api_q, &deadline).expect("api aggregate");
    assert_eq!(api_res.rows_aggregated, 48);
    assert_eq!(api_res.groups.len(), apis.len());
    for g in &api_res.groups {
        assert_eq!(g.count, 16);
        let p50 = g.percentile(0.5).expect("median computed");
        assert!(g.min <= p50 && p50 <= g.max);
        assert!(g.min >= 100.0 && g.max <= 148.0);
    }
    assert_eq!(
        metrics
            .counter("store.aggregate.knowledge_deserialized")
            .get(),
        0,
        "aggregation must never fall back to full Knowledge rows"
    );
    assert!(
        metrics.counter("store.aggregate.segments_pruned").get() >= 1,
        "kind predicate must prune at least one mismatched segment"
    );
    assert!(metrics.counter("store.aggregate.segments_scanned").get() >= 1);
    assert_eq!(metrics.counter("store.aggregate.queries").get(), 1);

    // The corpus-side distribution the explorerd /api/dist endpoint
    // serves: group by task scale, total-score percentiles.
    let dist_q = AggregateQuery::new(GroupBy::TasksLog2, Factor::TotalScore)
        .with_predicate(RunPredicate::Kind(RunKind::Io500))
        .with_percentiles(&DEFAULT_PERCENTILES);
    let dist_res = store.aggregate(&dist_q, &deadline).expect("dist aggregate");
    assert_eq!(dist_res.rows_aggregated as usize, RUNS);
    assert_eq!(dist_res.groups.len(), 3, "tasks 4/8/16 buckets");
    let counted: u64 = dist_res.groups.iter().map(|g| g.count).sum();
    assert_eq!(counted as usize, RUNS, "groups partition the corpus");
    assert_eq!(
        metrics
            .counter("store.aggregate.knowledge_deserialized")
            .get(),
        0
    );

    // Pushdown equals the row-at-a-time oracle over the same summaries.
    let rows: Vec<RunSummary> = store
        .query_summaries(&Query::new(RunPredicate::Kind(RunKind::Io500)), &deadline)
        .expect("summaries");
    assert_eq!(rows.len(), RUNS);
    let oracle = dist_q.evaluate_rows(rows.iter());
    assert_groups_equal(&dist_res, &oracle);

    // The bounding-box detector recovers the planted outliers: the
    // every-32nd crippled-backend points, whose total scores fall below
    // their task group's percentile band.
    let boxes = CorpusBoxes::fit(
        &dist_res,
        GroupBy::TasksLog2,
        Factor::TotalScore,
        DEFAULT_LOW_Q,
        DEFAULT_HIGH_Q,
        DEFAULT_MARGIN,
    );
    let flagged = boxes.flag(rows.iter());
    let planted: Vec<u64> = (0..RUNS)
        .filter(|i| i % 32 == 31)
        .map(|i| i as u64 + 1)
        .collect();
    assert_eq!(planted, vec![32, 64]);
    let mut flagged_ids: Vec<u64> = flagged.iter().map(|o| o.id).collect();
    flagged_ids.sort_unstable();
    assert_eq!(
        flagged_ids, planted,
        "detector flags exactly the planted outlier points"
    );
    for o in &flagged {
        assert_eq!(o.kind, RunKind::Io500);
        assert!(o.value < o.lo, "planted outliers sit below their band");
    }

    // MVCC: a snapshot taken now answers from this generation even as
    // the live store keeps ingesting.
    let snap = store.snapshot();
    let extra: Vec<KnowledgeItem> = (RUNS..RUNS + 4)
        .flat_map(|index| extract_point(&CorpusSpec::new(RUNS + 4, SEED), index))
        .collect();
    store.save_batch(&extra).expect("save extra corpus rows");
    let pinned = snap
        .aggregate(&dist_q, &deadline)
        .expect("snapshot aggregate");
    assert_eq!(pinned.rows_aggregated as usize, RUNS, "snapshot is pinned");
    let live = store.aggregate(&dist_q, &deadline).expect("live aggregate");
    assert_eq!(
        live.rows_aggregated as usize,
        RUNS + 4,
        "live store moved on"
    );
    assert_eq!(
        metrics
            .counter("store.aggregate.knowledge_deserialized")
            .get(),
        0,
        "the whole analytics session never deserialized a Knowledge row"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Two independent generations of the same (seed, scale) spec produce
/// byte-identical submissions — the property `iokc corpus gen` resume
/// and the campaign journal fingerprint both lean on.
#[test]
fn corpus_generation_is_deterministic_across_specs() {
    let a = CorpusSpec::new(RUNS, SEED);
    let b = CorpusSpec::new(RUNS, SEED);
    assert_eq!(a.fingerprint(), b.fingerprint());
    for index in [0, 31, 47, 63] {
        let ra = a.execute(index).expect("first generation");
        let rb = b.execute(index).expect("second generation");
        assert_eq!(ra.output, rb.output, "index {index} diverged");
        assert_eq!(ra.point.params(), rb.point.params());
    }
    // A different seed actually changes the corpus (the fingerprint
    // guard in the journal is not vacuous).
    let c = CorpusSpec::new(RUNS, SEED + 1);
    assert_ne!(a.fingerprint(), c.fingerprint());
    let r0 = a.execute(0).expect("seed 42");
    let s0 = c.execute(0).expect("seed 43");
    assert_ne!(r0.output, s0.output);
}
