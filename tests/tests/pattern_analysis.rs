//! §IV I/O pattern analysis use case over real simulated runs: the
//! classifier must recover the intended pattern of each benchmark from
//! nothing but its Darshan counters.

use iokc_analysis::{classify, Direction, DxtTimeline, Locality, SizeClass};
use iokc_benchmarks::hacc::{run_hacc, FileMode, HaccConfig};
use iokc_benchmarks::instrument::{darshan_from_phases, InstrumentOptions};
use iokc_benchmarks::ior::{run_ior, IorConfig};
use iokc_sim::api::IoApi;
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;

fn world(seed: u64) -> World {
    World::new(SystemConfig::test_small(), FaultPlan::none(), seed)
}

#[test]
fn ior_write_run_classifies_as_checkpoint_style() {
    let mut w = world(81);
    let config =
        IorConfig::parse_command("ior -a posix -b 4m -t 1m -s 2 -F -e -i 1 -o /scratch/pat -k -w")
            .unwrap();
    let result = run_ior(&mut w, JobLayout::new(4, 2), &config, 1).unwrap();
    let phases: Vec<&iokc_sim::metrics::PhaseResult> =
        result.phases.iter().map(|(_, _, p)| p).collect();
    let log = darshan_from_phases(
        &phases,
        &InstrumentOptions {
            dxt: true,
            nprocs: 4,
            ..InstrumentOptions::default()
        },
    );
    let profile = classify(&log).unwrap();
    assert_eq!(profile.direction, Direction::WriteHeavy);
    assert_eq!(profile.locality, Locality::Sequential);
    assert_eq!(profile.size_class, SizeClass::Medium);
    assert_eq!(profile.label, "checkpoint-style sequential write");
    assert_eq!(profile.files, 4);
}

#[test]
fn hacc_checkpoint_and_restart_classify_as_mixed_bulk() {
    let mut w = world(82);
    let config = HaccConfig::new(
        2_000_000,
        FileMode::FilePerProcess,
        IoApi::Posix,
        "/scratch/hpat",
    );
    let result = run_hacc(&mut w, JobLayout::new(4, 2), &config).unwrap();
    let mut phases = vec![&result.checkpoint];
    if let Some(restart) = &result.restart {
        phases.push(restart);
    }
    let log = darshan_from_phases(
        &phases,
        &InstrumentOptions {
            dxt: true,
            nprocs: 4,
            ..InstrumentOptions::default()
        },
    );
    let profile = classify(&log).unwrap();
    // Checkpoint + restart moves equal bytes both ways.
    assert_eq!(profile.direction, Direction::Mixed);
    assert_eq!(profile.size_class, SizeClass::Large);
    assert!(profile.metadata_intensity < 0.5);
}

#[test]
fn dxt_timeline_covers_the_run() {
    let mut w = world(83);
    let config =
        IorConfig::parse_command("ior -a mpiio -b 1m -t 256k -s 2 -F -C -i 1 -o /scratch/tl -k")
            .unwrap();
    let result = run_ior(&mut w, JobLayout::new(4, 2), &config, 1).unwrap();
    let phases: Vec<&iokc_sim::metrics::PhaseResult> =
        result.phases.iter().map(|(_, _, p)| p).collect();
    let log = darshan_from_phases(
        &phases,
        &InstrumentOptions {
            dxt: true,
            nprocs: 4,
            ..InstrumentOptions::default()
        },
    );
    let timeline = DxtTimeline::from_log(&log).unwrap();
    assert_eq!(timeline.ranks.len(), 4);
    // 4 ranks × (8 writes + 8 reads).
    assert_eq!(timeline.segments.len(), 64);
    // No stragglers in a healthy symmetric run.
    assert!(timeline.stragglers(3.5, 0.25).is_empty());
    // The heat map conserves the run's bytes.
    let (matrix, _) = timeline.heat_map(32);
    let total: f64 = matrix.iter().flatten().sum();
    let moved: f64 = log.dxt.iter().map(|s| s.length as f64).sum();
    assert!((total - moved).abs() < moved * 1e-6);
}
