//! End-to-end campaign durability harness.
//!
//! Drives the full stack — JUBE config → supervised executor →
//! simulated IOR runs — through the failure shapes the campaign layer
//! exists for: a worker killed mid-workpackage (retried in place), a
//! poisoned parameter value (quarantined without failing the sweep),
//! and the whole campaign process dying at workpackage `k` (resumed
//! from the journal, re-running only unfinished work, with result
//! tables identical to an uninterrupted run).

use iokc_benchmarks::SimCampaignRunner;
use iokc_core::resilience::RetryPolicy;
use iokc_jube::campaign::replay;
use iokc_jube::{journal_path, run_campaign, CampaignOptions, JubeConfig};
use iokc_sim::faults::CrashSchedule;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// 4 transfer sizes x 4 segment counts = 16 workpackages; the `bogus`
/// transfer size cannot be parsed by IOR, so its four combinations fail
/// permanently and must be quarantined.
const CONFIG: &str = "\
benchmark ior-campaign-e2e
param xfer = 1m, 2m, 4m, bogus
param sseg = 1, 2, 4, 8
step run = ior -a mpiio -t $xfer -b 4m -s $sseg -i 1 -o /scratch/e$wp/t -k
pattern write_bw = Max Write: {bw:f} MiB/sec
";

const TOTAL: usize = 16;
const POISONED: usize = 4; // the xfer=bogus block, wp ids 12..=15

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iokc-e2e-campaign-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options() -> CampaignOptions {
    CampaignOptions {
        max_parallel: 4,
        retry: RetryPolicy::with_retries(2).seeded(42),
        quarantine_threshold: 3,
        ..CampaignOptions::default()
    }
}

#[test]
fn campaign_survives_worker_crash_process_death_and_poisoned_params() {
    let config = JubeConfig::parse(CONFIG).expect("valid config");
    assert_eq!(config.expand().len(), TOTAL);

    // ---- Phase A: uninterrupted reference run -------------------------
    let dir_a = scratch("reference");
    let hooks = SimCampaignRunner::new(42, 8, 4);
    let reference =
        run_campaign(&config, &dir_a, &options(), || hooks.runner()).expect("reference campaign");
    assert!(
        reference.summary.is_complete(),
        "quarantined combinations must not fail the sweep: {}",
        reference.summary
    );
    assert_eq!(reference.summary.completed, TOTAL - POISONED);
    assert_eq!(reference.summary.quarantined, POISONED);
    let quarantined_ids: BTreeSet<usize> =
        reference.quarantined.iter().map(|(wp, _)| *wp).collect();
    assert_eq!(quarantined_ids, (12..16).collect::<BTreeSet<usize>>());
    for (_, reason) in &reference.quarantined {
        assert!(reason.contains("permanent failure"), "{reason}");
    }
    let reference_table = reference.workspace.result_table(&config).render();
    assert_eq!(reference_table.lines().count(), 2 + TOTAL - POISONED);

    // ---- Phase B: worker crash at wp 2 + process death at wp k --------
    let dir_b = scratch("crash");
    // Workpackage 2's first attempt is killed mid-workpackage: the
    // supervisor must retry it within the same campaign run.
    let crashes = Arc::new(Mutex::new(CrashSchedule::at_workpackages(&[(2, 0)])));
    let hooks = SimCampaignRunner::new(42, 8, 4).with_crashes(Arc::clone(&crashes));
    // After k successful workpackage completions the whole campaign
    // "process" dies: workers stop and discard unjournaled results.
    let k = 5;
    let abort = Arc::new(AtomicBool::new(false));
    let completions = AtomicUsize::new(0);
    let crash_options = CampaignOptions {
        abort: Some(Arc::clone(&abort)),
        ..options()
    };
    let crashed = run_campaign(&config, &dir_b, &crash_options, || {
        let mut inner = hooks.runner();
        let abort = Arc::clone(&abort);
        let completions = &completions;
        move |wp: usize, step: &str, command: &str| {
            let result = inner(wp, step, command);
            if result.is_ok() && completions.fetch_add(1, Ordering::SeqCst) + 1 >= k {
                abort.store(true, Ordering::SeqCst);
            }
            result
        }
    })
    .expect("crashed campaign");
    assert!(crashed.aborted);
    assert!(!crashed.summary.is_complete());
    assert!(
        crashes.lock().expect("schedule lock").worker_calls(2) >= 1,
        "the keyed crash schedule fired"
    );

    // ---- Phase C: resume from the journal -----------------------------
    let state = replay(&journal_path(&dir_b)).expect("replay");
    let done_before: BTreeSet<usize> = state.done.keys().copied().collect();
    let pending: BTreeSet<usize> = (0..TOTAL).filter(|wp| state.is_pending(*wp)).collect();
    assert!(
        !done_before.is_empty(),
        "some work was journaled before the crash"
    );
    assert!(!pending.is_empty(), "the crash left unfinished work");

    let executed = Mutex::new(BTreeSet::new());
    let hooks = SimCampaignRunner::new(42, 8, 4);
    let resumed = run_campaign(&config, &dir_b, &options(), || {
        let mut inner = hooks.runner();
        let executed = &executed;
        move |wp: usize, step: &str, command: &str| {
            executed
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(wp);
            inner(wp, step, command)
        }
    })
    .expect("resumed campaign");
    let executed = executed
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();

    // Only unfinished workpackages re-ran; completed ones replayed from
    // the journal without touching the simulator.
    assert_eq!(
        executed, pending,
        "resume re-runs exactly the unfinished work"
    );
    assert!(executed.is_disjoint(&done_before));
    assert_eq!(resumed.summary.replayed, done_before.len());
    assert!(resumed.summary.is_complete(), "{}", resumed.summary);
    assert_eq!(resumed.summary.quarantined, POISONED);

    // The interrupted-and-resumed campaign is indistinguishable from the
    // uninterrupted one.
    assert_eq!(
        resumed.workspace.result_table(&config).render(),
        reference_table
    );

    std::fs::remove_dir_all(&dir_a).expect("cleanup");
    std::fs::remove_dir_all(&dir_b).expect("cleanup");
}

#[test]
fn resume_rejects_a_different_configuration() {
    let config = JubeConfig::parse(CONFIG).expect("valid config");
    let dir = scratch("mismatch");
    let hooks = SimCampaignRunner::new(42, 4, 4);
    run_campaign(&config, &dir, &options(), || hooks.runner()).expect("campaign");
    let other = JubeConfig::parse(
        "benchmark other\nparam xfer = 1m\nstep run = ior -a mpiio -t $xfer -b 4m -s 1 -i 1 -o /scratch/m$wp/t -k\n",
    )
    .expect("valid config");
    let err = run_campaign(&other, &dir, &options(), || hooks.runner())
        .expect_err("fingerprint mismatch");
    assert!(
        matches!(err, iokc_jube::CampaignError::Mismatch { .. }),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
