//! HDF5-layer runs (the third API of the paper's Fig. 1 stack) and
//! mid-phase fault windows (capacity changes while flows are in flight).

use iokc_benchmarks::ior::{run_ior, Access, IorConfig};
use iokc_extract::parse_ior_output;
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::{Fault, FaultPlan, FaultTarget};
use iokc_sim::prelude::*;
use iokc_sim::time::SimTime;

#[test]
fn hdf5_api_runs_and_costs_more_than_mpiio() {
    let run_with = |api: &str| {
        let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 61);
        let config = IorConfig::parse_command(&format!(
            "ior -a {api} -b 1m -t 256k -s 2 -F -C -e -i 2 -o /scratch/h5 -k"
        ))
        .unwrap();
        let result = run_ior(&mut world, JobLayout::new(4, 2), &config, 1).unwrap();
        let knowledge = parse_ior_output(&result.render()).unwrap();
        (result, knowledge)
    };
    let (hdf5, k_hdf5) = run_with("hdf5");
    let (mpiio, k_mpiio) = run_with("mpiio");
    assert_eq!(k_hdf5.pattern.api, "HDF5");
    assert_eq!(k_mpiio.pattern.api, "MPIIO");
    // Both move the same data; HDF5 carries library overheads, so its
    // total times are at least as long (never faster).
    let t_hdf5 = hdf5.samples_of(Access::Write).next().unwrap().total_s;
    let t_mpiio = mpiio.samples_of(Access::Write).next().unwrap().total_s;
    assert!(
        t_hdf5 >= t_mpiio,
        "HDF5 write phase ({t_hdf5}s) must not beat MPI-IO ({t_mpiio}s)"
    );
    assert!(k_hdf5.summary("write").unwrap().mean_mib > 0.0);
    assert!(k_hdf5.summary("read").unwrap().mean_mib > 0.0);
}

#[test]
fn fault_window_opening_mid_phase_slows_inflight_transfers() {
    // A fabric fault whose window STARTS in the middle of the write phase:
    // the engine must re-rate in-flight flows at the window edge.
    let run = |fault: Option<Fault>| {
        let plan = match fault {
            Some(f) => FaultPlan::none().with(f),
            None => FaultPlan::none(),
        };
        let mut world = World::new(SystemConfig::test_small(), plan, 71);
        let mut scripts = ScriptSet::new(2);
        for rank in 0..2 {
            let path = format!("/scratch/w{rank}");
            scripts.rank(rank).open(&path, OpenMode::Write);
            for i in 0..16u64 {
                scripts.rank(rank).write(&path, i << 20, 1 << 20);
            }
            scripts.rank(rank).close(&path);
        }
        world
            .run(JobLayout::new(2, 1), &scripts)
            .unwrap()
            .wall()
            .as_secs_f64()
    };
    let healthy = run(None);
    // Window opens at 40% of the healthy runtime and never closes.
    let edge = SimTime::from_secs_f64(healthy * 0.4);
    let faulty = run(Some(Fault::fabric_congestion(0.2, edge, SimTime(u64::MAX))));
    assert!(
        faulty > healthy * 1.5,
        "mid-phase fault must stretch the run: {faulty} vs {healthy}"
    );

    // And a window that CLOSES before the run starts has no effect.
    let expired = run(Some(Fault::fabric_congestion(
        0.2,
        SimTime::ZERO,
        SimTime::from_secs_f64(1e-9),
    )));
    assert!((expired - healthy).abs() < healthy * 0.01);
}

#[test]
fn per_target_fault_reroutes_shape_not_totals() {
    // One slow target out of four: total bytes still land, the phase just
    // takes longer than healthy but less than an all-targets fault.
    let run = |targets: &[u32]| {
        let mut plan = FaultPlan::none();
        for t in targets {
            plan.push(Fault::permanent(FaultTarget::StorageTarget(*t), 0.2));
        }
        let mut world = World::new(SystemConfig::test_small(), plan, 73);
        let mut scripts = ScriptSet::new(4);
        for rank in 0..4 {
            let path = format!("/scratch/t{rank}");
            // Stripe across every target so each file feels the fault.
            scripts.rank(rank).open_hint(
                &path,
                OpenMode::Write,
                StripeHint {
                    chunk_size: None,
                    stripe_count: Some(4),
                },
            );
            for i in 0..8u64 {
                scripts.rank(rank).write(&path, i << 20, 1 << 20);
            }
            scripts.rank(rank).close(&path);
        }
        let result = world.run(JobLayout::new(4, 2), &scripts).unwrap();
        assert_eq!(result.bytes(OpKind::Write), (4 * 8) << 20);
        result.wall().as_secs_f64()
    };
    let healthy = run(&[]);
    let one_slow = run(&[0]);
    let all_slow = run(&[0, 1, 2, 3]);
    assert!(one_slow > healthy, "{one_slow} vs {healthy}");
    assert!(all_slow > one_slow, "{all_slow} vs {one_slow}");
}
