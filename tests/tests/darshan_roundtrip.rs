//! X3 — Darshan as a data source (§V-A/V-B): a simulated IOR run is
//! instrumented into a Darshan-style log, encoded, decoded, parsed with
//! the PyDarshan-equivalent API, and ingested as knowledge; the counters
//! must reconstruct the simulator's op records exactly.

use iokc_benchmarks::instrument::{darshan_from_phases, InstrumentOptions};
use iokc_benchmarks::ior::{run_ior, IorConfig};
use iokc_darshan::{decode, encode, render_parser_output, LogSummary, Module};
use iokc_extract::ingest_darshan;
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::{OpKind, SystemConfig};

#[test]
fn darshan_counters_match_simulated_ops_exactly() {
    let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 31);
    let config =
        IorConfig::parse_command("ior -a mpiio -b 1m -t 256k -s 2 -F -C -e -i 2 -o /scratch/dx -k")
            .unwrap();
    let layout = JobLayout::new(4, 2);
    let result = run_ior(&mut world, layout, &config, 1).unwrap();

    let phases: Vec<&iokc_sim::metrics::PhaseResult> =
        result.phases.iter().map(|(_, _, p)| p).collect();
    let opts = InstrumentOptions {
        job_id: 777,
        nprocs: layout.np,
        exe: "ior".to_owned(),
        dxt: true,
        api: config.api,
        start_unix: 1_656_590_400,
    };
    let log = darshan_from_phases(&phases, &opts);

    // Ground truth from the simulator's op records.
    let sim_writes: u64 = phases.iter().map(|p| p.ops(OpKind::Write)).sum();
    let sim_write_bytes: u64 = phases.iter().map(|p| p.bytes(OpKind::Write)).sum();
    let sim_reads: u64 = phases.iter().map(|p| p.ops(OpKind::Read)).sum();
    let sim_read_bytes: u64 = phases.iter().map(|p| p.bytes(OpKind::Read)).sum();
    let sim_opens: u64 = phases.iter().map(|p| p.ops(OpKind::Open)).sum();
    let sim_fsyncs: u64 = phases.iter().map(|p| p.ops(OpKind::Fsync)).sum();

    assert_eq!(
        log.total_counter(Module::Posix, "POSIX_WRITES") as u64,
        sim_writes
    );
    assert_eq!(
        log.total_counter(Module::Posix, "POSIX_BYTES_WRITTEN") as u64,
        sim_write_bytes
    );
    assert_eq!(
        log.total_counter(Module::Posix, "POSIX_READS") as u64,
        sim_reads
    );
    assert_eq!(
        log.total_counter(Module::Posix, "POSIX_BYTES_READ") as u64,
        sim_read_bytes
    );
    assert_eq!(
        log.total_counter(Module::Posix, "POSIX_OPENS") as u64,
        sim_opens
    );
    assert_eq!(
        log.total_counter(Module::Posix, "POSIX_FSYNCS") as u64,
        sim_fsyncs
    );
    // MPI-IO layer mirrors the data ops.
    assert_eq!(
        log.total_counter(Module::Mpiio, "MPIIO_BYTES_WRITTEN") as u64,
        sim_write_bytes
    );

    // DXT traced every transfer.
    assert_eq!(log.dxt.len() as u64, sim_writes + sim_reads);
    // Sequential writes are detected (IOR writes each file sequentially).
    assert!(log.total_counter(Module::Posix, "POSIX_CONSEC_WRITES") > 0);

    // Binary round trip is exact.
    let bytes = encode(&log);
    let decoded = decode(&bytes).unwrap();
    assert_eq!(decoded, log);

    // The PyDarshan-equivalent summary agrees.
    let summary = LogSummary::from_log(&decoded);
    assert_eq!(summary.bytes_written, sim_write_bytes);
    assert_eq!(summary.writes, sim_writes);
    assert_eq!(summary.nprocs, 4);

    // darshan-parser style text mentions the files.
    let text = render_parser_output(&decoded);
    assert!(text.contains("/scratch/dx.00000000"));
    assert!(text.contains("X_POSIX"));

    // Knowledge ingestion (the extractor path).
    let knowledge = ingest_darshan(&bytes).unwrap();
    assert_eq!(knowledge.pattern.tasks, 4);
    assert!(knowledge.summary("write").unwrap().mean_mib > 0.0);
    assert!(knowledge.summary("read").unwrap().mean_mib > 0.0);
}

#[test]
fn dxt_segments_reproduce_access_pattern() {
    let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 37);
    let config =
        IorConfig::parse_command("ior -a posix -b 1m -t 512k -s 2 -F -i 1 -o /scratch/dxt -k -w")
            .unwrap();
    let result = run_ior(&mut world, JobLayout::new(2, 2), &config, 2).unwrap();
    let phases: Vec<&iokc_sim::metrics::PhaseResult> =
        result.phases.iter().map(|(_, _, p)| p).collect();
    let log = darshan_from_phases(
        &phases,
        &InstrumentOptions {
            dxt: true,
            nprocs: 2,
            ..InstrumentOptions::default()
        },
    );
    // Rank 0's segments: sequential 512 KiB writes at 0, 512K, 1M, 1.5M.
    let rank0: Vec<&iokc_darshan::DxtSegment> = log
        .dxt
        .iter()
        .filter(|s| s.rank == 0 && s.is_write)
        .collect();
    assert_eq!(rank0.len(), 4);
    let offsets: Vec<u64> = rank0.iter().map(|s| s.offset).collect();
    assert_eq!(offsets, vec![0, 512 << 10, 1 << 20, 3 << 19]);
    assert!(rank0.iter().all(|s| s.length == 512 << 10));
    // Timestamps are ordered within the rank.
    for pair in rank0.windows(2) {
        assert!(pair[0].end <= pair[1].start + 1e-9);
    }
}
