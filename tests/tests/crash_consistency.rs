//! Crash-consistency checker for the knowledge store (ISSUE PR 6).
//!
//! A mixed save/delete/journal workload runs on the deterministic
//! [`FaultVfs`]; for every virtual-filesystem operation the workload
//! performs, one run is crashed exactly there and every post-crash disk
//! image a real disk could expose (`crash_states`) is reopened and
//! checked against the durability contract:
//!
//! * every acknowledged operation is fully present;
//! * no unacknowledged operation is partially visible — the recovered
//!   store equals an acknowledged-prefix state (at most one in-flight
//!   operation whose bytes all reached disk may additionally appear);
//! * the incremental secondary indexes equal a bulk rebuild;
//! * the event journal salvages to a prefix of the acknowledged records;
//! * `fsck --repair` fixes every finding the crash produced, and a
//!   second pass comes back clean.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use iokc_core::model::{Io500Knowledge, Io500Testcase, Knowledge, KnowledgeSource};
use iokc_store::journal::{read_journal_vfs, truncate_torn_tail_vfs, JournalWriter};
use iokc_store::{
    fsck, DbError, DeadlineToken, FaultPlan, FaultVfs, FsckOptions, KnowledgeStore, Query, RunKind,
    Vfs,
};

fn kb() -> PathBuf {
    PathBuf::from("/kb.json")
}

fn journal_path() -> PathBuf {
    PathBuf::from("/events.j")
}

fn bench(i: usize) -> Knowledge {
    Knowledge::new(KnowledgeSource::Ior, &format!("ior -t 1m -b 16m #{i}"))
}

fn io500(i: usize) -> Io500Knowledge {
    Io500Knowledge {
        id: None,
        tasks: 8 + i as u32,
        bw_score: 0.5 + i as f64,
        md_score: 10.0,
        total_score: 2.25 + i as f64,
        testcases: vec![Io500Testcase {
            name: "ior-easy-write".into(),
            value: 2.5,
            unit: "GiB/s".into(),
            time_s: 31.0,
        }],
        options: BTreeMap::new(),
        system: None,
        start_time: 0,
        warnings: Vec::new(),
    }
}

/// Stable content signature of a store: one sorted line per run.
fn fingerprint(store: &KnowledgeStore) -> Vec<String> {
    let mut rows: Vec<String> = store
        .query_summaries(&Query::all(), &DeadlineToken::unbounded())
        .expect("fingerprint query")
        .iter()
        .map(|r| match r.kind {
            RunKind::Benchmark => format!("b:{}:{}", r.id, r.command),
            RunKind::Io500 => format!("i:{}:{}:{}", r.id, r.tasks, r.total_score),
        })
        .collect();
    rows.sort();
    rows
}

struct WorkloadRun {
    /// Store operations acknowledged (flush returned `Ok`).
    acked: usize,
    /// Journal records whose append was acknowledged.
    journal_records: Vec<String>,
    /// `states[j]` = fingerprint after `j` acknowledged store ops.
    states: Vec<Vec<String>>,
}

/// The mixed workload: two benchmark saves, two IO500 saves, one delete
/// of each kind, with a journal record appended after every
/// acknowledged store operation. Stops at the first failure.
fn run_workload(vfs: Arc<FaultVfs>) -> WorkloadRun {
    let mut out = WorkloadRun {
        acked: 0,
        journal_records: Vec::new(),
        states: Vec::new(),
    };
    let Ok(mut store) = KnowledgeStore::open_with_vfs(kb(), Arc::clone(&vfs) as Arc<dyn Vfs>)
    else {
        return out;
    };
    let Ok(mut journal) = JournalWriter::open_vfs(&journal_path(), &*vfs) else {
        return out;
    };
    out.states.push(fingerprint(&store));
    let mut bench_ids: Vec<u64> = Vec::new();
    let mut io_ids: Vec<u64> = Vec::new();
    for step in 0..6 {
        let result: Result<(), DbError> = (|| {
            match step {
                0 => bench_ids.push(store.save_knowledge(&bench(0))?),
                1 => io_ids.push(store.save_io500(&io500(0))?),
                2 => bench_ids.push(store.save_knowledge(&bench(1))?),
                3 => drop(store.delete_knowledge(bench_ids[0])?),
                4 => io_ids.push(store.save_io500(&io500(1))?),
                _ => drop(store.delete_io500(io_ids[0])?),
            }
            Ok(())
        })();
        if result.is_err() {
            return out;
        }
        out.acked += 1;
        out.states.push(fingerprint(&store));
        let payload = format!("op-{step} acked");
        if journal.append(&payload).is_err() {
            return out;
        }
        out.journal_records.push(payload);
    }
    out
}

#[test]
fn every_crash_point_recovers_an_acknowledged_prefix() {
    // Fault-free probe: records the op budget and the fingerprint after
    // each acknowledged operation.
    let probe_vfs = Arc::new(FaultVfs::pristine());
    let probe = run_workload(Arc::clone(&probe_vfs));
    assert_eq!(probe.acked, 6, "fault-free workload must fully succeed");
    let total_ops = probe_vfs.op_count();
    assert!(total_ops > 20, "workload too small to be interesting");

    for op in 0..total_ops {
        let vfs = Arc::new(FaultVfs::new(FaultPlan::crash_at_op(op)));
        let run = run_workload(Arc::clone(&vfs));
        assert!(vfs.crashed(), "crash op {op} never fired");
        let j = run.acked;
        let hi = (j + 1).min(probe.acked);
        let allowed = &probe.states[j..=hi];

        for state in vfs.crash_states() {
            let svfs = Arc::new(FaultVfs::from_state(state));

            // Reopen: every exposable disk image must load (possibly
            // via backup recovery) to an acknowledged-prefix state with
            // indexes that match a bulk rebuild.
            let reopened = KnowledgeStore::open_with_vfs(kb(), Arc::clone(&svfs) as Arc<dyn Vfs>)
                .unwrap_or_else(|e| panic!("crash op {op}: reopen failed: {e}"));
            let fp = fingerprint(&reopened);
            assert!(
                allowed.contains(&fp),
                "crash op {op} (acked {j}): recovered state {fp:?} is not an acknowledged prefix"
            );
            assert!(
                reopened.indexes_consistent().expect("index rebuild"),
                "crash op {op}: incremental indexes diverge from bulk rebuild"
            );

            // Journal: the salvaged prefix is exactly the acknowledged
            // records, plus at most the one in-flight record whose
            // bytes fully landed.
            let report = read_journal_vfs(&journal_path(), &*svfs).expect("journal read");
            let n = run.journal_records.len();
            assert!(
                report.records.len() >= n && report.records.len() <= n + 1,
                "crash op {op}: journal salvaged {} records, acknowledged {n}",
                report.records.len()
            );
            assert_eq!(&report.records[..n], &run.journal_records[..]);
            if report.records.len() == n + 1 {
                assert_eq!(report.records[n], format!("op-{} acked", run.acked - 1));
            }
            if report.torn_tail {
                let salvaged =
                    truncate_torn_tail_vfs(&journal_path(), &*svfs).expect("torn-tail truncate");
                let again = read_journal_vfs(&journal_path(), &*svfs).expect("journal reread");
                assert!(
                    !again.torn_tail,
                    "crash op {op}: tail still torn after repair"
                );
                assert_eq!(again.records, salvaged.records);
            }

            // fsck: one repair pass fixes every finding the crash
            // produced; the second pass is clean; the repaired image is
            // still an acknowledged prefix.
            let repair = fsck(
                &kb(),
                &*svfs,
                &FsckOptions {
                    repair: true,
                    journal: Some(journal_path()),
                },
            );
            assert_eq!(
                repair.unrepaired(),
                0,
                "crash op {op}: unrepaired findings {:?}",
                repair.findings
            );
            let second = fsck(
                &kb(),
                &*svfs,
                &FsckOptions {
                    repair: false,
                    journal: Some(journal_path()),
                },
            );
            assert!(
                second.clean(),
                "crash op {op}: fsck not clean after repair: {:?}",
                second.findings
            );
            let after = KnowledgeStore::open_with_vfs(kb(), Arc::clone(&svfs) as Arc<dyn Vfs>)
                .unwrap_or_else(|e| panic!("crash op {op}: reopen after fsck failed: {e}"));
            assert!(allowed.contains(&fingerprint(&after)));
        }
    }
}

/// The segmented-store workload: saves that trip the auto-seal
/// threshold (so segments seal mid-workload), a delete that lands a
/// tombstone on a sealed run, an explicit seal, and a full compaction.
/// Sealing and compaction move rows between layers without changing
/// what reads return, so their fingerprints equal the preceding step's.
fn run_segmented_workload(vfs: Arc<FaultVfs>) -> WorkloadRun {
    let mut out = WorkloadRun {
        acked: 0,
        journal_records: Vec::new(),
        states: Vec::new(),
    };
    let Ok(mut store) = KnowledgeStore::open_with_vfs(kb(), Arc::clone(&vfs) as Arc<dyn Vfs>)
    else {
        return out;
    };
    store.set_seal_threshold(2);
    out.states.push(fingerprint(&store));
    let mut ids: Vec<u64> = Vec::new();
    for step in 0..8 {
        let result: Result<(), DbError> = (|| {
            match step {
                0..=3 => ids.push(store.save_knowledge(&bench(step))?),
                4 => drop(store.delete_knowledge(ids[0])?),
                5 => drop(store.save_io500(&io500(0))?),
                6 => store.seal_active()?,
                _ => {
                    store.compact()?;
                }
            }
            Ok(())
        })();
        if result.is_err() {
            return out;
        }
        out.acked += 1;
        out.states.push(fingerprint(&store));
    }
    out
}

#[test]
fn every_crash_point_during_seal_and_compaction_recovers() {
    let probe_vfs = Arc::new(FaultVfs::pristine());
    let probe = run_segmented_workload(Arc::clone(&probe_vfs));
    assert_eq!(probe.acked, 8, "fault-free segmented workload must succeed");
    let total_ops = probe_vfs.op_count();
    assert!(
        total_ops > 30,
        "segmented workload too small to exercise seal/compaction windows"
    );

    for op in 0..total_ops {
        let vfs = Arc::new(FaultVfs::new(FaultPlan::crash_at_op(op)));
        let run = run_segmented_workload(Arc::clone(&vfs));
        assert!(vfs.crashed(), "crash op {op} never fired");
        let j = run.acked;
        let hi = (j + 1).min(probe.acked);
        let allowed = &probe.states[j..=hi];

        for state in vfs.crash_states() {
            let svfs = Arc::new(FaultVfs::from_state(state));

            // Reopen: mid-seal and mid-compaction crash images must load
            // to an acknowledged-prefix state — strays (half-written
            // segments, superseded actives, torn manifests) never change
            // what reads return.
            let reopened = KnowledgeStore::open_with_vfs(kb(), Arc::clone(&svfs) as Arc<dyn Vfs>)
                .unwrap_or_else(|e| panic!("crash op {op}: reopen failed: {e}"));
            let fp = fingerprint(&reopened);
            assert!(
                allowed.contains(&fp),
                "crash op {op} (acked {j}): recovered state {fp:?} is not an acknowledged prefix"
            );
            assert!(
                reopened.indexes_consistent().expect("index rebuild"),
                "crash op {op}: incremental indexes diverge from bulk rebuild"
            );

            // One `fsck --repair` pass sweeps every stray the crash
            // left; the second pass is clean; the repaired image still
            // reads as an acknowledged prefix.
            let repair = fsck(
                &kb(),
                &*svfs,
                &FsckOptions {
                    repair: true,
                    journal: None,
                },
            );
            assert_eq!(
                repair.unrepaired(),
                0,
                "crash op {op}: unrepaired findings {:?}",
                repair.findings
            );
            let second = fsck(
                &kb(),
                &*svfs,
                &FsckOptions {
                    repair: false,
                    journal: None,
                },
            );
            assert!(
                second.clean(),
                "crash op {op}: fsck not clean after repair: {:?}",
                second.findings
            );
            let after = KnowledgeStore::open_with_vfs(kb(), Arc::clone(&svfs) as Arc<dyn Vfs>)
                .unwrap_or_else(|e| panic!("crash op {op}: reopen after fsck failed: {e}"));
            assert!(allowed.contains(&fingerprint(&after)));
        }
    }
}

#[test]
fn seeded_chaos_never_leaves_the_store_incoherent() {
    for seed in 0..12u64 {
        let vfs = Arc::new(FaultVfs::new(FaultPlan::seeded_chaos(seed, 200, 5)));
        let Ok(mut store) = KnowledgeStore::open_with_vfs(kb(), Arc::clone(&vfs) as Arc<dyn Vfs>)
        else {
            continue;
        };
        let mut last_generation = store.generation();
        for i in 0..10 {
            if store.is_read_only() {
                break;
            }
            match store.save_knowledge(&bench(i)) {
                Ok(_) => {
                    assert!(
                        store.generation() > last_generation,
                        "seed {seed}: acknowledged write did not advance the generation"
                    );
                }
                Err(DbError::ReadOnly(_)) => break,
                Err(_) => {
                    // A failed write must leave memory equal to disk and
                    // the generation untouched (monotone, no phantom
                    // bumps).
                    assert_eq!(store.generation(), last_generation, "seed {seed}");
                }
            }
            last_generation = store.generation();
            assert!(
                store.indexes_consistent().expect("index rebuild"),
                "seed {seed}: indexes diverged after op {i}"
            );
        }
        // Whatever the chaos did, the durable image still opens (possibly
        // via backup recovery) with consistent indexes.
        let survivor = Arc::new(FaultVfs::from_state(vfs.durable_state()));
        let reopened = KnowledgeStore::open_with_vfs(kb(), survivor as Arc<dyn Vfs>)
            .unwrap_or_else(|e| panic!("seed {seed}: durable image does not reopen: {e}"));
        assert!(reopened.indexes_consistent().expect("index rebuild"));
    }
}
