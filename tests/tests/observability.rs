//! The observability layer end to end: sim-backed cycle runs emit a
//! span tree that mirrors the phase registry exactly on the virtual
//! clock, metrics histograms only grow, and a campaign that crashes at
//! workpackage *k* leaves a salvageable event log behind.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use iokc_analysis::IterationVarianceDetector;
use iokc_benchmarks::{IorConfig, IorGenerator};
use iokc_core::cycle::ModuleBox;
use iokc_core::{KnowledgeCycle, Observability};
use iokc_extract::IorExtractor;
use iokc_jube::{run_campaign, CampaignOptions, JubeConfig, StepFailure, StepOutcome};
use iokc_obs::{build_span_tree, Clock, Event, MemorySink, Recorder, SpanStatus, VirtualClock};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::{JournalEventSink, KnowledgeStore};
use iokc_usage::RegenerateUsage;

fn sim_cycle(seed: u64) -> KnowledgeCycle {
    let world = World::new(SystemConfig::test_small(), FaultPlan::none(), seed);
    let config = IorConfig::parse_command(
        "ior -a mpiio -b 512k -t 256k -s 1 -F -C -e -i 2 -o /scratch/obs -k",
    )
    .expect("command parses");
    let generator = IorGenerator::new(world, JobLayout::new(2, 2), config, seed);
    let mut cycle = KnowledgeCycle::new();
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::persister(KnowledgeStore::in_memory()))
        .register(ModuleBox::analyzer(IterationVarianceDetector::default()))
        .register(ModuleBox::usage(RegenerateUsage::default()));
    cycle
}

#[test]
fn span_tree_matches_the_phase_registry_exactly() {
    let sink = Arc::new(MemorySink::new());
    let recorder = Recorder::new(Clock::Virtual(VirtualClock::new()), sink.clone());
    let mut cycle = sim_cycle(41);
    cycle.set_observability(Observability::new(recorder));
    let registry = cycle.registry();

    cycle.run_once().expect("cycle runs");

    let tree = build_span_tree(&sink.snapshot());
    assert_eq!(tree.roots.len(), 1, "one cycle root span");
    assert_eq!(tree.open_spans, 0, "every span closed");
    let root = &tree.roots[0];
    assert_eq!(root.name, "cycle");

    // One phase span per phase, in cycle order, each wrapping exactly
    // the modules the registry lists for that phase.
    assert_eq!(root.children.len(), registry.len());
    for (child, (phase, modules)) in root.children.iter().zip(&registry) {
        assert_eq!(child.name, phase.as_str());
        assert_eq!(child.phase.as_deref(), Some(phase.as_str()));
        let spanned: Vec<&str> = child
            .children
            .iter()
            .map(|m| m.module.as_deref().unwrap_or("?"))
            .collect();
        let registered: Vec<&str> = modules.iter().map(String::as_str).collect();
        assert_eq!(spanned, registered, "phase {phase:?} modules");
        for module in &child.children {
            assert_eq!(module.status, Some(SpanStatus::Ok));
        }
    }

    // On the virtual clock the per-phase durations sum to the cycle
    // total with zero slack — well within the 1% acceptance bound.
    let cycle_ns = root.dur_ns.expect("cycle span closed");
    let phase_sum: u64 = root.children.iter().filter_map(|c| c.dur_ns).sum();
    assert!(cycle_ns > 0, "simulated run advanced the virtual clock");
    assert_eq!(phase_sum, cycle_ns, "phase spans tile the cycle span");
    let drift = (phase_sum as f64 - cycle_ns as f64).abs() / cycle_ns as f64;
    assert!(drift < 0.01, "phase sum within 1% of cycle total");
}

#[test]
fn histograms_are_monotone_under_virtual_time() {
    let recorder = Recorder::new(
        Clock::Virtual(VirtualClock::new()),
        Arc::new(iokc_obs::NullSink),
    );
    let mut cycle = sim_cycle(42);
    cycle.set_observability(Observability::new(recorder));
    let metrics = cycle.observability().metrics();

    let mut last_count = 0;
    let mut last_sum = 0.0;
    let mut last_runs = 0;
    for iteration in 1..=3u64 {
        cycle.run_once().expect("cycle runs");
        let cycle_ms = metrics.histogram("iokc.cycle.ms").snapshot();
        assert_eq!(cycle_ms.count, iteration, "one observation per run");
        assert!(cycle_ms.count > last_count);
        assert!(
            cycle_ms.sum > last_sum,
            "virtual time accrues every iteration: {} !> {last_sum}",
            cycle_ms.sum
        );
        let runs = metrics.counter("iokc.cycle.runs").get();
        assert_eq!(runs, iteration);
        assert!(runs > last_runs);
        last_count = cycle_ms.count;
        last_sum = cycle_ms.sum;
        last_runs = runs;
    }

    // Per-phase histograms observed once per iteration and never exceed
    // the cycle total.
    let phase_sum: f64 = [
        "generation",
        "extraction",
        "persistence",
        "analysis",
        "usage",
    ]
    .iter()
    .map(|phase| {
        let snap = metrics
            .histogram(&format!("iokc.phase.{phase}.ms"))
            .snapshot();
        assert_eq!(snap.count, 3, "phase {phase} observed each iteration");
        snap.sum
    })
    .sum();
    let cycle_sum = metrics.histogram("iokc.cycle.ms").snapshot().sum;
    assert!((phase_sum - cycle_sum).abs() <= cycle_sum * 0.01 + 1e-9);
}

#[test]
fn crash_at_workpackage_k_leaves_a_salvageable_event_log() {
    let dir = std::env::temp_dir().join(format!("iokc-obs-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("campaign dir");
    let events_path = dir.join("events.journal");

    let config = JubeConfig::parse(
        "benchmark crashy\nparam n = 1, 2, 3, 4, 5, 6\nstep run = work -n $n -o out$wp\n",
    )
    .expect("config parses");

    const K: usize = 3;
    let abort = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicUsize::new(0));
    {
        let sink = JournalEventSink::open(&events_path).expect("event journal opens");
        let recorder = Arc::new(Recorder::new(
            Clock::Virtual(VirtualClock::new()),
            Arc::new(sink),
        ));
        let options = CampaignOptions {
            max_parallel: 1,
            abort: Some(Arc::clone(&abort)),
            recorder: Some(Arc::clone(&recorder)),
            ..CampaignOptions::default()
        };
        let report = run_campaign(&config, &dir, &options, || {
            let abort = Arc::clone(&abort);
            let completed = Arc::clone(&completed);
            move |_wp: usize, _step: &str, _command: &str| -> Result<StepOutcome, StepFailure> {
                // Workpackage K never finishes: the "process" dies here.
                if completed.fetch_add(1, Ordering::SeqCst) + 1 == K {
                    abort.store(true, Ordering::SeqCst);
                }
                Ok(StepOutcome {
                    output: "result 1\n".to_owned(),
                    virtual_ms: 50,
                })
            }
        })
        .expect("aborted campaigns still report");
        assert!(report.aborted);
        assert!(
            report.summary.completed < 6,
            "the crash cut the campaign short"
        );
    }

    // A crash can also tear the last event record mid-append; fuse some
    // torn bytes onto the log to prove salvage still works.
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&events_path)
            .expect("journal reopens");
        file.write_all(b"j1 deadbeef {\"seq\":99,\"ts_n")
            .expect("torn append");
    }

    let salvage = iokc_store::truncate_torn_tail(&events_path).expect("salvage");
    assert!(salvage.torn_tail, "the torn tail was detected and dropped");
    let report = iokc_store::read_journal(&events_path).expect("journal reads");
    let events: Vec<Event> = report
        .records
        .iter()
        .filter_map(|record| Event::parse_record(record))
        .collect();
    assert!(!events.is_empty(), "the valid prefix survived");

    let tree = build_span_tree(&events);
    assert_eq!(tree.roots.len(), 1);
    let root = &tree.roots[0];
    assert_eq!(root.name, "campaign");
    // Workpackages finished before the crash closed cleanly; the event
    // log names them, so a resumed campaign knows what is already done.
    let ok_wps = root
        .children
        .iter()
        .filter(|wp| wp.status == Some(SpanStatus::Ok))
        .count();
    assert!(
        (1..6).contains(&ok_wps),
        "some but not all workpackages completed: {ok_wps}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
