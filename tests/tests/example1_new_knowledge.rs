//! E1 — Example I (new knowledge generation) at test scale: the cycle
//! loads a command, mutates it through the usage phase, re-runs, and the
//! knowledge base grows one generation per iteration.

use iokc_benchmarks::{IorConfig, IorGenerator};
use iokc_core::cycle::ModuleBox;
use iokc_core::model::KnowledgeItem;
use iokc_core::phases::{Persister, PhaseKind};
use iokc_core::{KnowledgeCycle, PhaseCtx};
use iokc_extract::IorExtractor;
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::KnowledgeStore;
use iokc_usage::{CommandBuilder, RegenerateUsage};

#[test]
fn iterative_cycle_grows_the_corpus() {
    // Clear the whole scratch dir: the store recovers from a leftover
    // `.bak` image when the primary is missing, so removing only the
    // primary would resurrect a previous run's corpus.
    let dir = std::env::temp_dir().join("iokc-integration-e1");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e1.iokc.json");

    let world = World::new(SystemConfig::test_small(), FaultPlan::none(), 3);
    let config = IorConfig::parse_command(
        "ior -a mpiio -b 512k -t 256k -s 1 -F -C -e -i 1 -o /scratch/e1 -k",
    )
    .unwrap();
    let generator = IorGenerator::new(world, JobLayout::new(2, 2), config, 11);

    let mut cycle = KnowledgeCycle::new();
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::persister(
            KnowledgeStore::open(path.clone()).unwrap(),
        ))
        .register(ModuleBox::usage(RegenerateUsage::default()));
    let reports = cycle.run_iterative(3).unwrap();
    assert_eq!(reports.len(), 3);

    let store = KnowledgeStore::open(path.clone()).unwrap();
    let mut ctx = PhaseCtx::detached(PhaseKind::Persistence, "knowledge-store");
    let items = Persister::load_all(&store, &mut ctx).unwrap();
    assert_eq!(items.len(), 3, "one knowledge object per generation");
    let blocks: Vec<u64> = items
        .iter()
        .map(|item| match item {
            KnowledgeItem::Benchmark(k) => k.pattern.block_size,
            KnowledgeItem::Io500(_) => panic!("unexpected io500 item"),
        })
        .collect();
    assert_eq!(
        blocks,
        vec![512 << 10, 1 << 20, 2 << 20],
        "block doubles each cycle"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn create_configuration_matches_paper_flow() {
    // §V-E1: load the previously applied command, modify it, create the
    // new command, run it. Here against a live world.
    let paper = "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k";
    let mut builder = CommandBuilder::load(paper);
    builder
        .set("-s", "2")
        .set("-i", "1")
        .set("-o", "/scratch/new");
    let created = builder.build();

    let config = IorConfig::parse_command(&created).expect("created command is runnable");
    assert_eq!(config.segments, 2);
    assert_eq!(config.iterations, 1);
    assert_eq!(config.test_file, "/scratch/new");
    // The untouched options survive the mutation.
    assert_eq!(config.block_size, 4 << 20);
    assert!(config.file_per_proc && config.reorder_tasks && config.fsync);

    let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 13);
    let result =
        iokc_benchmarks::ior::run_ior(&mut world, JobLayout::new(4, 2), &config, 1).unwrap();
    assert!(result.max_bw(iokc_benchmarks::Access::Write) > 0.0);
}
