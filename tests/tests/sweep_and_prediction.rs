//! X4 + F3 — the JUBE sweep engine driving the simulator, knowledge
//! extraction from workspaces, and linear-regression prediction on the
//! resulting corpus.

use iokc_benchmarks::ior::{run_ior, IorConfig};
use iokc_core::model::Knowledge;
use iokc_extract::parse_ior_output;
use iokc_jube::{run_sweep, run_sweep_parallel, JubeConfig};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_usage::predict::{pattern_features, train_bandwidth_model};
use iokc_usage::{derive_workload, generate_jube_config};

const SWEEP: &str = "\
benchmark xfer-sweep
param xfer = 16k, 32k, 64k, 128k, 256k, 512k
step run = ior -a posix -b 512k -t $xfer -s 2 -F -C -e -i 1 -o /scratch/sw$wp -k -w
pattern write_bw = Max Write: {bw:f} MiB/sec
";

fn runner(wp: usize, _step: &str, command: &str) -> Result<String, String> {
    let config = IorConfig::parse_command(command).map_err(|e| e.to_string())?;
    let mut world = World::new(
        SystemConfig::test_small(),
        FaultPlan::none(),
        100 + wp as u64,
    );
    let result =
        run_ior(&mut world, JobLayout::new(4, 2), &config, wp as u64).map_err(|e| e.to_string())?;
    Ok(result.render())
}

#[test]
fn sweep_extracts_metric_series() {
    let config = JubeConfig::parse(SWEEP).unwrap();
    let workspace = run_sweep(&config, runner).unwrap();
    assert_eq!(workspace.workpackages.len(), 6);
    let series = workspace.metric_series(&config, "write_bw");
    assert_eq!(series.len(), 6);
    // Bandwidth is monotone non-decreasing in transfer size here (fewer
    // per-request overheads).
    let bws: Vec<f64> = series.iter().map(|(_, v)| *v).collect();
    for pair in bws.windows(2) {
        assert!(
            pair[1] >= pair[0] * 0.95,
            "larger transfers should not collapse: {bws:?}"
        );
    }
    assert!(bws[5] > bws[0], "512k should beat 16k: {bws:?}");
    // The JUBE result table renders with parameters and metric.
    let table = workspace.result_table(&config).render();
    assert!(table.contains("xfer"));
    assert!(table.contains("write_bw"));
    assert!(table.contains("64k"));
}

#[test]
fn parallel_sweep_is_deterministic_and_equal_to_sequential() {
    let config = JubeConfig::parse(SWEEP).unwrap();
    let sequential = run_sweep(&config, runner).unwrap();
    let parallel = run_sweep_parallel(&config, || runner).unwrap();
    assert_eq!(
        sequential.metric_series(&config, "write_bw"),
        parallel.metric_series(&config, "write_bw"),
        "per-workpackage worlds make parallel runs bit-identical"
    );
}

#[test]
fn corpus_trains_a_useful_predictor() {
    let config = JubeConfig::parse(SWEEP).unwrap();
    let workspace = run_sweep(&config, runner).unwrap();
    let corpus: Vec<Knowledge> = workspace
        .workpackages
        .iter()
        .map(|wp| parse_ior_output(&wp.outputs[0].1).unwrap())
        .collect();
    let refs: Vec<&Knowledge> = corpus.iter().collect();
    let model = train_bandwidth_model(&refs, "write").unwrap();
    assert!(model.samples == 6);
    // A linear model over log2(transfer) cannot capture the saturation
    // knee exactly, but on average it must track the corpus, and its
    // predictions must preserve the ordering (bigger transfers → more
    // bandwidth — what a recommendation would be based on).
    let mut errors = Vec::new();
    let mut predictions = Vec::new();
    for k in &refs {
        let predicted = model.predict(&pattern_features(k));
        let actual = k.summary("write").unwrap().mean_mib;
        errors.push((predicted - actual).abs() / actual);
        predictions.push(predicted);
    }
    let mean_error = iokc_util::stats::mean(&errors);
    assert!(mean_error < 0.35, "mean error {mean_error:.2}");
    for pair in predictions.windows(2) {
        assert!(
            pair[1] > pair[0],
            "predictions must be monotone: {predictions:?}"
        );
    }
}

#[test]
fn workload_generation_closes_the_loop() {
    // Derive a synthetic workload from extracted knowledge, lower it to
    // commands, and run one of them — generated configurations must be
    // executable (§IV, workload generation use case).
    let config = JubeConfig::parse(SWEEP).unwrap();
    let workspace = run_sweep(&config, runner).unwrap();
    let corpus: Vec<Knowledge> = workspace
        .workpackages
        .iter()
        .map(|wp| parse_ior_output(&wp.outputs[0].1).unwrap())
        .collect();
    let refs: Vec<&Knowledge> = corpus.iter().collect();
    let spec = derive_workload(&refs).expect("workload derivable");
    let commands = spec.to_commands("/scratch", 4);
    assert!(!commands.is_empty());
    for command in &commands {
        let parsed = IorConfig::parse_command(command).expect("generated command parses");
        let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 77);
        let result = run_ior(&mut world, JobLayout::new(2, 2), &parsed, 1).unwrap();
        assert!(result.max_bw(iokc_benchmarks::Access::Write) > 0.0);
    }
}

#[test]
fn usage_generated_jube_config_parses_and_runs() {
    // confgen's JUBE output feeds straight back into the sweep engine.
    let sweeps = std::collections::BTreeMap::from([(
        "-t".to_owned(),
        vec!["128k".to_owned(), "256k".to_owned()],
    )]);
    let text = generate_jube_config(
        "generated",
        "ior -a posix -b 512k -t 128k -s 1 -F -i 1 -o /scratch/gj -k -w",
        &sweeps,
    );
    let config = JubeConfig::parse(&text).expect("generated config parses");
    let workspace = run_sweep(&config, runner).unwrap();
    assert_eq!(workspace.workpackages.len(), 2);
}
