//! Chaos suite for the explorer service: a mixed workload driven
//! through the transport fault seam (short reads/writes, resets,
//! stalls, trickles, connection drops at seeded op-indexed points) plus
//! deliberately misbehaving raw-socket clients, checking the
//! server's core robustness invariant end to end:
//!
//! **Every accepted connection ends in exactly one response or one
//! classified, counted error** — no hung workers, no silent drops —
//! graceful shutdown joins within its deadline, the query cache never
//! serves a partially written response, and a request that blows its
//! deadline budget answers `504` with partial-progress counters
//! instead of pinning a worker.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use iokc_benchmarks::ior::{run_ior, IorConfig};
use iokc_core::model::Knowledge;
use iokc_explorerd::{FaultTransport, NetFaultPlan, Server, ServerConfig};
use iokc_extract::parse_ior_output;
use iokc_obs::{Clock, NullSink, Recorder};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::KnowledgeStore;
use iokc_util::json::{self, Json};

/// Deterministic benchmark knowledge, built once per process — the
/// chaos sweeps start many servers and must not re-run the simulator
/// for each one.
fn sample_runs() -> &'static Vec<Knowledge> {
    static RUNS: OnceLock<Vec<Knowledge>> = OnceLock::new();
    RUNS.get_or_init(|| {
        [("16k", 21u64), ("64k", 22), ("512k", 23)]
            .iter()
            .map(|(xfer, seed)| {
                let command = format!(
                    "ior -a posix -b 512k -t {xfer} -s 2 -F -C -e -i 2 -o /scratch/chaos{seed} -k"
                );
                let config = IorConfig::parse_command(&command).expect("valid command");
                let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), *seed);
                let result =
                    run_ior(&mut world, JobLayout::new(4, 2), &config, *seed).expect("sim run");
                parse_ior_output(&result.render()).expect("parseable output")
            })
            .collect()
    })
}

fn populated_store() -> KnowledgeStore {
    let mut store = KnowledgeStore::in_memory();
    for k in sample_runs() {
        store.save_knowledge(k).expect("save");
    }
    store
}

fn start_server(config: ServerConfig) -> Server {
    let recorder = Arc::new(Recorder::new(Clock::wall(), Arc::new(NullSink)));
    Server::start(config, populated_store(), recorder).expect("bind")
}

/// Shut the server down on a watchdog: panics if join exceeds the
/// deadline — a hung worker is exactly what the suite exists to catch.
fn shutdown_within(server: Server, deadline: Duration) {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(deadline)
        .expect("graceful shutdown joined within its deadline");
}

/// Best-effort raw GET with `Connection: close`: returns the complete
/// `(status, body)` when a full, correctly framed response arrived, or
/// `None` when the connection failed anywhere along the way (expected
/// under fault injection — the point is that failures are *clean*).
fn try_get(addr: std::net::SocketAddr, path: &str) -> Option<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .ok()?;
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
    let split = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    let body = &raw[split + 4..];
    let lower = head.to_ascii_lowercase();
    if lower.contains("transfer-encoding: chunked") {
        Some((status, dechunk(body)?))
    } else {
        let expected: usize = lower
            .lines()
            .find_map(|l| l.strip_prefix("content-length:"))?
            .trim()
            .parse()
            .ok()?;
        (body.len() == expected).then(|| (status, body.to_vec()))
    }
}

/// De-chunk, or `None` when the stream was cut mid-chunk (a torn
/// response — the caller treats it as a failed fetch).
fn dechunk(mut body: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let line_end = body.windows(2).position(|w| w == b"\r\n")?;
        let size =
            usize::from_str_radix(String::from_utf8_lossy(&body[..line_end]).trim(), 16).ok()?;
        body = &body[line_end + 2..];
        if size == 0 {
            return Some(out);
        }
        if body.len() < size + 2 {
            return None;
        }
        out.extend_from_slice(&body[..size]);
        body = &body[size + 2..];
    }
}

#[test]
fn seeded_chaos_workload_accounts_for_every_connection() {
    // Several seeds, each scattering two dozen faults (short reads and
    // writes, resets, stalls, trickles, drops) over the first 400
    // socket ops of a mixed workload. After the workload drains, the
    // server's books must balance exactly: every accepted connection
    // ended as a shed, a parsed request, or one classified receive
    // error. Nothing vanishes.
    for seed in [7u64, 99, 20260809] {
        let mut plan = NetFaultPlan::seeded_chaos(seed, 400, 24);
        plan.stall = Duration::from_millis(10);
        let transport = FaultTransport::new(plan);
        let server = start_server(ServerConfig {
            workers: 4,
            queue: 16,
            transport: Arc::new(transport.clone()),
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        let metrics = server.metrics();

        let paths = [
            "/api/runs",
            "/api/runs/1",
            "/healthz",
            "/api/boxplot?op=write",
            "/",
            "/metrics",
        ];
        let clients: Vec<_> = (0..4)
            .map(|n| {
                std::thread::spawn(move || {
                    let mut complete = 0usize;
                    for i in 0..6 {
                        let path = paths[(n + i) % paths.len()];
                        if let Some((status, _)) = try_get(addr, path) {
                            assert!(
                                status == 200 || status >= 400,
                                "seed {seed}: nonsense status {status}"
                            );
                            complete += 1;
                        }
                    }
                    complete
                })
            })
            .collect();
        let completed: usize = clients
            .into_iter()
            .map(|c| c.join().expect("client thread"))
            .sum();

        // Give in-flight handlers (whose clients already gave up) a
        // bounded window to finish, then demand exact accounting.
        let connections = metrics.counter("explorerd.connections");
        let accounted = || {
            metrics.counter("explorerd.shed").get()
                + metrics.counter("explorerd.requests").get()
                + metrics.counter("explorerd.recv.closed").get()
                + metrics.counter("explorerd.recv.timeout").get()
                + metrics.counter("explorerd.recv.too_large").get()
                + metrics.counter("explorerd.recv.malformed").get()
                + metrics.counter("explorerd.recv.io").get()
                + metrics.counter("explorerd.recv.cancelled").get()
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        while accounted() < connections.get() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(
            accounted(),
            connections.get(),
            "seed {seed}: every accepted connection must end in exactly one \
             counted outcome (no silent drops, no hung workers)"
        );
        assert!(
            metrics.counter("explorerd.requests").get() >= completed as u64,
            "seed {seed}: every complete client response came from a parsed request"
        );
        // The injected-fault tally mirrors into the registry counter.
        assert_eq!(
            metrics.counter("explorerd.faults_injected").get(),
            transport.faults_injected(),
            "seed {seed}: fault counter mirrors the transport"
        );

        shutdown_within(server, Duration::from_secs(10));
    }
}

#[test]
fn torn_writes_never_poison_the_cache() {
    // Baseline from a fault-free server: /api/runs over this store is
    // deterministic.
    let baseline = {
        let server = start_server(ServerConfig::default());
        let (status, body) = try_get(server.local_addr(), "/api/runs").expect("clean fetch");
        assert_eq!(status, 200);
        server.shutdown();
        body
    };
    assert!(matches!(
        json::parse(std::str::from_utf8(&baseline).expect("utf-8")).expect("json"),
        Json::Arr(_)
    ));

    // Sweep a torn write across the early op indices. Whatever op the
    // tear lands on — head, first chunk, cache-filling stream — any
    // *complete* 200 response the server ever produces afterwards
    // (including cache hits of the first response) must be
    // byte-identical to the baseline: the cache may only ever hold
    // fully written bodies.
    for op in 0..24u64 {
        let transport = FaultTransport::new(NetFaultPlan::short_write_at(op));
        let server = start_server(ServerConfig {
            transport: Arc::new(transport),
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        let mut complete = 0;
        for _ in 0..5 {
            if let Some((status, body)) = try_get(addr, "/api/runs") {
                assert_eq!(status, 200, "op {op}: /api/runs status");
                assert_eq!(
                    body, baseline,
                    "op {op}: a complete response (cached or fresh) must match the baseline"
                );
                complete += 1;
            }
        }
        assert!(
            complete >= 1,
            "op {op}: a single injected tear cannot block every retry"
        );
        shutdown_within(server, Duration::from_secs(10));
    }
}

#[test]
fn exhausted_deadline_budget_answers_504_with_progress_counters() {
    // A zero budget is expired from birth, so every store-querying
    // endpoint must answer 504 on its first cancellation poll —
    // deterministically, no timing involved — while /healthz and
    // /metrics (no store scans) keep answering 200.
    let server = start_server(ServerConfig {
        request_deadline: Duration::ZERO,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let metrics = server.metrics();

    // The aggregation endpoints must fail the same way: the 504 is
    // decided before the first body byte (the whole response renders
    // from the pinned snapshot before anything is written), so a blown
    // budget never tears a partially-streamed JSON document.
    for path in [
        "/api/runs",
        "/api/boxplot?op=write",
        "/api/compare",
        "/",
        "/api/agg",
        "/api/dist?group=tasks&factor=total_score",
        "/api/corr",
    ] {
        let (status, body) = try_get(addr, path).expect("a clean, fully framed 504");
        assert_eq!(status, 504, "{path} must answer Gateway Timeout");
        if path.starts_with("/api") {
            let parsed = json::parse(std::str::from_utf8(&body).expect("utf-8")).expect("json");
            assert!(
                parsed.get("rows_examined").is_some() && parsed.get("rows_matched").is_some(),
                "{path}: 504 body carries partial-progress counters: {parsed:?}"
            );
        }
    }
    assert_eq!(
        metrics.counter("http.deadline_exceeded").get(),
        7,
        "each deadline miss ticks http.deadline_exceeded"
    );
    assert!(
        metrics.counter("store.query_cancelled").get() >= 4,
        "the store's scans observed the cancellations"
    );
    assert!(
        metrics.counter("store.aggregate.cancelled").get() >= 3,
        "the aggregate engine observed its cancellations"
    );

    let (status, _) = try_get(addr, "/healthz").expect("health is deadline-free");
    assert_eq!(status, 200);
    let (status, _) = try_get(addr, "/metrics").expect("metrics is deadline-free");
    assert_eq!(status, 200);

    // The workers were never pinned: shutdown joins promptly.
    shutdown_within(server, Duration::from_secs(10));
}

#[test]
fn per_peer_cap_and_rate_limit_hold_end_to_end() {
    let server = start_server(ServerConfig {
        workers: 4,
        queue: 16,
        max_per_peer: 2,
        rate_per_peer: 1.0,
        limits: iokc_explorerd::Limits {
            read_deadline: Duration::from_secs(10),
            ..iokc_explorerd::Limits::default()
        },
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Two held connections fill the peer's concurrency cap; the third
    // is refused with 503 at accept time.
    let hold_a = TcpStream::connect(addr).expect("conn 1");
    let hold_b = TcpStream::connect(addr).expect("conn 2");
    std::thread::sleep(Duration::from_millis(100));
    let mut third = TcpStream::connect(addr).expect("conn 3");
    third
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut raw = Vec::new();
    third.read_to_end(&mut raw).expect("shed response");
    assert!(
        String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 503"),
        "peer over its connection cap is shed: {raw:?}"
    );
    assert!(
        server
            .metrics()
            .counter("explorerd.admission.peer_capped")
            .get()
            >= 1
    );
    drop(hold_a);
    drop(hold_b);
    std::thread::sleep(Duration::from_millis(100));

    // Rate limit: burst is 2×rate = 2 tokens, so a rapid third request
    // on one keep-alive connection answers 429 Retry-After — while
    // /healthz stays exempt even with the bucket dry.
    let mut conn = TcpStream::connect(addr).expect("keep-alive conn");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut statuses = Vec::new();
    for _ in 0..3 {
        write!(conn, "GET /api/runs/1 HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        let (status, head) = read_framed(&mut conn);
        statuses.push(status);
        if status == 429 {
            assert!(
                head.contains("Retry-After:"),
                "429 carries a retry hint: {head}"
            );
        }
    }
    assert_eq!(&statuses[..2], &[200, 200], "burst admits two");
    assert_eq!(statuses[2], 429, "the third rapid request is limited");
    write!(conn, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
    let (status, _) = read_framed(&mut conn);
    assert_eq!(status, 200, "health probes bypass the rate limiter");

    shutdown_within(server, Duration::from_secs(10));
}

/// Read one `Content-Length`-framed response off a keep-alive
/// connection; returns `(status, head)`.
fn read_framed(stream: &mut TcpStream) -> (u16, String) {
    let mut raw = Vec::new();
    let mut buf = [0u8; 1024];
    let split = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut buf).expect("head");
        assert!(n > 0, "closed before a full head");
        raw.extend_from_slice(&buf[..n]);
    };
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status")
        .parse()
        .expect("numeric");
    let expected: usize = head
        .to_ascii_lowercase()
        .lines()
        .find_map(|l| {
            l.strip_prefix("content-length:")
                .map(str::trim)
                .map(String::from)
        })
        .expect("framed")
        .parse()
        .expect("numeric length");
    let mut got = raw.len() - split - 4;
    while got < expected {
        let n = stream.read(&mut buf).expect("body");
        assert!(n > 0, "closed mid-body");
        got += n;
    }
    (status, head)
}

#[test]
fn degraded_store_trips_the_breaker_for_expensive_endpoints_only() {
    // An unrecoverably damaged image opens read-only (Degraded). The
    // circuit breaker must fast-fail the expensive fan-out endpoints
    // with 503 while cheap reads and health stay up.
    let dir = std::env::temp_dir().join(format!("iokc-chaos-degraded-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("kb.json");
    std::fs::write(&path, "definitely not a knowledge image").expect("write garbage");
    let store = KnowledgeStore::open_or_degraded(path);
    assert!(store.is_read_only());

    let recorder = Arc::new(Recorder::new(Clock::wall(), Arc::new(NullSink)));
    let server = Server::start(ServerConfig::default(), store, recorder).expect("bind");
    let addr = server.local_addr();

    for path in [
        "/api/compare",
        "/api/boxplot?op=write",
        "/compare",
        "/boxplot",
    ] {
        let (status, _) = try_get(addr, path).expect("clean fast-fail");
        assert_eq!(status, 503, "{path} fast-fails while degraded");
    }
    assert!(
        server
            .metrics()
            .counter("explorerd.breaker.fast_fail")
            .get()
            >= 4,
        "fast-fails are counted"
    );
    let (status, _) = try_get(addr, "/api/runs").expect("cheap read");
    assert_eq!(status, 200, "normal endpoints keep serving");
    let (status, _) = try_get(addr, "/healthz").expect("health");
    assert_eq!(status, 200, "health is always admitted");

    shutdown_within(server, Duration::from_secs(10));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn misbehaving_raw_clients_cannot_hang_the_server() {
    let server = start_server(ServerConfig {
        workers: 2,
        queue: 4,
        limits: iokc_explorerd::Limits {
            read_deadline: Duration::from_millis(300),
            ..iokc_explorerd::Limits::default()
        },
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Six flavours of bad citizenship, all at once.
    let misbehavers: Vec<_> = (0..6)
        .map(|n| {
            std::thread::spawn(move || match n {
                // Connect and say nothing; hold the socket open.
                0 => {
                    let s = TcpStream::connect(addr).ok();
                    std::thread::sleep(Duration::from_millis(600));
                    drop(s);
                }
                // Drip a partial head past the read deadline.
                1 => {
                    if let Ok(mut s) = TcpStream::connect(addr) {
                        for _ in 0..4 {
                            let _ = s.write_all(b"GET /dribble");
                            std::thread::sleep(Duration::from_millis(150));
                        }
                    }
                }
                // Pure garbage.
                2 => {
                    if let Ok(mut s) = TcpStream::connect(addr) {
                        let _ = s.write_all(b"\x00\x01\x02 nonsense \r\n\r\n");
                        std::thread::sleep(Duration::from_millis(100));
                    }
                }
                // Connect and vanish immediately.
                3 => {
                    drop(TcpStream::connect(addr));
                }
                // Valid request, then vanish without reading the reply.
                4 => {
                    if let Ok(mut s) = TcpStream::connect(addr) {
                        let _ = s.write_all(b"GET /api/runs HTTP/1.1\r\nHost: t\r\n\r\n");
                    }
                }
                // An oversized head.
                _ => {
                    if let Ok(mut s) = TcpStream::connect(addr) {
                        let _ = s.write_all(b"GET / HTTP/1.1\r\nX-Fill: ");
                        let _ = s.write_all(&vec![b'a'; 16 * 1024]);
                        std::thread::sleep(Duration::from_millis(100));
                    }
                }
            })
        })
        .collect();
    for m in misbehavers {
        m.join().expect("misbehaver thread");
    }

    // A well-behaved client still gets through (retrying past any
    // transient shed while the workers clear the wreckage).
    let deadline = Instant::now() + Duration::from_secs(5);
    let served = loop {
        match try_get(addr, "/healthz") {
            Some((200, _)) => break true,
            _ if Instant::now() >= deadline => break false,
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    assert!(served, "an honest client is served after the abuse");

    shutdown_within(server, Duration::from_secs(10));
}
