//! The knowledge explorer over a real corpus: viewer rendering,
//! comparison with selectable axes, box-plot overview, SQL access and CSV
//! export (§V-D), all fed by actual simulated runs.

use iokc_analysis::{compare, overview, render_knowledge, MetricAxis, OptionAxis};
use iokc_benchmarks::ior::{run_ior, IorConfig};
use iokc_core::model::{Knowledge, KnowledgeItem};
use iokc_core::phases::{Persister, PhaseKind};
use iokc_core::PhaseCtx;
use iokc_extract::parse_ior_output;
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::{export_csv, sql, KnowledgeStore};

fn knowledge_for(xfer: &str, seed: u64) -> Knowledge {
    let command =
        format!("ior -a posix -b 512k -t {xfer} -s 2 -F -C -e -i 2 -o /scratch/ex{seed} -k");
    let config = IorConfig::parse_command(&command).unwrap();
    let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), seed);
    let result = run_ior(&mut world, JobLayout::new(4, 2), &config, seed).unwrap();
    parse_ior_output(&result.render()).unwrap()
}

#[test]
fn explorer_views_and_comparison() {
    let corpus: Vec<Knowledge> = [("16k", 1u64), ("64k", 2), ("512k", 3)]
        .iter()
        .map(|(x, s)| knowledge_for(x, *s))
        .collect();

    // Viewer renders every run.
    for k in &corpus {
        let view = render_knowledge(k);
        assert!(view.contains(&k.command));
        assert!(view.contains("per-iteration detail:"));
    }

    // Comparison: x = transfer size, y = mean write bandwidth.
    let refs: Vec<&Knowledge> = corpus.iter().collect();
    let points = compare(
        &refs,
        &[],
        OptionAxis::TransferSize,
        &MetricAxis::MeanBandwidth("write".into()),
    );
    assert_eq!(points.len(), 3);
    assert!(
        points[2].y > points[0].y,
        "larger transfers win: {points:?}"
    );

    // Overview box plots.
    let boxes = overview(&refs, "write");
    assert_eq!(boxes.len(), 3);
    for (_, describe) in &boxes {
        assert_eq!(describe.n, 2, "two iterations per run");
        assert!(describe.max >= describe.min);
    }
    // And they render as SVG.
    let svg = iokc_analysis::box_plot(&boxes, &iokc_analysis::ChartOptions::default());
    assert!(svg.starts_with("<svg"));
}

#[test]
fn sql_and_csv_surface_the_knowledge_tables() {
    let mut store = KnowledgeStore::in_memory();
    let mut ctx = PhaseCtx::detached(PhaseKind::Persistence, "knowledge-store");
    for (x, s) in [("16k", 11u64), ("512k", 12)] {
        let k = knowledge_for(x, s);
        store
            .persist(&mut ctx, &[KnowledgeItem::Benchmark(k)])
            .unwrap();
    }

    // SQL over the paper's tables.
    let rows = sql::query(
        store.database(),
        "SELECT * FROM performances WHERE transfer_size >= 524288",
    )
    .unwrap();
    assert_eq!(rows.len(), 1);

    let count = sql::select(store.database(), "SELECT COUNT(*) FROM summaries").unwrap();
    assert_eq!(count, sql::QueryResult::Count(4), "2 runs × write+read");

    let best = sql::query(
        store.database(),
        "SELECT * FROM results ORDER BY bw_mib DESC LIMIT 1",
    )
    .unwrap();
    assert_eq!(best.len(), 1);

    // CSV export round-trips structurally.
    let csv = export_csv(store.database(), "performances").unwrap();
    let parsed = iokc_util::table::parse_csv(&csv);
    assert_eq!(parsed.len(), 3, "header + 2 rows");
    assert_eq!(parsed[0][1], "command");
    assert!(parsed[1][1].contains("ior -a posix"));
}

#[test]
fn filtering_and_sorting_narrow_the_comparison() {
    let corpus: Vec<Knowledge> = [("16k", 21u64), ("64k", 22), ("512k", 23)]
        .iter()
        .map(|(x, s)| knowledge_for(x, *s))
        .collect();
    let refs: Vec<&Knowledge> = corpus.iter().collect();
    let filtered = compare(
        &refs,
        &[iokc_analysis::KnowledgeFilter::CommandContains(
            "64k".into(),
        )],
        OptionAxis::TransferSize,
        &MetricAxis::MaxBandwidth("write".into()),
    );
    assert_eq!(filtered.len(), 1);
    assert_eq!(filtered[0].x, (64u64 << 10) as f64);
}
