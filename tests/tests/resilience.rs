//! Process-level fault harness: the knowledge cycle under injected
//! failures — generator crashes mid-sweep, torn store writes, corrupt
//! Darshan logs, repeatedly failing analyzers — must degrade, retry and
//! recover instead of aborting or silently corrupting knowledge.

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU32, Ordering};

use iokc_benchmarks::{IorConfig, IorGenerator};
use iokc_core::cycle::ModuleBox;
use iokc_core::model::{Knowledge, KnowledgeItem, KnowledgeSource, OperationSummary};
use iokc_core::phases::{
    Analyzer, Artifact, ArtifactKind, CycleError, Finding, Generator, PhaseKind,
};
use iokc_core::resilience::{AttemptOutcome, ResilienceConfig, RetryPolicy};
use iokc_core::{KnowledgeCycle, PhaseCtx};
use iokc_darshan::{encode, LogBuilder, Module};
use iokc_extract::{DarshanExtractor, IorExtractor};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::{CrashSchedule, FaultPlan};
use iokc_sim::prelude::SystemConfig;
use iokc_store::{persist, KnowledgeStore, Query};

fn scratch_dir(tag: &str) -> PathBuf {
    static CASE: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "iokc-resilience-{}-{}-{}",
        std::process::id(),
        tag,
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn ior_generator(crashes: CrashSchedule) -> IorGenerator {
    let config =
        IorConfig::parse_command("ior -a posix -b 1m -t 256k -s 1 -F -i 2 -o /scratch/resil -k")
            .unwrap();
    let world = World::new(SystemConfig::test_small(), FaultPlan::none(), 7);
    let mut generator = IorGenerator::new(world, JobLayout::new(2, 2), config, 7);
    generator.crashes = crashes;
    generator
}

/// Analyzer probe capturing the corpus the analysis phase observed.
struct Probe(Rc<RefCell<Vec<KnowledgeItem>>>);

impl Analyzer for Probe {
    fn name(&self) -> &str {
        "probe"
    }
    fn analyze(
        &self,
        _ctx: &mut PhaseCtx,
        items: &[KnowledgeItem],
    ) -> Result<Vec<Finding>, CycleError> {
        *self.0.borrow_mut() = items.to_vec();
        Ok(Vec::new())
    }
}

/// Analyzer that always fails (transiently), for quarantine tests.
struct FailingAnalyzer;

impl Analyzer for FailingAnalyzer {
    fn name(&self) -> &str {
        "failing-analyzer"
    }
    fn analyze(
        &self,
        _ctx: &mut PhaseCtx,
        _items: &[KnowledgeItem],
    ) -> Result<Vec<Finding>, CycleError> {
        Err(CycleError::transient(
            PhaseKind::Analysis,
            "failing-analyzer",
            "synthetic analysis failure",
        ))
    }
}

/// Generator emitting a Darshan log torn at an arbitrary byte offset.
struct TornDarshanGen {
    keep_fraction: f64,
}

impl Generator for TornDarshanGen {
    fn name(&self) -> &str {
        "torn-darshan-gen"
    }
    fn generate(&mut self, _ctx: &mut PhaseCtx) -> Result<Vec<Artifact>, CycleError> {
        let mut b = LogBuilder::new(99, 8, "app", false);
        b.set_times(5000, 5090);
        for rank in 0..4 {
            let path = format!("/scratch/out.{rank}");
            b.open(Module::Posix, &path, rank, 0.0, 0.1);
            b.transfer(&path, rank, true, 0, 32 << 20, 0.1, 2.1, None);
            b.close(Module::Posix, &path, rank, 2.1, 2.2);
        }
        let bytes = encode(&b.finish());
        let keep = ((bytes.len() as f64) * self.keep_fraction) as usize;
        Ok(vec![Artifact::binary(
            ArtifactKind::DarshanLog,
            "darshan",
            bytes[..keep].to_vec(),
        )])
    }
}

#[test]
fn generator_crash_mid_sweep_is_retried_to_success() {
    let mut cycle = KnowledgeCycle::new();
    cycle.set_resilience(
        ResilienceConfig::new().with_retry(RetryPolicy::with_retries(3).seeded(11)),
    );
    cycle
        .register(ModuleBox::generator(ior_generator(CrashSchedule::first_n(
            2,
        ))))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::persister(KnowledgeStore::in_memory()));

    let report = cycle.run_once().expect("cycle survives the crashes");
    assert!(report.artifacts > 0);
    assert_eq!(report.persisted_ids.len(), 1);

    let gen = report
        .attempts
        .iter()
        .find(|a| a.module == "ior-generator")
        .expect("generator attempt record");
    assert_eq!(gen.attempts, 3, "two crashes then success");
    assert_eq!(gen.outcome, AttemptOutcome::Succeeded);
    assert!(gen.backoff_ms > 0, "virtual backoff was accounted");
    assert!(report.fully_healthy() || !report.degradations.is_empty());
}

#[test]
fn sole_generator_crashing_past_the_budget_is_critical() {
    let mut cycle = KnowledgeCycle::new();
    cycle.set_resilience(ResilienceConfig::new().with_retry(RetryPolicy::with_retries(1)));
    cycle
        .register(ModuleBox::generator(ior_generator(CrashSchedule::first_n(
            10,
        ))))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::persister(KnowledgeStore::in_memory()));

    let err = cycle.run_once().expect_err("sole generator is critical");
    assert_eq!(err.phase, PhaseKind::Generation);
    assert!(err.message.contains("injected crash"));
}

fn sample_knowledge(tag: &str) -> Knowledge {
    let mut k = Knowledge::new(KnowledgeSource::Ior, &format!("ior -o /scratch/{tag}"));
    k.pattern.api = "POSIX".to_owned();
    k.pattern.tasks = 4;
    k.summaries.push(OperationSummary {
        operation: "write".to_owned(),
        api: "POSIX".to_owned(),
        max_mib: 100.0,
        min_mib: 90.0,
        mean_mib: 95.0,
        stddev_mib: 5.0,
        mean_ops: 50.0,
        iterations: 2,
    });
    k
}

#[test]
fn torn_store_write_recovers_the_previous_generation() {
    let dir = scratch_dir("torn");
    let path = dir.join("knowledge.json");

    let mut store = KnowledgeStore::open(path.clone()).unwrap();
    store.save_knowledge(&sample_knowledge("gen1")).unwrap();
    store.save_knowledge(&sample_knowledge("gen2")).unwrap();
    drop(store);

    // Crash mid-write: the manifest document is torn.
    let len = std::fs::metadata(&path).unwrap().len();
    persist::inject_torn_write(&path, len / 2).unwrap();

    let store = KnowledgeStore::open(path).unwrap();
    assert!(store.recovery().recovered_from_backup);
    assert!(store
        .recovery()
        .primary_error
        .as_deref()
        .is_some_and(|e| !e.is_empty()));
    // In the segmented layout the runs live in the *active image*, not
    // the manifest, so recovering the manifest from its backup loses no
    // acknowledged data: both saves survive the torn write.
    let items = store.query_items(&Query::all()).unwrap();
    assert_eq!(items.len(), 2);
    let commands: Vec<&str> = items
        .iter()
        .map(|item| {
            let KnowledgeItem::Benchmark(k) = item else {
                panic!("wrong kind")
            };
            k.command.as_str()
        })
        .collect();
    assert!(commands.iter().any(|c| c.ends_with("gen1")));
    assert!(commands.iter().any(|c| c.ends_with("gen2")));

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn corrupt_darshan_log_degrades_to_partial_knowledge() {
    let corpus = Rc::new(RefCell::new(Vec::new()));
    let mut cycle = KnowledgeCycle::new();
    cycle
        .register(ModuleBox::generator(TornDarshanGen { keep_fraction: 0.6 }))
        .register(ModuleBox::extractor(DarshanExtractor))
        .register(ModuleBox::persister(KnowledgeStore::in_memory()))
        .register(ModuleBox::analyzer(Probe(Rc::clone(&corpus))));

    let report = cycle.run_once().expect("cycle survives the corrupt log");
    assert_eq!(report.extracted, 1);

    let corpus = corpus.borrow();
    let KnowledgeItem::Benchmark(k) = &corpus[0] else {
        panic!("wrong kind")
    };
    assert!(k.is_partial(), "warnings: {:?}", k.warnings);
    assert!(k.warnings.iter().any(|w| w.contains("decoded partially")));
    // The job header survived.
    assert_eq!(k.pattern.tasks, 8);
    assert_eq!(k.start_time, 5000);
}

#[test]
fn repeatedly_failing_analyzer_is_quarantined_not_fatal() {
    let mut cycle = KnowledgeCycle::new();
    cycle.set_resilience(ResilienceConfig::new().with_quarantine_threshold(2));
    cycle
        .register(ModuleBox::generator(ior_generator(CrashSchedule::none())))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::persister(KnowledgeStore::in_memory()))
        .register(ModuleBox::analyzer(FailingAnalyzer));

    // Two failing iterations trip the threshold …
    let r1 = cycle.run_once().unwrap();
    assert!(r1
        .degradations
        .iter()
        .any(|d| d.1.contains("failing-analyzer")));
    let r2 = cycle.run_once().unwrap();
    assert!(r2
        .findings
        .iter()
        .any(|f| f.tag == "quarantine" && f.message.contains("failing-analyzer")));

    // … and the third iteration skips the module with a recorded finding.
    let r3 = cycle.run_once().unwrap();
    assert!(r3
        .quarantined
        .iter()
        .any(|(p, m)| *p == PhaseKind::Analysis && m == "failing-analyzer"));
    let skip = r3
        .attempts
        .iter()
        .find(|a| a.module == "failing-analyzer")
        .unwrap();
    assert_eq!(skip.outcome, AttemptOutcome::Skipped);
    assert_eq!(skip.attempts, 0);

    // Lifting the quarantine re-invokes the module.
    cycle.release_quarantine(PhaseKind::Analysis, "failing-analyzer");
    let r4 = cycle.run_once().unwrap();
    let rec = r4
        .attempts
        .iter()
        .find(|a| a.module == "failing-analyzer")
        .unwrap();
    assert!(rec.attempts > 0);
}

#[test]
fn retry_accounting_is_deterministic_end_to_end() {
    let run = || {
        let mut cycle = KnowledgeCycle::new();
        cycle.set_resilience(
            ResilienceConfig::new().with_retry(RetryPolicy::with_retries(4).seeded(23)),
        );
        cycle
            .register(ModuleBox::generator(ior_generator(
                CrashSchedule::at_attempts(&[0, 1, 2]),
            )))
            .register(ModuleBox::extractor(IorExtractor))
            .register(ModuleBox::persister(KnowledgeStore::in_memory()));
        cycle.run_once().unwrap().attempts
    };
    let first = run();
    assert_eq!(first, run(), "identical seeds give identical schedules");
    let gen = first.iter().find(|a| a.module == "ior-generator").unwrap();
    assert_eq!(gen.attempts, 4, "three crashes, then success on attempt 4");
}
