//! X2 — HACC-IO checkpoint/restart (§V-A): the three file modes and two
//! APIs execute, the canonical ordering holds, and the extractor reads
//! the native output.

use iokc_benchmarks::hacc::{run_hacc, FileMode, HaccConfig};
use iokc_extract::parse_hacc_output;
use iokc_sim::api::IoApi;
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;

fn bw(mode: FileMode, api: IoApi, seed: u64) -> (f64, f64, usize) {
    let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), seed);
    let config = HaccConfig::new(200_000, mode, api, "/scratch/hacc");
    let result = run_hacc(&mut world, JobLayout::new(4, 2), &config).unwrap();
    (
        result.checkpoint_bw_mib,
        result.restart_bw_mib,
        world.namespace().file_count(),
    )
}

#[test]
fn all_modes_and_apis_execute() {
    for api in [IoApi::Posix, IoApi::MpiIo { collective: false }] {
        for (mode, expected_files) in [
            (FileMode::SingleSharedFile, 1usize),
            (FileMode::FilePerProcess, 4),
            (FileMode::FilePerGroup { group_size: 2 }, 2),
        ] {
            let (ckpt, restart, files) = bw(mode, api, 51);
            assert!(ckpt > 0.0, "{mode:?}/{api:?} checkpoint");
            assert!(restart > 0.0, "{mode:?}/{api:?} restart");
            assert_eq!(files, expected_files, "{mode:?} file count");
        }
    }
}

#[test]
fn file_per_process_beats_shared_file() {
    let (ssf, _, _) = bw(FileMode::SingleSharedFile, IoApi::Posix, 52);
    let (fpp, _, _) = bw(FileMode::FilePerProcess, IoApi::Posix, 52);
    assert!(
        fpp >= ssf * 0.95,
        "file-per-process ({fpp}) must not trail single-shared-file ({ssf})"
    );
}

#[test]
fn output_parses_into_knowledge() {
    let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 53);
    let config = HaccConfig::new(
        100_000,
        FileMode::FilePerGroup { group_size: 2 },
        IoApi::MpiIo { collective: false },
        "/scratch/haccp",
    );
    let result = run_hacc(&mut world, JobLayout::new(4, 2), &config).unwrap();
    let knowledge = parse_hacc_output(&result.render()).unwrap();
    assert_eq!(knowledge.pattern.api, "MPIIO");
    assert_eq!(knowledge.pattern.tasks, 4);
    assert_eq!(knowledge.pattern.block_size, 100_000 * 38);
    let ckpt = knowledge.summary("checkpoint").unwrap().mean_mib;
    assert!((ckpt - result.checkpoint_bw_mib).abs() < 0.01);
}
