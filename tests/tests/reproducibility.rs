//! The paper's reproducibility requirement (§III: generation must happen
//! "in a verified environment so that the knowledge is reproducible"),
//! verified end to end: the same seed produces byte-identical knowledge
//! through the whole pipeline — simulation, native output text,
//! extraction, JSON serialization.

use iokc_benchmarks::ior::{run_ior, IorConfig};
use iokc_extract::parse_ior_output;
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;

fn pipeline(seed: u64) -> (String, String) {
    let mut world = World::new(
        SystemConfig::test_small().with_noise(0.15),
        FaultPlan::none(),
        seed,
    );
    let config = IorConfig::parse_command(
        "ior -a mpiio -b 1m -t 256k -s 2 -F -C -e -i 3 -o /scratch/repro -k",
    )
    .unwrap();
    let result = run_ior(&mut world, JobLayout::new(4, 2), &config, seed).unwrap();
    let output = result.render();
    let knowledge = parse_ior_output(&output).unwrap();
    (output, knowledge.to_json().to_compact())
}

#[test]
fn same_seed_yields_byte_identical_knowledge() {
    let (output_a, json_a) = pipeline(12345);
    let (output_b, json_b) = pipeline(12345);
    assert_eq!(
        output_a, output_b,
        "benchmark output must be byte-identical"
    );
    assert_eq!(json_a, json_b, "knowledge JSON must be byte-identical");
}

#[test]
fn different_seeds_yield_different_measurements() {
    // Under noise, different seeds must actually differ — otherwise the
    // reproducibility test above would be vacuous.
    let (_, json_a) = pipeline(1);
    let (_, json_b) = pipeline(2);
    assert_ne!(json_a, json_b);
}

#[test]
fn knowledge_survives_json_interchange_bit_exactly() {
    let (_, json) = pipeline(777);
    let parsed = iokc_util::json::parse(&json).unwrap();
    let knowledge = iokc_core::model::Knowledge::from_json(&parsed).unwrap();
    assert_eq!(knowledge.to_json().to_compact(), json);
}
