//! The embedded knowledge-explorer service end to end: a real
//! `TcpListener` on an ephemeral port serving a sim-populated store to
//! concurrent raw-socket clients, plus the failure paths (malformed
//! heads, oversized heads, slow-loris, load shedding) and the
//! cache-invalidation protocol.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use iokc_benchmarks::ior::{run_ior, IorConfig};
use iokc_core::model::{Io500Knowledge, Io500Testcase, Knowledge};
use iokc_explorerd::{Limits, Server, ServerConfig};
use iokc_extract::parse_ior_output;
use iokc_obs::{Clock, NullSink, Recorder};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::KnowledgeStore;
use iokc_util::json::{self, Json};

fn knowledge_for(xfer: &str, seed: u64) -> Knowledge {
    let command =
        format!("ior -a posix -b 512k -t {xfer} -s 2 -F -C -e -i 2 -o /scratch/ed{seed} -k");
    let config = IorConfig::parse_command(&command).unwrap();
    let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), seed);
    let result = run_ior(&mut world, JobLayout::new(4, 2), &config, seed).unwrap();
    parse_ior_output(&result.render()).unwrap()
}

fn sample_io500() -> Io500Knowledge {
    Io500Knowledge {
        id: None,
        tasks: 8,
        bw_score: 0.8125,
        md_score: 12.5,
        total_score: 3.19,
        testcases: vec![Io500Testcase {
            name: "ior-easy-write".into(),
            value: 2.5,
            unit: "GiB/s".into(),
            time_s: 31.0,
        }],
        options: std::collections::BTreeMap::new(),
        system: None,
        start_time: 0,
        warnings: Vec::new(),
    }
}

/// A store with three benchmark runs and one IO500 run.
fn populated_store() -> KnowledgeStore {
    let mut store = KnowledgeStore::in_memory();
    for (xfer, seed) in [("16k", 21u64), ("64k", 22), ("512k", 23)] {
        store.save_knowledge(&knowledge_for(xfer, seed)).unwrap();
    }
    store.save_io500(&sample_io500()).unwrap();
    store
}

fn start_server(config: ServerConfig) -> Server {
    let recorder = Arc::new(Recorder::new(Clock::wall(), Arc::new(NullSink)));
    Server::start(config, populated_store(), recorder).unwrap()
}

/// Minimal HTTP client: one request, `Connection: close`, de-chunks the
/// body. Returns `(status, body)`.
fn get(addr: std::net::SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    read_response(&mut stream)
}

fn read_response(stream: &mut TcpStream) -> (u16, Vec<u8>) {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // A reset after the response bytes (the server closes hard
            // on rejected requests) still counts as end-of-response.
            Err(_) => break,
        }
    }
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = &raw[split + 4..];
    if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        (status, dechunk(body))
    } else {
        (status, body.to_vec())
    }
}

fn dechunk(mut body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let line_end = body
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size = usize::from_str_radix(String::from_utf8_lossy(&body[..line_end]).trim(), 16)
            .expect("hex chunk size");
        body = &body[line_end + 2..];
        if size == 0 {
            return out;
        }
        out.extend_from_slice(&body[..size]);
        body = &body[size + 2..];
    }
}

fn parse_json(body: &[u8]) -> Json {
    json::parse(std::str::from_utf8(body).expect("utf-8 body")).expect("valid JSON")
}

#[test]
fn all_endpoint_families_answer_under_concurrent_load() {
    let server = start_server(ServerConfig {
        workers: 4,
        queue: 32,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Eight concurrent clients, each walking every endpoint family.
    let clients: Vec<_> = (0..8)
        .map(|n| {
            std::thread::spawn(move || {
                let (status, body) = get(addr, "/api/runs?sort=bw&order=desc");
                assert_eq!(status, 200, "client {n}: /api/runs");
                let runs = parse_json(&body);
                match &runs {
                    Json::Arr(rows) => assert!(rows.len() >= 4, "3 benchmarks + 1 io500"),
                    other => panic!("client {n}: /api/runs not an array: {other:?}"),
                }

                let (status, body) = get(addr, "/api/runs/1");
                assert_eq!(status, 200, "client {n}: /api/runs/1");
                let run = parse_json(&body);
                assert!(matches!(run, Json::Obj(_)), "client {n}: run detail");

                // IO500 knowledge has its own id namespace (rowid of
                // its own table), so the single run is id 1.
                let (status, body) = get(addr, "/api/io500/1");
                assert_eq!(status, 200, "client {n}: /api/io500/1");
                parse_json(&body);

                let (status, body) = get(addr, "/api/compare?x=transfer_size&y=mean_bw&op=write");
                assert_eq!(status, 200, "client {n}: /api/compare");
                match parse_json(&body) {
                    Json::Obj(map) => {
                        assert!(map.contains_key("points"));
                        assert!(map.contains_key("x_label"));
                    }
                    other => panic!("client {n}: compare not an object: {other:?}"),
                }

                let (status, body) = get(addr, "/api/boxplot?op=write");
                assert_eq!(status, 200, "client {n}: /api/boxplot");
                parse_json(&body);

                let (status, body) = get(addr, "/metrics");
                assert_eq!(status, 200, "client {n}: /metrics");
                parse_json(&body);

                let (status, body) = get(addr, "/");
                assert_eq!(status, 200, "client {n}: index page");
                assert!(body.starts_with(b"<!DOCTYPE html>"), "client {n}: html");

                let (status, body) = get(addr, "/runs/1");
                assert_eq!(status, 200, "client {n}: /runs/1");
                assert!(
                    String::from_utf8_lossy(&body).contains("<svg"),
                    "client {n}: run page embeds a chart"
                );
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread panicked");
    }

    // Unknown ids and routes 404; non-GET methods 405.
    let (status, _) = get(addr, "/api/runs/999");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/api/nope");
    assert_eq!(status, 404);
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "POST / HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 405);

    server.shutdown();
}

#[test]
fn malformed_and_oversized_heads_get_400() {
    let server = start_server(ServerConfig::default());
    let addr = server.local_addr();

    // Garbage that is not an HTTP request line.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"NOT-HTTP nonsense\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 400, "garbage request line");

    // A head larger than the limit.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET / HTTP/1.1\r\nX-Filler: ").unwrap();
    stream.write_all(&vec![b'a'; 16 * 1024]).unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 400, "oversized head");

    // Request bodies are rejected before any body byte is read.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET / HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 400, "request body");

    server.shutdown();
}

#[test]
fn slow_loris_is_cut_off_at_the_read_deadline() {
    let server = start_server(ServerConfig {
        limits: Limits {
            read_deadline: Duration::from_millis(300),
            ..Limits::default()
        },
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Drip-feed a never-finished head past the deadline.
    for _ in 0..4 {
        stream.write_all(b"GET /slow").unwrap();
        std::thread::sleep(Duration::from_millis(120));
    }
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 408, "slow-loris hits the read deadline");

    server.shutdown();
}

#[test]
fn full_server_sheds_load_with_503_retry_after() {
    // A hard cap of two open connections: idle keep-alives no longer
    // pin workers under the reactor, so the cap is what bounds
    // concurrent sockets. The third connection must be shed with 503.
    let server = start_server(ServerConfig {
        max_conns: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Two idle connections occupy the cap.
    let hold_a = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let hold_b = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // The third is answered 503 with Retry-After straight away.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let head = String::from_utf8_lossy(&raw);
    assert!(head.starts_with("HTTP/1.1 503"), "shed response: {head}");
    assert!(head.contains("Retry-After:"), "retry hint: {head}");
    assert!(server
        .metrics()
        .to_json()
        .to_compact()
        .contains("explorerd.shed"));

    drop(hold_a);
    drop(hold_b);
    server.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_reaped_by_the_reactor() {
    let server = start_server(ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Serve one request, then let the connection idle past the timeout.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let (status, _) = read_framed(&mut stream);
    assert_eq!(status, 200);
    std::thread::sleep(Duration::from_millis(600));

    // The reactor reaped the idle connection with a clean close: a
    // pipelined second request gets EOF, not a response.
    write!(stream, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut rest = Vec::new();
    let n = stream.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "reaped connection closes cleanly, no bytes: {rest:?}");

    // The eviction is observable: `explorerd.recv.timeout` ticked.
    let metrics = server.metrics().to_json().to_compact();
    assert!(
        metrics.contains("\"explorerd.recv.timeout\":1"),
        "idle reap ticks recv.timeout: {metrics}"
    );

    server.shutdown();
}

/// Read one `Content-Length`-framed response off a keep-alive stream
/// without waiting for EOF.
fn read_framed(stream: &mut TcpStream) -> (u16, Vec<u8>) {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(split) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&raw[..split]).to_string();
            let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
            let content_length: usize = head
                .lines()
                .find(|l| l.to_ascii_lowercase().starts_with("content-length:"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().parse().unwrap())
                .unwrap_or(0);
            let mut body = raw[split + 4..].to_vec();
            while body.len() < content_length {
                let n = stream.read(&mut buf).unwrap();
                assert!(n > 0, "connection closed mid-body");
                body.extend_from_slice(&buf[..n]);
            }
            return (status, body);
        }
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "connection closed before a full head");
        raw.extend_from_slice(&buf[..n]);
    }
}

/// The full conditional-GET cycle: a 200 carries a strong ETag, a
/// request presenting it gets a body-less 304, a store write bumps the
/// generation so the same validator yields a fresh 200 with a new tag.
#[test]
fn etag_round_trip_revalidates_until_a_store_write() {
    let server = start_server(ServerConfig::default());
    let addr = server.local_addr();

    let get_with = |if_none_match: Option<&str>| -> (u16, Vec<u8>, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let conditional = if_none_match
            .map(|tag| format!("If-None-Match: {tag}\r\n"))
            .unwrap_or_default();
        write!(
            stream,
            "GET /api/runs HTTP/1.1\r\nHost: t\r\n{conditional}Connection: close\r\n\r\n"
        )
        .unwrap();
        let mut raw = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        let split = raw.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
        let head = String::from_utf8_lossy(&raw[..split]).to_string();
        let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
        let etag = head
            .lines()
            .find(|l| l.to_ascii_lowercase().starts_with("etag:"))
            .map(|l| l[5..].trim().to_owned())
            .unwrap_or_default();
        let body = raw[split + 4..].to_vec();
        let body = if head
            .to_ascii_lowercase()
            .contains("transfer-encoding: chunked")
        {
            dechunk(&body)
        } else {
            body
        };
        (status, body, etag)
    };

    // Cold: 200 with a strong validator.
    let (status, body, tag) = get_with(None);
    assert_eq!(status, 200);
    assert!(!body.is_empty());
    assert!(
        tag.starts_with("\"g") && tag.ends_with('"'),
        "strong etag: {tag}"
    );

    // Revalidation: 304, no body, and the counter ticks.
    let (status, body_304, _) = get_with(Some(&tag));
    assert_eq!(status, 304, "matching validator revalidates");
    assert!(body_304.is_empty(), "304 carries no body");
    assert_eq!(server.cache_stats().not_modified, 1);

    // A store write bumps the generation: the old validator is stale.
    {
        let store = server.store();
        let mut store = store.write().unwrap();
        store.save_knowledge(&knowledge_for("32k", 78)).unwrap();
    }
    let (status, body_fresh, new_tag) = get_with(Some(&tag));
    assert_eq!(status, 200, "stale validator re-renders");
    assert!(body_fresh.len() > body.len(), "new run is in the listing");
    assert_ne!(new_tag, tag, "generation bump changes the validator");

    server.shutdown();
}

#[test]
fn cache_hits_rise_on_repeats_and_reset_after_a_store_write() {
    let server = start_server(ServerConfig::default());
    let addr = server.local_addr();

    // Cold: miss. Repeats: hits.
    let (status, first) = get(addr, "/api/runs/1");
    assert_eq!(status, 200);
    for _ in 0..3 {
        let (status, body) = get(addr, "/api/runs/1");
        assert_eq!(status, 200);
        assert_eq!(body, first, "cached body is byte-identical");
    }
    let warm = server.cache_stats();
    assert!(warm.hits >= 3, "repeats hit the cache: {warm:?}");
    assert!(warm.entries >= 1);

    // A write through the shared store bumps the generation …
    {
        let store = server.store();
        let mut store = store.write().unwrap();
        store.save_knowledge(&knowledge_for("32k", 77)).unwrap();
    }
    // … so the next request invalidates the cache and misses.
    let (status, _) = get(addr, "/api/runs/1");
    assert_eq!(status, 200);
    let cold = server.cache_stats();
    assert!(cold.invalidations > warm.invalidations, "{cold:?}");
    assert!(cold.misses > warm.misses, "post-write request is a miss");
    // The new run is actually visible.
    let (_, body) = get(addr, "/api/runs");
    match parse_json(&body) {
        Json::Arr(rows) => assert_eq!(rows.len(), 5, "3 + io500 + the new run"),
        other => panic!("not an array: {other:?}"),
    }

    server.shutdown();
}

/// The corpus-analytics endpoints under live ingest: every response
/// renders from one pinned snapshot, so its numbers must be internally
/// consistent (histogram mass equals group counts, counts sum to the
/// aggregated row total) no matter how many writes land mid-render, and
/// the visible corpus only ever grows.
#[test]
fn distribution_and_correlation_endpoints_stay_consistent_under_ingest() {
    let server = start_server(ServerConfig::default());
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        let store = server.store();
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let mut k = sample_io500();
                k.tasks = [4u32, 8, 16][(n % 3) as usize];
                k.bw_score = 0.5 + 0.1 * (n % 7) as f64;
                k.md_score = 8.0 + 0.5 * (n % 5) as f64;
                k.total_score = (k.bw_score * k.md_score).sqrt();
                store.write().unwrap().save_io500(&k).unwrap();
                n += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let mut last_rows = 0u64;
    for round in 0..12 {
        let (status, body) = get(addr, "/api/dist?group=tasks&factor=total_score&kind=io500");
        assert_eq!(status, 200, "round {round}: /api/dist");
        let dist = parse_json(&body);
        let rows = dist.get("rows_aggregated").unwrap().as_u64().unwrap();
        assert!(
            rows >= last_rows,
            "round {round}: the corpus only grows ({rows} < {last_rows})"
        );
        last_rows = rows;
        let groups = dist.get("groups").unwrap().as_arr().unwrap();
        let mut counted = 0u64;
        for group in groups {
            let count = group.get("count").unwrap().as_u64().unwrap();
            let mass: u64 = group
                .get("histogram")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .map(|bin| bin.get("count").unwrap().as_u64().unwrap())
                .sum();
            assert_eq!(
                mass, count,
                "round {round}: histogram mass equals the group count \
                 (a torn snapshot would break this)"
            );
            counted += count;
        }
        assert_eq!(
            counted, rows,
            "round {round}: groups partition the aggregated rows"
        );

        let (status, body) = get(addr, "/api/corr?correlate=bw_score,md_score,total_score");
        assert_eq!(status, 200, "round {round}: /api/corr");
        let corr = parse_json(&body);
        let matrix = corr
            .get("correlation")
            .unwrap()
            .get("matrix")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(matrix.len(), 3);
        for (i, row) in matrix.iter().enumerate() {
            let row = row.as_arr().unwrap();
            assert_eq!(row.len(), 3);
            for (j, cell) in row.iter().enumerate() {
                let r = cell.as_f64().unwrap();
                assert!(
                    (-1.0..=1.0).contains(&r),
                    "round {round}: r[{i}][{j}] = {r}"
                );
                let mirrored = matrix[j].as_arr().unwrap()[i].as_f64().unwrap();
                assert!(
                    (r - mirrored).abs() < 1e-9,
                    "round {round}: the matrix is symmetric"
                );
            }
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().expect("writer thread");

    // Quiesced: enough varied rows exist that every factor has spread,
    // so the diagonal is exactly 1, and the HTML twins render charts
    // from the same pushdown.
    let (status, body) = get(addr, "/api/corr?correlate=bw_score,md_score,total_score");
    assert_eq!(status, 200);
    let corr = parse_json(&body);
    let matrix = corr
        .get("correlation")
        .unwrap()
        .get("matrix")
        .unwrap()
        .as_arr()
        .unwrap();
    for (i, row) in matrix.iter().enumerate() {
        let r = row.as_arr().unwrap()[i].as_f64().unwrap();
        assert!((r - 1.0).abs() < 1e-9, "diag r[{i}][{i}] = {r}");
    }
    let (status, body) = get(addr, "/dist?group=tasks&factor=total_score&kind=io500");
    assert_eq!(status, 200);
    assert!(
        String::from_utf8_lossy(&body).contains("<svg"),
        "/dist chart"
    );
    let (status, body) = get(addr, "/corr");
    assert_eq!(status, 200);
    assert!(
        String::from_utf8_lossy(&body).contains("<svg"),
        "/corr chart"
    );
    let (status, body) = get(addr, "/api/agg?group=kind&factor=tasks");
    assert_eq!(status, 200);
    let agg = parse_json(&body);
    assert!(agg.get("groups").unwrap().as_arr().unwrap().len() >= 2);

    server.shutdown();
}

#[test]
fn graceful_shutdown_joins_every_thread_with_clients_attached() {
    let server = start_server(ServerConfig {
        workers: 2,
        queue: 4,
        limits: Limits {
            read_deadline: Duration::from_secs(30),
            ..Limits::default()
        },
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Park two idle keep-alive connections on the workers, then shut
    // down: handlers must notice the cancel token at their next read
    // slice rather than waiting out the 30 s deadline.
    let idle_a = TcpStream::connect(addr).unwrap();
    let idle_b = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("shutdown drained and joined without hanging");
    drop(idle_a);
    drop(idle_b);
}

#[test]
fn duplicate_sort_keys_paginate_deterministically() {
    // Four runs sharing one bandwidth value: without the engine's id
    // tie-break, `sort=bw` order (and therefore every `limit`ed page)
    // would depend on incidental iteration order.
    let mut store = KnowledgeStore::in_memory();
    let k = knowledge_for("64k", 91);
    for _ in 0..4 {
        store.save_knowledge(&k).unwrap();
    }
    let recorder = Arc::new(Recorder::new(Clock::wall(), Arc::new(NullSink)));
    let server = Server::start(ServerConfig::default(), store, recorder).unwrap();
    let addr = server.local_addr();

    let ids_of = |body: &[u8]| -> Vec<u64> {
        match parse_json(body) {
            Json::Arr(rows) => rows
                .iter()
                .map(|row| match row {
                    Json::Obj(map) => match map.get("id") {
                        Some(Json::Num(id)) => *id as u64,
                        other => panic!("bad id: {other:?}"),
                    },
                    other => panic!("not an object: {other:?}"),
                })
                .collect(),
            other => panic!("not an array: {other:?}"),
        }
    };

    let (status, body) = get(addr, "/api/runs?sort=bw&order=desc");
    assert_eq!(status, 200);
    let full = ids_of(&body);
    assert_eq!(full, vec![1, 2, 3, 4], "equal keys fall back to id order");

    // Requests repeat identically, and limit/offset pages partition the
    // same total order.
    let (_, body) = get(addr, "/api/runs?sort=bw&order=desc");
    assert_eq!(ids_of(&body), full);
    let (_, page1) = get(addr, "/api/runs?sort=bw&order=desc&limit=2");
    let (_, page2) = get(addr, "/api/runs?sort=bw&order=desc&limit=2&offset=2");
    let mut joined = ids_of(&page1);
    joined.extend(ids_of(&page2));
    assert_eq!(joined, full, "pages partition the duplicate-key order");

    server.shutdown();
}

#[test]
fn healthz_reports_a_healthy_store() {
    let server = start_server(ServerConfig::default());
    let (status, body) = get(server.local_addr(), "/healthz");
    assert_eq!(status, 200);
    let health = parse_json(&body);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert!(matches!(health.get("read_only"), Some(Json::Bool(false))));

    // /metrics mirrors the health as a one-hot gauge set, so a scraper
    // needs only one endpoint.
    let (status, body) = get(server.local_addr(), "/metrics");
    assert_eq!(status, 200);
    let gauges = parse_json(&body).get("gauges").cloned().expect("gauges");
    assert!(matches!(gauges.get("store.health.ok"), Some(Json::Num(n)) if *n == 1.0));
    assert!(matches!(gauges.get("store.health.degraded"), Some(Json::Num(n)) if *n == 0.0));
    assert!(matches!(gauges.get("store.read_only"), Some(Json::Num(n)) if *n == 0.0));
    server.shutdown();
}

/// Read exactly one response from a keep-alive connection: head up to
/// `\r\n\r\n`, then `Content-Length` body bytes — without waiting for
/// EOF, so the connection stays usable. Returns `(status, head, body)`.
fn read_keep_alive_response(stream: &mut TcpStream) -> (u16, String, Vec<u8>) {
    let mut raw = Vec::new();
    let mut buf = [0u8; 1024];
    let split = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut buf).expect("response head");
        assert!(n > 0, "connection closed before a full head");
        raw.extend_from_slice(&buf[..n]);
    };
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .to_ascii_lowercase()
        .lines()
        .find_map(|l| {
            l.strip_prefix("content-length:")
                .map(str::trim)
                .map(String::from)
        })
        .expect("keep-alive responses carry Content-Length")
        .parse()
        .expect("numeric Content-Length");
    let mut body = raw[split + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf).expect("response body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&buf[..n]);
    }
    assert_eq!(
        body.len(),
        content_length,
        "no trailing bytes past the body"
    );
    (status, head, body)
}

#[test]
fn keep_alive_connection_survives_error_responses() {
    // Regression: a 404 or a bad-query 400 must leave the connection in
    // a parseable state — correctly framed with Content-Length and the
    // connection held open — so the next request on the same socket
    // still works.
    let server = start_server(ServerConfig::default());
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    write!(stream, "GET /api/nope HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let (status, head, _) = read_keep_alive_response(&mut stream);
    assert_eq!(status, 404);
    assert!(
        head.to_ascii_lowercase().contains("connection: keep-alive"),
        "404 keeps the connection: {head}"
    );

    write!(
        stream,
        "GET /api/runs?sort=bogus HTTP/1.1\r\nHost: t\r\n\r\n"
    )
    .unwrap();
    let (status, head, _) = read_keep_alive_response(&mut stream);
    assert_eq!(status, 400, "bad query on a parsed request");
    assert!(
        head.to_ascii_lowercase().contains("connection: keep-alive"),
        "bad-query 400 keeps the connection: {head}"
    );

    // The same socket still serves a normal request afterwards.
    write!(stream, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let (status, _, body) = read_keep_alive_response(&mut stream);
    assert_eq!(status, 200, "connection survived both error responses");
    parse_json(&body);

    server.shutdown();
}

#[test]
fn parse_level_errors_close_the_connection_explicitly() {
    // Regression, the other path: when the request *head itself* cannot
    // be parsed, the framing is unrecoverable — the server must say
    // `Connection: close` and actually close, never leave a half-read
    // socket pretending to be reusable.
    let server = start_server(ServerConfig::default());
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"NOT-HTTP nonsense\r\n\r\n").unwrap();
    let (status, head, _) = read_keep_alive_response(&mut stream);
    assert_eq!(status, 400);
    assert!(
        head.to_ascii_lowercase().contains("connection: close"),
        "parse-level 400 declares the close: {head}"
    );
    // And the server really does close: the next read is EOF.
    let mut buf = [0u8; 64];
    assert_eq!(
        stream.read(&mut buf).expect("clean EOF after close"),
        0,
        "connection is closed after a parse-level 400"
    );

    server.shutdown();
}

#[test]
fn degraded_store_serves_reads_and_healthz_says_so() {
    // An unrecoverably damaged image (garbage primary, no backup) must
    // not keep the explorer down: the store opens read-only over the
    // empty schema and /healthz reports the degradation while the read
    // endpoints keep answering.
    let dir = std::env::temp_dir().join(format!("iokc-degraded-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("kb.json");
    std::fs::write(&path, "this is not a knowledge image").unwrap();

    let store = KnowledgeStore::open_or_degraded(path);
    assert!(store.is_read_only());
    let recorder = Arc::new(Recorder::new(Clock::wall(), Arc::new(NullSink)));
    let server = Server::start(ServerConfig::default(), store, recorder).unwrap();
    let addr = server.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "degraded store still answers health probes");
    let health = parse_json(&body);
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("degraded")
    );
    assert!(matches!(health.get("read_only"), Some(Json::Bool(true))));
    assert!(
        health.get("detail").and_then(Json::as_str).is_some(),
        "degradation carries a structured reason"
    );

    let (status, body) = get(addr, "/api/runs");
    assert_eq!(status, 200, "reads keep working over the empty schema");
    assert!(matches!(parse_json(&body), Json::Arr(rows) if rows.is_empty()));

    // The degradation surfaces in the schema-1 metrics dump.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let metrics = parse_json(&body);
    let counters = metrics.get("counters").expect("schema-1 counters");
    assert!(matches!(
        counters.get("store.open_degraded"),
        Some(Json::Num(n)) if *n == 1.0
    ));
    assert!(counters.get("store.faults_injected").is_some());
    assert!(counters.get("store.fsck_repairs").is_some());
    let gauges = metrics.get("gauges").expect("schema-1 gauges");
    assert!(matches!(gauges.get("store.health.degraded"), Some(Json::Num(n)) if *n == 1.0));
    assert!(matches!(gauges.get("store.health.ok"), Some(Json::Num(n)) if *n == 0.0));
    assert!(matches!(gauges.get("store.read_only"), Some(Json::Num(n)) if *n == 1.0));

    server.shutdown();
    std::fs::remove_dir_all(
        std::env::temp_dir().join(format!("iokc-degraded-{}", std::process::id())),
    )
    .ok();
}
