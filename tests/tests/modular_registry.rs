//! F4 — the modular architecture (paper Fig. 4): independent phase
//! modules registered side by side, local + "global" databases receiving
//! the same knowledge, and knowledge flowing between environments as
//! JSON.

use iokc_benchmarks::{Io500Config, Io500Generator, IorConfig, IorGenerator};
use iokc_core::cycle::ModuleBox;
use iokc_core::model::KnowledgeItem;
use iokc_core::phases::{Persister, PhaseKind};
use iokc_core::{KnowledgeCycle, PhaseCtx};
use iokc_extract::{Io500Extractor, IorExtractor};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::KnowledgeStore;

fn world(seed: u64) -> World {
    World::new(SystemConfig::test_small(), FaultPlan::none(), seed)
}

#[test]
fn two_generators_two_extractors_two_databases() {
    let ior_config =
        IorConfig::parse_command("ior -a mpiio -b 512k -t 256k -s 1 -F -i 1 -o /scratch/m1 -k")
            .unwrap();
    // Clear the whole scratch dir: the store recovers from a leftover
    // `.bak` image when the primary is missing, so removing only the
    // primaries would resurrect a previous run's corpus.
    let dir = std::env::temp_dir().join("iokc-integration-registry");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let local_path = dir.join("local.iokc.json");
    let global_path = dir.join("global.iokc.json");

    let mut cycle = KnowledgeCycle::new();
    cycle
        .register(ModuleBox::generator(IorGenerator::new(
            world(61),
            JobLayout::new(2, 2),
            ior_config,
            1,
        )))
        .register(ModuleBox::generator(Io500Generator::new(
            world(62),
            JobLayout::new(2, 2),
            Io500Config::small("/scratch/m500"),
        )))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::extractor(Io500Extractor))
        // Fig. 4: a local database and a global (shared) one.
        .register(ModuleBox::persister(
            KnowledgeStore::open(local_path.clone()).unwrap(),
        ))
        .register(ModuleBox::persister(
            KnowledgeStore::open(global_path.clone()).unwrap(),
        ));

    let registry = cycle.registry();
    assert_eq!(registry[0].1.len(), 2, "two generators registered");
    assert_eq!(registry[1].1.len(), 2, "two extractors registered");
    assert_eq!(registry[2].1.len(), 2, "local + global persisters");
    assert_eq!(registry[0].0, PhaseKind::Generation);

    let report = cycle.run_once().unwrap();
    assert_eq!(report.extracted, 2, "one IOR + one IO500 knowledge object");

    // Both databases hold the same knowledge.
    let local = KnowledgeStore::open(local_path.clone()).unwrap();
    let global = KnowledgeStore::open(global_path.clone()).unwrap();
    assert_eq!(local.knowledge_count(), 1);
    assert_eq!(local.io500_count(), 1);
    assert_eq!(global.knowledge_count(), 1);
    assert_eq!(global.io500_count(), 1);
    let mut ctx = PhaseCtx::detached(PhaseKind::Persistence, "knowledge-store");
    assert_eq!(
        Persister::load_all(&local, &mut ctx).unwrap(),
        Persister::load_all(&global, &mut ctx).unwrap()
    );
    std::fs::remove_file(&local_path).unwrap();
    std::fs::remove_file(&global_path).unwrap();
}

#[test]
fn knowledge_travels_between_environments_as_json() {
    // The cluster side generates and serializes; the workstation side
    // parses and analyzes — Fig. 4's two-environment split.
    let ior_config = IorConfig::parse_command(
        "ior -a posix -b 512k -t 256k -s 2 -F -C -e -i 4 -o /scratch/j -k",
    )
    .unwrap();
    let mut generator = IorGenerator::new(world(63), JobLayout::new(4, 2), ior_config, 2);
    let mut cycle = KnowledgeCycle::new();
    let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    struct Probe(std::rc::Rc<std::cell::RefCell<Vec<KnowledgeItem>>>);
    impl iokc_core::phases::Analyzer for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn analyze(
            &self,
            _ctx: &mut PhaseCtx,
            items: &[KnowledgeItem],
        ) -> Result<Vec<iokc_core::phases::Finding>, iokc_core::phases::CycleError> {
            self.0.borrow_mut().extend(items.to_vec());
            Ok(Vec::new())
        }
    }
    generator.with_darshan = false;
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::analyzer(Probe(seen.clone())));
    cycle.run_once().unwrap();

    let items = seen.borrow();
    let wire: String = items[0].to_json().to_pretty();
    // "Workstation": parse the JSON back and run analysis there.
    let parsed = iokc_util::json::parse(&wire).unwrap();
    let item = KnowledgeItem::from_json(&parsed).unwrap();
    assert_eq!(item, items[0]);
    let KnowledgeItem::Benchmark(k) = item else {
        panic!("benchmark expected")
    };
    assert_eq!(k.series("write").len(), 4);
}
