//! F2 — the five-phase knowledge cycle (paper Fig. 2), end to end with
//! the real modules: IOR generator on the simulator, the extractor, the
//! relational store, the variance analyzer and the regeneration usage
//! module.

use iokc_benchmarks::{IorConfig, IorGenerator};
use iokc_core::cycle::ModuleBox;
use iokc_core::model::KnowledgeItem;
use iokc_core::phases::{Persister, PhaseKind};
use iokc_core::{KnowledgeCycle, PhaseCtx};
use iokc_extract::{DarshanExtractor, IorExtractor};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::KnowledgeStore;
use iokc_usage::RegenerateUsage;

fn small_world(seed: u64) -> World {
    World::new(SystemConfig::test_small(), FaultPlan::none(), seed)
}

#[test]
fn full_cycle_produces_complete_knowledge() {
    let config = IorConfig::parse_command(
        "ior -a mpiio -b 1m -t 256k -s 2 -F -C -e -i 3 -o /scratch/cycle -k",
    )
    .unwrap();
    let mut generator = IorGenerator::new(small_world(1), JobLayout::new(4, 2), config, 1);
    generator.with_darshan = true;

    let mut cycle = KnowledgeCycle::new();
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::extractor(DarshanExtractor))
        .register(ModuleBox::persister(KnowledgeStore::in_memory()))
        .register(ModuleBox::analyzer(
            iokc_analysis::IterationVarianceDetector::default(),
        ))
        .register(ModuleBox::usage(RegenerateUsage::default()));

    let report = cycle.run_once().unwrap();

    // Every phase ran.
    for kind in PhaseKind::ALL {
        assert!(
            report.trace.iter().any(|(p, _)| *p == kind),
            "phase {kind:?} missing from trace"
        );
    }
    // 5 artifacts: ior output, entry info, cpuinfo, meminfo, darshan log.
    assert_eq!(report.artifacts, 5);
    // Two knowledge objects: the IOR parse and the Darshan ingest.
    assert_eq!(report.extracted, 2);
    assert_eq!(report.persisted_ids.len(), 2);
    // Usage scheduled a follow-up command.
    assert_eq!(report.usage.new_commands.len(), 1);
    assert!(report.usage.new_commands[0].contains("-b 2m"));
}

#[test]
fn extracted_knowledge_carries_fs_and_system_info() {
    let config =
        IorConfig::parse_command("ior -a posix -b 1m -t 512k -s 1 -F -i 2 -o /scratch/info -k")
            .unwrap();
    let generator = IorGenerator::new(small_world(2), JobLayout::new(2, 2), config, 3);
    let mut cycle = KnowledgeCycle::new();
    let store = KnowledgeStore::in_memory();
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::persister(store));
    let report = cycle.run_once().unwrap();
    assert_eq!(report.persisted_ids, vec![1]);

    // Reload through a second cycle's analysis path: build a fresh store
    // is not possible (moved), so check via the report's corpus instead —
    // run the cycle again and inspect what analysis would see.
    struct Probe(std::rc::Rc<std::cell::RefCell<Vec<KnowledgeItem>>>);
    impl iokc_core::phases::Analyzer for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn analyze(
            &self,
            _ctx: &mut PhaseCtx,
            items: &[KnowledgeItem],
        ) -> Result<Vec<iokc_core::phases::Finding>, iokc_core::phases::CycleError> {
            self.0.borrow_mut().extend(items.to_vec());
            Ok(Vec::new())
        }
    }
    let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let config =
        IorConfig::parse_command("ior -a posix -b 1m -t 512k -s 1 -F -i 2 -o /scratch/info2 -k")
            .unwrap();
    let generator = IorGenerator::new(small_world(4), JobLayout::new(2, 2), config, 5);
    let mut cycle = KnowledgeCycle::new();
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::persister(KnowledgeStore::in_memory()))
        .register(ModuleBox::analyzer(Probe(seen.clone())));
    cycle.run_once().unwrap();

    let items = seen.borrow();
    let KnowledgeItem::Benchmark(k) = &items[0] else {
        panic!("expected benchmark knowledge");
    };
    // Pattern extracted from the output's options block.
    assert_eq!(k.pattern.api, "POSIX");
    assert_eq!(k.pattern.tasks, 2);
    assert_eq!(k.pattern.block_size, 1 << 20);
    // BeeGFS entry info travelled along (same-run artifact).
    let fs = k.filesystem.as_ref().expect("filesystem info attached");
    assert_eq!(fs.fs_type, "BeeGFS");
    assert_eq!(fs.chunk_size, 512 * 1024);
    assert!(fs.storage_targets > 0);
    // /proc system info travelled along.
    let sys = k.system.as_ref().expect("system info attached");
    assert_eq!(sys.system, "test-small");
    assert_eq!(sys.cores, 4);
    assert!(sys.mem_kib > 0);
    // Summaries and per-iteration results are populated.
    assert!(k.summary("write").is_some());
    assert!(k.summary("read").is_some());
    assert_eq!(k.series("write").len(), 2);
}

#[test]
fn persisted_knowledge_survives_store_roundtrip() {
    let dir = std::env::temp_dir().join("iokc-integration-cycle");
    // The segmented layout spreads the store over several files
    // (manifest, backup, active image, segments) — clear the whole
    // directory so earlier runs can't leak state in.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.iokc.json");

    let config =
        IorConfig::parse_command("ior -a mpiio -b 512k -t 256k -s 2 -i 2 -o /scratch/rt -k")
            .unwrap();
    let generator = IorGenerator::new(small_world(6), JobLayout::new(4, 2), config, 7);
    let mut cycle = KnowledgeCycle::new();
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::persister(
            KnowledgeStore::open(path.clone()).unwrap(),
        ));
    cycle.run_once().unwrap();

    let store = KnowledgeStore::open(path.clone()).unwrap();
    let mut ctx = PhaseCtx::detached(PhaseKind::Persistence, "knowledge-store");
    let items = Persister::load_all(&store, &mut ctx).unwrap();
    assert_eq!(items.len(), 1);
    let KnowledgeItem::Benchmark(k) = &items[0] else {
        panic!("expected benchmark knowledge");
    };
    assert!(k.command.contains("-b 512k"));
    assert_eq!(k.pattern.iterations, 2);
    assert!(!k.pattern.file_per_proc, "shared file run");
    std::fs::remove_dir_all(&dir).ok();
}
