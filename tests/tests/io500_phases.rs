//! X1 — the IO500 integration (§V-A): all twelve phases execute, the
//! scoring follows the official formula, output parses back, and the
//! knowledge lands in the paper's `IOFHs*` tables.

use iokc_benchmarks::io500::{run_io500, Io500Config};
use iokc_benchmarks::Io500Generator;
use iokc_core::cycle::ModuleBox;
use iokc_core::KnowledgeCycle;
use iokc_extract::{parse_io500_output, Io500Extractor};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::{KnowledgeStore, OrderBy, Predicate};

#[test]
fn twelve_phases_parse_and_persist() {
    let world = World::new(SystemConfig::test_small(), FaultPlan::none(), 21);
    let generator = Io500Generator::new(
        world,
        JobLayout::new(4, 2),
        Io500Config::small("/scratch/io500x"),
    );
    let mut cycle = KnowledgeCycle::new();
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(Io500Extractor))
        .register(ModuleBox::persister(KnowledgeStore::in_memory()));
    let report = cycle.run_once().unwrap();
    assert_eq!(report.extracted, 1);
    assert_eq!(report.persisted_ids, vec![1]);
}

#[test]
fn io500_tables_follow_paper_schema() {
    let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 23);
    let result = run_io500(
        &mut world,
        JobLayout::new(4, 2),
        &Io500Config::small("/scratch/io500y"),
    )
    .unwrap();
    let mut knowledge = parse_io500_output(&result.render()).unwrap();
    knowledge.tasks = 4;
    knowledge
        .options
        .insert("dir".into(), "/scratch/io500y".into());

    let mut store = KnowledgeStore::in_memory();
    let id = store.save_io500(&knowledge).unwrap();
    let db = store.database();
    assert_eq!(db.row_count("IOFHsRuns").unwrap(), 1);
    assert_eq!(db.row_count("IOFHsScores").unwrap(), 1);
    assert_eq!(db.row_count("IOFHsTestcases").unwrap(), 12);
    assert_eq!(db.row_count("IOFHsResults").unwrap(), 12);
    assert!(db.row_count("IOFHsOptions").unwrap() >= 1);

    // Foreign keys resolve: every testcase row references the run.
    let testcases = db
        .select(
            "IOFHsTestcases",
            &Predicate::Eq("IOFH_id".into(), iokc_store::Value::Int(id as i64)),
            OrderBy::Id,
            None,
        )
        .unwrap();
    assert_eq!(testcases.len(), 12);

    // Reload matches.
    let loaded = store.load_io500(id).unwrap().unwrap();
    assert_eq!(loaded.testcases.len(), 12);
    assert!((loaded.total_score - knowledge.total_score).abs() < 1e-12);
}

#[test]
fn scoring_is_geometric_and_consistent_with_output() {
    let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 25);
    let result = run_io500(
        &mut world,
        JobLayout::new(4, 2),
        &Io500Config::small("/scratch/io500z"),
    )
    .unwrap();
    let parsed = parse_io500_output(&result.render()).unwrap();
    // Rendered (6-decimal) scores round-trip.
    assert!((parsed.bw_score - result.bw_score).abs() < 1e-5);
    assert!((parsed.md_score - result.md_score).abs() < 1e-5);
    assert!((parsed.total_score - (result.bw_score * result.md_score).sqrt()).abs() < 1e-5);
    // Canonical IO500 orderings.
    let value = |name: &str| result.phase(name).unwrap().value;
    assert!(value("ior-easy-write") > value("ior-hard-write"));
    assert!(value("mdtest-easy-write") >= value("mdtest-hard-write") * 0.8);
}
