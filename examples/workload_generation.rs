//! Workload generation (§IV, fifth use case): "the knowledge obtained
//! from our generic workflow can be used to … generate new benchmark
//! configurations, but also synthetic workload for simulation".
//!
//! A mixed production-like campaign (checkpoint-heavy IOR plus a
//! small-transfer job) is observed, knowledge is extracted, a synthetic
//! workload spec is derived from the corpus, lowered to fresh benchmark
//! commands, and replayed on a second simulated system — the full
//! knowledge-to-workload loop.
//!
//! ```text
//! cargo run --release -p iokc-examples --bin workload_generation
//! ```

use iokc_benchmarks::ior::{run_ior, Access, IorConfig};
use iokc_core::model::Knowledge;
use iokc_extract::parse_ior_output;
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_usage::derive_workload;

fn observe(command: &str, seed: u64, runs: usize) -> Vec<Knowledge> {
    (0..runs)
        .map(|i| {
            let mut world = World::new(
                SystemConfig::fuchs_csc().with_noise(0.02),
                FaultPlan::none(),
                seed + i as u64,
            );
            let config = IorConfig::parse_command(command).expect("valid command");
            let result = run_ior(&mut world, JobLayout::new(40, 20), &config, seed).expect("runs");
            parse_ior_output(&result.render()).expect("output parses")
        })
        .collect()
}

fn main() {
    // The observed campaign: mostly checkpoint-style large writes, some
    // small-transfer analysis jobs.
    println!("observing the production campaign…");
    let mut corpus = Vec::new();
    corpus.extend(observe(
        "ior -a mpiio -b 8m -t 2m -s 4 -F -C -e -i 1 -o /scratch/ckpt -k -w",
        100,
        3,
    ));
    corpus.extend(observe(
        "ior -a posix -b 1m -t 256k -s 4 -F -C -e -i 1 -o /scratch/ana -k -w",
        200,
        1,
    ));
    println!("  {} knowledge objects extracted", corpus.len());

    // Derive the synthetic workload.
    let refs: Vec<&Knowledge> = corpus.iter().collect();
    let spec = derive_workload(&refs).expect("derivable workload");
    println!("\nderived workload ({} tasks):", spec.tasks);
    for component in &spec.components {
        println!(
            "  {:>4.0}%  {}  transfer {}  block {}  fpp {}",
            component.weight * 100.0,
            component.api,
            iokc_util::units::format_size(component.transfer_size),
            iokc_util::units::format_size(component.block_size),
            component.file_per_proc
        );
    }
    assert_eq!(spec.components.len(), 2);
    assert!((spec.components[0].weight - 0.75).abs() < 1e-9);

    // Lower to commands and replay on a different (fresh) system.
    let commands = spec.to_commands("/scratch", 4);
    println!("\nreplaying the synthetic workload on a fresh system:");
    let mut synthetic_bw = Vec::new();
    for command in &commands {
        let config = IorConfig::parse_command(command).expect("generated command parses");
        let mut world = World::new(
            SystemConfig::fuchs_csc().with_noise(0.02),
            FaultPlan::none(),
            999,
        );
        let result = run_ior(&mut world, JobLayout::new(spec.tasks, 20), &config, 7)
            .expect("synthetic command runs");
        let bw = result.max_bw(Access::Write);
        synthetic_bw.push(bw);
        println!("  {command}\n    -> write {bw:.0} MiB/s");
    }

    // The synthetic checkpoint component must land near the observed
    // checkpoint bandwidth (same pattern, same system model).
    let observed_ckpt = corpus[0].summary("write").expect("write summary").mean_mib;
    let synthetic_ckpt = synthetic_bw[0];
    let gap = (synthetic_ckpt - observed_ckpt).abs() / observed_ckpt;
    println!(
        "\nobserved checkpoint {observed_ckpt:.0} MiB/s vs synthetic {synthetic_ckpt:.0} MiB/s ({:.1}% apart)",
        gap * 100.0
    );
    assert!(
        gap < 0.15,
        "synthetic workload must reproduce the observed bandwidth within 15%"
    );
    println!("workload generation example complete.");
}
