//! Example I of the paper (§V-E1): new knowledge generation.
//!
//! A stored command is loaded into the configuration builder, mutated
//! ("create configuration"), and the cycle re-runs with the new command —
//! each generation lands in the knowledge base next to the knowledge that
//! spawned it, growing the corpus.
//!
//! ```text
//! cargo run -p iokc-examples --bin knowledge_generation
//! ```

use iokc_benchmarks::{IorConfig, IorGenerator};
use iokc_core::cycle::ModuleBox;
use iokc_core::model::KnowledgeItem;
use iokc_core::KnowledgeCycle;
use iokc_extract::IorExtractor;
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::{KnowledgeStore, Query};
use iokc_usage::{CommandBuilder, RegenerateUsage};

fn main() {
    // Demonstrate the "create configuration" dialog on the paper's exact
    // command.
    let paper = "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k";
    let mut builder = CommandBuilder::load(paper);
    println!("loaded  : {paper}");
    builder.set("-b", "8m").set("-i", "3");
    let created = builder.build();
    println!("created : {created}\n");
    assert!(created.contains("-b 8m") && created.contains("-i 3"));

    // Now the automated loop: run → usage schedules a follow-up → re-run.
    // A file-backed store lets us reopen the knowledge base afterwards,
    // exactly as the analysis side of Fig. 4 would.
    let db_path = std::env::temp_dir().join("iokc-example1-knowledge.json");
    let _ = std::fs::remove_file(&db_path);

    let world = World::new(SystemConfig::fuchs_csc(), FaultPlan::none(), 5);
    let seed_command = "ior -a mpiio -b 1m -t 512k -s 4 -F -C -e -i 2 -o /scratch/gen -k";
    let config = IorConfig::parse_command(seed_command).expect("valid command");
    let generator = IorGenerator::new(world, JobLayout::new(20, 20), config, 9);

    let mut cycle = KnowledgeCycle::new();
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::persister(
            KnowledgeStore::open(db_path.clone()).expect("fresh store opens"),
        ))
        .register(ModuleBox::usage(RegenerateUsage::default()));

    let reports = cycle.run_iterative(4).expect("iterative cycle");
    println!("the cycle ran {} times:", reports.len());
    for (i, report) in reports.iter().enumerate() {
        println!(
            "  generation {}: persisted ids {:?}, scheduled {:?}",
            i + 1,
            report.persisted_ids,
            report.usage.new_commands
        );
    }
    assert!(
        reports.len() >= 3,
        "regeneration must drive several iterations"
    );

    // Reopen the knowledge base: one object per generation, block size
    // doubling each time.
    let store = KnowledgeStore::open(db_path.clone()).expect("store reopens");
    let items = store.query_items(&Query::all()).expect("corpus loads");
    let blocks: Vec<u64> = items
        .iter()
        .filter_map(|item| match item {
            KnowledgeItem::Benchmark(k) => Some(k.pattern.block_size),
            KnowledgeItem::Io500(_) => None,
        })
        .collect();
    println!("\nblock sizes across generations: {blocks:?}");
    assert_eq!(blocks.len(), reports.len());
    assert!(
        blocks.windows(2).all(|w| w[1] == w[0] * 2),
        "each generation doubles the block size: {blocks:?}"
    );
    let _ = std::fs::remove_file(&db_path);
    println!("example I complete — knowledge generated new knowledge.");
}
