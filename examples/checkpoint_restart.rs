//! Checkpoint/restart study with HACC-IO (§V-A).
//!
//! The paper integrates HACC-IO "to cover real I/O patterns like
//! checkpoint and restart for large simulations", with its three file
//! access modes and two APIs. This example sweeps all six combinations on
//! the simulated FUCHS-CSC system and reports the resulting knowledge as
//! a comparison table — who wins and by how much.
//!
//! ```text
//! cargo run --release -p iokc-examples --bin checkpoint_restart
//! ```

use iokc_benchmarks::hacc::{run_hacc, FileMode, HaccConfig};
use iokc_extract::parse_hacc_output;
use iokc_sim::api::IoApi;
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_util::table::TextTable;

fn main() {
    let layout = JobLayout::new(40, 20);
    let particles_per_rank = 2_000_000; // 76 MB per rank, the classic size
    let modes = [
        ("single-shared-file", FileMode::SingleSharedFile),
        ("file-per-process", FileMode::FilePerProcess),
        (
            "file-per-group(10)",
            FileMode::FilePerGroup { group_size: 10 },
        ),
    ];
    let apis = [
        ("POSIX", IoApi::Posix),
        ("MPIIO", IoApi::MpiIo { collective: false }),
    ];

    let mut table = TextTable::new(vec![
        "mode",
        "api",
        "checkpoint (MiB/s)",
        "restart (MiB/s)",
        "files",
    ]);
    let mut results = Vec::new();
    for (mode_name, mode) in modes {
        for (api_name, api) in apis {
            let mut world = World::new(SystemConfig::fuchs_csc(), FaultPlan::none(), 1234);
            let config = HaccConfig::new(
                particles_per_rank,
                mode,
                api,
                &format!("/scratch/hacc_{mode_name}_{api_name}"),
            );
            let result = run_hacc(&mut world, layout, &config).expect("hacc runs");
            let files = world.namespace().file_count();
            table.push_row(vec![
                mode_name.to_owned(),
                api_name.to_owned(),
                format!("{:.1}", result.checkpoint_bw_mib),
                format!("{:.1}", result.restart_bw_mib),
                files.to_string(),
            ]);
            // Knowledge extraction from the native output closes the loop.
            let knowledge = parse_hacc_output(&result.render()).expect("output parses");
            assert!(knowledge.summary("checkpoint").is_some());
            results.push((mode_name, api_name, result));
        }
    }
    println!(
        "HACC-IO on simulated FUCHS-CSC — {} ranks, {} particles/rank\n",
        layout.np, particles_per_rank
    );
    print!("{}", table.render());

    // The canonical shape: file-per-process beats the single shared file
    // on checkpoint bandwidth (no shared-file serialization).
    let ssf = results
        .iter()
        .find(|(m, a, _)| *m == "single-shared-file" && *a == "POSIX")
        .expect("ssf result");
    let fpp = results
        .iter()
        .find(|(m, a, _)| *m == "file-per-process" && *a == "POSIX")
        .expect("fpp result");
    println!(
        "\nfile-per-process vs single-shared-file checkpoint: {:.2}x",
        fpp.2.checkpoint_bw_mib / ssf.2.checkpoint_bw_mib
    );
    assert!(
        fpp.2.checkpoint_bw_mib >= ssf.2.checkpoint_bw_mib * 0.95,
        "file-per-process must not trail the shared file"
    );
}
