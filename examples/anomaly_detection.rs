//! Example II of the paper (§V-E2): anomaly detection.
//!
//! Part 1 — per-iteration variance: a six-iteration IOR run where storage
//! interference hits iteration 2; the knowledge explorer's variance
//! detector flags it and corroborates with the supporting metrics
//! (`closeTime`, `latency`, `totalTime`, `wrRdTime`).
//!
//! Part 2 — IO500 bounding box (after Liem et al.): reference runs span
//! an expectation box; a run with a broken node falls below it on
//! `ior-easy-read`.
//!
//! ```text
//! cargo run --release -p iokc-examples --bin anomaly_detection
//! ```

use iokc_analysis::{BoundingBox, IterationVarianceDetector};
use iokc_benchmarks::io500::{run_io500, run_io500_with_faults, Io500Config, PhaseFaults};
use iokc_benchmarks::ior::{run_ior, IorConfig};
use iokc_core::model::Io500Knowledge;
use iokc_extract::{parse_io500_output, parse_ior_output};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::{Fault, FaultPlan, FaultTarget};
use iokc_sim::prelude::SystemConfig;
use iokc_sim::time::SimTime;

fn main() {
    part1_iteration_variance();
    part2_bounding_box();
}

fn part1_iteration_variance() {
    println!("== part 1: iteration-variance anomaly (paper Fig. 5) ==\n");
    let layout = JobLayout::new(16, 8);
    let mut world = World::new(
        SystemConfig::fuchs_csc().with_noise(0.01),
        FaultPlan::none(),
        7,
    );
    let base =
        IorConfig::parse_command("ior -a mpiio -b 4m -t 2m -s 4 -F -C -e -i 1 -o /scratch/anom -k")
            .expect("valid command");

    // Six iterations; interference on the storage targets during the
    // third one (index 2).
    let mut samples = Vec::new();
    for iteration in 0..6u32 {
        if iteration == 2 {
            let mut plan = FaultPlan::none();
            for target in 0..world.system().pfs.storage_targets {
                plan.push(Fault::slow_target(
                    target,
                    0.35,
                    world.now(),
                    SimTime(u64::MAX),
                ));
            }
            world.set_faults(plan);
        }
        let run = run_ior(&mut world, layout, &base, u64::from(iteration)).expect("run");
        world.set_faults(FaultPlan::none());
        for mut sample in run.samples {
            sample.iter = iteration;
            samples.push(sample);
        }
    }
    let run = iokc_benchmarks::ior::IorRunResult {
        config: IorConfig {
            iterations: 6,
            ..base
        },
        np: layout.np,
        ppn: layout.ppn,
        samples,
        phases: Vec::new(),
    };
    let knowledge = parse_ior_output(&run.render()).expect("own output parses");

    println!("write bandwidth per iteration (MiB/s):");
    for (iteration, bw) in knowledge.series("write") {
        println!("  iteration {iteration}: {bw:9.1}");
    }
    let anomalies = IterationVarianceDetector::default().detect(&knowledge);
    assert!(!anomalies.is_empty(), "the injected anomaly must be found");
    for anomaly in &anomalies {
        println!(
            "\nANOMALY: {} iteration {} at {:.0} MiB/s vs peers {:.0} MiB/s (z = {:.1})",
            anomaly.operation,
            anomaly.iteration,
            anomaly.bw_mib,
            anomaly.peer_mean_mib,
            anomaly.score
        );
        println!("  corroborated by: {}", anomaly.corroborated_by.join(", "));
    }
}

fn part2_bounding_box() {
    println!("\n== part 2: IO500 bounding box (paper Fig. 6) ==\n");
    let layout = JobLayout::new(8, 4);
    let config = Io500Config::small("/scratch/io500box");

    // Three healthy reference runs with run-to-run storage noise.
    let mut references: Vec<Io500Knowledge> = Vec::new();
    for seed in [11, 22, 33] {
        let system = SystemConfig::fuchs_csc()
            .with_noise(0.2)
            .with_noise_interval(5_000_000_000);
        let mut world = World::new(system, FaultPlan::none(), seed);
        let result = run_io500(&mut world, layout, &config).expect("reference run");
        references.push(parse_io500_output(&result.render()).expect("io500 parses"));
    }

    // One run with a node breaking during ior-easy-read.
    let system = SystemConfig::fuchs_csc()
        .with_noise(0.2)
        .with_noise_interval(5_000_000_000);
    let mut world = World::new(system, FaultPlan::none(), 44);
    let mut schedule = PhaseFaults::new();
    schedule.insert(
        "ior-easy-read".to_owned(),
        FaultPlan::none().with(Fault::permanent(FaultTarget::NodeNic(0), 0.03)),
    );
    let degraded_result =
        run_io500_with_faults(&mut world, layout, &config, &schedule).expect("degraded run");
    let degraded = parse_io500_output(&degraded_result.render()).expect("io500 parses");

    let refs: Vec<&Io500Knowledge> = references.iter().collect();
    let bbox = BoundingBox::fit(
        &refs,
        &[
            "ior-easy-write",
            "ior-easy-read",
            "ior-hard-write",
            "ior-hard-read",
        ],
        0.2,
    );
    print!("{}", bbox.render_check(&degraded));
    let verdicts = bbox.check(&degraded);
    let below: Vec<&str> = verdicts
        .iter()
        .filter(|(_, _, v)| *v == iokc_analysis::Verdict::Below)
        .map(|(name, _, _)| name.as_str())
        .collect();
    assert!(
        below.contains(&"ior-easy-read"),
        "the broken node must push ior-easy-read below the box (got {below:?})"
    );
    println!("\nthe bounding box isolates the broken-node read anomaly: {below:?}");
}
