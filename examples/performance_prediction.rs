//! I/O performance prediction (§VI outlook).
//!
//! Builds a training corpus with a JUBE-style parameter sweep (executed
//! in parallel through Rayon, one simulated world per workpackage),
//! trains the linear-regression predictor on the extracted knowledge, and
//! evaluates it on a held-out configuration.
//!
//! ```text
//! cargo run --release -p iokc-examples --bin performance_prediction
//! ```

use iokc_benchmarks::ior::{run_ior, IorConfig};
use iokc_core::model::Knowledge;
use iokc_extract::parse_ior_output;
use iokc_jube::{run_sweep_parallel, JubeConfig};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_usage::predict::{pattern_features, train_bandwidth_model};

fn main() {
    // The sweep: transfer size × block size, executed by the JUBE engine.
    let config = JubeConfig::parse(
        "benchmark prediction-corpus\n\
         param xfer = 256k, 512k, 1m, 2m\n\
         param block = 4m, 8m\n\
         step run = ior -a mpiio -b $block -t $xfer -s 4 -F -C -e -i 1 -o /scratch/sweep$wp -k -w\n",
    )
    .expect("sweep config parses");

    let workspace = run_sweep_parallel(&config, || {
        |wp: usize, _step: &str, command: &str| -> Result<String, String> {
            let ior = IorConfig::parse_command(command).map_err(|e| e.to_string())?;
            let mut world = World::new(
                SystemConfig::fuchs_csc().with_noise(0.01),
                FaultPlan::none(),
                4242 + wp as u64,
            );
            let result = run_ior(&mut world, JobLayout::new(40, 20), &ior, wp as u64)
                .map_err(|e| e.to_string())?;
            Ok(result.render())
        }
    })
    .expect("sweep executes");
    println!(
        "sweep complete: {} workpackages\n",
        workspace.workpackages.len()
    );

    // Extract a knowledge object per workpackage.
    let corpus: Vec<Knowledge> = workspace
        .workpackages
        .iter()
        .map(|wp| parse_ior_output(&wp.outputs[0].1).expect("ior output parses"))
        .collect();
    let refs: Vec<&Knowledge> = corpus.iter().collect();

    // Train on everything except the largest-transfer configuration.
    let (train, holdout): (Vec<&Knowledge>, Vec<&Knowledge>) =
        refs.iter().partition(|k| k.pattern.transfer_size < 2 << 20);
    let model = train_bandwidth_model(&train, "write").expect("model trains");
    print!("{}", model.render());
    assert!(model.r_squared > 0.5, "R² = {}", model.r_squared);

    println!("\nheld-out evaluation (transfer = 2 MiB):");
    for k in &holdout {
        let predicted = model.predict(&pattern_features(k));
        let actual = k.summary("write").expect("write summary").mean_mib;
        let error = (predicted - actual).abs() / actual * 100.0;
        println!(
            "  block {:>8}: predicted {:8.1} MiB/s, measured {:8.1} MiB/s ({error:4.1}% off)",
            iokc_util::units::format_size(k.pattern.block_size),
            predicted,
            actual
        );
        assert!(
            error < 35.0,
            "prediction error {error:.1}% too large for an in-distribution extrapolation"
        );
    }
    println!("\nprediction example complete.");
}
