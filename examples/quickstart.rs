//! Quickstart: one trip around the I/O knowledge cycle.
//!
//! Runs IOR on the simulated FUCHS-CSC cluster, extracts a knowledge
//! object, persists it in the relational store, analyzes it, and asks the
//! usage phase for a follow-up configuration — the five phases of the
//! paper's Fig. 2 in ~80 lines.
//!
//! ```text
//! cargo run -p iokc-examples --bin quickstart
//! ```

use iokc_benchmarks::{IorConfig, IorGenerator};
use iokc_core::cycle::ModuleBox;
use iokc_core::KnowledgeCycle;
use iokc_extract::IorExtractor;
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::KnowledgeStore;
use iokc_usage::RegenerateUsage;

fn main() {
    // A fresh simulated cluster: the paper's FUCHS-CSC (198 nodes,
    // BeeGFS, ~3 GB/s storage backend).
    let world = World::new(SystemConfig::fuchs_csc(), FaultPlan::none(), 42);

    // Phase I input: an IOR run — 40 ranks on 2 nodes.
    let command = "ior -a mpiio -b 4m -t 2m -s 4 -F -C -e -i 3 -o /scratch/quickstart -k";
    let config = IorConfig::parse_command(command).expect("valid ior command");
    let generator = IorGenerator::new(world, JobLayout::new(40, 20), config, 1);

    // Wire the five phases.
    let mut cycle = KnowledgeCycle::new();
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::persister(KnowledgeStore::in_memory()))
        .register(ModuleBox::analyzer(
            iokc_analysis::IterationVarianceDetector::default(),
        ))
        .register(ModuleBox::usage(RegenerateUsage::default()));

    println!("registered modules:");
    for (phase, modules) in cycle.registry() {
        println!("  {:<12} {}", phase.as_str(), modules.join(", "));
    }

    let report = cycle.run_once().expect("cycle runs");
    println!(
        "\ngeneration : {} artifacts\nextraction : {} knowledge objects\npersistence: ids {:?}",
        report.artifacts, report.extracted, report.persisted_ids
    );
    println!("analysis   : {} findings", report.findings.len());
    for finding in &report.findings {
        println!("  [{}] {}", finding.tag, finding.message);
    }
    println!("usage      : next commands {:?}", report.usage.new_commands);

    assert_eq!(report.extracted, 1, "one knowledge object per run");
    assert!(
        !report.usage.new_commands.is_empty(),
        "the usage phase schedules a follow-up"
    );
    println!("\nquickstart complete — the knowledge cycle closed once.");
}
