//! Cell values and column types.
//!
//! The store speaks a deliberately SQLite-like type system: `NULL`,
//! `INTEGER`, `REAL`, `TEXT`. Values carry a total order (reals via
//! `total_cmp`) so they can key B-tree indexes.

use std::cmp::Ordering;
use std::fmt;

/// A column's declared type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit float.
    Real,
    /// UTF-8 text.
    Text,
}

impl ColumnType {
    /// SQL name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ColumnType::Integer => "INTEGER",
            ColumnType::Real => "REAL",
            ColumnType::Text => "TEXT",
        }
    }
}

/// A cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Real(f64),
    /// Text.
    Text(String),
}

impl Value {
    /// Does this value fit a column of `ty`? (`Null` fits any nullable
    /// column; integers are accepted into REAL columns, as in SQLite.)
    #[must_use]
    pub fn fits(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), ColumnType::Integer)
                | (Value::Int(_), ColumnType::Real)
                | (Value::Real(_), ColumnType::Real)
                | (Value::Text(_), ColumnType::Text)
        )
    }

    /// Integer payload (also from REAL columns holding an integral value).
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Real(r) if r.fract() == 0.0 => Some(*r as i64),
            _ => None,
        }
    }

    /// Float payload (integers widen).
    #[must_use]
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Text payload.
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Is this NULL?
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total order: NULL < numbers < text; ints and reals compare
    /// numerically (SQLite's cross-type affinity for our subset).
    #[must_use]
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Real(_) => 1,
                Value::Text(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) if class(a) == 1 && class(b) == 1 => {
                let (x, y) = (a.as_real().expect("numeric"), b.as_real().expect("numeric"));
                x.total_cmp(&y)
            }
            (a, b) => class(a).cmp(&class(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(t) => write!(f, "{t}"),
        }
    }
}

impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Int(i64::from(v))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn type_fitting() {
        assert!(Value::Int(3).fits(ColumnType::Integer));
        assert!(Value::Int(3).fits(ColumnType::Real));
        assert!(Value::Real(3.5).fits(ColumnType::Real));
        assert!(!Value::Real(3.5).fits(ColumnType::Integer));
        assert!(Value::Text("x".into()).fits(ColumnType::Text));
        assert!(!Value::Text("x".into()).fits(ColumnType::Integer));
        assert!(Value::Null.fits(ColumnType::Text));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Real(7.0).as_int(), Some(7));
        assert_eq!(Value::Real(7.5).as_int(), None);
        assert_eq!(Value::Int(7).as_real(), Some(7.0));
        assert_eq!(Value::Text("a".into()).as_text(), Some("a"));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn ordering_is_total_and_cross_type() {
        let mut values = vec![
            Value::Text("b".into()),
            Value::Int(2),
            Value::Null,
            Value::Real(1.5),
            Value::Text("a".into()),
            Value::Int(1),
        ];
        values.sort();
        assert_eq!(
            values,
            vec![
                Value::Null,
                Value::Int(1),
                Value::Real(1.5),
                Value::Int(2),
                Value::Text("a".into()),
                Value::Text("b".into()),
            ]
        );
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Text("ior".into()).to_string(), "ior");
    }
}
