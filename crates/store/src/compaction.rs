//! Background compaction for the segmented store.
//!
//! Sealing ([`KnowledgeStore::seal_active`]) produces many small,
//! immutable segments, and deleting a segment-resident run only hides
//! it behind a tombstone. Compaction is the maintenance pass that folds
//! both back: it merges every sealed segment into one, physically drops
//! tombstoned runs, rewrites the merged segment's index block
//! ([`crate::SegmentMeta`]) and publishes the result with a single
//! manifest write — the commit point, exactly like sealing.
//!
//! Compaction never touches the active generation and never changes the
//! store's write [`KnowledgeStore::generation`]: it moves rows between
//! layers without changing what any read returns. Open [`Snapshot`]s
//! are immune — the bodies of every input segment are preloaded into
//! their shared [`crate::Segment`] handles *before* the old files are
//! unlinked, so a snapshot taken before the compaction keeps answering
//! from the pre-compaction layout for as long as it lives.
//!
//! Crash safety rides the same protocol as sealing: the merged segment
//! file is written first (a failure leaves it as a stray for `fsck` to
//! sweep, memory untouched), then the manifest (a failure there reloads
//! from disk, because either manifest generation may be durable). The
//! whole pass runs under a `store.compact` span with
//! `store.compaction.*` counters, and every I/O goes through the
//! store's [`crate::Vfs`] — the crash-consistency harness drives
//! `FaultVfs::crash_states()` straight through it.

use crate::database::DbError;
use crate::knowledge_store::{
    build_schema, copy_all_rows, delete_benchmark_rows, delete_io500_rows, KnowledgeStore,
    Manifest, Snapshot,
};
use crate::persist;
use crate::query::{RunKind, RunSummary};
use crate::segment::{write_segment_vfs, Segment, SegmentData, SegmentMeta};
use iokc_obs::SpanStatus;
use std::sync::Arc;

/// What a compaction pass would do, before doing it. The CLI's
/// `iokc compact` prints this; the explorer surfaces it as maintenance
/// pressure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionPlan {
    /// Ids of the sealed segments that would be merged, oldest first.
    pub input_segments: Vec<u64>,
    /// Tombstoned runs that would be physically dropped.
    pub tombstones_to_drop: usize,
}

impl CompactionPlan {
    /// True when compaction would change nothing: fewer than two
    /// segments and no tombstones.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.input_segments.len() < 2 && self.tombstones_to_drop == 0
    }
}

/// What a compaction pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Sealed segments merged away.
    pub segments_merged: usize,
    /// Tombstoned runs physically dropped.
    pub tombstones_dropped: usize,
    /// Live runs rewritten into the merged segment.
    pub runs_rewritten: usize,
    /// Id of the merged output segment, or `None` when the pass was a
    /// no-op or every input run was tombstoned.
    pub output_segment: Option<u64>,
}

impl KnowledgeStore {
    /// What [`KnowledgeStore::compact`] would do right now.
    #[must_use]
    pub fn compaction_plan(&self) -> CompactionPlan {
        CompactionPlan {
            input_segments: self.segments.iter().map(|s| s.meta.id).collect(),
            tombstones_to_drop: self.tombstones.len(),
        }
    }

    /// Merge all sealed segments into one, dropping tombstoned runs and
    /// rewriting the index block. No-op for in-memory stores, stores
    /// with nothing to merge, and a [`DbError::ReadOnly`] for degraded
    /// ones. See the module docs for the crash and snapshot contracts.
    pub fn compact(&mut self) -> Result<CompactionReport, DbError> {
        self.ensure_writable()?;
        let plan = self.compaction_plan();
        let Some(path) = self.path.clone() else {
            return Ok(CompactionReport::default());
        };
        if plan.is_noop() {
            return Ok(CompactionReport::default());
        }
        let recorder = Arc::clone(&self.obs.recorder);
        let span = recorder.start_span("store.compact", None, Some("analysis"), Some("store"));
        let result = self.compact_inner(&path, &plan);
        let metrics = recorder.metrics();
        metrics.counter("store.compaction.runs").inc();
        match &result {
            Ok(report) => {
                metrics
                    .counter("store.compaction.segments_merged")
                    .add(report.segments_merged as u64);
                metrics
                    .counter("store.compaction.tombstones_dropped")
                    .add(report.tombstones_dropped as u64);
                recorder.end_span(&span, SpanStatus::Ok);
            }
            Err(e) => {
                recorder.log(Some(span.id), &format!("WARN store.compact failed: {e}"));
                recorder.end_span(&span, SpanStatus::Failed);
            }
        }
        result
    }

    fn compact_inner(
        &mut self,
        path: &std::path::Path,
        plan: &CompactionPlan,
    ) -> Result<CompactionReport, DbError> {
        // Preload every input body through the *shared* handles before
        // anything is unlinked: open snapshots hold the same `Arc`s and
        // keep reading the pre-compaction layout from memory.
        let mut inputs: Vec<Arc<SegmentData>> = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            inputs.push(seg.data(self.vfs.as_ref())?);
        }

        // Merge in memory: ids are globally unique across generations
        // (sealing forwards every auto-increment counter), so the merge
        // is a plain row copy followed by cascade deletes.
        let mut merged = build_schema();
        let mut summaries: Vec<RunSummary> = Vec::new();
        for data in &inputs {
            copy_all_rows(&data.db, &mut merged)?;
            summaries.extend(
                data.summaries
                    .iter()
                    .filter(|s| !self.tombstones.contains(&(s.kind, s.id)))
                    .cloned(),
            );
        }
        for (kind, id) in &self.tombstones {
            match kind {
                RunKind::Benchmark => delete_benchmark_rows(&mut merged, *id)?,
                RunKind::Io500 => delete_io500_rows(&mut merged, *id)?,
            }
        }
        summaries.sort_by_key(|a| (a.kind, a.id));

        // Write the output segment (if anything survived), then commit
        // with one manifest write.
        let output = if summaries.is_empty() {
            None
        } else {
            let seg_id = self.next_segment;
            let seg_path = persist::segment_path(path, seg_id);
            write_segment_vfs(&seg_path, self.vfs.as_ref(), seg_id, &summaries, &merged).map_err(
                |e| {
                    persist::classify_io_error(
                        &format!("compact segment {}", seg_path.display()),
                        &e,
                    )
                },
            )?;
            Some((seg_id, seg_path, SegmentMeta::compute(seg_id, &summaries)))
        };
        let manifest = Manifest {
            active_epoch: self.active_epoch,
            next_segment: output
                .as_ref()
                .map_or(self.next_segment, |(id, _, _)| id + 1),
            tombstones: std::collections::BTreeSet::new(),
            segments: output
                .as_ref()
                .map(|(_, _, meta)| vec![meta.clone()])
                .unwrap_or_default(),
        };
        if let Err(e) = persist::write_document_vfs(path, self.vfs.as_ref(), &manifest.to_json()) {
            let classified =
                persist::classify_io_error(&format!("compact manifest {}", path.display()), &e);
            self.reload_from_disk(path);
            return Err(classified);
        }

        // Commit point passed: swap memory and sweep the input files.
        // The write generation is untouched — no read changes.
        let report = CompactionReport {
            segments_merged: plan.input_segments.len(),
            tombstones_dropped: self.tombstones.len(),
            runs_rewritten: summaries.len(),
            output_segment: output.as_ref().map(|(id, _, _)| *id),
        };
        self.next_segment = manifest.next_segment;
        self.tombstones.clear();
        self.manifest_dirty = false;
        let old_segments = std::mem::replace(
            &mut self.segments,
            output
                .map(|(_, seg_path, meta)| {
                    vec![Arc::new(Segment::preloaded(
                        meta,
                        seg_path,
                        Arc::new(SegmentData {
                            summaries,
                            db: merged,
                        }),
                    ))]
                })
                .unwrap_or_default(),
        );
        for seg in old_segments {
            for stale in [
                seg.path().to_path_buf(),
                persist::backup_path(seg.path()),
                persist::temp_path(seg.path()),
            ] {
                let _ = self.vfs.remove_file(&stale);
            }
        }
        Ok(report)
    }

    /// [`KnowledgeStore::compact`], then report against the snapshot
    /// taken *before* the pass — a convenience for tests asserting
    /// snapshot immunity.
    pub fn compact_with_snapshot(&mut self) -> Result<(Snapshot, CompactionReport), DbError> {
        let snapshot = self.snapshot();
        let report = self.compact()?;
        Ok((snapshot, report))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::query::{Query, RunPredicate};
    use crate::vfs::FaultVfs;
    use iokc_core::model::{Knowledge, KnowledgeSource};
    use iokc_obs::DeadlineToken;
    use std::path::PathBuf;

    fn knowledge(i: usize) -> Knowledge {
        let mut k = Knowledge::new(KnowledgeSource::Ior, &format!("ior -w run-{i}"));
        k.pattern.api = if i.is_multiple_of(2) {
            "POSIX"
        } else {
            "MPIIO"
        }
        .into();
        k.pattern.tasks = 8 + i as u32;
        k
    }

    fn store_with_segments(
        seal_every: usize,
        runs: usize,
    ) -> (KnowledgeStore, Arc<FaultVfs>, PathBuf) {
        let path = PathBuf::from("/kb.json");
        let vfs = Arc::new(FaultVfs::pristine());
        let mut store =
            KnowledgeStore::open_with_vfs(path.clone(), Arc::<FaultVfs>::clone(&vfs)).unwrap();
        store.set_seal_threshold(seal_every);
        for i in 0..runs {
            store.save_knowledge(&knowledge(i)).unwrap();
        }
        (store, vfs, path)
    }

    fn commands(store: &KnowledgeStore) -> Vec<String> {
        store
            .query_summaries(&Query::all(), &DeadlineToken::unbounded())
            .unwrap()
            .into_iter()
            .map(|s| s.command)
            .collect()
    }

    #[test]
    fn compaction_merges_segments_and_drops_tombstones() {
        let (mut store, vfs, path) = store_with_segments(2, 6);
        assert_eq!(store.segment_metas().len(), 3);
        // Delete a sealed run: becomes a tombstone, not a row removal.
        assert!(store.delete_knowledge(1).unwrap());
        assert_eq!(store.tombstone_count(), 1);
        let before = commands(&store);
        assert_eq!(before.len(), 5);

        let report = store.compact().unwrap();
        assert_eq!(report.segments_merged, 3);
        assert_eq!(report.tombstones_dropped, 1);
        assert_eq!(report.runs_rewritten, 5);
        assert!(report.output_segment.is_some());
        assert_eq!(store.segment_metas().len(), 1);
        assert_eq!(store.tombstone_count(), 0);
        assert_eq!(commands(&store), before);

        // The merged layout survives a reopen.
        let reopened = KnowledgeStore::open_with_vfs(path, vfs).unwrap();
        assert_eq!(reopened.segment_metas().len(), 1);
        assert_eq!(commands(&reopened), before);
        assert!(reopened.load_knowledge(1).unwrap().is_none());
    }

    #[test]
    fn compaction_is_a_noop_without_pressure() {
        let (mut store, _vfs, _path) = store_with_segments(2, 2);
        assert_eq!(store.segment_metas().len(), 1);
        assert!(store.compaction_plan().is_noop());
        let report = store.compact().unwrap();
        assert_eq!(report, CompactionReport::default());
        assert_eq!(store.segment_metas().len(), 1);
    }

    #[test]
    fn compaction_can_empty_the_store() {
        let (mut store, vfs, path) = store_with_segments(1, 2);
        assert_eq!(store.segment_metas().len(), 2);
        assert!(store.delete_knowledge(1).unwrap());
        assert!(store.delete_knowledge(2).unwrap());
        let report = store.compact().unwrap();
        assert_eq!(report.output_segment, None);
        assert_eq!(report.tombstones_dropped, 2);
        assert_eq!(store.segment_metas().len(), 0);
        assert_eq!(store.count(&RunPredicate::True).unwrap(), 0);
        let reopened = KnowledgeStore::open_with_vfs(path, vfs).unwrap();
        assert_eq!(reopened.count(&RunPredicate::True).unwrap(), 0);
    }

    #[test]
    fn snapshot_survives_compaction_and_file_removal() {
        let (mut store, _vfs, _path) = store_with_segments(2, 6);
        assert!(store.delete_knowledge(3).unwrap());
        let (snapshot, report) = store.compact_with_snapshot().unwrap();
        assert!(report.output_segment.is_some());
        // The snapshot still sees the pre-compaction state: 5 live runs
        // (the tombstone was already hiding run 3) served from the
        // preloaded bodies of segments whose files are now gone.
        let summaries = snapshot
            .query_summaries(&Query::all(), &DeadlineToken::unbounded())
            .unwrap();
        assert_eq!(summaries.len(), 5);
        assert!(snapshot.load_knowledge(3).unwrap().is_none());
        assert!(snapshot.load_knowledge(4).unwrap().is_some());
    }

    #[test]
    fn compaction_counters_and_generation() {
        let (mut store, _vfs, _path) = store_with_segments(2, 4);
        let recorder = Arc::new(iokc_obs::Recorder::disabled());
        store.attach_recorder(Arc::clone(&recorder));
        let generation = store.generation();
        store.compact().unwrap();
        assert_eq!(store.generation(), generation);
        let counters = recorder.metrics().counters();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(get("store.compaction.runs"), 1);
        assert_eq!(get("store.compaction.segments_merged"), 2);
    }

    #[test]
    fn in_memory_compaction_is_a_noop() {
        let mut store = KnowledgeStore::in_memory();
        store.save_knowledge(&knowledge(0)).unwrap();
        assert_eq!(store.compact().unwrap(), CompactionReport::default());
    }

    /// Everything a snapshot answers, as one comparable value: the
    /// pinned generation, every summary row, and a full deserialization
    /// of each benchmark run.
    fn snapshot_view(snap: &Snapshot) -> (u64, Vec<(RunKind, u64, String)>, usize) {
        let rows = snap
            .query_summaries(&Query::all(), &DeadlineToken::unbounded())
            .unwrap();
        let loaded = rows
            .iter()
            .filter(|r| r.kind == RunKind::Benchmark)
            .filter(|r| snap.load_knowledge(r.id).unwrap().is_some())
            .count();
        (
            snap.generation(),
            rows.into_iter()
                .map(|r| (r.kind, r.id, r.command))
                .collect(),
            loaded,
        )
    }

    mod properties {
        use super::*;
        use crate::query::RunKind;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// MVCC immunity: a snapshot pinned before an arbitrary
            /// interleaving of saves, deletes, seals and compactions
            /// keeps answering exactly the pinned state, even though the
            /// mutations rewrite, merge and unlink the files under it.
            #[test]
            fn snapshot_reads_are_immune_to_concurrent_mutation(
                ops in proptest::collection::vec(0u8..4, 1..20),
                seal_every in 1usize..4,
            ) {
                let (mut store, _vfs, _path) = store_with_segments(seal_every, 5);
                let snap = store.snapshot();
                let pinned = snapshot_view(&snap);
                let mut next = 5usize;
                for op in ops {
                    match op {
                        0 => {
                            store.save_knowledge(&knowledge(next)).unwrap();
                            next += 1;
                        }
                        1 => {
                            let live = store
                                .query_summaries(&Query::all(), &DeadlineToken::unbounded())
                                .unwrap();
                            if let Some(first) =
                                live.iter().find(|r| r.kind == RunKind::Benchmark)
                            {
                                store.delete_knowledge(first.id).unwrap();
                            }
                        }
                        2 => store.seal_active().unwrap(),
                        _ => drop(store.compact().unwrap()),
                    }
                    prop_assert_eq!(snapshot_view(&snap), pinned.clone());
                }
            }
        }
    }
}
