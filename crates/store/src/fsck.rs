//! Offline verification and repair of a store's on-disk state.
//!
//! `iokc fsck [--repair]` runs these checks without bringing the store
//! fully online. The store has two on-disk layouts — the segmented
//! manifest layout ([`crate::knowledge_store`]: manifest at the nominal
//! path, active image at `.active-<epoch>`, sealed segments at
//! `.seg-<id>`) and the legacy single-image layout — and fsck dispatches
//! on the document's format tag:
//!
//! 1. **Document generations** — the document at the nominal path and
//!    its `.bak` rotation must verify their checksum footers. A corrupt
//!    primary with a good backup (or the reverse) is repairable by
//!    promoting or re-rotating the good generation; both corrupt is not.
//! 2. **Active image generations** (manifest layout) — the same
//!    two-generation check at the manifest's `active_path`; if both are
//!    gone the active generation is reset to an empty schema with an
//!    explicit data-loss note.
//! 3. **Segments** (manifest layout) — every referenced segment must
//!    read back; a corrupt one is dropped from the manifest on repair
//!    (data loss, noted). Segment databases get the same
//!    referential-integrity scan as the active one; repairing a segment
//!    rewrites its file with recomputed summaries and index block. A
//!    stale index block (metadata not matching the body) is recomputed.
//! 4. **Tombstones** (manifest layout) — tombstones must reference runs
//!    that exist in some segment; stale ones are dropped on repair.
//! 5. **Strays** — crash-orphaned files at deterministic names: `.tmp`
//!    siblings, active images at non-current epochs, segment files the
//!    manifest does not reference. Removed on repair.
//! 6. **Referential integrity** — checksums only prove the image is the
//!    one that was written, not that it is *sensible*: rows whose
//!    foreign keys point at deleted parents (e.g. from a half-applied
//!    external import) are reported and, on repair, deleted cascade-wise
//!    until the image is closed under its foreign keys.
//! 7. **Index shape** — the query engine's secondary indexes must be
//!    rebuildable from the active tables; an image missing the paper's
//!    schema cannot serve queries and is reported as unrepairable.
//! 8. **Journal tail** (with `--journal`) — a torn trailing record is
//!    reported and, on repair, truncated (idempotently) via
//!    [`crate::journal::truncate_torn_tail_vfs`].
//!
//! The repair pass is designed so that a second `fsck` over the repaired
//! state is clean; anything still reported afterwards is genuinely
//! unrepairable and the store should be served via
//! [`crate::KnowledgeStore::open_or_degraded`].

use crate::database::{Database, DbError, OrderBy, Predicate};
use crate::journal;
use crate::knowledge_store::{build_schema, Manifest, MANIFEST_FORMAT};
use crate::persist;
use crate::query::{run_refs_in_db, summarize_in_db, RunIndexes, RunKind};
use crate::segment::{read_segment_vfs, write_segment_vfs, SegmentMeta};
use crate::value::Value;
use crate::vfs::Vfs;
use iokc_util::json::Json;
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// What `fsck` should do.
#[derive(Debug, Clone, Default)]
pub struct FsckOptions {
    /// Repair what can be repaired instead of only reporting.
    pub repair: bool,
    /// Also check (and on repair, salvage) this journal's tail.
    pub journal: Option<PathBuf>,
}

/// One problem found in the on-disk state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckFinding {
    /// What is wrong.
    pub what: String,
    /// Whether the repair pass fixed it.
    pub repaired: bool,
}

/// Everything one `fsck` pass found.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Problems, in check order.
    pub findings: Vec<FsckFinding>,
    /// Informational notes (which generation is authoritative, …).
    pub notes: Vec<String>,
}

impl FsckReport {
    /// No problems at all.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Problems the repair pass fixed.
    #[must_use]
    pub fn repaired(&self) -> usize {
        self.findings.iter().filter(|f| f.repaired).count()
    }

    /// Problems left standing (repair off, or unrepairable).
    #[must_use]
    pub fn unrepaired(&self) -> usize {
        self.findings.len() - self.repaired()
    }

    fn push(&mut self, what: impl Into<String>, repaired: bool) {
        self.findings.push(FsckFinding {
            what: what.into(),
            repaired,
        });
    }

    fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }
}

/// Verify (and optionally repair) the store layout rooted at `path`.
#[must_use]
pub fn fsck(path: &Path, vfs: &dyn Vfs, opts: &FsckOptions) -> FsckReport {
    let mut report = FsckReport::default();
    check_stray_tmp(path, vfs, opts, &mut report);

    match resolve_document(path, vfs, opts, &mut report) {
        Some(doc) if doc.get("format").and_then(Json::as_str) == Some(MANIFEST_FORMAT) => {
            check_manifest_layout(&doc, path, vfs, opts, &mut report);
        }
        Some(doc) => match persist::from_json(&doc) {
            Ok(mut db) => {
                check_rows(&mut db, path, vfs, opts, &mut report);
                check_indexes(&db, &mut report);
            }
            Err(e) => report.push(format!("image undecodable: {e}"), false),
        },
        None => {}
    }

    if let Some(journal_path) = &opts.journal {
        check_journal(journal_path, vfs, opts, &mut report);
    }

    report
}

/// Resolve the checksummed document at `path` from its two generations
/// (primary + `.bak`), repairing whichever side is unusable from the
/// other. `None` means nothing usable (or nothing at all) is on disk.
fn resolve_document(
    path: &Path,
    vfs: &dyn Vfs,
    opts: &FsckOptions,
    report: &mut FsckReport,
) -> Option<Json> {
    let backup = persist::backup_path(path);
    let primary = vfs
        .exists(path)
        .then(|| persist::read_document_vfs(path, vfs));
    let backup_doc = vfs
        .exists(&backup)
        .then(|| persist::read_document_vfs(&backup, vfs));

    match (primary, backup_doc) {
        (None, None) => {
            report.note("no image on disk: nothing to check");
            None
        }
        (Some(Ok(doc)), None) => Some(doc),
        (Some(Ok(doc)), Some(Ok(_))) => Some(doc),
        (Some(Ok(doc)), Some(Err(e))) => {
            // The backup is the safety net for the *next* torn save;
            // refresh it from the healthy primary.
            let repaired = opts.repair && copy_file(vfs, path, &backup).is_ok();
            report.push(format!("backup image unusable: {e}"), repaired);
            Some(doc)
        }
        (None, Some(Ok(doc))) => {
            let repaired = opts.repair && persist::write_document_vfs(path, vfs, &doc).is_ok();
            report.push("primary image missing; backup generation present", repaired);
            Some(doc)
        }
        (Some(Err(e)), Some(Ok(doc))) => {
            // `write_document_vfs` refuses to rotate a non-verifying
            // primary into the backup slot, so promoting is safe.
            let repaired = opts.repair && persist::write_document_vfs(path, vfs, &doc).is_ok();
            report.push(
                format!("primary image unusable ({e}); promoting backup generation"),
                repaired,
            );
            Some(doc)
        }
        (Some(Err(e)), None) => {
            report.push(format!("primary image unusable and no backup: {e}"), false);
            None
        }
        (None, Some(Err(e))) => {
            report.push(
                format!("primary image missing and backup unusable: {e}"),
                false,
            );
            None
        }
        (Some(Err(pe)), Some(Err(be))) => {
            report.push(
                format!("both image generations unusable (primary: {pe}; backup: {be})"),
                false,
            );
            None
        }
    }
}

/// All checks specific to the segmented layout: active image, segments,
/// tombstones, strays, then the active-generation row and index checks.
fn check_manifest_layout(
    doc: &Json,
    path: &Path,
    vfs: &dyn Vfs,
    opts: &FsckOptions,
    report: &mut FsckReport,
) {
    let mut manifest = match Manifest::from_json(doc) {
        Ok(manifest) => manifest,
        Err(e) => {
            report.push(format!("manifest undecodable: {e}"), false);
            return;
        }
    };
    let mut manifest_changed = false;

    // Active image: two-generation resolve at the manifest's epoch.
    let active = persist::active_path(path, manifest.active_epoch);
    check_stray_tmp(&active, vfs, opts, report);
    let active_db = match resolve_active_image(&active, vfs, opts, report) {
        Some(db) => Some(db),
        None => {
            // The seal/flush protocol makes the active image durable
            // before the manifest that names it; both generations gone
            // is real damage. Resetting to an empty generation restores
            // a servable layout — rows in sealed segments survive.
            let repaired = opts.repair && persist::save_vfs(&build_schema(), &active, vfs).is_ok();
            report.push(
                format!(
                    "active image {} unusable in both generations",
                    active.display()
                ),
                repaired,
            );
            if repaired {
                report.note(
                    "DATA LOSS: active generation reset to empty; sealed segments unaffected",
                );
                Some(build_schema())
            } else {
                None
            }
        }
    };

    // Segments: each referenced segment must read back; its rows must be
    // closed under foreign keys; its index block must match its body.
    let mut kept: Vec<SegmentMeta> = Vec::new();
    let mut live_runs: BTreeSet<(RunKind, u64)> = BTreeSet::new();
    for meta in std::mem::take(&mut manifest.segments) {
        let seg_path = persist::segment_path(path, meta.id);
        match read_segment_vfs(&seg_path, vfs) {
            Err(e) => {
                report.push(
                    format!("segment {} unusable: {e}", seg_path.display()),
                    opts.repair,
                );
                if opts.repair {
                    report.note(format!(
                        "DATA LOSS: segment {} dropped from the manifest",
                        meta.id
                    ));
                    manifest_changed = true;
                    let _ = vfs.remove_file(&seg_path);
                } else {
                    kept.push(meta);
                }
            }
            Ok(data) => {
                let mut db = data.db;
                let mut dirty = check_segment_rows(&mut db, meta.id, opts, report);
                let (summaries, recomputed) = match recompute_segment(meta.id, &db) {
                    Ok(pair) => pair,
                    Err(e) => {
                        report.push(
                            format!("segment {} summaries unrecoverable: {e}", meta.id),
                            false,
                        );
                        kept.push(meta);
                        continue;
                    }
                };
                if !dirty && recomputed != meta {
                    report.push(
                        format!("segment {} index block does not match its body", meta.id),
                        opts.repair,
                    );
                    dirty = true;
                }
                if dirty && opts.repair {
                    if let Err(e) = write_segment_vfs(&seg_path, vfs, meta.id, &summaries, &db) {
                        report.push(format!("segment {} rewrite failed: {e}", meta.id), false);
                        kept.push(meta);
                    } else {
                        manifest_changed = true;
                        live_runs.extend(summaries.iter().map(|s| (s.kind, s.id)));
                        kept.push(recomputed);
                    }
                } else {
                    live_runs.extend(data.summaries.iter().map(|s| (s.kind, s.id)));
                    kept.push(meta);
                }
            }
        }
    }
    manifest.segments = kept;

    // Tombstones must shadow a run that exists in some segment.
    let stale: Vec<(RunKind, u64)> = manifest
        .tombstones
        .iter()
        .filter(|t| !live_runs.contains(t))
        .copied()
        .collect();
    for (kind, id) in stale {
        let repaired = opts.repair && manifest.tombstones.remove(&(kind, id));
        manifest_changed |= repaired;
        report.push(
            format!(
                "tombstone for {} run {id} which no segment holds",
                kind.as_str()
            ),
            repaired,
        );
    }

    // Strays at deterministic names: non-current active epochs and
    // unreferenced segment ids (a crash between a seal/compaction's file
    // writes and its manifest commit leaves exactly these behind).
    let referenced: BTreeSet<u64> = manifest.segments.iter().map(|m| m.id).collect();
    for epoch in 0..=manifest.active_epoch + 2 {
        if epoch == manifest.active_epoch {
            continue;
        }
        let stale_active = persist::active_path(path, epoch);
        check_stray_file(
            &stale_active,
            "active image at a non-current epoch",
            vfs,
            opts,
            report,
        );
    }
    for id in 0..=manifest.next_segment {
        let seg_path = persist::segment_path(path, id);
        if referenced.contains(&id) {
            check_stray_tmp(&seg_path, vfs, opts, report);
        } else {
            check_stray_file(
                &seg_path,
                "segment not referenced by the manifest",
                vfs,
                opts,
                report,
            );
        }
    }

    if manifest_changed && opts.repair {
        if let Err(e) = persist::write_document_vfs(path, vfs, &manifest.to_json()) {
            report.push(format!("manifest rewrite after repair failed: {e}"), false);
        }
    }

    // Finally the active generation's relational and index checks.
    if let Some(mut db) = active_db {
        check_rows(&mut db, &active, vfs, opts, report);
        check_indexes(&db, report);
    }
}

/// Two-generation resolve of a *database image* (the active
/// generation). `None` when neither generation is usable — including
/// when neither exists.
fn resolve_active_image(
    path: &Path,
    vfs: &dyn Vfs,
    opts: &FsckOptions,
    report: &mut FsckReport,
) -> Option<Database> {
    let backup = persist::backup_path(path);
    let primary = vfs.exists(path).then(|| persist::load_vfs(path, vfs));
    let backup_db = vfs.exists(&backup).then(|| persist::load_vfs(&backup, vfs));
    match (primary, backup_db) {
        (None, None) => None,
        (Some(Ok(db)), None) | (Some(Ok(db)), Some(Ok(_))) => Some(db),
        (Some(Ok(db)), Some(Err(e))) => {
            let repaired = opts.repair && copy_file(vfs, path, &backup).is_ok();
            report.push(
                format!("active backup image {} unusable: {e}", backup.display()),
                repaired,
            );
            Some(db)
        }
        (None, Some(Ok(db))) => {
            let repaired = opts.repair && persist::save_vfs(&db, path, vfs).is_ok();
            report.push(
                format!(
                    "active image {} missing; backup generation present",
                    path.display()
                ),
                repaired,
            );
            Some(db)
        }
        (Some(Err(e)), Some(Ok(db))) => {
            let repaired = opts.repair && persist::save_vfs(&db, path, vfs).is_ok();
            report.push(
                format!(
                    "active image {} unusable ({e}); promoting backup generation",
                    path.display()
                ),
                repaired,
            );
            Some(db)
        }
        (Some(Err(_)), None) | (None, Some(Err(_))) | (Some(Err(_)), Some(Err(_))) => None,
    }
}

/// Recompute a segment's summaries and index block from its database.
fn recompute_segment(
    id: u64,
    db: &Database,
) -> Result<(Vec<crate::query::RunSummary>, SegmentMeta), DbError> {
    let refs = run_refs_in_db(db)?;
    let mut summaries = Vec::with_capacity(refs.len());
    for r in refs {
        summaries.push(summarize_in_db(db, r)?);
    }
    summaries.sort_by_key(|a| (a.kind, a.id));
    let meta = SegmentMeta::compute(id, &summaries);
    Ok((summaries, meta))
}

/// Referential-integrity scan of one segment's database; deletes
/// orphans on repair (the caller rewrites the file). Returns whether
/// anything was deleted.
fn check_segment_rows(
    db: &mut Database,
    segment_id: u64,
    opts: &FsckOptions,
    report: &mut FsckReport,
) -> bool {
    let mut deleted_any = false;
    loop {
        let orphans = find_orphans(db);
        if orphans.is_empty() {
            break;
        }
        for (table, id) in &orphans {
            let repaired = opts.repair
                && db
                    .delete(table, &Predicate::Eq("id".into(), Value::Int(*id)))
                    .is_ok();
            report.push(
                format!("segment {segment_id}: {table} row {id} references a missing parent"),
                repaired,
            );
            deleted_any |= repaired;
        }
        if !opts.repair {
            break;
        }
    }
    deleted_any
}

fn check_indexes(db: &Database, report: &mut FsckReport) {
    match RunIndexes::rebuild(db) {
        Ok(_) => report.note("secondary indexes rebuild cleanly from the tables"),
        Err(e) => report.push(format!("index rebuild failed (schema damage?): {e}"), false),
    }
}

fn check_stray_tmp(path: &Path, vfs: &dyn Vfs, opts: &FsckOptions, report: &mut FsckReport) {
    let tmp = persist::temp_path(path);
    if vfs.exists(&tmp) {
        let repaired = opts.repair && vfs.remove_file(&tmp).is_ok();
        report.push(
            format!("stray temp image {} (crash mid-save)", tmp.display()),
            repaired,
        );
    }
}

/// Report (and on repair remove) a file — plus its `.bak`/`.tmp`
/// siblings — that no current layout entry references.
fn check_stray_file(
    path: &Path,
    why: &str,
    vfs: &dyn Vfs,
    opts: &FsckOptions,
    report: &mut FsckReport,
) {
    for stray in [
        path.to_path_buf(),
        persist::backup_path(path),
        persist::temp_path(path),
    ] {
        if vfs.exists(&stray) {
            let repaired = opts.repair && vfs.remove_file(&stray).is_ok();
            report.push(format!("stray file {} ({why})", stray.display()), repaired);
        }
    }
}

/// Referential-integrity scan: every foreign key (and the polymorphic
/// `warnings.owner_id`) must reference a live parent row. Repair deletes
/// orphans to a fixpoint — removing an orphaned summary may orphan its
/// results — then rewrites the image.
fn check_rows(
    db: &mut Database,
    path: &Path,
    vfs: &dyn Vfs,
    opts: &FsckOptions,
    report: &mut FsckReport,
) {
    let mut deleted_any = false;
    loop {
        let orphans = find_orphans(db);
        if orphans.is_empty() {
            break;
        }
        for (table, id) in &orphans {
            let repaired = opts.repair
                && db
                    .delete(table, &Predicate::Eq("id".into(), Value::Int(*id)))
                    .is_ok();
            report.push(
                format!("{table} row {id} references a missing parent"),
                repaired,
            );
            deleted_any |= repaired;
        }
        if !opts.repair {
            break;
        }
    }
    if deleted_any {
        if let Err(e) = persist::save_vfs(db, path, vfs) {
            report.push(format!("rewrite after orphan repair failed: {e}"), false);
        }
    }
}

/// Rows whose declared foreign keys (or `warnings`' implied ones) point
/// at parents that do not exist.
fn find_orphans(db: &Database) -> Vec<(String, i64)> {
    let mut orphans = Vec::new();
    for table in db.table_names() {
        let Ok(schema) = db.schema(table) else {
            continue;
        };
        if schema.foreign_keys.is_empty() && table != "warnings" {
            continue;
        }
        let Ok(rows) = db.select(table, &Predicate::True, OrderBy::Id, None) else {
            continue;
        };
        for row in rows {
            let mut orphan = false;
            for fk in &schema.foreign_keys {
                let Some(ci) = schema.column_index(&fk.column) else {
                    continue;
                };
                if let Some(parent_id) = row.values.get(ci).and_then(Value::as_int) {
                    if !matches!(db.get(&fk.references_table, parent_id), Ok(Some(_))) {
                        orphan = true;
                    }
                }
            }
            if table == "warnings" {
                let parent_table = match row.values.first().and_then(Value::as_text) {
                    Some("benchmark") => Some("performances"),
                    Some("io500") => Some("IOFHsRuns"),
                    _ => None,
                };
                if let (Some(parent_table), Some(owner_id)) =
                    (parent_table, row.values.get(1).and_then(Value::as_int))
                {
                    if !matches!(db.get(parent_table, owner_id), Ok(Some(_))) {
                        orphan = true;
                    }
                }
            }
            if orphan {
                orphans.push((table.to_owned(), row.id));
            }
        }
    }
    orphans
}

fn check_journal(journal_path: &Path, vfs: &dyn Vfs, opts: &FsckOptions, report: &mut FsckReport) {
    match journal::read_journal_vfs(journal_path, vfs) {
        Ok(journal_report) if journal_report.torn_tail => {
            let repaired = opts.repair
                && journal::truncate_torn_tail_vfs(journal_path, vfs)
                    .map(|r| !r.torn_tail || r.dropped_bytes > 0)
                    .is_ok();
            report.push(
                format!(
                    "journal {} has a torn tail ({} bytes after {} valid records)",
                    journal_path.display(),
                    journal_report.dropped_bytes,
                    journal_report.records.len()
                ),
                repaired,
            );
        }
        Ok(journal_report) => {
            report.note(format!(
                "journal {}: {} records, tail intact",
                journal_path.display(),
                journal_report.records.len()
            ));
        }
        Err(e) => {
            report.push(
                format!("journal {} unreadable: {e}", journal_path.display()),
                false,
            );
        }
    }
}

fn copy_file(vfs: &dyn Vfs, from: &Path, to: &Path) -> io::Result<()> {
    let bytes = vfs.read(from)?;
    let mut file = vfs.create(to)?;
    file.write_all(&bytes)?;
    file.sync()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::knowledge_store::KnowledgeStore;
    use crate::vfs::FaultVfs;
    use iokc_core::model::{Knowledge, KnowledgeSource};
    use std::sync::Arc;

    fn kb() -> PathBuf {
        PathBuf::from("/kb.json")
    }

    /// A disk holding a store with two saved generations (primary +
    /// `.bak`), returned as a fresh fault-free filesystem.
    fn two_generations() -> FaultVfs {
        let vfs = Arc::new(FaultVfs::pristine());
        {
            let mut store =
                KnowledgeStore::open_with_vfs(kb(), Arc::clone(&vfs) as Arc<dyn Vfs>).unwrap();
            store
                .save_knowledge(&Knowledge::new(KnowledgeSource::Ior, "gen-one"))
                .unwrap();
            store
                .save_knowledge(&Knowledge::new(KnowledgeSource::Ior, "gen-two"))
                .unwrap();
        }
        FaultVfs::from_state(vfs.durable_state())
    }

    #[test]
    fn clean_store_reports_clean() {
        let vfs = two_generations();
        let report = fsck(&kb(), &vfs, &FsckOptions::default());
        assert!(report.clean(), "{report:?}");
    }

    #[test]
    fn torn_primary_is_repaired_from_backup() {
        let vfs = two_generations();
        let len = vfs.len(&kb()).unwrap();
        vfs.set_len(&kb(), len / 2).unwrap();

        let detect = fsck(&kb(), &vfs, &FsckOptions::default());
        assert_eq!(detect.unrepaired(), 1, "{detect:?}");

        let repair = fsck(
            &kb(),
            &vfs,
            &FsckOptions {
                repair: true,
                journal: None,
            },
        );
        assert_eq!(repair.repaired(), 1, "{repair:?}");
        assert_eq!(repair.unrepaired(), 0);
        // Second pass is clean and the store opens healthy. Tearing the
        // manifest loses no data in the segmented layout: the runs live
        // in the (untouched) active image, and the backup manifest
        // names the same epoch.
        assert!(fsck(&kb(), &vfs, &FsckOptions::default()).clean());
        let store = KnowledgeStore::open_with_vfs(
            kb(),
            Arc::new(FaultVfs::from_state(vfs.durable_state())),
        )
        .unwrap();
        assert!(!store.is_read_only());
        assert_eq!(store.knowledge_count(), 2);
    }

    #[test]
    fn corrupt_backup_is_refreshed_from_primary() {
        let vfs = two_generations();
        let bak = persist::backup_path(&kb());
        vfs.set_len(&bak, 5).unwrap();

        let repair = fsck(
            &kb(),
            &vfs,
            &FsckOptions {
                repair: true,
                journal: None,
            },
        );
        assert_eq!(repair.repaired(), 1, "{repair:?}");
        assert!(fsck(&kb(), &vfs, &FsckOptions::default()).clean());
        assert!(persist::read_document_vfs(&bak, &vfs).is_ok());
    }

    #[test]
    fn stray_temp_image_is_removed() {
        let vfs = two_generations();
        let mut file = vfs.create(&persist::temp_path(&kb())).unwrap();
        file.write_all(b"half-written garbage").unwrap();
        file.sync().unwrap();

        let repair = fsck(
            &kb(),
            &vfs,
            &FsckOptions {
                repair: true,
                journal: None,
            },
        );
        assert_eq!(repair.repaired(), 1, "{repair:?}");
        assert!(fsck(&kb(), &vfs, &FsckOptions::default()).clean());
    }

    #[test]
    fn orphan_rows_are_detected_and_deleted() {
        let vfs = Arc::new(FaultVfs::pristine());
        let mut store = KnowledgeStore::open_with_vfs(kb(), vfs.clone()).unwrap();
        store
            .save_knowledge(&Knowledge::new(KnowledgeSource::Ior, "keeper"))
            .unwrap();
        // A checksum-valid image can still contain rows whose parents
        // were deleted by a buggy external tool: forge one.
        store
            .db
            .insert_raw(
                "summaries",
                999,
                vec![
                    Value::Int(12345), // no such performance
                    Value::from("write"),
                    Value::from("POSIX"),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ],
            )
            .unwrap();
        persist::save_vfs(&store.db, &kb(), vfs.as_ref()).unwrap();

        let check_vfs = FaultVfs::from_state(vfs.durable_state());
        let detect = fsck(&kb(), &check_vfs, &FsckOptions::default());
        assert_eq!(detect.unrepaired(), 1, "{detect:?}");
        let repair = fsck(
            &kb(),
            &check_vfs,
            &FsckOptions {
                repair: true,
                journal: None,
            },
        );
        assert!(repair.repaired() >= 1, "{repair:?}");
        assert!(fsck(&kb(), &check_vfs, &FsckOptions::default()).clean());
        let store = KnowledgeStore::open_with_vfs(
            kb(),
            Arc::new(FaultVfs::from_state(check_vfs.durable_state())),
        )
        .unwrap();
        assert_eq!(store.database().row_count("summaries").unwrap(), 0);
        assert_eq!(store.database().row_count("performances").unwrap(), 1);
        assert!(store.indexes_consistent().unwrap());
    }

    #[test]
    fn both_generations_corrupt_is_unrepairable_but_store_degrades() {
        let vfs = two_generations();
        vfs.set_len(&kb(), 7).unwrap();
        vfs.set_len(&persist::backup_path(&kb()), 7).unwrap();

        let repair = fsck(
            &kb(),
            &vfs,
            &FsckOptions {
                repair: true,
                journal: None,
            },
        );
        assert!(repair.unrepaired() >= 1, "{repair:?}");

        let store = KnowledgeStore::open_or_degraded_with_vfs(
            kb(),
            Arc::new(FaultVfs::from_state(vfs.durable_state())),
        );
        assert!(store.is_read_only());
        assert_eq!(store.health().status(), "degraded");
        // Reads keep working over the empty schema instead of erroring.
        assert_eq!(store.knowledge_count(), 0);
        assert!(store.load_knowledge(1).unwrap().is_none());
    }

    #[test]
    fn torn_journal_tail_is_salvaged() {
        let vfs = two_generations();
        let journal_path = PathBuf::from("/events.journal");
        {
            let mut writer = journal::JournalWriter::open_vfs(&journal_path, &vfs).unwrap();
            writer.append("alpha").unwrap();
            writer.append("beta").unwrap();
        }
        let len = vfs.len(&journal_path).unwrap();
        vfs.set_len(&journal_path, len - 4).unwrap();

        let opts = FsckOptions {
            repair: true,
            journal: Some(journal_path.clone()),
        };
        let repair = fsck(&kb(), &vfs, &opts);
        assert_eq!(repair.repaired(), 1, "{repair:?}");
        let after = fsck(&kb(), &vfs, &opts);
        assert!(after.clean(), "{after:?}");
        let report = journal::read_journal_vfs(&journal_path, &vfs).unwrap();
        assert_eq!(report.records, vec!["alpha".to_owned()]);
    }
}
