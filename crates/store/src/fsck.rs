//! Offline verification and repair of a store's on-disk state.
//!
//! `iokc fsck [--repair]` runs these checks without bringing the store
//! fully online:
//!
//! 1. **Image generations** — the primary image and its `.bak` rotation
//!    must verify their checksum footers and decode. A corrupt primary
//!    with a good backup (or the reverse) is repairable by promoting or
//!    re-rotating the good generation; both generations corrupt is not.
//! 2. **Stray temp files** — a crash between the temp write and the
//!    rename leaves a `.tmp` sibling; harmless, but removed on repair.
//! 3. **Referential integrity** — checksums only prove the image is the
//!    one that was written, not that it is *sensible*: rows whose
//!    foreign keys point at deleted parents (e.g. from a half-applied
//!    external import) are reported and, on repair, deleted cascade-wise
//!    until the image is closed under its foreign keys.
//! 4. **Index shape** — the query engine's secondary indexes must be
//!    rebuildable from the tables; an image missing the paper's schema
//!    cannot serve queries and is reported as unrepairable.
//! 5. **Journal tail** (with `--journal`) — a torn trailing record is
//!    reported and, on repair, truncated (idempotently) via
//!    [`crate::journal::truncate_torn_tail_vfs`].
//!
//! The repair pass is designed so that a second `fsck` over the repaired
//! state is clean; anything still reported afterwards is genuinely
//! unrepairable and the store should be served via
//! [`crate::KnowledgeStore::open_or_degraded`].

use crate::database::{Database, OrderBy, Predicate};
use crate::journal;
use crate::persist;
use crate::query::RunIndexes;
use crate::value::Value;
use crate::vfs::Vfs;
use std::io;
use std::path::{Path, PathBuf};

/// What `fsck` should do.
#[derive(Debug, Clone, Default)]
pub struct FsckOptions {
    /// Repair what can be repaired instead of only reporting.
    pub repair: bool,
    /// Also check (and on repair, salvage) this journal's tail.
    pub journal: Option<PathBuf>,
}

/// One problem found in the on-disk state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckFinding {
    /// What is wrong.
    pub what: String,
    /// Whether the repair pass fixed it.
    pub repaired: bool,
}

/// Everything one `fsck` pass found.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Problems, in check order.
    pub findings: Vec<FsckFinding>,
    /// Informational notes (which generation is authoritative, …).
    pub notes: Vec<String>,
}

impl FsckReport {
    /// No problems at all.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Problems the repair pass fixed.
    #[must_use]
    pub fn repaired(&self) -> usize {
        self.findings.iter().filter(|f| f.repaired).count()
    }

    /// Problems left standing (repair off, or unrepairable).
    #[must_use]
    pub fn unrepaired(&self) -> usize {
        self.findings.len() - self.repaired()
    }

    fn push(&mut self, what: impl Into<String>, repaired: bool) {
        self.findings.push(FsckFinding {
            what: what.into(),
            repaired,
        });
    }

    fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }
}

/// Verify (and optionally repair) the store image at `path`.
#[must_use]
pub fn fsck(path: &Path, vfs: &dyn Vfs, opts: &FsckOptions) -> FsckReport {
    let mut report = FsckReport::default();
    let backup = persist::backup_path(path);
    let tmp = persist::temp_path(path);

    if vfs.exists(&tmp) {
        let repaired = opts.repair && vfs.remove_file(&tmp).is_ok();
        report.push(
            format!("stray temp image {} (crash mid-save)", tmp.display()),
            repaired,
        );
    }

    let primary = vfs.exists(path).then(|| persist::load_vfs(path, vfs));
    let backup_db = vfs.exists(&backup).then(|| persist::load_vfs(&backup, vfs));

    let db = match (primary, backup_db) {
        (None, None) => {
            report.note("no image on disk: nothing to check");
            None
        }
        (Some(Ok(db)), None) => Some(db),
        (Some(Ok(db)), Some(Ok(_))) => Some(db),
        (Some(Ok(db)), Some(Err(e))) => {
            // The backup is the safety net for the *next* torn save;
            // refresh it from the healthy primary.
            let repaired = opts.repair && copy_file(vfs, path, &backup).is_ok();
            report.push(format!("backup image unusable: {e}"), repaired);
            Some(db)
        }
        (None, Some(Ok(db))) => {
            let repaired = opts.repair && persist::save_vfs(&db, path, vfs).is_ok();
            report.push("primary image missing; backup generation present", repaired);
            Some(db)
        }
        (Some(Err(e)), Some(Ok(db))) => {
            // `save_vfs` refuses to rotate a non-verifying primary into
            // the backup slot, so promoting is safe.
            let repaired = opts.repair && persist::save_vfs(&db, path, vfs).is_ok();
            report.push(
                format!("primary image unusable ({e}); promoting backup generation"),
                repaired,
            );
            Some(db)
        }
        (Some(Err(e)), None) => {
            report.push(format!("primary image unusable and no backup: {e}"), false);
            None
        }
        (None, Some(Err(e))) => {
            report.push(
                format!("primary image missing and backup unusable: {e}"),
                false,
            );
            None
        }
        (Some(Err(pe)), Some(Err(be))) => {
            report.push(
                format!("both image generations unusable (primary: {pe}; backup: {be})"),
                false,
            );
            None
        }
    };

    if let Some(mut db) = db {
        check_rows(&mut db, path, vfs, opts, &mut report);
        match RunIndexes::rebuild(&db) {
            Ok(_) => report.note("secondary indexes rebuild cleanly from the tables"),
            Err(e) => report.push(format!("index rebuild failed (schema damage?): {e}"), false),
        }
    }

    if let Some(journal_path) = &opts.journal {
        check_journal(journal_path, vfs, opts, &mut report);
    }

    report
}

/// Referential-integrity scan: every foreign key (and the polymorphic
/// `warnings.owner_id`) must reference a live parent row. Repair deletes
/// orphans to a fixpoint — removing an orphaned summary may orphan its
/// results — then rewrites the image.
fn check_rows(
    db: &mut Database,
    path: &Path,
    vfs: &dyn Vfs,
    opts: &FsckOptions,
    report: &mut FsckReport,
) {
    let mut deleted_any = false;
    loop {
        let orphans = find_orphans(db);
        if orphans.is_empty() {
            break;
        }
        for (table, id) in &orphans {
            let repaired = opts.repair
                && db
                    .delete(table, &Predicate::Eq("id".into(), Value::Int(*id)))
                    .is_ok();
            report.push(
                format!("{table} row {id} references a missing parent"),
                repaired,
            );
            deleted_any |= repaired;
        }
        if !opts.repair {
            break;
        }
    }
    if deleted_any {
        if let Err(e) = persist::save_vfs(db, path, vfs) {
            report.push(format!("rewrite after orphan repair failed: {e}"), false);
        }
    }
}

/// Rows whose declared foreign keys (or `warnings`' implied ones) point
/// at parents that do not exist.
fn find_orphans(db: &Database) -> Vec<(String, i64)> {
    let mut orphans = Vec::new();
    for table in db.table_names() {
        let Ok(schema) = db.schema(table) else {
            continue;
        };
        if schema.foreign_keys.is_empty() && table != "warnings" {
            continue;
        }
        let Ok(rows) = db.select(table, &Predicate::True, OrderBy::Id, None) else {
            continue;
        };
        for row in rows {
            let mut orphan = false;
            for fk in &schema.foreign_keys {
                let Some(ci) = schema.column_index(&fk.column) else {
                    continue;
                };
                if let Some(parent_id) = row.values.get(ci).and_then(Value::as_int) {
                    if !matches!(db.get(&fk.references_table, parent_id), Ok(Some(_))) {
                        orphan = true;
                    }
                }
            }
            if table == "warnings" {
                let parent_table = match row.values.first().and_then(Value::as_text) {
                    Some("benchmark") => Some("performances"),
                    Some("io500") => Some("IOFHsRuns"),
                    _ => None,
                };
                if let (Some(parent_table), Some(owner_id)) =
                    (parent_table, row.values.get(1).and_then(Value::as_int))
                {
                    if !matches!(db.get(parent_table, owner_id), Ok(Some(_))) {
                        orphan = true;
                    }
                }
            }
            if orphan {
                orphans.push((table.to_owned(), row.id));
            }
        }
    }
    orphans
}

fn check_journal(journal_path: &Path, vfs: &dyn Vfs, opts: &FsckOptions, report: &mut FsckReport) {
    match journal::read_journal_vfs(journal_path, vfs) {
        Ok(journal_report) if journal_report.torn_tail => {
            let repaired = opts.repair
                && journal::truncate_torn_tail_vfs(journal_path, vfs)
                    .map(|r| !r.torn_tail || r.dropped_bytes > 0)
                    .is_ok();
            report.push(
                format!(
                    "journal {} has a torn tail ({} bytes after {} valid records)",
                    journal_path.display(),
                    journal_report.dropped_bytes,
                    journal_report.records.len()
                ),
                repaired,
            );
        }
        Ok(journal_report) => {
            report.note(format!(
                "journal {}: {} records, tail intact",
                journal_path.display(),
                journal_report.records.len()
            ));
        }
        Err(e) => {
            report.push(
                format!("journal {} unreadable: {e}", journal_path.display()),
                false,
            );
        }
    }
}

fn copy_file(vfs: &dyn Vfs, from: &Path, to: &Path) -> io::Result<()> {
    let bytes = vfs.read(from)?;
    let mut file = vfs.create(to)?;
    file.write_all(&bytes)?;
    file.sync()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::knowledge_store::KnowledgeStore;
    use crate::vfs::FaultVfs;
    use iokc_core::model::{Knowledge, KnowledgeSource};
    use std::sync::Arc;

    fn kb() -> PathBuf {
        PathBuf::from("/kb.json")
    }

    /// A disk holding a store with two saved generations (primary +
    /// `.bak`), returned as a fresh fault-free filesystem.
    fn two_generations() -> FaultVfs {
        let vfs = Arc::new(FaultVfs::pristine());
        {
            let mut store =
                KnowledgeStore::open_with_vfs(kb(), Arc::clone(&vfs) as Arc<dyn Vfs>).unwrap();
            store
                .save_knowledge(&Knowledge::new(KnowledgeSource::Ior, "gen-one"))
                .unwrap();
            store
                .save_knowledge(&Knowledge::new(KnowledgeSource::Ior, "gen-two"))
                .unwrap();
        }
        FaultVfs::from_state(vfs.durable_state())
    }

    #[test]
    fn clean_store_reports_clean() {
        let vfs = two_generations();
        let report = fsck(&kb(), &vfs, &FsckOptions::default());
        assert!(report.clean(), "{report:?}");
    }

    #[test]
    fn torn_primary_is_repaired_from_backup() {
        let vfs = two_generations();
        let len = vfs.len(&kb()).unwrap();
        vfs.set_len(&kb(), len / 2).unwrap();

        let detect = fsck(&kb(), &vfs, &FsckOptions::default());
        assert_eq!(detect.unrepaired(), 1, "{detect:?}");

        let repair = fsck(
            &kb(),
            &vfs,
            &FsckOptions {
                repair: true,
                journal: None,
            },
        );
        assert_eq!(repair.repaired(), 1, "{repair:?}");
        assert_eq!(repair.unrepaired(), 0);
        // Second pass is clean and the store opens healthy on the
        // backup's generation.
        assert!(fsck(&kb(), &vfs, &FsckOptions::default()).clean());
        let store = KnowledgeStore::open_with_vfs(
            kb(),
            Arc::new(FaultVfs::from_state(vfs.durable_state())),
        )
        .unwrap();
        assert!(!store.is_read_only());
        assert_eq!(store.knowledge_count(), 1);
    }

    #[test]
    fn corrupt_backup_is_refreshed_from_primary() {
        let vfs = two_generations();
        let bak = persist::backup_path(&kb());
        vfs.set_len(&bak, 5).unwrap();

        let repair = fsck(
            &kb(),
            &vfs,
            &FsckOptions {
                repair: true,
                journal: None,
            },
        );
        assert_eq!(repair.repaired(), 1, "{repair:?}");
        assert!(fsck(&kb(), &vfs, &FsckOptions::default()).clean());
        assert!(persist::load_vfs(&bak, &vfs).is_ok());
    }

    #[test]
    fn stray_temp_image_is_removed() {
        let vfs = two_generations();
        let mut file = vfs.create(&persist::temp_path(&kb())).unwrap();
        file.write_all(b"half-written garbage").unwrap();
        file.sync().unwrap();

        let repair = fsck(
            &kb(),
            &vfs,
            &FsckOptions {
                repair: true,
                journal: None,
            },
        );
        assert_eq!(repair.repaired(), 1, "{repair:?}");
        assert!(fsck(&kb(), &vfs, &FsckOptions::default()).clean());
    }

    #[test]
    fn orphan_rows_are_detected_and_deleted() {
        let vfs = Arc::new(FaultVfs::pristine());
        let mut store = KnowledgeStore::open_with_vfs(kb(), vfs.clone()).unwrap();
        store
            .save_knowledge(&Knowledge::new(KnowledgeSource::Ior, "keeper"))
            .unwrap();
        // A checksum-valid image can still contain rows whose parents
        // were deleted by a buggy external tool: forge one.
        store
            .db
            .insert_raw(
                "summaries",
                999,
                vec![
                    Value::Int(12345), // no such performance
                    Value::from("write"),
                    Value::from("POSIX"),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ],
            )
            .unwrap();
        persist::save_vfs(&store.db, &kb(), vfs.as_ref()).unwrap();

        let check_vfs = FaultVfs::from_state(vfs.durable_state());
        let detect = fsck(&kb(), &check_vfs, &FsckOptions::default());
        assert_eq!(detect.unrepaired(), 1, "{detect:?}");
        let repair = fsck(
            &kb(),
            &check_vfs,
            &FsckOptions {
                repair: true,
                journal: None,
            },
        );
        assert!(repair.repaired() >= 1, "{repair:?}");
        assert!(fsck(&kb(), &check_vfs, &FsckOptions::default()).clean());
        let store = KnowledgeStore::open_with_vfs(
            kb(),
            Arc::new(FaultVfs::from_state(check_vfs.durable_state())),
        )
        .unwrap();
        assert_eq!(store.database().row_count("summaries").unwrap(), 0);
        assert_eq!(store.database().row_count("performances").unwrap(), 1);
        assert!(store.indexes_consistent().unwrap());
    }

    #[test]
    fn both_generations_corrupt_is_unrepairable_but_store_degrades() {
        let vfs = two_generations();
        vfs.set_len(&kb(), 7).unwrap();
        vfs.set_len(&persist::backup_path(&kb()), 7).unwrap();

        let repair = fsck(
            &kb(),
            &vfs,
            &FsckOptions {
                repair: true,
                journal: None,
            },
        );
        assert!(repair.unrepaired() >= 1, "{repair:?}");

        let store = KnowledgeStore::open_or_degraded_with_vfs(
            kb(),
            Arc::new(FaultVfs::from_state(vfs.durable_state())),
        );
        assert!(store.is_read_only());
        assert_eq!(store.health().status(), "degraded");
        // Reads keep working over the empty schema instead of erroring.
        assert_eq!(store.knowledge_count(), 0);
        assert!(store.load_knowledge(1).unwrap().is_none());
    }

    #[test]
    fn torn_journal_tail_is_salvaged() {
        let vfs = two_generations();
        let journal_path = PathBuf::from("/events.journal");
        {
            let mut writer = journal::JournalWriter::open_vfs(&journal_path, &vfs).unwrap();
            writer.append("alpha").unwrap();
            writer.append("beta").unwrap();
        }
        let len = vfs.len(&journal_path).unwrap();
        vfs.set_len(&journal_path, len - 4).unwrap();

        let opts = FsckOptions {
            repair: true,
            journal: Some(journal_path.clone()),
        };
        let repair = fsck(&kb(), &vfs, &opts);
        assert_eq!(repair.repaired(), 1, "{repair:?}");
        let after = fsck(&kb(), &vfs, &opts);
        assert!(after.clean(), "{after:?}");
        let report = journal::read_journal_vfs(&journal_path, &vfs).unwrap();
        assert_eq!(report.records, vec!["alpha".to_owned()]);
    }
}
