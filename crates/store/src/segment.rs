//! Immutable on-disk segments of the segmented store.
//!
//! When the active generation grows past its seal threshold, the store
//! freezes it into a *segment*: a checksummed document holding the full
//! database image of those runs plus their pre-computed
//! [`RunSummary`] projections. Each segment carries a [`SegmentMeta`]
//! index block — run counts, id/task/bandwidth ranges, the API set, and
//! a bloom-style membership filter — which lives in the store manifest,
//! so `open()` maps metadata only and never reads segment bodies until a
//! query actually needs them.
//!
//! Bloom sizing: 10 bits per entry with 7 probes gives a false-positive
//! rate under 1% — a false positive costs one wasted segment body load,
//! never a wrong answer, because the executor re-evaluates the full
//! predicate against the summaries it loads.

use crate::database::{Database, DbError};
use crate::persist;
use crate::query::{OpStat, RunKind, RunPredicate, RunSummary};
use crate::vfs::Vfs;
use iokc_util::json::Json;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Bloom-style membership filter over `(kind, id)` run keys.
///
/// Double hashing: two FNV-1a hashes with distinct seeds drive `k`
/// probe positions, `bit_i = (h1 + i·h2) mod m`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Bloom {
    bits: Vec<u64>,
    probes: u32,
}

const BLOOM_PROBES: u32 = 7;
const BLOOM_BITS_PER_ENTRY: usize = 10;

fn fnv1a_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn run_key_bytes(kind: RunKind, id: u64) -> [u8; 9] {
    let mut bytes = [0u8; 9];
    bytes[0] = match kind {
        RunKind::Benchmark => 0,
        RunKind::Io500 => 1,
    };
    bytes[1..].copy_from_slice(&id.to_le_bytes());
    bytes
}

impl Bloom {
    /// A filter sized for `entries` keys (at least one word).
    #[must_use]
    pub(crate) fn with_capacity(entries: usize) -> Bloom {
        let bits = (entries * BLOOM_BITS_PER_ENTRY).max(1).div_ceil(64);
        Bloom {
            bits: vec![0; bits],
            probes: BLOOM_PROBES,
        }
    }

    fn positions(&self, kind: RunKind, id: u64) -> impl Iterator<Item = (usize, u64)> + '_ {
        let key = run_key_bytes(kind, id);
        let h1 = fnv1a_seeded(0xcbf2_9ce4_8422_2325, &key);
        let h2 = fnv1a_seeded(0x6c62_272e_07bb_0142, &key) | 1;
        let m = self.bits.len() as u64 * 64;
        (0..u64::from(self.probes)).map(move |i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % m;
            ((bit / 64) as usize, 1u64 << (bit % 64))
        })
    }

    /// Record a run key.
    pub(crate) fn insert(&mut self, kind: RunKind, id: u64) {
        for (word, mask) in self.positions(kind, id).collect::<Vec<_>>() {
            self.bits[word] |= mask;
        }
    }

    /// Whether the key may be present (false = definitely absent).
    #[must_use]
    pub(crate) fn may_contain(&self, kind: RunKind, id: u64) -> bool {
        self.positions(kind, id)
            .collect::<Vec<_>>()
            .into_iter()
            .all(|(word, mask)| self.bits[word] & mask != 0)
    }

    fn to_hex(&self) -> String {
        let mut out = String::with_capacity(self.bits.len() * 16);
        for word in &self.bits {
            out.push_str(&format!("{word:016x}"));
        }
        out
    }

    fn from_hex(text: &str) -> Result<Bloom, DbError> {
        if text.is_empty() || !text.len().is_multiple_of(16) {
            return Err(DbError::Corrupt(format!(
                "bloom filter hex has bad length {}",
                text.len()
            )));
        }
        let mut bits = Vec::with_capacity(text.len() / 16);
        for chunk in text.as_bytes().chunks(16) {
            let chunk = std::str::from_utf8(chunk)
                .map_err(|e| DbError::Corrupt(format!("bloom filter not ascii: {e}")))?;
            bits.push(
                u64::from_str_radix(chunk, 16)
                    .map_err(|e| DbError::Corrupt(format!("bloom filter word {chunk:?}: {e}")))?,
            );
        }
        Ok(Bloom {
            bits,
            probes: BLOOM_PROBES,
        })
    }
}

/// The index block of one sealed segment — everything the query planner
/// needs to *skip* a segment without reading its body. Lives in the
/// store manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentMeta {
    /// Segment id (file name suffix; monotonically assigned).
    pub id: u64,
    /// How many benchmark runs the segment holds.
    pub bench_count: usize,
    /// How many IO500 runs the segment holds.
    pub io500_count: usize,
    /// Inclusive benchmark id range, when any are present.
    pub bench_ids: Option<(u64, u64)>,
    /// Inclusive IO500 id range, when any are present.
    pub io500_ids: Option<(u64, u64)>,
    /// Inclusive task-count range over all runs.
    pub tasks: Option<(u32, u32)>,
    /// Inclusive bandwidth range (write mean / `bw_score`).
    pub bandwidth: Option<(f64, f64)>,
    /// Every API string appearing in the segment (`""` for IO500 runs).
    pub apis: BTreeSet<String>,
    /// Membership filter over `(kind, id)` keys.
    pub(crate) bloom: Bloom,
}

impl SegmentMeta {
    /// Compute the index block for the runs in `summaries`.
    #[must_use]
    pub fn compute(id: u64, summaries: &[RunSummary]) -> SegmentMeta {
        let mut meta = SegmentMeta {
            id,
            bench_count: 0,
            io500_count: 0,
            bench_ids: None,
            io500_ids: None,
            tasks: None,
            bandwidth: None,
            apis: BTreeSet::new(),
            bloom: Bloom::with_capacity(summaries.len()),
        };
        fn widen<T: Copy + PartialOrd>(range: &mut Option<(T, T)>, v: T) {
            *range = Some(match *range {
                None => (v, v),
                Some((lo, hi)) => (if v < lo { v } else { lo }, if v > hi { v } else { hi }),
            });
        }
        for s in summaries {
            match s.kind {
                RunKind::Benchmark => {
                    meta.bench_count += 1;
                    widen(&mut meta.bench_ids, s.id);
                }
                RunKind::Io500 => {
                    meta.io500_count += 1;
                    widen(&mut meta.io500_ids, s.id);
                }
            }
            widen(&mut meta.tasks, s.tasks);
            widen(&mut meta.bandwidth, s.bandwidth());
            meta.apis.insert(s.api.clone());
            meta.bloom.insert(s.kind, s.id);
        }
        meta
    }

    /// Runs of `kind` in this segment.
    #[must_use]
    pub fn count(&self, kind: RunKind) -> usize {
        match kind {
            RunKind::Benchmark => self.bench_count,
            RunKind::Io500 => self.io500_count,
        }
    }

    /// Manifest-block JSON form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let range_u64 = |r: Option<(u64, u64)>| match r {
            Some((lo, hi)) => Json::Arr(vec![Json::from(lo), Json::from(hi)]),
            None => Json::Null,
        };
        Json::obj(vec![
            ("id", Json::from(self.id)),
            ("bench_count", Json::from(self.bench_count)),
            ("io500_count", Json::from(self.io500_count)),
            ("bench_ids", range_u64(self.bench_ids)),
            ("io500_ids", range_u64(self.io500_ids)),
            (
                "tasks",
                match self.tasks {
                    Some((lo, hi)) => {
                        Json::Arr(vec![Json::from(u64::from(lo)), Json::from(u64::from(hi))])
                    }
                    None => Json::Null,
                },
            ),
            (
                "bandwidth",
                match self.bandwidth {
                    Some((lo, hi)) => Json::Arr(vec![Json::from(lo), Json::from(hi)]),
                    None => Json::Null,
                },
            ),
            (
                "apis",
                Json::Arr(self.apis.iter().map(|a| Json::from(a.as_str())).collect()),
            ),
            ("bloom", Json::from(self.bloom.to_hex())),
        ])
    }

    /// Parse a manifest block back into an index block.
    pub fn from_json(json: &Json) -> Result<SegmentMeta, DbError> {
        let corrupt = |what: &str| DbError::Corrupt(format!("segment meta: {what}"));
        let id = json
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| corrupt("missing id"))?;
        let count = |key: &str| -> Result<usize, DbError> {
            json.get(key)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| corrupt(&format!("missing {key}")))
        };
        let range_u64 = |key: &str| -> Result<Option<(u64, u64)>, DbError> {
            match json.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Arr(pair)) if pair.len() == 2 => {
                    match (pair[0].as_u64(), pair[1].as_u64()) {
                        (Some(lo), Some(hi)) => Ok(Some((lo, hi))),
                        _ => Err(corrupt(&format!("bad {key} range"))),
                    }
                }
                Some(_) => Err(corrupt(&format!("bad {key} range"))),
            }
        };
        let bandwidth = match json.get("bandwidth") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(pair)) if pair.len() == 2 => {
                match (pair[0].as_f64(), pair[1].as_f64()) {
                    (Some(lo), Some(hi)) => Some((lo, hi)),
                    _ => return Err(corrupt("bad bandwidth range")),
                }
            }
            Some(_) => return Err(corrupt("bad bandwidth range")),
        };
        let mut apis = BTreeSet::new();
        if let Some(list) = json.get("apis").and_then(Json::as_arr) {
            for api in list {
                apis.insert(
                    api.as_str()
                        .ok_or_else(|| corrupt("non-text api"))?
                        .to_owned(),
                );
            }
        }
        let bloom = Bloom::from_hex(
            json.get("bloom")
                .and_then(Json::as_str)
                .ok_or_else(|| corrupt("missing bloom"))?,
        )?;
        let tasks = range_u64("tasks")?.map(|(lo, hi)| (lo as u32, hi as u32));
        Ok(SegmentMeta {
            id,
            bench_count: count("bench_count")?,
            io500_count: count("io500_count")?,
            bench_ids: range_u64("bench_ids")?,
            io500_ids: range_u64("io500_ids")?,
            tasks,
            bandwidth,
            apis,
            bloom,
        })
    }
}

/// The body of a segment: the pre-computed projections the executor
/// scans, and the full database image full deserialization joins against.
#[derive(Debug)]
pub struct SegmentData {
    /// Every run's projection row, in `(kind, id)` order.
    pub summaries: Vec<RunSummary>,
    /// The runs' rows, exactly as they were in the active generation at
    /// seal time (ids preserved).
    pub db: Database,
}

/// One immutable sealed segment: its index block, its file, and a
/// lazily-loaded body shared by every reader.
#[derive(Debug)]
pub struct Segment {
    /// The index block (also stored in the manifest).
    pub meta: SegmentMeta,
    path: PathBuf,
    data: Mutex<Option<Arc<SegmentData>>>,
}

impl Segment {
    /// A segment whose body will be read from `path` on first use.
    #[must_use]
    pub fn new(meta: SegmentMeta, path: PathBuf) -> Segment {
        Segment {
            meta,
            path,
            data: Mutex::new(None),
        }
    }

    /// A segment whose body is already in memory (just sealed, or about
    /// to have its file removed by compaction while snapshots still hold
    /// the handle).
    #[must_use]
    pub fn preloaded(meta: SegmentMeta, path: PathBuf, data: Arc<SegmentData>) -> Segment {
        Segment {
            meta,
            path,
            data: Mutex::new(Some(data)),
        }
    }

    /// The segment's file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The body, reading and caching it on first use. Concurrent callers
    /// share one `Arc`; the cache is never evicted for the lifetime of
    /// the handle (snapshot lifetime rule: a `Snapshot` holding this
    /// segment stays readable even after compaction unlinks the file).
    pub fn data(&self, vfs: &dyn Vfs) -> Result<Arc<SegmentData>, DbError> {
        let mut slot = self
            .data
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(data) = &*slot {
            return Ok(Arc::clone(data));
        }
        let data = Arc::new(read_segment_vfs(&self.path, vfs)?);
        *slot = Some(Arc::clone(&data));
        Ok(data)
    }

    /// Load and cache the body now (compaction calls this before
    /// unlinking input files).
    pub fn preload_data(&self, vfs: &dyn Vfs) -> Result<(), DbError> {
        self.data(vfs).map(|_| ())
    }
}

/// Format tag of segment documents.
const SEGMENT_FORMAT: &str = "iokc-segment";

/// Write a segment document crash-safely.
pub fn write_segment_vfs(
    path: &Path,
    vfs: &dyn Vfs,
    id: u64,
    summaries: &[RunSummary],
    db: &Database,
) -> Result<(), std::io::Error> {
    let body = Json::obj(vec![
        ("format", Json::from(SEGMENT_FORMAT)),
        ("version", Json::from(1u64)),
        ("id", Json::from(id)),
        (
            "summaries",
            Json::Arr(summaries.iter().map(summary_to_json).collect()),
        ),
        ("db", persist::to_json(db)),
    ]);
    persist::write_document_vfs(path, vfs, &body)
}

/// Read a segment body, verifying its checksum and format tag.
pub fn read_segment_vfs(path: &Path, vfs: &dyn Vfs) -> Result<SegmentData, DbError> {
    let doc = persist::read_document_vfs(path, vfs)?;
    if doc.get("format").and_then(Json::as_str) != Some(SEGMENT_FORMAT) {
        return Err(DbError::Corrupt(format!(
            "{}: missing {SEGMENT_FORMAT} format tag",
            path.display()
        )));
    }
    let mut summaries = Vec::new();
    for s in doc
        .get("summaries")
        .and_then(Json::as_arr)
        .ok_or_else(|| DbError::Corrupt(format!("{}: missing summaries", path.display())))?
    {
        summaries.push(summary_from_json(s)?);
    }
    let db = persist::from_json(
        doc.get("db")
            .ok_or_else(|| DbError::Corrupt(format!("{}: missing db image", path.display())))?,
    )?;
    Ok(SegmentData { summaries, db })
}

/// Serialize one projection row for a segment body.
#[must_use]
pub(crate) fn summary_to_json(s: &RunSummary) -> Json {
    Json::obj(vec![
        ("kind", Json::from(s.kind.as_str())),
        ("id", Json::from(s.id)),
        ("command", Json::from(s.command.as_str())),
        ("api", Json::from(s.api.as_str())),
        ("tasks", Json::from(u64::from(s.tasks))),
        ("block_size", Json::from(s.block_size)),
        ("transfer_size", Json::from(s.transfer_size)),
        ("segments", Json::from(s.segments)),
        (
            "clients_per_node",
            Json::from(u64::from(s.clients_per_node)),
        ),
        (
            "ops",
            Json::Arr(
                s.ops
                    .iter()
                    .map(|o| {
                        Json::obj(vec![
                            ("operation", Json::from(o.operation.as_str())),
                            ("mean_mib", Json::from(o.mean_mib)),
                            ("max_mib", Json::from(o.max_mib)),
                            ("mean_ops", Json::from(o.mean_ops)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("bw_score", Json::from(s.bw_score)),
        ("md_score", Json::from(s.md_score)),
        ("total_score", Json::from(s.total_score)),
        ("warning_count", Json::from(s.warning_count)),
    ])
}

/// Parse one projection row from a segment body.
pub(crate) fn summary_from_json(json: &Json) -> Result<RunSummary, DbError> {
    let corrupt = |what: &str| DbError::Corrupt(format!("segment summary: {what}"));
    let kind = match json.get("kind").and_then(Json::as_str) {
        Some("benchmark") => RunKind::Benchmark,
        Some("io500") => RunKind::Io500,
        other => return Err(corrupt(&format!("bad kind {other:?}"))),
    };
    let u64_field = |key: &str| -> Result<u64, DbError> {
        json.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| corrupt(&format!("missing {key}")))
    };
    let f64_field = |key: &str| -> Result<f64, DbError> {
        json.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| corrupt(&format!("missing {key}")))
    };
    let str_field = |key: &str| -> Result<String, DbError> {
        json.get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| corrupt(&format!("missing {key}")))
    };
    let mut ops = Vec::new();
    if let Some(list) = json.get("ops").and_then(Json::as_arr) {
        for o in list {
            ops.push(OpStat {
                operation: o
                    .get("operation")
                    .and_then(Json::as_str)
                    .ok_or_else(|| corrupt("op without operation"))?
                    .to_owned(),
                mean_mib: o.get("mean_mib").and_then(Json::as_f64).unwrap_or(0.0),
                max_mib: o.get("max_mib").and_then(Json::as_f64).unwrap_or(0.0),
                mean_ops: o.get("mean_ops").and_then(Json::as_f64).unwrap_or(0.0),
            });
        }
    }
    Ok(RunSummary {
        kind,
        id: u64_field("id")?,
        command: str_field("command")?,
        api: str_field("api")?,
        tasks: u64_field("tasks")? as u32,
        block_size: u64_field("block_size")?,
        transfer_size: u64_field("transfer_size")?,
        segments: u64_field("segments")?,
        clients_per_node: u64_field("clients_per_node")? as u32,
        ops,
        bw_score: f64_field("bw_score")?,
        md_score: f64_field("md_score")?,
        total_score: f64_field("total_score")?,
        warning_count: u64_field("warning_count")? as usize,
    })
}

/// Can any run in a segment with this index block match the predicate?
///
/// Conservative: `true` means "maybe" — the executor re-evaluates the
/// full predicate against each summary it loads, so a false `true` costs
/// one body read, never a wrong answer. `false` must be exact.
#[must_use]
pub fn may_match_segment(pred: &RunPredicate, meta: &SegmentMeta, kind: RunKind) -> bool {
    let overlaps_u32 = |range: Option<(u32, u32)>, lo: u32, hi: u32| {
        range.is_none_or(|(rlo, rhi)| lo <= rhi && rlo <= hi)
    };
    match pred {
        RunPredicate::True => true,
        RunPredicate::Kind(k) => *k == kind,
        RunPredicate::ApiEq(api) => match kind {
            RunKind::Benchmark => meta.apis.contains(api),
            // IO500 runs match only the empty api, and their summaries
            // contribute `""` to the api set.
            RunKind::Io500 => api.is_empty() && meta.apis.contains(""),
        },
        RunPredicate::HasOp(_) => kind == RunKind::Benchmark,
        RunPredicate::TasksBetween(lo, hi) => overlaps_u32(meta.tasks, *lo, *hi),
        RunPredicate::BandwidthBetween(lo, hi) => meta
            .bandwidth
            .is_none_or(|(blo, bhi)| *lo <= bhi && blo <= *hi),
        // Transfer sizes and command text are not summarized in the
        // index block; always load.
        RunPredicate::TransferBetween(..) | RunPredicate::CommandContains(_) => true,
        RunPredicate::IdIn(ids) => {
            let range = match kind {
                RunKind::Benchmark => meta.bench_ids,
                RunKind::Io500 => meta.io500_ids,
            };
            let Some((lo, hi)) = range else { return false };
            ids.iter()
                .any(|id| (lo..=hi).contains(id) && meta.bloom.may_contain(kind, *id))
        }
        RunPredicate::And(a, b) => {
            may_match_segment(a, meta, kind) && may_match_segment(b, meta, kind)
        }
        RunPredicate::Or(a, b) => {
            may_match_segment(a, meta, kind) || may_match_segment(b, meta, kind)
        }
        // A negation can admit runs the inner ranges exclude; stay
        // conservative.
        RunPredicate::Not(_) => true,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn bench_summary(id: u64, api: &str, tasks: u32, bw: f64) -> RunSummary {
        RunSummary {
            kind: RunKind::Benchmark,
            id,
            command: format!("ior -{id}"),
            api: api.to_owned(),
            tasks,
            block_size: 4 << 20,
            transfer_size: 1 << 20,
            segments: 16,
            clients_per_node: 20,
            ops: vec![OpStat {
                operation: "write".into(),
                mean_mib: bw,
                max_mib: bw * 1.5,
                mean_ops: bw / 2.0,
            }],
            bw_score: 0.0,
            md_score: 0.0,
            total_score: 0.0,
            warning_count: 0,
        }
    }

    fn io500_summary(id: u64, tasks: u32, bw_score: f64) -> RunSummary {
        RunSummary {
            kind: RunKind::Io500,
            id,
            command: "io500".into(),
            api: String::new(),
            tasks,
            block_size: 0,
            transfer_size: 0,
            segments: 0,
            clients_per_node: 0,
            ops: Vec::new(),
            bw_score,
            md_score: bw_score * 2.0,
            total_score: bw_score * 1.5,
            warning_count: 1,
        }
    }

    #[test]
    fn bloom_has_no_false_negatives_and_few_false_positives() {
        let mut bloom = Bloom::with_capacity(200);
        for id in 0..200u64 {
            bloom.insert(RunKind::Benchmark, id);
        }
        for id in 0..200u64 {
            assert!(bloom.may_contain(RunKind::Benchmark, id), "id {id}");
        }
        // Kinds are part of the key.
        let io500_hits = (0..200u64)
            .filter(|id| bloom.may_contain(RunKind::Io500, *id))
            .count();
        let absent_hits = (10_000..20_000u64)
            .filter(|id| bloom.may_contain(RunKind::Benchmark, *id))
            .count();
        // 10 bits/entry, 7 probes → ~0.8% expected; allow generous slack.
        assert!(io500_hits < 20, "io500 false positives: {io500_hits}");
        assert!(absent_hits < 500, "absent false positives: {absent_hits}");
    }

    #[test]
    fn bloom_roundtrips_through_hex() {
        let mut bloom = Bloom::with_capacity(10);
        bloom.insert(RunKind::Benchmark, 7);
        bloom.insert(RunKind::Io500, 3);
        let restored = Bloom::from_hex(&bloom.to_hex()).unwrap();
        assert_eq!(restored, bloom);
        assert!(Bloom::from_hex("").is_err());
        assert!(Bloom::from_hex("xyz").is_err());
    }

    #[test]
    fn meta_computes_ranges_and_roundtrips_json() {
        let summaries = vec![
            bench_summary(3, "MPIIO", 80, 2000.0),
            bench_summary(9, "POSIX", 40, 900.0),
            io500_summary(2, 160, 1.5),
        ];
        let meta = SegmentMeta::compute(4, &summaries);
        assert_eq!(meta.id, 4);
        assert_eq!(meta.bench_count, 2);
        assert_eq!(meta.io500_count, 1);
        assert_eq!(meta.bench_ids, Some((3, 9)));
        assert_eq!(meta.io500_ids, Some((2, 2)));
        assert_eq!(meta.tasks, Some((40, 160)));
        assert_eq!(meta.bandwidth, Some((1.5, 2000.0)));
        assert!(meta.apis.contains("MPIIO"));
        assert!(meta.apis.contains(""));

        let restored = SegmentMeta::from_json(&meta.to_json()).unwrap();
        assert_eq!(restored, meta);
        // And through a rendered document, the path the manifest takes.
        let reparsed = iokc_util::json::parse(&meta.to_json().to_pretty()).unwrap();
        assert_eq!(SegmentMeta::from_json(&reparsed).unwrap(), meta);
        assert!(SegmentMeta::from_json(&Json::Null).is_err());
    }

    #[test]
    fn summaries_roundtrip_json() {
        for s in [
            bench_summary(1, "MPIIO", 80, 2850.5),
            io500_summary(4, 40, 1.25),
        ] {
            let reparsed = iokc_util::json::parse(&summary_to_json(&s).to_pretty()).unwrap();
            assert_eq!(summary_from_json(&reparsed).unwrap(), s);
        }
        assert!(summary_from_json(&Json::Null).is_err());
    }

    #[test]
    fn may_match_prunes_exactly_when_safe() {
        let summaries = vec![
            bench_summary(3, "MPIIO", 80, 2000.0),
            bench_summary(9, "POSIX", 40, 900.0),
        ];
        let meta = SegmentMeta::compute(0, &summaries);
        let b = RunKind::Benchmark;
        assert!(may_match_segment(&RunPredicate::True, &meta, b));
        assert!(may_match_segment(&RunPredicate::Kind(b), &meta, b));
        assert!(!may_match_segment(
            &RunPredicate::Kind(RunKind::Io500),
            &meta,
            b
        ));
        assert!(may_match_segment(
            &RunPredicate::ApiEq("MPIIO".into()),
            &meta,
            b
        ));
        assert!(!may_match_segment(
            &RunPredicate::ApiEq("HDF5".into()),
            &meta,
            b
        ));
        assert!(may_match_segment(
            &RunPredicate::TasksBetween(50, 90),
            &meta,
            b
        ));
        assert!(!may_match_segment(
            &RunPredicate::TasksBetween(100, 200),
            &meta,
            b
        ));
        assert!(!may_match_segment(
            &RunPredicate::BandwidthBetween(3000.0, 4000.0),
            &meta,
            b
        ));
        assert!(may_match_segment(&RunPredicate::IdIn(vec![3]), &meta, b));
        assert!(!may_match_segment(&RunPredicate::IdIn(vec![100]), &meta, b));
        // No IO500 runs at all: IdIn on that space prunes.
        assert!(!may_match_segment(
            &RunPredicate::IdIn(vec![3]),
            &meta,
            RunKind::Io500
        ));
        // Conjunctions prune when either side does; disjunctions only
        // when both do.
        assert!(!may_match_segment(
            &RunPredicate::ApiEq("MPIIO".into()).and(RunPredicate::TasksBetween(100, 200)),
            &meta,
            b
        ));
        assert!(may_match_segment(
            &RunPredicate::ApiEq("HDF5".into()).or(RunPredicate::TasksBetween(50, 90)),
            &meta,
            b
        ));
        // Negation and unsummarized fields never prune.
        assert!(may_match_segment(
            &RunPredicate::TasksBetween(100, 200).negate(),
            &meta,
            b
        ));
        assert!(may_match_segment(
            &RunPredicate::CommandContains("zz".into()),
            &meta,
            b
        ));
        assert!(may_match_segment(
            &RunPredicate::TransferBetween(0, 1),
            &meta,
            b
        ));
    }

    #[test]
    fn segment_files_roundtrip_and_lazy_load_once() {
        use crate::vfs::FaultVfs;
        let vfs = FaultVfs::pristine();
        let path = PathBuf::from("/kb.json.seg-0");
        let mut db = Database::new();
        db.create_table(crate::database::TableSchema::new(
            "performances",
            vec![crate::database::Column::required(
                "command",
                crate::value::ColumnType::Text,
            )],
        ))
        .unwrap();
        db.insert("performances", vec![crate::value::Value::from("ior")])
            .unwrap();
        let summaries = vec![bench_summary(1, "MPIIO", 80, 2000.0)];
        write_segment_vfs(&path, &vfs, 0, &summaries, &db).unwrap();

        let meta = SegmentMeta::compute(0, &summaries);
        let seg = Segment::new(meta, path.clone());
        let a = seg.data(&vfs).unwrap();
        let b = seg.data(&vfs).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "body cached, read once");
        assert_eq!(a.summaries, summaries);
        assert_eq!(a.db.row_count("performances").unwrap(), 1);

        // Wrong format tag is corruption.
        persist::write_document_vfs(
            &path,
            &vfs,
            &Json::obj(vec![("format", Json::from("wrong"))]),
        )
        .unwrap();
        assert!(matches!(
            read_segment_vfs(&path, &vfs),
            Err(DbError::Corrupt(_))
        ));
        // A preloaded handle survives the file going away entirely.
        vfs.remove_file(&path).unwrap();
        let kept = Segment::preloaded(seg.meta.clone(), path, a);
        assert_eq!(kept.data(&vfs).unwrap().summaries.len(), 1);
    }
}
