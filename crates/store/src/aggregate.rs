//! Aggregation pushdown: corpus-scale statistics computed *inside* the
//! store (DESIGN.md §6c).
//!
//! PR 8's segmented layout lets a 100k-run corpus open and point-query
//! at flat cost, but population-level questions — "what does the
//! bandwidth distribution look like per API?", "do metadata and
//! bandwidth scores move together?" — still required materializing
//! every [`RunSummary`] into the caller's memory and aggregating there.
//! This module pushes the aggregation down to the scan:
//!
//! * [`AggregateQuery`] — a filter ([`RunPredicate`]), a grouping key
//!   ([`GroupBy`]: kind, api, log2 tasks/transfer buckets), a metric
//!   ([`Factor`]) with percentile points, and an optional factor list
//!   for a pairwise correlation matrix;
//! * streaming accumulators — count/min/max via simple folds, mean and
//!   variance via Welford's one-pass recurrence, log2 histograms as
//!   fixed integer bins, correlations as co-moment sums — all O(1)
//!   per row and O(groups) in memory. Percentiles are the one
//!   exception: each group buffers its metric values and sorts once at
//!   finalize (the sorted-merge strategy), trading O(matched rows) of
//!   `f64`s for exact quantiles that are independent of scan order;
//! * segment pruning — sealed segments whose index block
//!   ([`crate::segment::may_match_segment`]) rules out the predicate
//!   are skipped without loading their bodies, counted in
//!   `store.aggregate.segments_pruned`;
//! * no `Knowledge` deserialization, ever — the scan reads only the
//!   `RunSummary` projections (pre-computed blocks for sealed
//!   segments, row probes for the bounded active generation). The
//!   `store.aggregate.knowledge_deserialized` counter exists precisely
//!   so tests can assert it stays zero.
//!
//! [`AggregateQuery::evaluate_rows`] is the reference implementation:
//! the same accumulators fed from a caller-supplied row slice. The
//! segmented executor is property-tested equal to it (including under
//! interleaved saves/deletes/seals/compactions against a pinned
//! snapshot), so pruning and pushdown are purely optimizations.

use crate::database::{DbError, OrderBy, Predicate};
use crate::query::{RunKind, RunPredicate, RunSummary, StoreView};
use crate::segment::may_match_segment;
use iokc_obs::{Counter, DeadlineToken, MetricsRegistry, SpanStatus};
use iokc_util::stats;
use std::collections::BTreeMap;
use std::fmt;

/// Grouping key for an [`AggregateQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupBy {
    /// One group holding every matched run.
    All,
    /// Group by run kind (`benchmark` / `io500`).
    Kind,
    /// Group by API string (IO500 runs group under `io500`).
    Api,
    /// Group by `floor(log2(tasks))` buckets.
    TasksLog2,
    /// Group by `floor(log2(transfer_size))` buckets.
    TransferLog2,
}

impl GroupBy {
    /// Canonical name (accepted back by [`GroupBy::parse`]).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            GroupBy::All => "all",
            GroupBy::Kind => "kind",
            GroupBy::Api => "api",
            GroupBy::TasksLog2 => "tasks",
            GroupBy::TransferLog2 => "xfer",
        }
    }

    /// Parse a grouping name as used by the CLI and HTTP endpoints.
    #[must_use]
    pub fn parse(name: &str) -> Option<GroupBy> {
        match name {
            "all" => Some(GroupBy::All),
            "kind" => Some(GroupBy::Kind),
            "api" => Some(GroupBy::Api),
            "tasks" => Some(GroupBy::TasksLog2),
            "xfer" | "transfer" => Some(GroupBy::TransferLog2),
            _ => None,
        }
    }

    /// The group key for one summary row — public so downstream
    /// detectors can map an individual run onto the group whose
    /// statistics it was aggregated into.
    pub fn key(self, s: &RunSummary) -> String {
        match self {
            GroupBy::All => "all".to_owned(),
            GroupBy::Kind => s.kind.as_str().to_owned(),
            GroupBy::Api => {
                if s.api.is_empty() {
                    "io500".to_owned()
                } else {
                    s.api.clone()
                }
            }
            GroupBy::TasksLog2 => log2_bucket_label("tasks", u64::from(s.tasks)),
            GroupBy::TransferLog2 => log2_bucket_label("xfer", s.transfer_size),
        }
    }
}

/// `"name 2^k"` for `v > 0` (k = floor(log2 v)), `"name 0"` for zero —
/// an exact integer computation, so bucketing never depends on float
/// rounding.
fn log2_bucket_label(name: &str, v: u64) -> String {
    if v == 0 {
        format!("{name} 0")
    } else {
        format!("{name} 2^{}", 63 - v.leading_zeros())
    }
}

/// A numeric factor extracted from a [`RunSummary`] — the value an
/// [`AggregateQuery`] aggregates or correlates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Factor {
    /// Write bandwidth (benchmarks) or `bw_score` (IO500).
    Bandwidth,
    /// IO500 bandwidth score.
    BwScore,
    /// IO500 metadata score.
    MdScore,
    /// IO500 total score.
    TotalScore,
    /// Task count.
    Tasks,
    /// Transfer size, bytes.
    TransferSize,
    /// Block size, bytes.
    BlockSize,
    /// Extraction warning count.
    Warnings,
}

impl Factor {
    /// Canonical name (accepted back by [`Factor::parse`]).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Factor::Bandwidth => "bw",
            Factor::BwScore => "bw_score",
            Factor::MdScore => "md_score",
            Factor::TotalScore => "total_score",
            Factor::Tasks => "tasks",
            Factor::TransferSize => "xfer",
            Factor::BlockSize => "block",
            Factor::Warnings => "warnings",
        }
    }

    /// Parse a factor name as used by the CLI and HTTP endpoints.
    #[must_use]
    pub fn parse(name: &str) -> Option<Factor> {
        match name {
            "bw" | "bandwidth" => Some(Factor::Bandwidth),
            "bw_score" => Some(Factor::BwScore),
            "md_score" => Some(Factor::MdScore),
            "total_score" | "score" => Some(Factor::TotalScore),
            "tasks" => Some(Factor::Tasks),
            "xfer" | "transfer" => Some(Factor::TransferSize),
            "block" => Some(Factor::BlockSize),
            "warnings" => Some(Factor::Warnings),
            _ => None,
        }
    }

    /// Extract this factor's value from a summary row.
    #[must_use]
    pub fn extract(self, s: &RunSummary) -> f64 {
        match self {
            Factor::Bandwidth => s.bandwidth(),
            Factor::BwScore => s.bw_score,
            Factor::MdScore => s.md_score,
            Factor::TotalScore => s.total_score,
            Factor::Tasks => f64::from(s.tasks),
            Factor::TransferSize => s.transfer_size as f64,
            Factor::BlockSize => s.block_size as f64,
            Factor::Warnings => s.warning_count as f64,
        }
    }
}

impl fmt::Display for Factor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A corpus aggregation: filter, grouping, metric with percentile
/// points, and optionally a pairwise correlation matrix over a factor
/// list. Evaluated inside the store ([`crate::KnowledgeStore::aggregate`],
/// [`crate::Snapshot::aggregate`]) or over explicit rows
/// ([`AggregateQuery::evaluate_rows`], the property-test oracle).
#[derive(Debug, Clone)]
pub struct AggregateQuery {
    /// Row filter.
    pub predicate: RunPredicate,
    /// Grouping key.
    pub group_by: GroupBy,
    /// The aggregated metric.
    pub metric: Factor,
    /// Percentile points in `[0, 1]`, e.g. `0.5` for the median.
    pub percentiles: Vec<f64>,
    /// Factors to correlate pairwise (empty = no matrix).
    pub correlate: Vec<Factor>,
}

/// The default percentile points: p1, p25, p50, p75, p90, p99.
pub const DEFAULT_PERCENTILES: [f64; 6] = [0.01, 0.25, 0.5, 0.75, 0.9, 0.99];

impl AggregateQuery {
    /// A query with the default percentile set and no correlation.
    #[must_use]
    pub fn new(group_by: GroupBy, metric: Factor) -> AggregateQuery {
        AggregateQuery {
            predicate: RunPredicate::True,
            group_by,
            metric,
            percentiles: DEFAULT_PERCENTILES.to_vec(),
            correlate: Vec::new(),
        }
    }

    /// Builder-style filter.
    #[must_use]
    pub fn with_predicate(mut self, predicate: RunPredicate) -> AggregateQuery {
        self.predicate = predicate;
        self
    }

    /// Builder-style percentile points (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_percentiles(mut self, qs: &[f64]) -> AggregateQuery {
        self.percentiles = qs.iter().map(|q| q.clamp(0.0, 1.0)).collect();
        self
    }

    /// Builder-style correlation factor list.
    #[must_use]
    pub fn with_correlation(mut self, factors: &[Factor]) -> AggregateQuery {
        self.correlate = factors.to_vec();
        self
    }

    /// The reference implementation: feed explicit rows (the predicate
    /// is applied here too) through the same accumulators the pushdown
    /// executor uses. Property tests compare the segmented executor
    /// against this oracle; callers with rows already in hand (the
    /// corpus outlier detector) use it directly.
    #[must_use]
    pub fn evaluate_rows<'a, I>(&self, rows: I) -> AggregateResult
    where
        I: IntoIterator<Item = &'a RunSummary>,
    {
        let mut state = AggState::new(self);
        for s in rows {
            if self.predicate.matches_summary(s) {
                state.push(self, s);
            }
        }
        state.finish(self)
    }

    /// A canonical cache key: two queries with the same key return the
    /// same result against the same store generation.
    #[must_use]
    pub fn cache_key(&self) -> String {
        let mut key = format!(
            "agg:{}:{}:q={:?}:c=[",
            self.group_by.as_str(),
            self.metric.as_str(),
            self.percentiles
        );
        for f in &self.correlate {
            key.push_str(f.as_str());
            key.push(',');
        }
        key.push_str("]:");
        key.push_str(&crate::query::Query::new(self.predicate.clone()).cache_key());
        key
    }
}

/// One group's aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// Group key (e.g. `"POSIX"`, `"tasks 2^5"`).
    pub key: String,
    /// Rows in the group.
    pub count: u64,
    /// Minimum metric value.
    pub min: f64,
    /// Maximum metric value.
    pub max: f64,
    /// Mean metric value (Welford).
    pub mean: f64,
    /// Sample standard deviation (Welford, `n-1` denominator).
    pub stddev: f64,
    /// `(q, value)` per requested percentile point, in request order.
    pub percentiles: Vec<(f64, f64)>,
    /// Log2 histogram: `(bucket, count)` where bucket `k` holds values
    /// in `[2^k, 2^(k+1))`; `i32::MIN` holds values `<= 0`.
    pub histogram: Vec<(i32, u64)>,
}

impl GroupStats {
    /// The value recorded for percentile point `q`, if requested.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<f64> {
        self.percentiles
            .iter()
            .find(|(p, _)| (p - q).abs() < 1e-12)
            .map(|(_, v)| *v)
    }
}

/// A pairwise correlation matrix over the requested factors.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationMatrix {
    /// Factor names, in request order (row and column labels).
    pub factors: Vec<String>,
    /// `matrix[i][j]` = Pearson correlation of factor i and factor j
    /// over the matched rows; `0.0` where either factor is constant.
    pub matrix: Vec<Vec<f64>>,
}

/// The result of an [`AggregateQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateResult {
    /// Per-group aggregates, sorted by group key.
    pub groups: Vec<GroupStats>,
    /// The correlation matrix, when factors were requested and at least
    /// one row matched.
    pub correlation: Option<CorrelationMatrix>,
    /// Total rows folded into the aggregates.
    pub rows_aggregated: u64,
}

impl AggregateResult {
    /// Look up a group by key.
    #[must_use]
    pub fn group(&self, key: &str) -> Option<&GroupStats> {
        self.groups.iter().find(|g| g.key == key)
    }
}

/// Welford's one-pass mean/variance recurrence.
#[derive(Debug, Clone, Default)]
struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    fn stddev(&self) -> f64 {
        if self.n > 1 {
            (self.m2 / (self.n - 1) as f64).sqrt()
        } else {
            0.0
        }
    }
}

/// The log2 histogram bucket for one value (`i32::MIN` = `<= 0`).
fn log2_bin(x: f64) -> i32 {
    if x <= 0.0 {
        i32::MIN
    } else {
        // Bounded by f64's exponent range, so the cast never saturates
        // in a way that loses ordering.
        x.log2().floor() as i32
    }
}

/// One group's streaming state.
#[derive(Debug, Clone, Default)]
struct GroupAcc {
    welford: Welford,
    min: f64,
    max: f64,
    histogram: BTreeMap<i32, u64>,
    /// Buffered metric values for exact percentiles — sorted once at
    /// finalize (the sorted-merge strategy; see the module docs for the
    /// memory trade).
    values: Vec<f64>,
}

impl GroupAcc {
    fn push(&mut self, x: f64) {
        if self.welford.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.welford.push(x);
        *self.histogram.entry(log2_bin(x)).or_insert(0) += 1;
        self.values.push(x);
    }
}

/// Streaming co-moment sums for the correlation matrix: O(k²) state,
/// O(k²) work per row, no value buffering.
#[derive(Debug, Clone)]
struct CorrAcc {
    n: u64,
    sums: Vec<f64>,
    cross: Vec<Vec<f64>>,
}

impl CorrAcc {
    fn new(k: usize) -> CorrAcc {
        CorrAcc {
            n: 0,
            sums: vec![0.0; k],
            cross: vec![vec![0.0; k]; k],
        }
    }

    fn push(&mut self, xs: &[f64]) {
        self.n += 1;
        for (i, x) in xs.iter().enumerate() {
            self.sums[i] += x;
            for (j, y) in xs.iter().enumerate() {
                self.cross[i][j] += x * y;
            }
        }
    }

    fn finish(&self, factors: &[Factor]) -> Option<CorrelationMatrix> {
        if factors.is_empty() || self.n == 0 {
            return None;
        }
        let n = self.n as f64;
        let k = factors.len();
        let mut matrix = vec![vec![0.0; k]; k];
        for (i, row) in matrix.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let cov = n * self.cross[i][j] - self.sums[i] * self.sums[j];
                let var_i = n * self.cross[i][i] - self.sums[i] * self.sums[i];
                let var_j = n * self.cross[j][j] - self.sums[j] * self.sums[j];
                let denom = (var_i * var_j).sqrt();
                let r = if denom > 0.0 { cov / denom } else { 0.0 };
                *cell = if r.is_finite() {
                    r.clamp(-1.0, 1.0)
                } else {
                    0.0
                };
            }
        }
        Some(CorrelationMatrix {
            factors: factors.iter().map(|f| f.as_str().to_owned()).collect(),
            matrix,
        })
    }
}

/// The full accumulator state for one query: `BTreeMap` keyed groups
/// (deterministic output order) plus the correlation sums.
struct AggState {
    groups: BTreeMap<String, GroupAcc>,
    corr: CorrAcc,
    rows: u64,
}

impl AggState {
    fn new(q: &AggregateQuery) -> AggState {
        AggState {
            groups: BTreeMap::new(),
            corr: CorrAcc::new(q.correlate.len()),
            rows: 0,
        }
    }

    fn push(&mut self, q: &AggregateQuery, s: &RunSummary) {
        self.rows += 1;
        self.groups
            .entry(q.group_by.key(s))
            .or_default()
            .push(q.metric.extract(s));
        if !q.correlate.is_empty() {
            let xs: Vec<f64> = q.correlate.iter().map(|f| f.extract(s)).collect();
            self.corr.push(&xs);
        }
    }

    fn finish(self, q: &AggregateQuery) -> AggregateResult {
        let groups = self
            .groups
            .into_iter()
            .map(|(key, mut acc)| {
                acc.values.sort_by(f64::total_cmp);
                let percentiles = q
                    .percentiles
                    .iter()
                    .map(|&p| (p, stats::percentile_sorted(&acc.values, p)))
                    .collect();
                GroupStats {
                    key,
                    count: acc.welford.n,
                    min: acc.min,
                    max: acc.max,
                    mean: acc.welford.mean,
                    stddev: acc.welford.stddev(),
                    percentiles,
                    histogram: acc.histogram.into_iter().collect(),
                }
            })
            .collect();
        AggregateResult {
            groups,
            correlation: self.corr.finish(&q.correlate),
            rows_aggregated: self.rows,
        }
    }
}

/// Cached counter handles for `store.aggregate.*` — registered next to
/// the query counters so one `/metrics` dump shows both engines.
#[derive(Clone)]
pub(crate) struct AggObs {
    pub(crate) queries: Counter,
    pub(crate) rows_aggregated: Counter,
    pub(crate) segments_scanned: Counter,
    pub(crate) segments_pruned: Counter,
    /// Never incremented by the pushdown path — registered so tests and
    /// dashboards can assert the aggregate engine stays on the
    /// summary-projection fast path.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) knowledge_deserialized: Counter,
    pub(crate) cancelled: Counter,
}

impl AggObs {
    pub(crate) fn new(metrics: &MetricsRegistry) -> AggObs {
        AggObs {
            queries: metrics.counter("store.aggregate.queries"),
            rows_aggregated: metrics.counter("store.aggregate.rows"),
            segments_scanned: metrics.counter("store.aggregate.segments_scanned"),
            segments_pruned: metrics.counter("store.aggregate.segments_pruned"),
            knowledge_deserialized: metrics.counter("store.aggregate.knowledge_deserialized"),
            cancelled: metrics.counter("store.aggregate.cancelled"),
        }
    }
}

impl StoreView<'_> {
    /// Execute an aggregation over this view under a `store.aggregate`
    /// span. `force_scan` disables segment pruning (the equivalence
    /// oracle's configuration); results must be identical either way.
    pub(crate) fn aggregate(
        &self,
        q: &AggregateQuery,
        force_scan: bool,
        deadline: &DeadlineToken,
    ) -> Result<AggregateResult, DbError> {
        let span =
            self.obs
                .recorder
                .start_span("store.aggregate", None, Some("analysis"), Some("store"));
        let result = self.aggregate_inner(q, force_scan, deadline);
        if matches!(result, Err(DbError::Cancelled { .. })) {
            self.obs.agg.cancelled.inc();
        }
        self.obs.recorder.end_span(
            &span,
            if result.is_ok() {
                SpanStatus::Ok
            } else {
                SpanStatus::Failed
            },
        );
        result
    }

    /// The aggregate executor: fold active-generation rows (bounded by
    /// the seal threshold) and sealed segments' pre-computed summary
    /// blocks into the streaming accumulators. Segments whose index
    /// block rules out the predicate are pruned before their bodies are
    /// touched. The deadline is polled per row; a blown budget aborts
    /// with [`DbError::Cancelled`] carrying partial progress.
    fn aggregate_inner(
        &self,
        q: &AggregateQuery,
        force_scan: bool,
        deadline: &DeadlineToken,
    ) -> Result<AggregateResult, DbError> {
        self.obs.agg.queries.inc();
        let mut state = AggState::new(q);
        let mut examined = 0usize;
        for kind in [RunKind::Benchmark, RunKind::Io500] {
            if !q.predicate.may_match_kind(kind) {
                continue;
            }
            // Active generation: probe each row into its summary
            // projection (tables only, never a full `Knowledge`).
            let table = match kind {
                RunKind::Benchmark => "performances",
                RunKind::Io500 => "IOFHsRuns",
            };
            for row in self
                .active
                .select(table, &Predicate::True, OrderBy::Id, None)?
            {
                if deadline.should_stop() {
                    return Err(DbError::Cancelled {
                        examined,
                        matched: state.rows as usize,
                    });
                }
                let r = crate::query::RunRef {
                    kind,
                    id: row.id as u64,
                };
                let s = crate::query::summarize_in_db(self.active, r)?;
                examined += 1;
                if q.predicate.matches_summary(&s) {
                    state.push(q, &s);
                }
            }
            // Sealed segments: the pre-computed summary blocks, pruned
            // by the per-segment index block.
            for seg in self.segments {
                if seg.meta.count(kind) == 0 {
                    continue;
                }
                if !force_scan && !may_match_segment(&q.predicate, &seg.meta, kind) {
                    self.obs.agg.segments_pruned.inc();
                    continue;
                }
                self.obs.agg.segments_scanned.inc();
                let data = seg.data(self.vfs)?;
                for s in data.summaries.iter().filter(|s| s.kind == kind) {
                    if deadline.should_stop() {
                        return Err(DbError::Cancelled {
                            examined,
                            matched: state.rows as usize,
                        });
                    }
                    if self.tombstones.contains(&(kind, s.id)) {
                        continue;
                    }
                    examined += 1;
                    if q.predicate.matches_summary(s) {
                        state.push(q, s);
                    }
                }
            }
        }
        self.obs.agg.rows_aggregated.add(state.rows);
        Ok(state.finish(q))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn row(kind: RunKind, id: u64, api: &str, tasks: u32, bw: f64) -> RunSummary {
        RunSummary {
            kind,
            id,
            command: format!("cmd-{id}"),
            api: api.to_owned(),
            tasks,
            block_size: 1 << 20,
            transfer_size: 1 << 18,
            segments: 1,
            clients_per_node: 1,
            ops: vec![crate::query::OpStat {
                operation: "write".into(),
                max_mib: bw * 1.1,
                mean_mib: bw,
                mean_ops: bw / 2.0,
            }],
            bw_score: 0.0,
            md_score: 0.0,
            total_score: 0.0,
            warning_count: 0,
        }
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = Welford::default();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean - mean).abs() < 1e-12);
        assert!((w.stddev() - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn groups_and_percentiles_over_rows() {
        let rows: Vec<RunSummary> = (0..10)
            .map(|i| {
                let api = if i % 2 == 0 { "POSIX" } else { "MPIIO" };
                row(RunKind::Benchmark, i, api, 8, (i as f64 + 1.0) * 10.0)
            })
            .collect();
        let q = AggregateQuery::new(GroupBy::Api, Factor::Bandwidth).with_percentiles(&[0.5]);
        let result = q.evaluate_rows(&rows);
        assert_eq!(result.rows_aggregated, 10);
        let posix = result.group("POSIX").unwrap();
        // POSIX bandwidths: 10, 30, 50, 70, 90 → median 50.
        assert_eq!(posix.count, 5);
        assert!((posix.percentile(0.5).unwrap() - 50.0).abs() < 1e-12);
        assert!((posix.min - 10.0).abs() < 1e-12);
        assert!((posix.max - 90.0).abs() < 1e-12);
        assert!((posix.mean - 50.0).abs() < 1e-12);
    }

    #[test]
    fn log2_histogram_buckets() {
        let rows = vec![
            row(RunKind::Benchmark, 1, "POSIX", 8, 0.0),
            row(RunKind::Benchmark, 2, "POSIX", 8, 1.5),
            row(RunKind::Benchmark, 3, "POSIX", 8, 3.0),
            row(RunKind::Benchmark, 4, "POSIX", 8, 1000.0),
        ];
        let q = AggregateQuery::new(GroupBy::All, Factor::Bandwidth);
        let result = q.evaluate_rows(&rows);
        let hist = &result.group("all").unwrap().histogram;
        assert_eq!(
            hist,
            &vec![(i32::MIN, 1), (0, 1), (1, 1), (9, 1)],
            "0 → sentinel, 1.5 → [1,2), 3 → [2,4), 1000 → [512,1024)"
        );
    }

    #[test]
    fn correlation_of_linear_factors_is_one() {
        let rows: Vec<RunSummary> = (0..16)
            .map(|i| {
                row(
                    RunKind::Benchmark,
                    i,
                    "POSIX",
                    i as u32 + 1,
                    (i as f64 + 1.0) * 2.0,
                )
            })
            .collect();
        let q = AggregateQuery::new(GroupBy::All, Factor::Bandwidth).with_correlation(&[
            Factor::Tasks,
            Factor::Bandwidth,
            Factor::Warnings,
        ]);
        let result = q.evaluate_rows(&rows);
        let corr = result.correlation.unwrap();
        assert_eq!(corr.factors, vec!["tasks", "bw", "warnings"]);
        // bw = 2 * tasks exactly → r = 1.
        assert!((corr.matrix[0][1] - 1.0).abs() < 1e-9);
        assert!((corr.matrix[1][0] - 1.0).abs() < 1e-9);
        assert!((corr.matrix[0][0] - 1.0).abs() < 1e-9);
        // warnings is constant 0 → correlation defined as 0.
        assert_eq!(corr.matrix[0][2], 0.0);
        assert_eq!(corr.matrix[2][2], 0.0);
    }

    #[test]
    fn predicate_filters_before_aggregation() {
        let rows: Vec<RunSummary> = (0..8)
            .map(|i| {
                row(
                    RunKind::Benchmark,
                    i,
                    "POSIX",
                    2u32.pow(i as u32 % 4),
                    100.0,
                )
            })
            .collect();
        let q = AggregateQuery::new(GroupBy::TasksLog2, Factor::Bandwidth)
            .with_predicate(RunPredicate::TasksBetween(2, 8));
        let result = q.evaluate_rows(&rows);
        assert_eq!(result.rows_aggregated, 6);
        assert!(result.group("tasks 2^0").is_none());
        assert_eq!(result.group("tasks 2^1").unwrap().count, 2);
        assert_eq!(result.group("tasks 2^3").unwrap().count, 2);
    }

    #[test]
    fn empty_input_yields_empty_result() {
        let q =
            AggregateQuery::new(GroupBy::Api, Factor::Bandwidth).with_correlation(&[Factor::Tasks]);
        let result = q.evaluate_rows(std::iter::empty());
        assert!(result.groups.is_empty());
        assert!(result.correlation.is_none());
        assert_eq!(result.rows_aggregated, 0);
    }

    #[test]
    fn cache_keys_distinguish_queries() {
        let a = AggregateQuery::new(GroupBy::Api, Factor::Bandwidth);
        let b = AggregateQuery::new(GroupBy::Kind, Factor::Bandwidth);
        let c = AggregateQuery::new(GroupBy::Api, Factor::Bandwidth)
            .with_predicate(RunPredicate::ApiEq("POSIX".into()));
        assert_ne!(a.cache_key(), b.cache_key());
        assert_ne!(a.cache_key(), c.cache_key());
        assert_eq!(a.cache_key(), a.clone().cache_key());
    }

    mod engine {
        use super::*;
        use crate::knowledge_store::KnowledgeStore;
        use crate::query::Query;
        use iokc_core::model::{
            Io500Knowledge, IterationResult, Knowledge, KnowledgeSource, OperationSummary,
        };
        use iokc_obs::CancelToken;
        use std::time::Duration;

        pub(super) fn bench(api: &str, tasks: u32, write_bw: f64) -> Knowledge {
            let mut k = Knowledge::new(KnowledgeSource::Ior, &format!("ior -a {api}"));
            k.pattern.api = api.to_owned();
            k.pattern.tasks = tasks;
            k.pattern.transfer_size = 1 << 20;
            k.summaries.push(OperationSummary {
                operation: "write".into(),
                api: api.to_owned(),
                max_mib: write_bw * 1.2,
                min_mib: write_bw * 0.8,
                mean_mib: write_bw,
                stddev_mib: 0.0,
                mean_ops: write_bw / 2.0,
                iterations: 1,
            });
            k.results.push(IterationResult {
                operation: "write".into(),
                iteration: 0,
                bw_mib: write_bw,
                ops: 10,
                ops_per_sec: 5.0,
                latency_s: 0.001,
                open_s: 0.002,
                wrrd_s: 1.0,
                close_s: 0.003,
                total_s: 1.1,
            });
            k
        }

        pub(super) fn io500(tasks: u32, bw_score: f64) -> Io500Knowledge {
            Io500Knowledge {
                id: None,
                tasks,
                bw_score,
                md_score: bw_score * 2.0,
                total_score: bw_score * 1.5,
                testcases: Vec::new(),
                options: std::collections::BTreeMap::new(),
                system: None,
                start_time: 1,
                warnings: Vec::new(),
            }
        }

        /// Approximate equality for two aggregate results: structure and
        /// counts exact, floats to relative 1e-9 (scan order may differ
        /// between the segmented executor and the oracle, which perturbs
        /// the last bits of streaming sums).
        pub(super) fn assert_results_close(a: &AggregateResult, b: &AggregateResult) {
            fn close(x: f64, y: f64) -> bool {
                (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
            }
            assert_eq!(a.rows_aggregated, b.rows_aggregated);
            assert_eq!(a.groups.len(), b.groups.len());
            for (ga, gb) in a.groups.iter().zip(&b.groups) {
                assert_eq!(ga.key, gb.key);
                assert_eq!(ga.count, gb.count);
                assert_eq!(ga.histogram, gb.histogram);
                assert!(
                    close(ga.min, gb.min),
                    "{}: min {} vs {}",
                    ga.key,
                    ga.min,
                    gb.min
                );
                assert!(
                    close(ga.max, gb.max),
                    "{}: max {} vs {}",
                    ga.key,
                    ga.max,
                    gb.max
                );
                assert!(
                    close(ga.mean, gb.mean),
                    "{}: mean {} vs {}",
                    ga.key,
                    ga.mean,
                    gb.mean
                );
                assert!(
                    close(ga.stddev, gb.stddev),
                    "{}: stddev {} vs {}",
                    ga.key,
                    ga.stddev,
                    gb.stddev
                );
                for ((qa, va), (qb, vb)) in ga.percentiles.iter().zip(&gb.percentiles) {
                    assert_eq!(qa, qb);
                    assert!(close(*va, *vb), "{}: p{} {} vs {}", ga.key, qa, va, vb);
                }
            }
            assert_eq!(a.correlation.is_some(), b.correlation.is_some());
            if let (Some(ca), Some(cb)) = (&a.correlation, &b.correlation) {
                assert_eq!(ca.factors, cb.factors);
                for (ra, rb) in ca.matrix.iter().zip(&cb.matrix) {
                    for (x, y) in ra.iter().zip(rb) {
                        assert!(close(*x, *y), "corr {x} vs {y}");
                    }
                }
            }
        }

        /// The oracle: every summary row out of the store, fed through
        /// the reference accumulators (the predicate is applied there).
        pub(super) fn oracle(store: &KnowledgeStore, q: &AggregateQuery) -> AggregateResult {
            let rows = store
                .query_summaries(&Query::all(), &DeadlineToken::unbounded())
                .unwrap();
            q.evaluate_rows(rows.iter())
        }

        pub(super) fn vfs_store(name: &str) -> KnowledgeStore {
            use crate::vfs::{FaultVfs, Vfs};
            use std::sync::Arc;
            let vfs = Arc::new(FaultVfs::pristine());
            KnowledgeStore::open_with_vfs(
                std::path::PathBuf::from(format!("/{name}.json")),
                vfs as Arc<dyn Vfs>,
            )
            .unwrap()
        }

        fn segmented_store() -> KnowledgeStore {
            let mut store = vfs_store("agg-corpus");
            store.set_seal_threshold(4);
            for i in 0..10u32 {
                let api = if i % 2 == 0 { "POSIX" } else { "MPIIO" };
                store
                    .save_knowledge(&bench(api, 1 << (i % 5), f64::from(i + 1) * 25.0))
                    .unwrap();
            }
            for i in 0..4u32 {
                store
                    .save_io500(&io500(16 << i, f64::from(i + 1) * 0.5))
                    .unwrap();
            }
            store
        }

        #[test]
        fn pushdown_equals_oracle_and_force_scan() {
            let store = segmented_store();
            assert!(
                store.segment_metas().len() >= 2,
                "test premise: the corpus spans multiple sealed segments"
            );
            let queries = [
                AggregateQuery::new(GroupBy::Api, Factor::Bandwidth)
                    .with_correlation(&[Factor::Tasks, Factor::Bandwidth]),
                AggregateQuery::new(GroupBy::Kind, Factor::TotalScore),
                AggregateQuery::new(GroupBy::TasksLog2, Factor::Bandwidth)
                    .with_predicate(RunPredicate::TasksBetween(2, 64)),
                AggregateQuery::new(GroupBy::All, Factor::Warnings)
                    .with_predicate(RunPredicate::Kind(RunKind::Io500)),
            ];
            for q in &queries {
                let pushed = store.aggregate(q, &DeadlineToken::unbounded()).unwrap();
                assert_results_close(&pushed, &store.aggregate_force_scan(q).unwrap());
                assert_results_close(&pushed, &oracle(&store, q));
            }
        }

        #[test]
        fn aggregate_never_deserializes_knowledge_and_prunes_segments() {
            let mut store = segmented_store();
            let recorder = std::sync::Arc::new(iokc_obs::Recorder::disabled());
            store.attach_recorder(std::sync::Arc::clone(&recorder));
            let q = AggregateQuery::new(GroupBy::Api, Factor::Bandwidth)
                .with_predicate(RunPredicate::ApiEq("nonexistent-api".into()));
            let result = store.aggregate(&q, &DeadlineToken::unbounded()).unwrap();
            assert_eq!(result.rows_aggregated, 0);
            // The api filter rules out every sealed segment via the
            // index block's api set.
            assert!(store.obs.agg.segments_pruned.get() >= 1);
            assert_eq!(store.obs.agg.knowledge_deserialized.get(), 0);
            assert_eq!(store.obs.knowledge_deserialized.get(), 0);

            let broad = AggregateQuery::new(GroupBy::Api, Factor::Bandwidth);
            store
                .aggregate(&broad, &DeadlineToken::unbounded())
                .unwrap();
            assert!(store.obs.agg.segments_scanned.get() >= 2);
            assert_eq!(store.obs.agg.knowledge_deserialized.get(), 0);
            assert_eq!(store.obs.knowledge_deserialized.get(), 0);
        }

        #[test]
        fn blown_deadline_cancels_with_progress() {
            let store = segmented_store();
            let expired = DeadlineToken::with_budget(CancelToken::new(), Duration::ZERO);
            let q = AggregateQuery::new(GroupBy::Api, Factor::Bandwidth);
            match store.aggregate(&q, &expired) {
                Err(DbError::Cancelled { examined, matched }) => {
                    assert_eq!(examined, 0);
                    assert_eq!(matched, 0);
                }
                other => panic!("expected Cancelled, got {other:?}"),
            }
            assert!(store.obs.agg.cancelled.get() >= 1);
        }

        #[test]
        fn snapshot_aggregates_are_immune_to_later_writes() {
            let mut store = segmented_store();
            let q = AggregateQuery::new(GroupBy::Api, Factor::Bandwidth)
                .with_correlation(&[Factor::Tasks, Factor::Bandwidth]);
            let snapshot = store.snapshot();
            let pinned = snapshot.aggregate(&q, &DeadlineToken::unbounded()).unwrap();
            // Mutate heavily: new runs, deletes, a seal, a compaction.
            for i in 0..6u32 {
                store
                    .save_knowledge(&bench("HDF5", 128, f64::from(i) * 7.0))
                    .unwrap();
            }
            store.delete_knowledge(1).unwrap();
            store.delete_io500(1).unwrap();
            store.seal_active().unwrap();
            store.compact().unwrap();
            let replayed = snapshot.aggregate(&q, &DeadlineToken::unbounded()).unwrap();
            assert_eq!(
                pinned, replayed,
                "pinned snapshot must not see later mutations"
            );
            // And the live store sees the new state.
            let live = store.aggregate(&q, &DeadlineToken::unbounded()).unwrap();
            assert_results_close(&live, &oracle(&store, &q));
            assert!(live.group("HDF5").is_some());
        }
    }

    mod prop {
        use super::engine::{assert_results_close, bench, io500, oracle, vfs_store};
        use super::*;
        use crate::knowledge_store::KnowledgeStore;
        use iokc_obs::DeadlineToken;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            SaveBench { api: u8, tasks: u32, bw: f64 },
            SaveIo500 { tasks: u32, bw: f64 },
            DeleteBench(u64),
            DeleteIo500(u64),
            Seal,
            Compact,
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u8..3, 1u32..256, 1.0f64..1e4).prop_map(|(api, tasks, bw)| Op::SaveBench {
                    api,
                    tasks,
                    bw
                }),
                (0u8..3, 1u32..256, 1.0f64..1e4).prop_map(|(api, tasks, bw)| Op::SaveBench {
                    api,
                    tasks,
                    bw
                }),
                (1u32..256, 0.1f64..100.0).prop_map(|(tasks, bw)| Op::SaveIo500 { tasks, bw }),
                (1u64..20).prop_map(Op::DeleteBench),
                (1u64..8).prop_map(Op::DeleteIo500),
                Just(Op::Seal),
                Just(Op::Compact),
            ]
        }

        fn apply(store: &mut KnowledgeStore, op: &Op) {
            match op {
                Op::SaveBench { api, tasks, bw } => {
                    let api = ["POSIX", "MPIIO", "HDF5"][usize::from(*api)];
                    store.save_knowledge(&bench(api, *tasks, *bw)).unwrap();
                }
                Op::SaveIo500 { tasks, bw } => {
                    store.save_io500(&io500(*tasks, *bw)).unwrap();
                }
                Op::DeleteBench(id) => {
                    store.delete_knowledge(*id).unwrap();
                }
                Op::DeleteIo500(id) => {
                    store.delete_io500(*id).unwrap();
                }
                Op::Seal => store.seal_active().unwrap(),
                Op::Compact => {
                    store.compact().unwrap();
                }
            }
        }

        fn queries() -> Vec<AggregateQuery> {
            vec![
                AggregateQuery::new(GroupBy::Api, Factor::Bandwidth).with_correlation(&[
                    Factor::Tasks,
                    Factor::Bandwidth,
                    Factor::TotalScore,
                ]),
                AggregateQuery::new(GroupBy::Kind, Factor::Tasks),
                AggregateQuery::new(GroupBy::TasksLog2, Factor::Bandwidth)
                    .with_predicate(RunPredicate::TasksBetween(4, 128)),
                AggregateQuery::new(GroupBy::All, Factor::TotalScore).with_predicate(
                    RunPredicate::ApiEq("POSIX".into()).or(RunPredicate::Kind(RunKind::Io500)),
                ),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Satellite 2: the segmented, pruned executor equals the
            /// forced full scan and the row-fed oracle for every query,
            /// under arbitrary interleavings of saves, deletes, seals
            /// and compactions — and a snapshot pinned mid-sequence
            /// keeps answering from its own generation.
            #[test]
            fn pushdown_equals_oracle_under_mutations(
                ops in proptest::collection::vec(arb_op(), 1..28),
                pin_at in 0usize..28,
                seal_threshold in 2usize..6,
            ) {
                let mut store = vfs_store("agg-prop");
                store.set_seal_threshold(seal_threshold);
                let mut pinned = None;
                for (i, op) in ops.iter().enumerate() {
                    if i == pin_at.min(ops.len() - 1) {
                        let snap = store.snapshot();
                        let at_pin: Vec<AggregateResult> = queries()
                            .iter()
                            .map(|q| snap.aggregate(q, &DeadlineToken::unbounded()).unwrap())
                            .collect();
                        pinned = Some((snap, at_pin));
                    }
                    apply(&mut store, op);
                }
                for q in &queries() {
                    let pushed = store.aggregate(q, &DeadlineToken::unbounded()).unwrap();
                    assert_results_close(&pushed, &store.aggregate_force_scan(q).unwrap());
                    assert_results_close(&pushed, &oracle(&store, q));
                }
                if let Some((snap, at_pin)) = pinned {
                    for (q, before) in queries().iter().zip(&at_pin) {
                        let after = snap.aggregate(q, &DeadlineToken::unbounded()).unwrap();
                        prop_assert_eq!(before, &after);
                    }
                }
            }
        }
    }
}
