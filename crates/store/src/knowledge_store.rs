//! The paper's knowledge schema bound onto the relational engine.
//!
//! §V-C: benchmark knowledge lives in four tables — `performances`
//! (pattern + command, one row per knowledge object), `summaries`
//! (per-operation statistics, FK `performance_id`), `results` (individual
//! iteration results, FK `summary_id`), `filesystems` (BeeGFS settings) —
//! plus `systeminfos` for the `/proc` statistics. IO500 knowledge is kept
//! in its own tables: `IOFHsRuns`, `IOFHsScores`, `IOFHsTestcases`,
//! `IOFHsOptions`, `IOFHsResults` and `IOFHsSystem`, keyed by `IOFH_id`.
//!
//! [`KnowledgeStore`] implements [`iokc_core::Persister`], with an
//! optional on-disk image (the "local database" of Fig. 4; a second
//! store instance models the "global database").

use crate::database::{Column, Database, DbError, OrderBy, Predicate, Row, TableSchema};
use crate::persist;
use crate::query::{Query, QueryObs, RunIndexes, RunKind, RunPredicate};
use crate::value::{ColumnType, Value};
use crate::vfs::{StdVfs, Vfs};
use iokc_core::ctx::PhaseCtx;
use iokc_core::model::{
    FilesystemInfo, Io500Knowledge, Io500Testcase, IoPattern, IterationResult, Knowledge,
    KnowledgeItem, KnowledgeSource, OperationSummary, SystemInfo,
};
use iokc_core::phases::{CycleError, Persister, PhaseKind};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// How healthy a store is, from the perspective of anything serving it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreHealth {
    /// The image loaded cleanly (or the store is fresh/in-memory).
    Ok,
    /// The primary image was unusable; the `.bak` generation stood in.
    /// Fully functional, but one generation of writes was lost.
    Recovered {
        /// Why the primary image was rejected.
        primary_error: String,
    },
    /// Unrecoverable corruption (or an unreadable disk): the store is
    /// serving an empty schema read-only rather than refusing to open.
    Degraded {
        /// What went wrong.
        reason: String,
    },
}

impl StoreHealth {
    /// Whether the store is read-only because of corruption.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        matches!(self, StoreHealth::Degraded { .. })
    }

    /// The health as a stable lowercase token (`ok` / `recovered` /
    /// `degraded`) for health endpoints and logs.
    #[must_use]
    pub fn status(&self) -> &'static str {
        match self {
            StoreHealth::Ok => "ok",
            StoreHealth::Recovered { .. } => "recovered",
            StoreHealth::Degraded { .. } => "degraded",
        }
    }

    /// Human-readable detail for the non-`Ok` states.
    #[must_use]
    pub fn detail(&self) -> Option<&str> {
        match self {
            StoreHealth::Ok => None,
            StoreHealth::Recovered { primary_error } => Some(primary_error),
            StoreHealth::Degraded { reason } => Some(reason),
        }
    }
}

/// The knowledge database.
pub struct KnowledgeStore {
    pub(crate) db: Database,
    /// When set, every write is flushed to this file.
    path: Option<PathBuf>,
    /// The filesystem under every flush/reload — [`StdVfs`] in
    /// production, a fault-injecting VFS in the crash-consistency
    /// harness.
    vfs: Arc<dyn Vfs>,
    /// How the on-disk image was recovered at open time, if it was.
    recovery: persist::RecoveryReport,
    /// Health at and since open: `Degraded` stores reject writes.
    health: StoreHealth,
    /// Monotonic write generation: bumped on every successful persist or
    /// delete, so read-through caches over this store (the explorer
    /// service) can key entries on it and invalidate on any mutation.
    generation: u64,
    /// The query engine's secondary run indexes (by api, by tasks,
    /// sorted by bandwidth), maintained by every `save_*`/`delete_*`
    /// and rebuilt from the tables on open.
    pub(crate) indexes: RunIndexes,
    /// Query-engine observability: recorder + counter handles.
    pub(crate) obs: QueryObs,
}

impl KnowledgeStore {
    /// An in-memory store with the paper's schema.
    #[must_use]
    pub fn in_memory() -> KnowledgeStore {
        KnowledgeStore {
            db: build_schema(),
            path: None,
            vfs: Arc::new(StdVfs),
            recovery: persist::RecoveryReport::default(),
            health: StoreHealth::Ok,
            generation: 0,
            indexes: RunIndexes::default(),
            obs: QueryObs::default(),
        }
    }

    /// A file-backed store: loads the image when the file (or its `.bak`
    /// generation) exists, otherwise starts fresh; writes flush back to
    /// the file. A torn or corrupt primary image falls back to the last
    /// good generation — check [`KnowledgeStore::recovery`] to see
    /// whether that happened.
    pub fn open(path: PathBuf) -> Result<KnowledgeStore, DbError> {
        KnowledgeStore::open_with_vfs(path, Arc::new(StdVfs))
    }

    /// [`KnowledgeStore::open`] over an explicit [`Vfs`].
    pub fn open_with_vfs(path: PathBuf, vfs: Arc<dyn Vfs>) -> Result<KnowledgeStore, DbError> {
        let (db, recovery) = if vfs.exists(&path) || vfs.exists(&persist::backup_path(&path)) {
            persist::load_with_recovery_vfs(&path, vfs.as_ref())?
        } else {
            (build_schema(), persist::RecoveryReport::default())
        };
        let indexes = RunIndexes::rebuild(&db)?;
        let health = match &recovery.primary_error {
            Some(primary_error) if recovery.recovered_from_backup => StoreHealth::Recovered {
                primary_error: primary_error.clone(),
            },
            _ => StoreHealth::Ok,
        };
        Ok(KnowledgeStore {
            db,
            path: Some(path),
            vfs,
            recovery,
            health,
            generation: 0,
            indexes,
            obs: QueryObs::default(),
        })
    }

    /// Open a file-backed store, degrading instead of failing: when the
    /// image (and its backup) are unrecoverably corrupt, the store comes
    /// up read-only over an empty schema with
    /// [`KnowledgeStore::health`] reporting `Degraded`, so a serving
    /// layer stays up (answering `/healthz` honestly) rather than dying.
    #[must_use]
    pub fn open_or_degraded(path: PathBuf) -> KnowledgeStore {
        KnowledgeStore::open_or_degraded_with_vfs(path, Arc::new(StdVfs))
    }

    /// [`KnowledgeStore::open_or_degraded`] over an explicit [`Vfs`].
    #[must_use]
    pub fn open_or_degraded_with_vfs(path: PathBuf, vfs: Arc<dyn Vfs>) -> KnowledgeStore {
        match KnowledgeStore::open_with_vfs(path.clone(), Arc::clone(&vfs)) {
            Ok(store) => store,
            Err(e) => {
                let store = KnowledgeStore {
                    db: build_schema(),
                    path: Some(path),
                    vfs,
                    recovery: persist::RecoveryReport::default(),
                    health: StoreHealth::Degraded {
                        reason: e.to_string(),
                    },
                    generation: 0,
                    indexes: RunIndexes::default(),
                    obs: QueryObs::default(),
                };
                store.obs.recorder.log(
                    None,
                    &format!(
                        "WARN store.open_degraded: serving read-only over an empty schema: {e}"
                    ),
                );
                store
            }
        }
    }

    /// The store's write generation: a monotonic counter bumped on every
    /// successful persist or delete. Two calls returning the same value
    /// bracket a window in which no knowledge changed, so any view
    /// computed inside that window is still valid.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// How the on-disk image was loaded: whether the `.bak` generation
    /// had to stand in for a torn or corrupt primary image.
    #[must_use]
    pub fn recovery(&self) -> &persist::RecoveryReport {
        &self.recovery
    }

    /// The store's health: `Ok`, `Recovered` (backup generation stood in
    /// at open), or `Degraded` (read-only over an empty schema).
    #[must_use]
    pub fn health(&self) -> &StoreHealth {
        &self.health
    }

    /// Whether writes are rejected because the store is degraded.
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.health.is_degraded()
    }

    /// The filesystem this store flushes through.
    #[must_use]
    pub fn vfs(&self) -> &dyn Vfs {
        self.vfs.as_ref()
    }

    /// Whether the incrementally-maintained secondary indexes agree with
    /// a bulk rebuild from the tables — the crash-consistency checker's
    /// index invariant.
    pub fn indexes_consistent(&self) -> Result<bool, DbError> {
        Ok(RunIndexes::rebuild(&self.db)? == self.indexes)
    }

    fn ensure_writable(&self) -> Result<(), DbError> {
        match &self.health {
            StoreHealth::Degraded { reason } => Err(DbError::ReadOnly(reason.clone())),
            _ => Ok(()),
        }
    }

    /// Access the underlying database (the explorer's SQL surface).
    #[must_use]
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Number of benchmark knowledge objects stored. Routed through the
    /// query engine's [`KnowledgeStore::count`] fast path — no row is
    /// materialized and no `Knowledge` is deserialized.
    #[must_use]
    pub fn knowledge_count(&self) -> usize {
        self.count(&RunPredicate::Kind(RunKind::Benchmark))
            .unwrap_or(0)
    }

    /// Number of IO500 knowledge objects stored. Same count fast path as
    /// [`KnowledgeStore::knowledge_count`].
    #[must_use]
    pub fn io500_count(&self) -> usize {
        self.count(&RunPredicate::Kind(RunKind::Io500)).unwrap_or(0)
    }

    /// Flush the in-memory database to disk. On failure the error is
    /// classified ([`DbError::Full`] for ENOSPC-like conditions — the
    /// CLI maps it to the transient exit code — [`DbError::Io`]
    /// otherwise) and the in-memory state is *reverted to the last
    /// durable image*, so an unacknowledged write is never visible to
    /// later reads: memory and disk stay in agreement.
    fn flush(&mut self) -> Result<(), DbError> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        match persist::save_vfs(&self.db, &path, self.vfs.as_ref()) {
            Ok(()) => Ok(()),
            Err(e) => {
                let classified =
                    persist::classify_io_error(&format!("flush {}", path.display()), &e);
                self.revert_to_disk(&path);
                Err(classified)
            }
        }
    }

    /// Reload the last durable image after a failed flush. If even that
    /// fails (the disk is gone, or the failed save tore the image with
    /// no backup), the store degrades to read-only rather than serving
    /// rows it cannot prove were persisted.
    fn revert_to_disk(&mut self, path: &std::path::Path) {
        let reloaded = if self.vfs.exists(path) || self.vfs.exists(&persist::backup_path(path)) {
            persist::load_with_recovery_vfs(path, self.vfs.as_ref()).map(|(db, _)| db)
        } else {
            Ok(build_schema())
        };
        match reloaded.and_then(|db| RunIndexes::rebuild(&db).map(|indexes| (db, indexes))) {
            Ok((db, indexes)) => {
                self.db = db;
                self.indexes = indexes;
            }
            Err(e) => {
                self.health = StoreHealth::Degraded {
                    reason: format!("reload after failed flush: {e}"),
                };
                self.obs.recorder.log(
                    None,
                    &format!("WARN store.open_degraded: reload after failed flush: {e}"),
                );
            }
        }
    }

    /// Persist a benchmark knowledge object; returns its id.
    pub fn save_knowledge(&mut self, k: &Knowledge) -> Result<u64, DbError> {
        self.ensure_writable()?;
        let p = &k.pattern;
        let performance_id = self.db.insert(
            "performances",
            vec![
                Value::from(k.command.as_str()),
                Value::from(k.source.as_str()),
                Value::from(p.api.as_str()),
                Value::from(p.test_file.as_str()),
                Value::from(p.block_size),
                Value::from(p.transfer_size),
                Value::from(p.segments),
                Value::from(p.file_per_proc),
                Value::from(p.reorder_tasks),
                Value::from(p.fsync),
                Value::from(p.collective),
                Value::from(p.iterations),
                Value::from(p.tasks),
                Value::from(p.clients_per_node),
                Value::from(k.start_time),
                Value::from(k.end_time),
                k.derived_from.map(Value::from).unwrap_or(Value::Null),
            ],
        )?;
        for summary in &k.summaries {
            let summary_id = self.db.insert(
                "summaries",
                vec![
                    Value::Int(performance_id),
                    Value::from(summary.operation.as_str()),
                    Value::from(summary.api.as_str()),
                    Value::from(summary.max_mib),
                    Value::from(summary.min_mib),
                    Value::from(summary.mean_mib),
                    Value::from(summary.stddev_mib),
                    Value::from(summary.mean_ops),
                    Value::from(summary.iterations),
                ],
            )?;
            for result in k
                .results
                .iter()
                .filter(|r| r.operation == summary.operation)
            {
                self.db.insert(
                    "results",
                    vec![
                        Value::Int(summary_id),
                        Value::from(result.iteration),
                        Value::from(result.bw_mib),
                        Value::from(result.ops),
                        Value::from(result.ops_per_sec),
                        Value::from(result.latency_s),
                        Value::from(result.open_s),
                        Value::from(result.wrrd_s),
                        Value::from(result.close_s),
                        Value::from(result.total_s),
                    ],
                )?;
            }
        }
        if let Some(fs) = &k.filesystem {
            self.db.insert(
                "filesystems",
                vec![
                    Value::Int(performance_id),
                    Value::from(fs.fs_type.as_str()),
                    Value::from(fs.entry_type.as_str()),
                    Value::from(fs.entry_id.as_str()),
                    Value::from(fs.metadata_node.as_str()),
                    Value::from(fs.chunk_size),
                    Value::from(fs.storage_targets),
                    Value::from(fs.raid.as_str()),
                    Value::from(fs.storage_pool.as_str()),
                ],
            )?;
        }
        if let Some(sys) = &k.system {
            self.db.insert(
                "systeminfos",
                vec![
                    Value::Int(performance_id),
                    Value::from(sys.system.as_str()),
                    Value::from(sys.cpu_model.as_str()),
                    Value::from(sys.cores),
                    Value::from(sys.cpu_mhz),
                    Value::from(sys.cache_kib),
                    Value::from(sys.mem_kib),
                ],
            )?;
        }
        self.save_warnings("benchmark", performance_id, &k.warnings)?;
        self.flush()?;
        self.generation += 1;
        let write_bw = k
            .summaries
            .iter()
            .find(|s| s.operation == "write")
            .map_or(0.0, |s| s.mean_mib);
        self.indexes
            .insert_bench(performance_id as u64, &p.api, p.tasks, write_bw);
        Ok(performance_id as u64)
    }

    /// Delete a benchmark knowledge object and its dependent rows
    /// (summaries, results, filesystem, system info, warnings). Returns
    /// whether the object existed; the generation is bumped only when it
    /// did, so deleting nothing invalidates nothing.
    pub fn delete_knowledge(&mut self, id: u64) -> Result<bool, DbError> {
        self.ensure_writable()?;
        let Some(row) = self.db.get("performances", id as i64)? else {
            return Ok(false);
        };
        // Capture the index keys before the rows go away.
        let api = row.values[2].as_text().unwrap_or("").to_owned();
        let tasks = row.values[12].as_int().unwrap_or(0) as u32;
        let by_perf = Predicate::Eq("performance_id".into(), Value::Int(id as i64));
        let write_bw = self
            .db
            .select("summaries", &by_perf, OrderBy::Id, None)?
            .iter()
            .find(|s| s.values[1].as_text() == Some("write"))
            .and_then(|s| s.values[5].as_real())
            .unwrap_or(0.0);
        for srow in self.db.select("summaries", &by_perf, OrderBy::Id, None)? {
            self.db.delete(
                "results",
                &Predicate::Eq("summary_id".into(), Value::Int(srow.id)),
            )?;
        }
        self.db.delete("summaries", &by_perf)?;
        self.db.delete("filesystems", &by_perf)?;
        self.db.delete("systeminfos", &by_perf)?;
        self.db.delete(
            "warnings",
            &Predicate::Eq("owner".into(), Value::from("benchmark"))
                .and(Predicate::Eq("owner_id".into(), Value::Int(id as i64))),
        )?;
        self.db.delete(
            "performances",
            &Predicate::Eq("id".into(), Value::Int(id as i64)),
        )?;
        self.flush()?;
        self.generation += 1;
        self.indexes.remove_bench(id, &api, tasks, write_bw);
        Ok(true)
    }

    /// Load a benchmark knowledge object by id — the full multi-table
    /// join. Counted by the `store.query.knowledge_deserialized` obs
    /// counter; count-style reads must keep it at zero.
    pub fn load_knowledge(&self, id: u64) -> Result<Option<Knowledge>, DbError> {
        let Some(row) = self.db.get("performances", id as i64)? else {
            return Ok(None);
        };
        self.obs.knowledge_deserialized.inc();
        let text = |i: usize| row.values[i].as_text().unwrap_or("").to_owned();
        let int = |i: usize| row.values[i].as_int().unwrap_or(0);
        let mut k = Knowledge::new(KnowledgeSource::parse(&text(1)), &text(0));
        k.id = Some(id);
        k.pattern = IoPattern {
            api: text(2),
            test_file: text(3),
            block_size: int(4) as u64,
            transfer_size: int(5) as u64,
            segments: int(6) as u64,
            file_per_proc: int(7) != 0,
            reorder_tasks: int(8) != 0,
            fsync: int(9) != 0,
            collective: int(10) != 0,
            iterations: int(11) as u32,
            tasks: int(12) as u32,
            clients_per_node: int(13) as u32,
        };
        k.start_time = int(14) as u64;
        k.end_time = int(15) as u64;
        k.derived_from = row.values[16].as_int().map(|v| v as u64);

        let summaries = self.db.select(
            "summaries",
            &Predicate::Eq("performance_id".into(), Value::Int(id as i64)),
            OrderBy::Id,
            None,
        )?;
        for srow in &summaries {
            k.summaries.push(OperationSummary {
                operation: srow.values[1].as_text().unwrap_or("").to_owned(),
                api: srow.values[2].as_text().unwrap_or("").to_owned(),
                max_mib: srow.values[3].as_real().unwrap_or(0.0),
                min_mib: srow.values[4].as_real().unwrap_or(0.0),
                mean_mib: srow.values[5].as_real().unwrap_or(0.0),
                stddev_mib: srow.values[6].as_real().unwrap_or(0.0),
                mean_ops: srow.values[7].as_real().unwrap_or(0.0),
                iterations: srow.values[8].as_int().unwrap_or(0) as u32,
            });
            let operation = srow.values[1].as_text().unwrap_or("").to_owned();
            let results = self.db.select(
                "results",
                &Predicate::Eq("summary_id".into(), Value::Int(srow.id)),
                OrderBy::Id,
                None,
            )?;
            for rrow in results {
                k.results.push(IterationResult {
                    operation: operation.clone(),
                    iteration: rrow.values[1].as_int().unwrap_or(0) as u32,
                    bw_mib: rrow.values[2].as_real().unwrap_or(0.0),
                    ops: rrow.values[3].as_int().unwrap_or(0) as u64,
                    ops_per_sec: rrow.values[4].as_real().unwrap_or(0.0),
                    latency_s: rrow.values[5].as_real().unwrap_or(0.0),
                    open_s: rrow.values[6].as_real().unwrap_or(0.0),
                    wrrd_s: rrow.values[7].as_real().unwrap_or(0.0),
                    close_s: rrow.values[8].as_real().unwrap_or(0.0),
                    total_s: rrow.values[9].as_real().unwrap_or(0.0),
                });
            }
        }

        k.filesystem = self
            .one_child("filesystems", id)?
            .map(|frow| FilesystemInfo {
                fs_type: frow.values[1].as_text().unwrap_or("").to_owned(),
                entry_type: frow.values[2].as_text().unwrap_or("").to_owned(),
                entry_id: frow.values[3].as_text().unwrap_or("").to_owned(),
                metadata_node: frow.values[4].as_text().unwrap_or("").to_owned(),
                chunk_size: frow.values[5].as_int().unwrap_or(0) as u64,
                storage_targets: frow.values[6].as_int().unwrap_or(0) as u32,
                raid: frow.values[7].as_text().unwrap_or("").to_owned(),
                storage_pool: frow.values[8].as_text().unwrap_or("").to_owned(),
            });
        k.system = self.one_child("systeminfos", id)?.map(|srow| SystemInfo {
            system: srow.values[1].as_text().unwrap_or("").to_owned(),
            cpu_model: srow.values[2].as_text().unwrap_or("").to_owned(),
            cores: srow.values[3].as_int().unwrap_or(0) as u32,
            cpu_mhz: srow.values[4].as_real().unwrap_or(0.0),
            cache_kib: srow.values[5].as_int().unwrap_or(0) as u64,
            mem_kib: srow.values[6].as_int().unwrap_or(0) as u64,
        });
        k.warnings = self.load_warnings("benchmark", id);
        Ok(Some(k))
    }

    fn save_warnings(
        &mut self,
        owner: &str,
        owner_id: i64,
        warnings: &[String],
    ) -> Result<(), DbError> {
        for warning in warnings {
            self.db.insert(
                "warnings",
                vec![
                    Value::from(owner),
                    Value::Int(owner_id),
                    Value::from(warning.as_str()),
                ],
            )?;
        }
        Ok(())
    }

    /// Warnings for one knowledge object. Images persisted before the
    /// `warnings` table existed simply have none.
    fn load_warnings(&self, owner: &str, id: u64) -> Vec<String> {
        self.db
            .select(
                "warnings",
                &Predicate::Eq("owner_id".into(), Value::Int(id as i64)),
                OrderBy::Id,
                None,
            )
            .unwrap_or_default()
            .into_iter()
            .filter(|row| row.values[0].as_text() == Some(owner))
            .map(|row| row.values[2].as_text().unwrap_or("").to_owned())
            .collect()
    }

    fn one_child(&self, table: &str, performance_id: u64) -> Result<Option<Row>, DbError> {
        Ok(self
            .db
            .select(
                table,
                &Predicate::Eq("performance_id".into(), Value::Int(performance_id as i64)),
                OrderBy::Id,
                Some(1),
            )?
            .into_iter()
            .next())
    }

    /// Persist an IO500 knowledge object; returns its `IOFH_id`.
    pub fn save_io500(&mut self, k: &Io500Knowledge) -> Result<u64, DbError> {
        self.ensure_writable()?;
        let iofh_id = self.db.insert(
            "IOFHsRuns",
            vec![Value::from(k.tasks), Value::from(k.start_time)],
        )?;
        self.db.insert(
            "IOFHsScores",
            vec![
                Value::Int(iofh_id),
                Value::from(k.bw_score),
                Value::from(k.md_score),
                Value::from(k.total_score),
            ],
        )?;
        for testcase in &k.testcases {
            let tc_id = self.db.insert(
                "IOFHsTestcases",
                vec![
                    Value::Int(iofh_id),
                    Value::from(testcase.name.as_str()),
                    Value::from(testcase.unit.as_str()),
                ],
            )?;
            self.db.insert(
                "IOFHsResults",
                vec![
                    Value::Int(tc_id),
                    Value::from(testcase.value),
                    Value::from(testcase.time_s),
                ],
            )?;
        }
        for (key, value) in &k.options {
            self.db.insert(
                "IOFHsOptions",
                vec![
                    Value::Int(iofh_id),
                    Value::from(key.as_str()),
                    Value::from(value.as_str()),
                ],
            )?;
        }
        if let Some(sys) = &k.system {
            self.db.insert(
                "IOFHsSystem",
                vec![
                    Value::Int(iofh_id),
                    Value::from(sys.system.as_str()),
                    Value::from(sys.cpu_model.as_str()),
                    Value::from(sys.cores),
                    Value::from(sys.cpu_mhz),
                    Value::from(sys.cache_kib),
                    Value::from(sys.mem_kib),
                ],
            )?;
        }
        self.save_warnings("io500", iofh_id, &k.warnings)?;
        self.flush()?;
        self.generation += 1;
        self.indexes
            .insert_io500(iofh_id as u64, k.tasks, k.bw_score);
        Ok(iofh_id as u64)
    }

    /// Delete an IO500 knowledge object and its dependent rows (scores,
    /// testcases + their results, options, system info, warnings).
    /// Returns whether the object existed; like
    /// [`KnowledgeStore::delete_knowledge`], the generation is bumped
    /// only when it did.
    pub fn delete_io500(&mut self, id: u64) -> Result<bool, DbError> {
        self.ensure_writable()?;
        let Some(run) = self.db.get("IOFHsRuns", id as i64)? else {
            return Ok(false);
        };
        let tasks = run.values[0].as_int().unwrap_or(0) as u32;
        let by_iofh = Predicate::Eq("IOFH_id".into(), Value::Int(id as i64));
        let bw_score = self
            .db
            .select("IOFHsScores", &by_iofh, OrderBy::Id, Some(1))?
            .first()
            .and_then(|s| s.values[1].as_real())
            .unwrap_or(0.0);
        for tc in self
            .db
            .select("IOFHsTestcases", &by_iofh, OrderBy::Id, None)?
        {
            self.db.delete(
                "IOFHsResults",
                &Predicate::Eq("testcase_id".into(), Value::Int(tc.id)),
            )?;
        }
        self.db.delete("IOFHsTestcases", &by_iofh)?;
        self.db.delete("IOFHsScores", &by_iofh)?;
        self.db.delete("IOFHsOptions", &by_iofh)?;
        self.db.delete("IOFHsSystem", &by_iofh)?;
        self.db.delete(
            "warnings",
            &Predicate::Eq("owner".into(), Value::from("io500"))
                .and(Predicate::Eq("owner_id".into(), Value::Int(id as i64))),
        )?;
        self.db.delete(
            "IOFHsRuns",
            &Predicate::Eq("id".into(), Value::Int(id as i64)),
        )?;
        self.flush()?;
        self.generation += 1;
        self.indexes.remove_io500(id, tasks, bw_score);
        Ok(true)
    }

    /// Load an IO500 knowledge object by `IOFH_id`.
    pub fn load_io500(&self, id: u64) -> Result<Option<Io500Knowledge>, DbError> {
        let Some(run) = self.db.get("IOFHsRuns", id as i64)? else {
            return Ok(None);
        };
        self.obs.knowledge_deserialized.inc();
        let scores = self
            .db
            .select(
                "IOFHsScores",
                &Predicate::Eq("IOFH_id".into(), Value::Int(id as i64)),
                OrderBy::Id,
                Some(1),
            )?
            .into_iter()
            .next();
        let mut testcases = Vec::new();
        for tc in self.db.select(
            "IOFHsTestcases",
            &Predicate::Eq("IOFH_id".into(), Value::Int(id as i64)),
            OrderBy::Id,
            None,
        )? {
            let result = self
                .db
                .select(
                    "IOFHsResults",
                    &Predicate::Eq("testcase_id".into(), Value::Int(tc.id)),
                    OrderBy::Id,
                    Some(1),
                )?
                .into_iter()
                .next();
            testcases.push(Io500Testcase {
                name: tc.values[1].as_text().unwrap_or("").to_owned(),
                unit: tc.values[2].as_text().unwrap_or("").to_owned(),
                value: result
                    .as_ref()
                    .and_then(|r| r.values[1].as_real())
                    .unwrap_or(0.0),
                time_s: result
                    .as_ref()
                    .and_then(|r| r.values[2].as_real())
                    .unwrap_or(0.0),
            });
        }
        let mut options = BTreeMap::new();
        for opt in self.db.select(
            "IOFHsOptions",
            &Predicate::Eq("IOFH_id".into(), Value::Int(id as i64)),
            OrderBy::Id,
            None,
        )? {
            options.insert(
                opt.values[1].as_text().unwrap_or("").to_owned(),
                opt.values[2].as_text().unwrap_or("").to_owned(),
            );
        }
        let system = self
            .db
            .select(
                "IOFHsSystem",
                &Predicate::Eq("IOFH_id".into(), Value::Int(id as i64)),
                OrderBy::Id,
                Some(1),
            )?
            .into_iter()
            .next()
            .map(|srow| SystemInfo {
                system: srow.values[1].as_text().unwrap_or("").to_owned(),
                cpu_model: srow.values[2].as_text().unwrap_or("").to_owned(),
                cores: srow.values[3].as_int().unwrap_or(0) as u32,
                cpu_mhz: srow.values[4].as_real().unwrap_or(0.0),
                cache_kib: srow.values[5].as_int().unwrap_or(0) as u64,
                mem_kib: srow.values[6].as_int().unwrap_or(0) as u64,
            });
        Ok(Some(Io500Knowledge {
            id: Some(id),
            tasks: run.values[0].as_int().unwrap_or(0) as u32,
            start_time: run.values[1].as_int().unwrap_or(0) as u64,
            bw_score: scores
                .as_ref()
                .and_then(|s| s.values[1].as_real())
                .unwrap_or(0.0),
            md_score: scores
                .as_ref()
                .and_then(|s| s.values[2].as_real())
                .unwrap_or(0.0),
            total_score: scores
                .as_ref()
                .and_then(|s| s.values[3].as_real())
                .unwrap_or(0.0),
            testcases,
            options,
            system,
            warnings: self.load_warnings("io500", id),
        }))
    }

    /// Load every stored knowledge item, fully deserialized.
    ///
    /// This is the load-everything-then-filter anti-pattern the query
    /// engine replaces: filtered, sorted or counted reads should go
    /// through [`KnowledgeStore::query_summaries`] /
    /// [`KnowledgeStore::query_ids`] / [`KnowledgeStore::count`], and
    /// full deserialization should be an explicit, narrow projection via
    /// [`KnowledgeStore::query_items`].
    #[deprecated(
        since = "0.5.0",
        note = "use query_items(&Query::all()) — or better, a narrower query projection"
    )]
    pub fn load_all_items(&self) -> Result<Vec<KnowledgeItem>, DbError> {
        self.query_items(&Query::all())
    }
}

impl Persister for KnowledgeStore {
    fn name(&self) -> &str {
        if self.path.is_some() {
            "knowledge-store(file)"
        } else {
            "knowledge-store(memory)"
        }
    }

    fn persist(
        &mut self,
        _ctx: &mut PhaseCtx,
        items: &[KnowledgeItem],
    ) -> Result<Vec<u64>, CycleError> {
        let mut ids = Vec::with_capacity(items.len());
        for item in items {
            let id = match item {
                KnowledgeItem::Benchmark(k) => self.save_knowledge(k),
                KnowledgeItem::Io500(k) => self.save_io500(k),
            }
            .map_err(db_to_cycle_error)?;
            ids.push(id);
        }
        Ok(ids)
    }

    fn load_all(&self, _ctx: &mut PhaseCtx) -> Result<Vec<KnowledgeItem>, CycleError> {
        self.query_items(&Query::all()).map_err(db_to_cycle_error)
    }
}

/// Map a database error onto the cycle's error taxonomy: on-disk
/// corruption is its own class (the CLI exits 5 on it and retries are
/// pointless); a full disk is transient (retry after cleanup, exit
/// code 3); everything else is a permanent logic/schema error.
fn db_to_cycle_error(e: DbError) -> CycleError {
    match &e {
        DbError::Corrupt(_) => CycleError::corrupt(PhaseKind::Persistence, "knowledge-store", e),
        DbError::Full(_) => CycleError::transient(PhaseKind::Persistence, "knowledge-store", e),
        _ => CycleError::permanent(PhaseKind::Persistence, "knowledge-store", e),
    }
}

/// Build the paper's schema.
fn build_schema() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "performances",
            vec![
                Column::required("command", ColumnType::Text),
                Column::required("source", ColumnType::Text),
                Column::new("api", ColumnType::Text),
                Column::new("testFileName", ColumnType::Text),
                Column::new("block_size", ColumnType::Integer),
                Column::new("transfer_size", ColumnType::Integer),
                Column::new("segments", ColumnType::Integer),
                Column::new("filePerProc", ColumnType::Integer),
                Column::new("reorderTasks", ColumnType::Integer),
                Column::new("fsync", ColumnType::Integer),
                Column::new("collective", ColumnType::Integer),
                Column::new("iterations", ColumnType::Integer),
                Column::new("tasks", ColumnType::Integer),
                Column::new("clientsPerNode", ColumnType::Integer),
                Column::new("start_time", ColumnType::Integer),
                Column::new("end_time", ColumnType::Integer),
                Column::new("derived_from", ColumnType::Integer),
            ],
        )
        .with_index("api")
        .with_index("command"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "summaries",
            vec![
                Column::required("performance_id", ColumnType::Integer),
                Column::required("operation", ColumnType::Text),
                Column::new("api", ColumnType::Text),
                Column::new("max_mib", ColumnType::Real),
                Column::new("min_mib", ColumnType::Real),
                Column::new("mean_mib", ColumnType::Real),
                Column::new("stddev_mib", ColumnType::Real),
                Column::new("mean_ops", ColumnType::Real),
                Column::new("iterations", ColumnType::Integer),
            ],
        )
        .with_fk("performance_id", "performances")
        .with_index("performance_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "results",
            vec![
                Column::required("summary_id", ColumnType::Integer),
                Column::new("iteration", ColumnType::Integer),
                Column::new("bw_mib", ColumnType::Real),
                Column::new("ops", ColumnType::Integer),
                Column::new("ops_per_sec", ColumnType::Real),
                Column::new("latency_s", ColumnType::Real),
                Column::new("open_s", ColumnType::Real),
                Column::new("wrRd_s", ColumnType::Real),
                Column::new("close_s", ColumnType::Real),
                Column::new("total_s", ColumnType::Real),
            ],
        )
        .with_fk("summary_id", "summaries")
        .with_index("summary_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "filesystems",
            vec![
                Column::required("performance_id", ColumnType::Integer),
                Column::new("fs_type", ColumnType::Text),
                Column::new("entry_type", ColumnType::Text),
                Column::new("entry_id", ColumnType::Text),
                Column::new("metadata_node", ColumnType::Text),
                Column::new("chunk_size", ColumnType::Integer),
                Column::new("storage_targets", ColumnType::Integer),
                Column::new("raid", ColumnType::Text),
                Column::new("storage_pool", ColumnType::Text),
            ],
        )
        .with_fk("performance_id", "performances")
        .with_index("performance_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "systeminfos",
            vec![
                Column::required("performance_id", ColumnType::Integer),
                Column::new("system", ColumnType::Text),
                Column::new("cpu_model", ColumnType::Text),
                Column::new("cores", ColumnType::Integer),
                Column::new("cpu_mhz", ColumnType::Real),
                Column::new("cache_kib", ColumnType::Integer),
                Column::new("mem_kib", ColumnType::Integer),
            ],
        )
        .with_fk("performance_id", "performances")
        .with_index("performance_id"),
    )
    .expect("fresh database accepts schema");

    db.create_table(TableSchema::new(
        "IOFHsRuns",
        vec![
            Column::new("tasks", ColumnType::Integer),
            Column::new("start_time", ColumnType::Integer),
        ],
    ))
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "IOFHsScores",
            vec![
                Column::required("IOFH_id", ColumnType::Integer),
                Column::new("bw_score", ColumnType::Real),
                Column::new("md_score", ColumnType::Real),
                Column::new("total_score", ColumnType::Real),
            ],
        )
        .with_fk("IOFH_id", "IOFHsRuns")
        .with_index("IOFH_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "IOFHsTestcases",
            vec![
                Column::required("IOFH_id", ColumnType::Integer),
                Column::required("name", ColumnType::Text),
                Column::new("unit", ColumnType::Text),
            ],
        )
        .with_fk("IOFH_id", "IOFHsRuns")
        .with_index("IOFH_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "IOFHsResults",
            vec![
                Column::required("testcase_id", ColumnType::Integer),
                Column::new("value", ColumnType::Real),
                Column::new("time_s", ColumnType::Real),
            ],
        )
        .with_fk("testcase_id", "IOFHsTestcases")
        .with_index("testcase_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "IOFHsOptions",
            vec![
                Column::required("IOFH_id", ColumnType::Integer),
                Column::required("key", ColumnType::Text),
                Column::new("value", ColumnType::Text),
            ],
        )
        .with_fk("IOFH_id", "IOFHsRuns")
        .with_index("IOFH_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "IOFHsSystem",
            vec![
                Column::required("IOFH_id", ColumnType::Integer),
                Column::new("system", ColumnType::Text),
                Column::new("cpu_model", ColumnType::Text),
                Column::new("cores", ColumnType::Integer),
                Column::new("cpu_mhz", ColumnType::Real),
                Column::new("cache_kib", ColumnType::Integer),
                Column::new("mem_kib", ColumnType::Integer),
            ],
        )
        .with_fk("IOFH_id", "IOFHsRuns")
        .with_index("IOFH_id"),
    )
    .expect("fresh database accepts schema");
    // Extraction warnings for either knowledge kind ("benchmark" rows
    // key off performances ids, "io500" rows off IOFHsRuns ids) — the
    // partiality of a salvaged run must survive persistence.
    db.create_table(
        TableSchema::new(
            "warnings",
            vec![
                Column::required("owner", ColumnType::Text),
                Column::required("owner_id", ColumnType::Integer),
                Column::required("message", ColumnType::Text),
            ],
        )
        .with_index("owner_id"),
    )
    .expect("fresh database accepts schema");
    db
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_knowledge() -> Knowledge {
        let mut k = Knowledge::new(KnowledgeSource::Ior, "ior -a mpiio -b 4m -t 2m -s 40");
        k.pattern = IoPattern {
            api: "MPIIO".into(),
            test_file: "/scratch/test80".into(),
            block_size: 4 << 20,
            transfer_size: 2 << 20,
            segments: 40,
            file_per_proc: true,
            reorder_tasks: true,
            fsync: true,
            collective: false,
            iterations: 2,
            tasks: 80,
            clients_per_node: 20,
        };
        k.summaries.push(OperationSummary {
            operation: "write".into(),
            api: "MPIIO".into(),
            max_mib: 2850.12,
            min_mib: 1251.0,
            mean_mib: 2050.56,
            stddev_mib: 799.56,
            mean_ops: 1025.28,
            iterations: 2,
        });
        for (i, bw) in [2850.12, 1251.0].into_iter().enumerate() {
            k.results.push(IterationResult {
                operation: "write".into(),
                iteration: i as u32,
                bw_mib: bw,
                ops: 6400,
                ops_per_sec: bw / 2.0,
                latency_s: 0.0007,
                open_s: 0.002,
                wrrd_s: 4.4,
                close_s: 0.001,
                total_s: 4.5,
            });
        }
        k.filesystem = Some(FilesystemInfo {
            fs_type: "BeeGFS".into(),
            entry_type: "file".into(),
            entry_id: "A-1".into(),
            metadata_node: "meta01".into(),
            chunk_size: 512 * 1024,
            storage_targets: 4,
            raid: "RAID0".into(),
            storage_pool: "Default".into(),
        });
        k.system = Some(SystemInfo {
            system: "FUCHS-CSC".into(),
            cpu_model: "E5-2670v2".into(),
            cores: 20,
            cpu_mhz: 2500.0,
            cache_kib: 25600,
            mem_kib: 134_217_728,
        });
        k.start_time = 100;
        k.end_time = 200;
        k
    }

    fn sample_io500() -> Io500Knowledge {
        Io500Knowledge {
            id: None,
            tasks: 40,
            bw_score: 1.2,
            md_score: 11.0,
            total_score: (1.2f64 * 11.0).sqrt(),
            testcases: vec![
                Io500Testcase {
                    name: "ior-easy-write".into(),
                    value: 2.5,
                    unit: "GiB/s".into(),
                    time_s: 31.0,
                },
                Io500Testcase {
                    name: "mdtest-easy-write".into(),
                    value: 14.2,
                    unit: "kIOPS".into(),
                    time_s: 8.4,
                },
            ],
            options: BTreeMap::from([("dir".to_owned(), "/scratch/io500".to_owned())]),
            system: Some(SystemInfo {
                system: "FUCHS-CSC".into(),
                cpu_model: "E5-2670v2".into(),
                cores: 20,
                cpu_mhz: 2500.0,
                cache_kib: 25600,
                mem_kib: 134_217_728,
            }),
            start_time: 7777,
            warnings: Vec::new(),
        }
    }

    #[test]
    fn extraction_warnings_roundtrip() {
        let mut store = KnowledgeStore::in_memory();
        let partial = sample_knowledge().with_warning("rows truncated after iteration 1");
        let id = store.save_knowledge(&partial).unwrap();
        let loaded = store.load_knowledge(id).unwrap().unwrap();
        assert_eq!(loaded.warnings, partial.warnings);
        assert!(loaded.is_partial());

        let mut io500 = sample_io500();
        io500.warnings.push("no [SCORE ] line".to_owned());
        let id = store.save_io500(&io500).unwrap();
        let loaded = store.load_io500(id).unwrap().unwrap();
        assert_eq!(loaded.warnings, io500.warnings);
        // Warnings attach to their own object, not to every one.
        let clean_id = store.save_knowledge(&sample_knowledge()).unwrap();
        let clean = store.load_knowledge(clean_id).unwrap().unwrap();
        assert!(clean.warnings.is_empty());
    }

    #[test]
    fn knowledge_roundtrip() {
        let mut store = KnowledgeStore::in_memory();
        let original = sample_knowledge();
        let id = store.save_knowledge(&original).unwrap();
        let mut loaded = store.load_knowledge(id).unwrap().unwrap();
        assert_eq!(loaded.id, Some(id));
        loaded.id = None;
        assert_eq!(loaded, original);
        assert!(store.load_knowledge(99).unwrap().is_none());
    }

    #[test]
    fn io500_roundtrip() {
        let mut store = KnowledgeStore::in_memory();
        let original = sample_io500();
        let id = store.save_io500(&original).unwrap();
        let mut loaded = store.load_io500(id).unwrap().unwrap();
        assert_eq!(loaded.id, Some(id));
        loaded.id = None;
        assert_eq!(loaded, original);
    }

    #[test]
    fn rows_land_in_paper_tables() {
        let mut store = KnowledgeStore::in_memory();
        store.save_knowledge(&sample_knowledge()).unwrap();
        store.save_io500(&sample_io500()).unwrap();
        let db = store.database();
        assert_eq!(db.row_count("performances").unwrap(), 1);
        assert_eq!(db.row_count("summaries").unwrap(), 1);
        assert_eq!(db.row_count("results").unwrap(), 2);
        assert_eq!(db.row_count("filesystems").unwrap(), 1);
        assert_eq!(db.row_count("systeminfos").unwrap(), 1);
        assert_eq!(db.row_count("IOFHsRuns").unwrap(), 1);
        assert_eq!(db.row_count("IOFHsScores").unwrap(), 1);
        assert_eq!(db.row_count("IOFHsTestcases").unwrap(), 2);
        assert_eq!(db.row_count("IOFHsResults").unwrap(), 2);
        assert_eq!(db.row_count("IOFHsOptions").unwrap(), 1);
        assert_eq!(db.row_count("IOFHsSystem").unwrap(), 1);
    }

    #[test]
    fn sql_surface_reaches_knowledge() {
        let mut store = KnowledgeStore::in_memory();
        store.save_knowledge(&sample_knowledge()).unwrap();
        let rows = crate::sql::query(
            store.database(),
            "SELECT * FROM performances WHERE api = 'MPIIO'",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        let rows = crate::sql::query(
            store.database(),
            "SELECT * FROM results WHERE bw_mib < 2000",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn persister_trait_roundtrip() {
        let mut store = KnowledgeStore::in_memory();
        let items = vec![
            KnowledgeItem::Benchmark(sample_knowledge()),
            KnowledgeItem::Io500(sample_io500()),
        ];
        let mut ctx = PhaseCtx::detached(PhaseKind::Persistence, "knowledge-store");
        let ids = store.persist(&mut ctx, &items).unwrap();
        assert_eq!(ids, vec![1, 1]); // separate id spaces, as in the paper
        let loaded = Persister::load_all(&store, &mut ctx).unwrap();
        assert_eq!(loaded.len(), 2);
        assert!(matches!(loaded[0], KnowledgeItem::Benchmark(_)));
        assert!(matches!(loaded[1], KnowledgeItem::Io500(_)));
    }

    #[test]
    fn file_backed_store_survives_reopen() {
        let dir = std::env::temp_dir().join("iokc-kstore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("knowledge.iokc.json");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = KnowledgeStore::open(path.clone()).unwrap();
            store.save_knowledge(&sample_knowledge()).unwrap();
        }
        let store = KnowledgeStore::open(path.clone()).unwrap();
        assert_eq!(store.knowledge_count(), 1);
        let k = store.load_knowledge(1).unwrap().unwrap();
        assert_eq!(k.pattern.tasks, 80);
        std::fs::remove_file(&path).unwrap();
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_summary() -> impl Strategy<Value = OperationSummary> {
            (
                "[a-z]{3,8}",
                0.0f64..1e5,
                0.0f64..1e5,
                0.0f64..1e5,
                0u32..20,
            )
                .prop_map(|(operation, max, min, mean, iterations)| OperationSummary {
                    operation,
                    api: "POSIX".into(),
                    max_mib: max,
                    min_mib: min,
                    mean_mib: mean,
                    stddev_mib: 0.0,
                    mean_ops: mean / 2.0,
                    iterations,
                })
        }

        fn arb_knowledge() -> impl Strategy<Value = Knowledge> {
            (
                "[ -~]{1,60}",
                proptest::collection::vec(arb_summary(), 0..4),
                0u64..1u64 << 40,
                0u64..1u64 << 30,
                1u32..512,
                proptest::option::of(0u64..1000),
            )
                .prop_map(|(command, summaries, block, xfer, tasks, _)| {
                    let mut k = Knowledge::new(KnowledgeSource::Ior, &command);
                    // Deduplicate operations: the store keys results by
                    // operation within a knowledge object.
                    let mut seen = std::collections::BTreeSet::new();
                    for summary in summaries {
                        if seen.insert(summary.operation.clone()) {
                            for i in 0..summary.iterations.min(3) {
                                k.results.push(IterationResult {
                                    operation: summary.operation.clone(),
                                    iteration: i,
                                    bw_mib: summary.mean_mib + f64::from(i),
                                    ops: 10,
                                    ops_per_sec: 5.0,
                                    latency_s: 0.001,
                                    open_s: 0.002,
                                    wrrd_s: 1.5,
                                    close_s: 0.003,
                                    total_s: 1.6,
                                });
                            }
                            k.summaries.push(summary);
                        }
                    }
                    k.pattern.block_size = block;
                    k.pattern.transfer_size = xfer;
                    k.pattern.tasks = tasks;
                    k.pattern.api = "POSIX".into();
                    k
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn arbitrary_knowledge_roundtrips(k in arb_knowledge()) {
                let mut store = KnowledgeStore::in_memory();
                let id = store.save_knowledge(&k).unwrap();
                let mut loaded = store.load_knowledge(id).unwrap().unwrap();
                loaded.id = None;
                prop_assert_eq!(loaded, k);
            }

            #[test]
            fn many_objects_keep_distinct_ids(
                ks in proptest::collection::vec(arb_knowledge(), 1..6)
            ) {
                let mut store = KnowledgeStore::in_memory();
                let mut ids = Vec::new();
                for k in &ks {
                    ids.push(store.save_knowledge(k).unwrap());
                }
                let mut unique = ids.clone();
                unique.sort_unstable();
                unique.dedup();
                prop_assert_eq!(unique.len(), ids.len());
                for (id, original) in ids.iter().zip(&ks) {
                    let mut loaded = store.load_knowledge(*id).unwrap().unwrap();
                    loaded.id = None;
                    prop_assert_eq!(&loaded, original);
                }
            }
        }
    }

    mod robustness {
        use super::*;
        use crate::vfs::{FaultPlan, FaultVfs, Vfs};
        use std::path::PathBuf;
        use std::sync::Arc;

        fn kb() -> PathBuf {
            PathBuf::from("/kb.json")
        }

        fn cmd_knowledge(i: usize) -> Knowledge {
            Knowledge::new(KnowledgeSource::Ior, &format!("cmd-{i}"))
        }

        fn stored_commands(store: &KnowledgeStore) -> Vec<String> {
            store
                .database()
                .select("performances", &Predicate::True, OrderBy::Id, None)
                .unwrap()
                .iter()
                .map(|row| row.values[0].as_text().unwrap_or("").to_owned())
                .collect()
        }

        #[test]
        fn enospc_mid_flush_is_transient_and_the_store_stays_coherent() {
            // Probe the op range the second save occupies.
            let probe = Arc::new(FaultVfs::pristine());
            let mut store =
                KnowledgeStore::open_with_vfs(kb(), probe.clone() as Arc<dyn Vfs>).unwrap();
            store.save_knowledge(&cmd_knowledge(0)).unwrap();
            let start = probe.op_count();
            store.save_knowledge(&cmd_knowledge(1)).unwrap();
            let end = probe.op_count();
            assert!(end > start);

            for op in start..end {
                let vfs = Arc::new(FaultVfs::new(FaultPlan::enospc_at(op)));
                let mut store =
                    KnowledgeStore::open_with_vfs(kb(), vfs.clone() as Arc<dyn Vfs>).unwrap();
                store.save_knowledge(&cmd_knowledge(0)).unwrap();
                let generation = store.generation();
                let err = store.save_knowledge(&cmd_knowledge(1)).unwrap_err();
                assert!(matches!(err, DbError::Full(_)), "op {op}: {err}");
                assert!(vfs.faults_injected() >= 1);
                // The failed write bumped nothing and left memory equal
                // to the last loadable image — fully absent or (when the
                // fault hit the final directory sync, after the data
                // already reached the file) fully present, never torn.
                assert_eq!(store.generation(), generation, "op {op}");
                assert!(store.indexes_consistent().unwrap(), "op {op}");
                let commands = stored_commands(&store);
                assert!(
                    commands == vec!["cmd-0".to_owned()]
                        || commands == vec!["cmd-0".to_owned(), "cmd-1".to_owned()],
                    "op {op}: {commands:?}"
                );
                // The fault is one-shot, so a retry succeeds.
                if commands.len() == 1 {
                    store.save_knowledge(&cmd_knowledge(1)).unwrap();
                    assert_eq!(store.generation(), generation + 1);
                    assert_eq!(
                        stored_commands(&store),
                        vec!["cmd-0".to_owned(), "cmd-1".to_owned()]
                    );
                }
            }
        }

        #[test]
        fn degraded_store_rejects_writes_with_read_only() {
            let disk = Arc::new(FaultVfs::pristine());
            {
                let mut store =
                    KnowledgeStore::open_with_vfs(kb(), disk.clone() as Arc<dyn Vfs>).unwrap();
                store.save_knowledge(&cmd_knowledge(0)).unwrap();
            }
            let vfs = FaultVfs::from_state(disk.durable_state());
            vfs.set_len(&kb(), 9).unwrap();
            let mut store = KnowledgeStore::open_or_degraded_with_vfs(
                kb(),
                Arc::new(FaultVfs::from_state(vfs.durable_state())),
            );
            assert!(store.is_read_only());
            assert!(matches!(
                store.save_knowledge(&cmd_knowledge(1)),
                Err(DbError::ReadOnly(_))
            ));
            assert!(matches!(
                store.delete_knowledge(1),
                Err(DbError::ReadOnly(_))
            ));
            // Reads still answer (over the empty schema).
            assert_eq!(store.knowledge_count(), 0);
            // The Persister mapping surfaces it as a permanent error.
            let mut ctx = PhaseCtx::detached(PhaseKind::Persistence, "knowledge-store");
            assert!(store
                .persist(&mut ctx, &[KnowledgeItem::Benchmark(cmd_knowledge(1))])
                .is_err());
        }

        #[test]
        fn robustness_counters_register_on_attach() {
            let disk = Arc::new(FaultVfs::pristine());
            {
                let mut store =
                    KnowledgeStore::open_with_vfs(kb(), disk.clone() as Arc<dyn Vfs>).unwrap();
                store.save_knowledge(&cmd_knowledge(0)).unwrap();
            }
            let vfs = FaultVfs::from_state(disk.durable_state());
            vfs.set_len(&kb(), 9).unwrap();
            let serving = Arc::new(FaultVfs::from_state(vfs.durable_state()));
            let mut store = KnowledgeStore::open_or_degraded_with_vfs(kb(), serving);
            let recorder = Arc::new(iokc_obs::Recorder::disabled());
            store.attach_recorder(Arc::clone(&recorder));
            let metrics = recorder.metrics();
            assert_eq!(metrics.counter("store.open_degraded").get(), 1);
            assert_eq!(metrics.counter("store.fsck_repairs").get(), 0);
            // A healthy store does not bump the degraded counter.
            let mut healthy = KnowledgeStore::in_memory();
            let recorder2 = Arc::new(iokc_obs::Recorder::disabled());
            healthy.attach_recorder(Arc::clone(&recorder2));
            assert_eq!(recorder2.metrics().counter("store.open_degraded").get(), 0);
        }

        mod prop {
            use super::*;
            use proptest::prelude::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(24))]
                #[test]
                fn crash_at_any_fsync_recovers_an_acknowledged_prefix(crash_sync in 0u64..24) {
                    let vfs = Arc::new(FaultVfs::new(FaultPlan::crash_at_fsync(crash_sync)));
                    let mut store =
                        KnowledgeStore::open_with_vfs(kb(), vfs.clone() as Arc<dyn Vfs>).unwrap();
                    let mut acked = 0usize;
                    for i in 0..6 {
                        match store.save_knowledge(&cmd_knowledge(i)) {
                            Ok(_) => acked += 1,
                            Err(_) => break,
                        }
                    }
                    // Every disk image the crash could expose must reopen
                    // to an acknowledged prefix — never a torn mixture.
                    // One extra run is allowed: an in-flight save whose
                    // bytes all reached disk before the failure was
                    // reported is durable even though unacknowledged.
                    for state in vfs.crash_states() {
                        let reopened = KnowledgeStore::open_with_vfs(
                            kb(),
                            Arc::new(FaultVfs::from_state(state)),
                        )
                        .unwrap();
                        let commands = stored_commands(&reopened);
                        prop_assert!(
                            commands.len() >= acked && commands.len() <= acked + 1,
                            "acked {acked}, recovered {commands:?}"
                        );
                        let expected: Vec<String> =
                            (0..commands.len()).map(|i| format!("cmd-{i}")).collect();
                        prop_assert_eq!(&commands, &expected);
                        prop_assert!(reopened.indexes_consistent().unwrap());
                    }
                }
            }
        }
    }

    #[test]
    #[allow(deprecated)] // the shim must keep working until it is removed
    fn generation_bumps_on_writes_and_deletes_only() {
        let mut store = KnowledgeStore::in_memory();
        assert_eq!(store.generation(), 0);
        let id = store.save_knowledge(&sample_knowledge()).unwrap();
        assert_eq!(store.generation(), 1);
        store.save_io500(&sample_io500()).unwrap();
        assert_eq!(store.generation(), 2);
        // Reads do not invalidate.
        store.load_knowledge(id).unwrap();
        store.load_all_items().unwrap();
        assert_eq!(store.generation(), 2);
        // Deleting an absent object is a no-op for the generation.
        assert!(!store.delete_knowledge(999).unwrap());
        assert_eq!(store.generation(), 2);
        assert!(store.delete_knowledge(id).unwrap());
        assert_eq!(store.generation(), 3);
    }

    #[test]
    fn delete_knowledge_cascades_to_dependents() {
        let mut store = KnowledgeStore::in_memory();
        let keep = store
            .save_knowledge(&sample_knowledge().with_warning("partial"))
            .unwrap();
        let gone = store
            .save_knowledge(&sample_knowledge().with_warning("other"))
            .unwrap();
        assert!(store.delete_knowledge(gone).unwrap());
        assert!(store.load_knowledge(gone).unwrap().is_none());
        let db = store.database();
        assert_eq!(db.row_count("performances").unwrap(), 1);
        assert_eq!(db.row_count("summaries").unwrap(), 1);
        assert_eq!(db.row_count("results").unwrap(), 2);
        assert_eq!(db.row_count("filesystems").unwrap(), 1);
        assert_eq!(db.row_count("systeminfos").unwrap(), 1);
        assert_eq!(db.row_count("warnings").unwrap(), 1);
        // The surviving object is intact, warnings included.
        let survivor = store.load_knowledge(keep).unwrap().unwrap();
        assert_eq!(survivor.warnings, vec!["partial".to_owned()]);
    }

    #[test]
    fn derived_from_is_persisted() {
        let mut store = KnowledgeStore::in_memory();
        let parent = store.save_knowledge(&sample_knowledge()).unwrap();
        let mut child = sample_knowledge();
        child.derived_from = Some(parent);
        let child_id = store.save_knowledge(&child).unwrap();
        let loaded = store.load_knowledge(child_id).unwrap().unwrap();
        assert_eq!(loaded.derived_from, Some(parent));
    }
}
