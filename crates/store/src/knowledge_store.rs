//! The paper's knowledge schema bound onto the relational engine.
//!
//! §V-C: benchmark knowledge lives in four tables — `performances`
//! (pattern + command, one row per knowledge object), `summaries`
//! (per-operation statistics, FK `performance_id`), `results` (individual
//! iteration results, FK `summary_id`), `filesystems` (BeeGFS settings) —
//! plus `systeminfos` for the `/proc` statistics. IO500 knowledge is kept
//! in its own tables: `IOFHsRuns`, `IOFHsScores`, `IOFHsTestcases`,
//! `IOFHsOptions`, `IOFHsResults` and `IOFHsSystem`, keyed by `IOFH_id`.
//!
//! [`KnowledgeStore`] implements [`iokc_core::Persister`], with an
//! optional on-disk image (the "local database" of Fig. 4; a second
//! store instance models the "global database").

use crate::database::{Column, Database, DbError, OrderBy, Predicate, Row, TableSchema};
use crate::persist;
use crate::query::{
    run_refs_in_db, summarize_in_db, Query, QueryObs, RunIndexes, RunKind, RunPredicate, RunRef,
    RunSummary, StoreView,
};
use crate::segment::{write_segment_vfs, Segment, SegmentData, SegmentMeta};
use crate::value::{ColumnType, Value};
use crate::vfs::{StdVfs, Vfs};
use iokc_core::ctx::PhaseCtx;
use iokc_core::model::{
    FilesystemInfo, Io500Knowledge, Io500Testcase, IoPattern, IterationResult, Knowledge,
    KnowledgeItem, KnowledgeSource, OperationSummary, SystemInfo,
};
use iokc_core::phases::{CycleError, Persister, PhaseKind};
use iokc_obs::DeadlineToken;
use iokc_util::json::Json;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Format tag of the manifest document at a segmented store's nominal
/// path. The legacy single-image layout tagged the same file
/// `iokc-store`; [`load_state`] accepts both and migrates the legacy
/// layout on the first flush.
pub(crate) const MANIFEST_FORMAT: &str = "iokc-manifest";

/// Active generations start sealing into segments at this many runs
/// unless [`KnowledgeStore::set_seal_threshold`] overrides it.
const DEFAULT_SEAL_THRESHOLD: usize = 1024;

/// How healthy a store is, from the perspective of anything serving it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreHealth {
    /// The image loaded cleanly (or the store is fresh/in-memory).
    Ok,
    /// The primary image was unusable; the `.bak` generation stood in.
    /// Fully functional, but one generation of writes was lost.
    Recovered {
        /// Why the primary image was rejected.
        primary_error: String,
    },
    /// Unrecoverable corruption (or an unreadable disk): the store is
    /// serving an empty schema read-only rather than refusing to open.
    Degraded {
        /// What went wrong.
        reason: String,
    },
}

impl StoreHealth {
    /// Whether the store is read-only because of corruption.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        matches!(self, StoreHealth::Degraded { .. })
    }

    /// The health as a stable lowercase token (`ok` / `recovered` /
    /// `degraded`) for health endpoints and logs.
    #[must_use]
    pub fn status(&self) -> &'static str {
        match self {
            StoreHealth::Ok => "ok",
            StoreHealth::Recovered { .. } => "recovered",
            StoreHealth::Degraded { .. } => "degraded",
        }
    }

    /// Human-readable detail for the non-`Ok` states.
    #[must_use]
    pub fn detail(&self) -> Option<&str> {
        match self {
            StoreHealth::Ok => None,
            StoreHealth::Recovered { primary_error } => Some(primary_error),
            StoreHealth::Degraded { reason } => Some(reason),
        }
    }
}

/// The knowledge database.
pub struct KnowledgeStore {
    pub(crate) db: Database,
    /// When set, every write is flushed to this file.
    pub(crate) path: Option<PathBuf>,
    /// The filesystem under every flush/reload — [`StdVfs`] in
    /// production, a fault-injecting VFS in the crash-consistency
    /// harness.
    pub(crate) vfs: Arc<dyn Vfs>,
    /// How the on-disk image was recovered at open time, if it was.
    recovery: persist::RecoveryReport,
    /// Health at and since open: `Degraded` stores reject writes.
    health: StoreHealth,
    /// Monotonic write generation: bumped on every successful persist or
    /// delete, so read-through caches over this store (the explorer
    /// service) can key entries on it and invalidate on any mutation.
    generation: u64,
    /// The query engine's secondary run indexes (by api, by tasks,
    /// sorted by bandwidth), maintained by every `save_*`/`delete_*`
    /// and rebuilt from the *active generation's* tables on open —
    /// sealed segments carry their own index blocks instead.
    pub(crate) indexes: RunIndexes,
    /// Query-engine observability: recorder + counter handles.
    pub(crate) obs: QueryObs,
    /// Sealed, immutable segments, oldest first. `Arc`d so snapshots
    /// pin them across seals and compactions.
    pub(crate) segments: Vec<Arc<Segment>>,
    /// Runs deleted out of sealed segments: hidden from every read,
    /// physically dropped at the next compaction. Active-generation
    /// deletes remove rows directly and never tombstone.
    pub(crate) tombstones: BTreeSet<(RunKind, u64)>,
    /// Epoch of the active generation's on-disk image
    /// (`<path>.active-<epoch>`); bumped by every seal.
    pub(crate) active_epoch: u64,
    /// The id the next sealed segment will take.
    pub(crate) next_segment: u64,
    /// Seal the active generation once it holds this many runs.
    seal_threshold: usize,
    /// Whether the manifest at `path` needs rewriting on the next
    /// flush (new tombstone, legacy image migration, fresh store).
    pub(crate) manifest_dirty: bool,
}

impl KnowledgeStore {
    /// An in-memory store with the paper's schema. In-memory stores
    /// never seal: everything stays in the active generation.
    #[must_use]
    pub fn in_memory() -> KnowledgeStore {
        KnowledgeStore {
            db: build_schema(),
            path: None,
            vfs: Arc::new(StdVfs),
            recovery: persist::RecoveryReport::default(),
            health: StoreHealth::Ok,
            generation: 0,
            indexes: RunIndexes::default(),
            obs: QueryObs::default(),
            segments: Vec::new(),
            tombstones: BTreeSet::new(),
            active_epoch: 0,
            next_segment: 0,
            seal_threshold: DEFAULT_SEAL_THRESHOLD,
            manifest_dirty: false,
        }
    }

    /// A file-backed store: loads the image when the file (or its `.bak`
    /// generation) exists, otherwise starts fresh; writes flush back to
    /// the file. A torn or corrupt primary image falls back to the last
    /// good generation — check [`KnowledgeStore::recovery`] to see
    /// whether that happened.
    pub fn open(path: PathBuf) -> Result<KnowledgeStore, DbError> {
        KnowledgeStore::open_with_vfs(path, Arc::new(StdVfs))
    }

    /// [`KnowledgeStore::open`] over an explicit [`Vfs`].
    ///
    /// Opening a segmented store maps the manifest's segment metadata —
    /// id ranges, counts, membership filters — without loading any
    /// segment body and without any bulk index rebuild over sealed
    /// data; only the (bounded) active generation is re-indexed. Open
    /// cost is proportional to the active generation, not the corpus.
    pub fn open_with_vfs(path: PathBuf, vfs: Arc<dyn Vfs>) -> Result<KnowledgeStore, DbError> {
        let state = load_state(&path, vfs.as_ref())?;
        let health = match &state.recovery.primary_error {
            Some(primary_error) if state.recovery.recovered_from_backup => StoreHealth::Recovered {
                primary_error: primary_error.clone(),
            },
            _ => StoreHealth::Ok,
        };
        Ok(KnowledgeStore {
            db: state.db,
            path: Some(path),
            vfs,
            recovery: state.recovery,
            health,
            generation: 0,
            indexes: state.indexes,
            obs: QueryObs::default(),
            segments: state.segments,
            tombstones: state.tombstones,
            active_epoch: state.active_epoch,
            next_segment: state.next_segment,
            seal_threshold: DEFAULT_SEAL_THRESHOLD,
            manifest_dirty: state.manifest_dirty,
        })
    }

    /// Open a file-backed store, degrading instead of failing: when the
    /// image (and its backup) are unrecoverably corrupt, the store comes
    /// up read-only over an empty schema with
    /// [`KnowledgeStore::health`] reporting `Degraded`, so a serving
    /// layer stays up (answering `/healthz` honestly) rather than dying.
    #[must_use]
    pub fn open_or_degraded(path: PathBuf) -> KnowledgeStore {
        KnowledgeStore::open_or_degraded_with_vfs(path, Arc::new(StdVfs))
    }

    /// [`KnowledgeStore::open_or_degraded`] over an explicit [`Vfs`].
    #[must_use]
    pub fn open_or_degraded_with_vfs(path: PathBuf, vfs: Arc<dyn Vfs>) -> KnowledgeStore {
        match KnowledgeStore::open_with_vfs(path.clone(), Arc::clone(&vfs)) {
            Ok(store) => store,
            Err(e) => {
                let store = KnowledgeStore {
                    db: build_schema(),
                    path: Some(path),
                    vfs,
                    recovery: persist::RecoveryReport::default(),
                    health: StoreHealth::Degraded {
                        reason: e.to_string(),
                    },
                    generation: 0,
                    indexes: RunIndexes::default(),
                    obs: QueryObs::default(),
                    segments: Vec::new(),
                    tombstones: BTreeSet::new(),
                    active_epoch: 0,
                    next_segment: 0,
                    seal_threshold: DEFAULT_SEAL_THRESHOLD,
                    manifest_dirty: false,
                };
                store.obs.recorder.log(
                    None,
                    &format!(
                        "WARN store.open_degraded: serving read-only over an empty schema: {e}"
                    ),
                );
                store
            }
        }
    }

    /// The store's write generation: a monotonic counter bumped on every
    /// successful persist or delete. Two calls returning the same value
    /// bracket a window in which no knowledge changed, so any view
    /// computed inside that window is still valid.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// How the on-disk image was loaded: whether the `.bak` generation
    /// had to stand in for a torn or corrupt primary image.
    #[must_use]
    pub fn recovery(&self) -> &persist::RecoveryReport {
        &self.recovery
    }

    /// The store's health: `Ok`, `Recovered` (backup generation stood in
    /// at open), or `Degraded` (read-only over an empty schema).
    #[must_use]
    pub fn health(&self) -> &StoreHealth {
        &self.health
    }

    /// Whether writes are rejected because the store is degraded.
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.health.is_degraded()
    }

    /// The filesystem this store flushes through.
    #[must_use]
    pub fn vfs(&self) -> &dyn Vfs {
        self.vfs.as_ref()
    }

    /// Whether the incrementally-maintained secondary indexes agree with
    /// a bulk rebuild from the active generation's tables — the
    /// crash-consistency checker's index invariant.
    pub fn indexes_consistent(&self) -> Result<bool, DbError> {
        Ok(RunIndexes::rebuild(&self.db)? == self.indexes)
    }

    pub(crate) fn ensure_writable(&self) -> Result<(), DbError> {
        match &self.health {
            StoreHealth::Degraded { reason } => Err(DbError::ReadOnly(reason.clone())),
            _ => Ok(()),
        }
    }

    /// Access the *active generation's* database. Sealed segments are
    /// not visible here — whole-corpus relational access (the SQL
    /// surface) goes through [`Snapshot::materialize`].
    #[must_use]
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The one read path over the segmented store: active generation +
    /// indexes + sealed segments + tombstones, borrowed together.
    pub(crate) fn view(&self) -> StoreView<'_> {
        StoreView {
            active: &self.db,
            indexes: &self.indexes,
            segments: &self.segments,
            tombstones: &self.tombstones,
            vfs: self.vfs.as_ref(),
            obs: &self.obs,
        }
    }

    /// Pin the store's current state into an immutable [`Snapshot`].
    ///
    /// Cheap: the (bounded) active generation and its indexes are
    /// cloned; sealed segments are shared by `Arc`, so a million-run
    /// corpus snapshots in active-generation time. The snapshot keeps
    /// answering from exactly this generation while the store ingests,
    /// seals, deletes, or compacts underneath it.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            active: self.db.clone(),
            indexes: self.indexes.clone(),
            segments: self.segments.clone(),
            tombstones: self.tombstones.clone(),
            vfs: Arc::clone(&self.vfs),
            obs: self.obs.clone(),
            generation: self.generation,
        }
    }

    /// The sealed segments' metadata, oldest first.
    #[must_use]
    pub fn segment_metas(&self) -> Vec<SegmentMeta> {
        self.segments.iter().map(|s| s.meta.clone()).collect()
    }

    /// How many runs deleted out of sealed segments await compaction.
    #[must_use]
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Override the run count at which the active generation seals into
    /// a segment (default 1024). Test and benchmark harnesses lower it
    /// to exercise sealing on small corpora.
    pub fn set_seal_threshold(&mut self, threshold: usize) {
        self.seal_threshold = threshold.max(1);
    }

    /// The manifest describing this store's current on-disk layout.
    pub(crate) fn manifest(&self) -> Manifest {
        Manifest {
            active_epoch: self.active_epoch,
            next_segment: self.next_segment,
            tombstones: self.tombstones.clone(),
            segments: self.segments.iter().map(|s| s.meta.clone()).collect(),
        }
    }

    /// Number of benchmark knowledge objects stored. Routed through the
    /// query engine's [`KnowledgeStore::count`] fast path — no row is
    /// materialized and no `Knowledge` is deserialized.
    #[must_use]
    pub fn knowledge_count(&self) -> usize {
        self.count(&RunPredicate::Kind(RunKind::Benchmark))
            .unwrap_or(0)
    }

    /// Number of IO500 knowledge objects stored. Same count fast path as
    /// [`KnowledgeStore::knowledge_count`].
    #[must_use]
    pub fn io500_count(&self) -> usize {
        self.count(&RunPredicate::Kind(RunKind::Io500)).unwrap_or(0)
    }

    /// Flush the active generation (and, when dirty, the manifest) to
    /// disk. On failure the error is classified ([`DbError::Full`] for
    /// ENOSPC-like conditions — the CLI maps it to the transient exit
    /// code — [`DbError::Io`] otherwise) and the in-memory state is
    /// *reloaded from the last durable layout*, so an unacknowledged
    /// write is never visible to later reads: memory and disk stay in
    /// agreement.
    fn flush(&mut self) -> Result<(), DbError> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        let active = persist::active_path(&path, self.active_epoch);
        let result = persist::save_vfs(&self.db, &active, self.vfs.as_ref()).and_then(|()| {
            if self.manifest_dirty {
                persist::write_document_vfs(&path, self.vfs.as_ref(), &self.manifest().to_json())?;
                // The very first manifest write has nothing to rotate
                // into `.bak`; seed the backup generation explicitly so
                // a torn manifest is *always* repairable from `.bak`,
                // like every other image in the layout.
                let bak = persist::backup_path(&path);
                if !self.vfs.exists(&bak) {
                    let bytes = self.vfs.read(&path)?;
                    let mut file = self.vfs.create(&bak)?;
                    file.write_all(&bytes)?;
                    file.sync()?;
                }
            }
            Ok(())
        });
        match result {
            Ok(()) => {
                self.manifest_dirty = false;
                Ok(())
            }
            Err(e) => {
                let classified =
                    persist::classify_io_error(&format!("flush {}", path.display()), &e);
                self.reload_from_disk(&path);
                Err(classified)
            }
        }
    }

    /// Reload the last durable layout after a failed flush or a failed
    /// seal/compaction commit. Keeps the generation counter (caches over
    /// a reverted write must still invalidate). If even the reload fails
    /// (the disk is gone, or the failure tore the manifest with no
    /// backup), the store degrades to read-only rather than serving rows
    /// it cannot prove were persisted.
    pub(crate) fn reload_from_disk(&mut self, path: &Path) {
        match load_state(path, self.vfs.as_ref()) {
            Ok(state) => {
                self.db = state.db;
                self.indexes = state.indexes;
                self.segments = state.segments;
                self.tombstones = state.tombstones;
                self.active_epoch = state.active_epoch;
                self.next_segment = state.next_segment;
                self.manifest_dirty = state.manifest_dirty;
            }
            Err(e) => {
                self.health = StoreHealth::Degraded {
                    reason: format!("reload after failed flush: {e}"),
                };
                self.obs.recorder.log(
                    None,
                    &format!("WARN store.open_degraded: reload after failed flush: {e}"),
                );
            }
        }
    }

    /// Runs currently in the active generation.
    fn active_run_count(&self) -> Result<usize, DbError> {
        Ok(self.db.row_count("performances")? + self.db.row_count("IOFHsRuns")?)
    }

    /// Seal the active generation when it reached the threshold.
    fn maybe_seal(&mut self) -> Result<(), DbError> {
        if self.path.is_none() || self.health.is_degraded() {
            return Ok(());
        }
        if self.active_run_count()? < self.seal_threshold {
            return Ok(());
        }
        self.seal_active()
    }

    /// Seal the active generation into an immutable on-disk segment and
    /// start a fresh, empty active generation.
    ///
    /// Protocol (disk first, memory only after the commit point):
    ///
    /// 1. compute the projection summaries of every active run and the
    ///    segment's index block ([`SegmentMeta`]);
    /// 2. write the segment file `<path>.seg-<id>`;
    /// 3. write a fresh, empty active image at the *next* epoch, with
    ///    every table's auto-increment counter forwarded — ids stay
    ///    globally unique across all segments, which is what lets
    ///    compaction merge segment databases by plain row copy;
    /// 4. write the new manifest (the commit point: it names the new
    ///    segment and the new epoch).
    ///
    /// A failure before step 4 leaves memory and the old manifest
    /// untouched — the new files are strays for `fsck` to sweep. A
    /// failure *in* step 4 reloads from disk, because either manifest
    /// generation may have become durable. The write generation does not
    /// change: sealing moves rows between layers without changing what
    /// any read returns.
    pub fn seal_active(&mut self) -> Result<(), DbError> {
        self.ensure_writable()?;
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        let refs = run_refs_in_db(&self.db)?;
        if refs.is_empty() {
            return Ok(());
        }
        let mut summaries = Vec::with_capacity(refs.len());
        for r in refs {
            summaries.push(summarize_in_db(&self.db, r)?);
        }
        summaries.sort_by_key(|a| (a.kind, a.id));
        let seg_id = self.next_segment;
        let meta = SegmentMeta::compute(seg_id, &summaries);
        let seg_path = persist::segment_path(&path, seg_id);
        write_segment_vfs(&seg_path, self.vfs.as_ref(), seg_id, &summaries, &self.db).map_err(
            |e| persist::classify_io_error(&format!("seal segment {}", seg_path.display()), &e),
        )?;
        let mut fresh = build_schema();
        for table in self.db.table_names() {
            if let Some(next) = self.db.next_id(table) {
                fresh.bump_next_id(table, next);
            }
        }
        let fresh_path = persist::active_path(&path, self.active_epoch + 1);
        persist::save_vfs(&fresh, &fresh_path, self.vfs.as_ref()).map_err(|e| {
            persist::classify_io_error(&format!("seal active {}", fresh_path.display()), &e)
        })?;
        let manifest = Manifest {
            active_epoch: self.active_epoch + 1,
            next_segment: seg_id + 1,
            tombstones: self.tombstones.clone(),
            segments: self
                .segments
                .iter()
                .map(|s| s.meta.clone())
                .chain(std::iter::once(meta.clone()))
                .collect(),
        };
        if let Err(e) = persist::write_document_vfs(&path, self.vfs.as_ref(), &manifest.to_json()) {
            let classified =
                persist::classify_io_error(&format!("seal manifest {}", path.display()), &e);
            self.reload_from_disk(&path);
            return Err(classified);
        }
        // Commit point passed: swap memory. The sealed database moves
        // into the segment's preloaded body, so open snapshots and the
        // next queries keep working without re-reading the file.
        let sealed_db = std::mem::replace(&mut self.db, fresh);
        self.segments.push(Arc::new(Segment::preloaded(
            meta,
            seg_path,
            Arc::new(SegmentData {
                summaries,
                db: sealed_db,
            }),
        )));
        let old_active = persist::active_path(&path, self.active_epoch);
        self.active_epoch += 1;
        self.next_segment = seg_id + 1;
        self.indexes = RunIndexes::default();
        self.manifest_dirty = false;
        // Best-effort cleanup of the superseded active generation; a
        // crash here leaves strays that fsck sweeps.
        for stale in [
            old_active.clone(),
            persist::backup_path(&old_active),
            persist::temp_path(&old_active),
        ] {
            let _ = self.vfs.remove_file(&stale);
        }
        Ok(())
    }

    /// Persist a benchmark knowledge object; returns its id.
    pub fn save_knowledge(&mut self, k: &Knowledge) -> Result<u64, DbError> {
        self.ensure_writable()?;
        let performance_id = self.insert_knowledge_rows(k)?;
        self.flush()?;
        self.generation += 1;
        self.maybe_seal()?;
        Ok(performance_id as u64)
    }

    /// Insert a benchmark knowledge object's rows and index entries
    /// without flushing — the shared body of
    /// [`KnowledgeStore::save_knowledge`] and
    /// [`KnowledgeStore::save_batch`].
    fn insert_knowledge_rows(&mut self, k: &Knowledge) -> Result<i64, DbError> {
        let p = &k.pattern;
        let performance_id = self.db.insert(
            "performances",
            vec![
                Value::from(k.command.as_str()),
                Value::from(k.source.as_str()),
                Value::from(p.api.as_str()),
                Value::from(p.test_file.as_str()),
                Value::from(p.block_size),
                Value::from(p.transfer_size),
                Value::from(p.segments),
                Value::from(p.file_per_proc),
                Value::from(p.reorder_tasks),
                Value::from(p.fsync),
                Value::from(p.collective),
                Value::from(p.iterations),
                Value::from(p.tasks),
                Value::from(p.clients_per_node),
                Value::from(k.start_time),
                Value::from(k.end_time),
                k.derived_from.map(Value::from).unwrap_or(Value::Null),
            ],
        )?;
        for summary in &k.summaries {
            let summary_id = self.db.insert(
                "summaries",
                vec![
                    Value::Int(performance_id),
                    Value::from(summary.operation.as_str()),
                    Value::from(summary.api.as_str()),
                    Value::from(summary.max_mib),
                    Value::from(summary.min_mib),
                    Value::from(summary.mean_mib),
                    Value::from(summary.stddev_mib),
                    Value::from(summary.mean_ops),
                    Value::from(summary.iterations),
                ],
            )?;
            for result in k
                .results
                .iter()
                .filter(|r| r.operation == summary.operation)
            {
                self.db.insert(
                    "results",
                    vec![
                        Value::Int(summary_id),
                        Value::from(result.iteration),
                        Value::from(result.bw_mib),
                        Value::from(result.ops),
                        Value::from(result.ops_per_sec),
                        Value::from(result.latency_s),
                        Value::from(result.open_s),
                        Value::from(result.wrrd_s),
                        Value::from(result.close_s),
                        Value::from(result.total_s),
                    ],
                )?;
            }
        }
        if let Some(fs) = &k.filesystem {
            self.db.insert(
                "filesystems",
                vec![
                    Value::Int(performance_id),
                    Value::from(fs.fs_type.as_str()),
                    Value::from(fs.entry_type.as_str()),
                    Value::from(fs.entry_id.as_str()),
                    Value::from(fs.metadata_node.as_str()),
                    Value::from(fs.chunk_size),
                    Value::from(fs.storage_targets),
                    Value::from(fs.raid.as_str()),
                    Value::from(fs.storage_pool.as_str()),
                ],
            )?;
        }
        if let Some(sys) = &k.system {
            self.db.insert(
                "systeminfos",
                vec![
                    Value::Int(performance_id),
                    Value::from(sys.system.as_str()),
                    Value::from(sys.cpu_model.as_str()),
                    Value::from(sys.cores),
                    Value::from(sys.cpu_mhz),
                    Value::from(sys.cache_kib),
                    Value::from(sys.mem_kib),
                ],
            )?;
        }
        self.save_warnings("benchmark", performance_id, &k.warnings)?;
        let write_bw = k
            .summaries
            .iter()
            .find(|s| s.operation == "write")
            .map_or(0.0, |s| s.mean_mib);
        self.indexes
            .insert_bench(performance_id as u64, &p.api, p.tasks, write_bw);
        Ok(performance_id)
    }

    /// Delete a benchmark knowledge object and its dependent rows
    /// (summaries, results, filesystem, system info, warnings). An
    /// active-generation run is deleted physically; a segment-resident
    /// run is tombstoned (hidden from every read, dropped at the next
    /// compaction). Returns whether the object existed; the generation
    /// is bumped only when it did, so deleting nothing invalidates
    /// nothing.
    pub fn delete_knowledge(&mut self, id: u64) -> Result<bool, DbError> {
        self.ensure_writable()?;
        let Some(row) = self.db.get("performances", id as i64)? else {
            return self.tombstone_delete(RunKind::Benchmark, id);
        };
        // Capture the index keys before the rows go away.
        let api = row.values[2].as_text().unwrap_or("").to_owned();
        let tasks = row.values[12].as_int().unwrap_or(0) as u32;
        let by_perf = Predicate::Eq("performance_id".into(), Value::Int(id as i64));
        let write_bw = self
            .db
            .select("summaries", &by_perf, OrderBy::Id, None)?
            .iter()
            .find(|s| s.values[1].as_text() == Some("write"))
            .and_then(|s| s.values[5].as_real())
            .unwrap_or(0.0);
        delete_benchmark_rows(&mut self.db, id)?;
        self.flush()?;
        self.generation += 1;
        self.indexes.remove_bench(id, &api, tasks, write_bw);
        Ok(true)
    }

    /// Tombstone a segment-resident run: the rows stay in their
    /// immutable segment, the manifest hides them from every read, and
    /// the next compaction drops them physically. The secondary indexes
    /// are untouched — they only cover the active generation.
    fn tombstone_delete(&mut self, kind: RunKind, id: u64) -> Result<bool, DbError> {
        if self.view().locate(kind, id)?.is_none() {
            return Ok(false);
        }
        self.tombstones.insert((kind, id));
        self.manifest_dirty = true;
        // A failed flush reloads from disk, which un-inserts the
        // tombstone: the delete is only acknowledged once durable.
        self.flush()?;
        self.generation += 1;
        Ok(true)
    }

    /// Load a benchmark knowledge object by id — the full multi-table
    /// join, resolved to whichever generation (active or sealed
    /// segment) holds the run. Counted by the
    /// `store.query.knowledge_deserialized` obs counter; count-style
    /// reads must keep it at zero.
    pub fn load_knowledge(&self, id: u64) -> Result<Option<Knowledge>, DbError> {
        let Some(location) = self.view().locate(RunKind::Benchmark, id)? else {
            return Ok(None);
        };
        self.obs.knowledge_deserialized.inc();
        load_knowledge_from(location.db(), id)
    }

    fn save_warnings(
        &mut self,
        owner: &str,
        owner_id: i64,
        warnings: &[String],
    ) -> Result<(), DbError> {
        for warning in warnings {
            self.db.insert(
                "warnings",
                vec![
                    Value::from(owner),
                    Value::Int(owner_id),
                    Value::from(warning.as_str()),
                ],
            )?;
        }
        Ok(())
    }

    /// Persist an IO500 knowledge object; returns its `IOFH_id`.
    pub fn save_io500(&mut self, k: &Io500Knowledge) -> Result<u64, DbError> {
        self.ensure_writable()?;
        let iofh_id = self.insert_io500_rows(k)?;
        self.flush()?;
        self.generation += 1;
        self.maybe_seal()?;
        Ok(iofh_id as u64)
    }

    /// Insert an IO500 knowledge object's rows and index entries
    /// without flushing — the shared body of
    /// [`KnowledgeStore::save_io500`] and [`KnowledgeStore::save_batch`].
    fn insert_io500_rows(&mut self, k: &Io500Knowledge) -> Result<i64, DbError> {
        let iofh_id = self.db.insert(
            "IOFHsRuns",
            vec![Value::from(k.tasks), Value::from(k.start_time)],
        )?;
        self.db.insert(
            "IOFHsScores",
            vec![
                Value::Int(iofh_id),
                Value::from(k.bw_score),
                Value::from(k.md_score),
                Value::from(k.total_score),
            ],
        )?;
        for testcase in &k.testcases {
            let tc_id = self.db.insert(
                "IOFHsTestcases",
                vec![
                    Value::Int(iofh_id),
                    Value::from(testcase.name.as_str()),
                    Value::from(testcase.unit.as_str()),
                ],
            )?;
            self.db.insert(
                "IOFHsResults",
                vec![
                    Value::Int(tc_id),
                    Value::from(testcase.value),
                    Value::from(testcase.time_s),
                ],
            )?;
        }
        for (key, value) in &k.options {
            self.db.insert(
                "IOFHsOptions",
                vec![
                    Value::Int(iofh_id),
                    Value::from(key.as_str()),
                    Value::from(value.as_str()),
                ],
            )?;
        }
        if let Some(sys) = &k.system {
            self.db.insert(
                "IOFHsSystem",
                vec![
                    Value::Int(iofh_id),
                    Value::from(sys.system.as_str()),
                    Value::from(sys.cpu_model.as_str()),
                    Value::from(sys.cores),
                    Value::from(sys.cpu_mhz),
                    Value::from(sys.cache_kib),
                    Value::from(sys.mem_kib),
                ],
            )?;
        }
        self.save_warnings("io500", iofh_id, &k.warnings)?;
        self.indexes
            .insert_io500(iofh_id as u64, k.tasks, k.bw_score);
        Ok(iofh_id)
    }

    /// Delete an IO500 knowledge object and its dependent rows (scores,
    /// testcases + their results, options, system info, warnings).
    /// Returns whether the object existed; like
    /// [`KnowledgeStore::delete_knowledge`], the generation is bumped
    /// only when it did.
    pub fn delete_io500(&mut self, id: u64) -> Result<bool, DbError> {
        self.ensure_writable()?;
        let Some(run) = self.db.get("IOFHsRuns", id as i64)? else {
            return self.tombstone_delete(RunKind::Io500, id);
        };
        let tasks = run.values[0].as_int().unwrap_or(0) as u32;
        let by_iofh = Predicate::Eq("IOFH_id".into(), Value::Int(id as i64));
        let bw_score = self
            .db
            .select("IOFHsScores", &by_iofh, OrderBy::Id, Some(1))?
            .first()
            .and_then(|s| s.values[1].as_real())
            .unwrap_or(0.0);
        delete_io500_rows(&mut self.db, id)?;
        self.flush()?;
        self.generation += 1;
        self.indexes.remove_io500(id, tasks, bw_score);
        Ok(true)
    }

    /// Load an IO500 knowledge object by `IOFH_id`, resolved to
    /// whichever generation holds the run.
    pub fn load_io500(&self, id: u64) -> Result<Option<Io500Knowledge>, DbError> {
        let Some(location) = self.view().locate(RunKind::Io500, id)? else {
            return Ok(None);
        };
        self.obs.knowledge_deserialized.inc();
        load_io500_from(location.db(), id)
    }

    /// Persist a batch of knowledge items with one durability point:
    /// rows accumulate in the active generation (sealing into segments
    /// at the threshold, which is itself a durability point), one final
    /// flush covers the tail, and the write generation bumps once.
    /// Returns the assigned ids in input order. On error the store
    /// reloads the last durable layout, so no unacknowledged row is
    /// ever visible.
    pub fn save_batch(&mut self, items: &[KnowledgeItem]) -> Result<Vec<u64>, DbError> {
        self.ensure_writable()?;
        match self.save_batch_inner(items) {
            Ok(ids) => Ok(ids),
            Err(e) => {
                if let Some(path) = self.path.clone() {
                    self.reload_from_disk(&path);
                }
                Err(e)
            }
        }
    }

    fn save_batch_inner(&mut self, items: &[KnowledgeItem]) -> Result<Vec<u64>, DbError> {
        let mut ids = Vec::with_capacity(items.len());
        for item in items {
            let id = match item {
                KnowledgeItem::Benchmark(k) => self.insert_knowledge_rows(k)?,
                KnowledgeItem::Io500(k) => self.insert_io500_rows(k)?,
            };
            ids.push(id as u64);
            // Sealing writes the rows inserted so far into an immutable
            // segment, so the batch never holds more than one
            // generation's worth of unflushed rows in memory.
            self.maybe_seal()?;
        }
        self.flush()?;
        self.generation += 1;
        Ok(ids)
    }
}

impl Persister for KnowledgeStore {
    fn name(&self) -> &str {
        if self.path.is_some() {
            "knowledge-store(file)"
        } else {
            "knowledge-store(memory)"
        }
    }

    fn persist(
        &mut self,
        _ctx: &mut PhaseCtx,
        items: &[KnowledgeItem],
    ) -> Result<Vec<u64>, CycleError> {
        self.save_batch(items).map_err(db_to_cycle_error)
    }

    fn load_all(&self, _ctx: &mut PhaseCtx) -> Result<Vec<KnowledgeItem>, CycleError> {
        self.query_items(&Query::all()).map_err(db_to_cycle_error)
    }
}

/// The segmented store's manifest: what the file at the store's nominal
/// path holds once the store has sealed (or tombstoned) anything. Names
/// the active generation's epoch, every sealed segment's metadata
/// (id ranges, counts, membership filter — the per-segment index
/// block), and the tombstones.
pub(crate) struct Manifest {
    pub(crate) active_epoch: u64,
    pub(crate) next_segment: u64,
    pub(crate) tombstones: BTreeSet<(RunKind, u64)>,
    pub(crate) segments: Vec<SegmentMeta>,
}

impl Manifest {
    pub(crate) fn to_json(&self) -> Json {
        let ids = |kind: RunKind| {
            Json::Arr(
                self.tombstones
                    .iter()
                    .filter(|(k, _)| *k == kind)
                    .map(|(_, id)| Json::from(*id))
                    .collect(),
            )
        };
        Json::obj(vec![
            ("format", Json::from(MANIFEST_FORMAT)),
            ("version", Json::from(1u64)),
            ("active_epoch", Json::from(self.active_epoch)),
            ("next_segment", Json::from(self.next_segment)),
            (
                "tombstones",
                Json::obj(vec![
                    ("benchmark", ids(RunKind::Benchmark)),
                    ("io500", ids(RunKind::Io500)),
                ]),
            ),
            (
                "segments",
                Json::Arr(self.segments.iter().map(SegmentMeta::to_json).collect()),
            ),
        ])
    }

    pub(crate) fn from_json(json: &Json) -> Result<Manifest, DbError> {
        if json.get("format").and_then(Json::as_str) != Some(MANIFEST_FORMAT) {
            return Err(DbError::Corrupt(format!(
                "manifest missing {MANIFEST_FORMAT} format tag"
            )));
        }
        let field = |key: &str| {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| DbError::Corrupt(format!("manifest missing {key}")))
        };
        let mut tombstones = BTreeSet::new();
        for (key, kind) in [("benchmark", RunKind::Benchmark), ("io500", RunKind::Io500)] {
            for id in json
                .get("tombstones")
                .and_then(|t| t.get(key))
                .and_then(Json::as_arr)
                .unwrap_or(&[])
            {
                let id = id
                    .as_u64()
                    .ok_or_else(|| DbError::Corrupt("manifest: bad tombstone id".into()))?;
                tombstones.insert((kind, id));
            }
        }
        let mut segments = Vec::new();
        for seg in json
            .get("segments")
            .and_then(Json::as_arr)
            .ok_or_else(|| DbError::Corrupt("manifest missing segments".into()))?
        {
            segments.push(SegmentMeta::from_json(seg)?);
        }
        Ok(Manifest {
            active_epoch: field("active_epoch")?,
            next_segment: field("next_segment")?,
            tombstones,
            segments,
        })
    }
}

/// Everything [`KnowledgeStore::open_with_vfs`] and
/// [`KnowledgeStore::reload_from_disk`] need, loaded in one place —
/// the single open path over both on-disk layouts.
pub(crate) struct LoadedState {
    pub(crate) db: Database,
    pub(crate) indexes: RunIndexes,
    pub(crate) segments: Vec<Arc<Segment>>,
    pub(crate) tombstones: BTreeSet<(RunKind, u64)>,
    pub(crate) active_epoch: u64,
    pub(crate) next_segment: u64,
    pub(crate) manifest_dirty: bool,
    pub(crate) recovery: persist::RecoveryReport,
}

/// Load a store's state from `path`: a fresh store (no file), the
/// segmented layout (manifest + active image + segment files, mapped
/// lazily), or the legacy single-image layout (migrated to the
/// segmented layout on the first flush).
pub(crate) fn load_state(path: &Path, vfs: &dyn Vfs) -> Result<LoadedState, DbError> {
    let fresh = |dirty| LoadedState {
        db: build_schema(),
        indexes: RunIndexes::default(),
        segments: Vec::new(),
        tombstones: BTreeSet::new(),
        active_epoch: 0,
        next_segment: 0,
        manifest_dirty: dirty,
        recovery: persist::RecoveryReport::default(),
    };
    if !vfs.exists(path) && !vfs.exists(&persist::backup_path(path)) {
        return Ok(fresh(true));
    }
    let (doc, recovery) = persist::read_document_with_recovery_vfs(path, vfs)?;
    match doc.get("format").and_then(Json::as_str) {
        Some(MANIFEST_FORMAT) => {
            let manifest = Manifest::from_json(&doc)?;
            let active = persist::active_path(path, manifest.active_epoch);
            let (db, active_recovery) =
                if vfs.exists(&active) || vfs.exists(&persist::backup_path(&active)) {
                    persist::load_with_recovery_vfs(&active, vfs)?
                } else {
                    return Err(DbError::Corrupt(format!(
                        "manifest names epoch {} but {} is missing",
                        manifest.active_epoch,
                        active.display()
                    )));
                };
            let indexes = RunIndexes::rebuild(&db)?;
            let segments = manifest
                .segments
                .into_iter()
                .map(|meta| {
                    let seg_path = persist::segment_path(path, meta.id);
                    Arc::new(Segment::new(meta, seg_path))
                })
                .collect();
            Ok(LoadedState {
                db,
                indexes,
                segments,
                tombstones: manifest.tombstones,
                active_epoch: manifest.active_epoch,
                next_segment: manifest.next_segment,
                manifest_dirty: false,
                recovery: persist::RecoveryReport {
                    recovered_from_backup: recovery.recovered_from_backup
                        || active_recovery.recovered_from_backup,
                    primary_error: recovery.primary_error.or(active_recovery.primary_error),
                },
            })
        }
        _ => {
            // Legacy single-image layout: the whole corpus is the
            // active generation at epoch 0. The first flush writes the
            // segmented layout (the legacy image rotates into `.bak`).
            let db = persist::from_json(&doc)?;
            let indexes = RunIndexes::rebuild(&db)?;
            Ok(LoadedState {
                db,
                indexes,
                segments: Vec::new(),
                tombstones: BTreeSet::new(),
                active_epoch: 0,
                next_segment: 0,
                manifest_dirty: true,
                recovery,
            })
        }
    }
}

/// An immutable, point-in-time view of the whole store: a clone of the
/// (bounded) active generation and its indexes, `Arc`-shared sealed
/// segments, and the tombstone set, all pinned at one
/// [`Snapshot::generation`].
///
/// Reads through a snapshot are wait-free with respect to the store:
/// ingest, sealing, deletes and compaction never change what a snapshot
/// returns. Segment bodies a snapshot has touched stay resident for the
/// snapshot's lifetime (they are never evicted from the shared
/// [`Segment`] handle), and compaction preloads the bodies of the
/// segments it replaces, so a snapshot keeps answering even after the
/// segment files it references are unlinked. `Send + Sync`: explorerd
/// hands snapshots to request threads and renders without holding the
/// store lock.
pub struct Snapshot {
    active: Database,
    indexes: RunIndexes,
    segments: Vec<Arc<Segment>>,
    tombstones: BTreeSet<(RunKind, u64)>,
    vfs: Arc<dyn Vfs>,
    obs: QueryObs,
    generation: u64,
}

impl Snapshot {
    fn view(&self) -> StoreView<'_> {
        StoreView {
            active: &self.active,
            indexes: &self.indexes,
            segments: &self.segments,
            tombstones: &self.tombstones,
            vfs: self.vfs.as_ref(),
            obs: &self.obs,
        }
    }

    /// The store's write generation at the moment this snapshot was
    /// taken — the cache key for anything rendered from it.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// [`KnowledgeStore::query_ids`] against the pinned state.
    pub fn query_ids(
        &self,
        query: &Query,
        deadline: &DeadlineToken,
    ) -> Result<Vec<RunRef>, DbError> {
        self.view().execute(query, false, deadline)
    }

    /// [`KnowledgeStore::query_summaries`] against the pinned state.
    pub fn query_summaries(
        &self,
        query: &Query,
        deadline: &DeadlineToken,
    ) -> Result<Vec<RunSummary>, DbError> {
        self.view().query_summaries(query, deadline)
    }

    /// [`KnowledgeStore::boxplot_series`] against the pinned state.
    pub fn boxplot_series(
        &self,
        predicate: &RunPredicate,
        operation: &str,
        deadline: &DeadlineToken,
    ) -> Result<Vec<(String, Vec<f64>)>, DbError> {
        self.view().boxplot_series(predicate, operation, deadline)
    }

    /// [`KnowledgeStore::aggregate`] against the pinned state: the
    /// aggregates answer from exactly this generation however the live
    /// store mutates underneath.
    pub fn aggregate(
        &self,
        query: &crate::aggregate::AggregateQuery,
        deadline: &DeadlineToken,
    ) -> Result<crate::aggregate::AggregateResult, DbError> {
        self.view().aggregate(query, false, deadline)
    }

    /// [`KnowledgeStore::count`] against the pinned state.
    pub fn count(&self, predicate: &RunPredicate) -> Result<usize, DbError> {
        self.view().count(predicate)
    }

    /// [`KnowledgeStore::query_items`] against the pinned state.
    pub fn query_items(&self, query: &Query) -> Result<Vec<KnowledgeItem>, DbError> {
        let refs = self
            .view()
            .execute(query, false, &DeadlineToken::unbounded())?;
        let mut items = Vec::with_capacity(refs.len());
        for r in refs {
            match r.kind {
                RunKind::Benchmark => {
                    if let Some(k) = self.load_knowledge(r.id)? {
                        items.push(KnowledgeItem::Benchmark(k));
                    }
                }
                RunKind::Io500 => {
                    if let Some(k) = self.load_io500(r.id)? {
                        items.push(KnowledgeItem::Io500(k));
                    }
                }
            }
        }
        Ok(items)
    }

    /// [`KnowledgeStore::load_knowledge`] against the pinned state.
    pub fn load_knowledge(&self, id: u64) -> Result<Option<Knowledge>, DbError> {
        let Some(location) = self.view().locate(RunKind::Benchmark, id)? else {
            return Ok(None);
        };
        self.obs.knowledge_deserialized.inc();
        load_knowledge_from(location.db(), id)
    }

    /// [`KnowledgeStore::load_io500`] against the pinned state.
    pub fn load_io500(&self, id: u64) -> Result<Option<Io500Knowledge>, DbError> {
        let Some(location) = self.view().locate(RunKind::Io500, id)? else {
            return Ok(None);
        };
        self.obs.knowledge_deserialized.inc();
        load_io500_from(location.db(), id)
    }

    /// Merge the pinned state into one relational database: the active
    /// generation plus every segment's rows, minus tombstoned runs.
    /// This is the whole-corpus surface the SQL layer queries — O(corpus)
    /// by construction, which is exactly why the query engine, not SQL,
    /// is the hot read path.
    pub fn materialize(&self) -> Result<Database, DbError> {
        let mut merged = self.active.clone();
        for seg in &self.segments {
            let data = seg.data(self.vfs.as_ref())?;
            copy_all_rows(&data.db, &mut merged)?;
        }
        for (kind, id) in &self.tombstones {
            match kind {
                RunKind::Benchmark => delete_benchmark_rows(&mut merged, *id)?,
                RunKind::Io500 => delete_io500_rows(&mut merged, *id)?,
            }
        }
        Ok(merged)
    }
}

/// Copy every row of every table from `src` into `dst` with ids
/// preserved. Sound because sealed generations forward auto-increment
/// counters: no two generations ever hold the same id in the same
/// table.
pub(crate) fn copy_all_rows(src: &Database, dst: &mut Database) -> Result<(), DbError> {
    for table in src.table_names() {
        for row in src.select(table, &Predicate::True, OrderBy::Id, None)? {
            dst.insert_raw(table, row.id, row.values)?;
        }
    }
    Ok(())
}

/// Cascade-delete one benchmark run's rows from `db` (summaries,
/// results, filesystem, system info, warnings, then the performance
/// row itself).
pub(crate) fn delete_benchmark_rows(db: &mut Database, id: u64) -> Result<(), DbError> {
    let by_perf = Predicate::Eq("performance_id".into(), Value::Int(id as i64));
    for srow in db.select("summaries", &by_perf, OrderBy::Id, None)? {
        db.delete(
            "results",
            &Predicate::Eq("summary_id".into(), Value::Int(srow.id)),
        )?;
    }
    db.delete("summaries", &by_perf)?;
    db.delete("filesystems", &by_perf)?;
    db.delete("systeminfos", &by_perf)?;
    db.delete(
        "warnings",
        &Predicate::Eq("owner".into(), Value::from("benchmark"))
            .and(Predicate::Eq("owner_id".into(), Value::Int(id as i64))),
    )?;
    db.delete(
        "performances",
        &Predicate::Eq("id".into(), Value::Int(id as i64)),
    )?;
    Ok(())
}

/// Cascade-delete one IO500 run's rows from `db` (scores, testcases +
/// their results, options, system info, warnings, then the run row).
pub(crate) fn delete_io500_rows(db: &mut Database, id: u64) -> Result<(), DbError> {
    let by_iofh = Predicate::Eq("IOFH_id".into(), Value::Int(id as i64));
    for tc in db.select("IOFHsTestcases", &by_iofh, OrderBy::Id, None)? {
        db.delete(
            "IOFHsResults",
            &Predicate::Eq("testcase_id".into(), Value::Int(tc.id)),
        )?;
    }
    db.delete("IOFHsTestcases", &by_iofh)?;
    db.delete("IOFHsScores", &by_iofh)?;
    db.delete("IOFHsOptions", &by_iofh)?;
    db.delete("IOFHsSystem", &by_iofh)?;
    db.delete(
        "warnings",
        &Predicate::Eq("owner".into(), Value::from("io500"))
            .and(Predicate::Eq("owner_id".into(), Value::Int(id as i64))),
    )?;
    db.delete(
        "IOFHsRuns",
        &Predicate::Eq("id".into(), Value::Int(id as i64)),
    )?;
    Ok(())
}

/// Warnings for one knowledge object in `db`. Images persisted before
/// the `warnings` table existed simply have none.
fn load_warnings_in(db: &Database, owner: &str, id: u64) -> Vec<String> {
    db.select(
        "warnings",
        &Predicate::Eq("owner_id".into(), Value::Int(id as i64)),
        OrderBy::Id,
        None,
    )
    .unwrap_or_default()
    .into_iter()
    .filter(|row| row.values[0].as_text() == Some(owner))
    .map(|row| row.values[2].as_text().unwrap_or("").to_owned())
    .collect()
}

fn one_child_in(db: &Database, table: &str, performance_id: u64) -> Result<Option<Row>, DbError> {
    Ok(db
        .select(
            table,
            &Predicate::Eq("performance_id".into(), Value::Int(performance_id as i64)),
            OrderBy::Id,
            Some(1),
        )?
        .into_iter()
        .next())
}

/// The full benchmark multi-table join against an explicit database —
/// the shared body of [`KnowledgeStore::load_knowledge`] and
/// [`Snapshot::load_knowledge`], so active and sealed generations load
/// identically.
pub(crate) fn load_knowledge_from(db: &Database, id: u64) -> Result<Option<Knowledge>, DbError> {
    let Some(row) = db.get("performances", id as i64)? else {
        return Ok(None);
    };
    let text = |i: usize| row.values[i].as_text().unwrap_or("").to_owned();
    let int = |i: usize| row.values[i].as_int().unwrap_or(0);
    let mut k = Knowledge::new(KnowledgeSource::parse(&text(1)), &text(0));
    k.id = Some(id);
    k.pattern = IoPattern {
        api: text(2),
        test_file: text(3),
        block_size: int(4) as u64,
        transfer_size: int(5) as u64,
        segments: int(6) as u64,
        file_per_proc: int(7) != 0,
        reorder_tasks: int(8) != 0,
        fsync: int(9) != 0,
        collective: int(10) != 0,
        iterations: int(11) as u32,
        tasks: int(12) as u32,
        clients_per_node: int(13) as u32,
    };
    k.start_time = int(14) as u64;
    k.end_time = int(15) as u64;
    k.derived_from = row.values[16].as_int().map(|v| v as u64);

    let summaries = db.select(
        "summaries",
        &Predicate::Eq("performance_id".into(), Value::Int(id as i64)),
        OrderBy::Id,
        None,
    )?;
    for srow in &summaries {
        k.summaries.push(OperationSummary {
            operation: srow.values[1].as_text().unwrap_or("").to_owned(),
            api: srow.values[2].as_text().unwrap_or("").to_owned(),
            max_mib: srow.values[3].as_real().unwrap_or(0.0),
            min_mib: srow.values[4].as_real().unwrap_or(0.0),
            mean_mib: srow.values[5].as_real().unwrap_or(0.0),
            stddev_mib: srow.values[6].as_real().unwrap_or(0.0),
            mean_ops: srow.values[7].as_real().unwrap_or(0.0),
            iterations: srow.values[8].as_int().unwrap_or(0) as u32,
        });
        let operation = srow.values[1].as_text().unwrap_or("").to_owned();
        let results = db.select(
            "results",
            &Predicate::Eq("summary_id".into(), Value::Int(srow.id)),
            OrderBy::Id,
            None,
        )?;
        for rrow in results {
            k.results.push(IterationResult {
                operation: operation.clone(),
                iteration: rrow.values[1].as_int().unwrap_or(0) as u32,
                bw_mib: rrow.values[2].as_real().unwrap_or(0.0),
                ops: rrow.values[3].as_int().unwrap_or(0) as u64,
                ops_per_sec: rrow.values[4].as_real().unwrap_or(0.0),
                latency_s: rrow.values[5].as_real().unwrap_or(0.0),
                open_s: rrow.values[6].as_real().unwrap_or(0.0),
                wrrd_s: rrow.values[7].as_real().unwrap_or(0.0),
                close_s: rrow.values[8].as_real().unwrap_or(0.0),
                total_s: rrow.values[9].as_real().unwrap_or(0.0),
            });
        }
    }

    k.filesystem = one_child_in(db, "filesystems", id)?.map(|frow| FilesystemInfo {
        fs_type: frow.values[1].as_text().unwrap_or("").to_owned(),
        entry_type: frow.values[2].as_text().unwrap_or("").to_owned(),
        entry_id: frow.values[3].as_text().unwrap_or("").to_owned(),
        metadata_node: frow.values[4].as_text().unwrap_or("").to_owned(),
        chunk_size: frow.values[5].as_int().unwrap_or(0) as u64,
        storage_targets: frow.values[6].as_int().unwrap_or(0) as u32,
        raid: frow.values[7].as_text().unwrap_or("").to_owned(),
        storage_pool: frow.values[8].as_text().unwrap_or("").to_owned(),
    });
    k.system = one_child_in(db, "systeminfos", id)?.map(|srow| SystemInfo {
        system: srow.values[1].as_text().unwrap_or("").to_owned(),
        cpu_model: srow.values[2].as_text().unwrap_or("").to_owned(),
        cores: srow.values[3].as_int().unwrap_or(0) as u32,
        cpu_mhz: srow.values[4].as_real().unwrap_or(0.0),
        cache_kib: srow.values[5].as_int().unwrap_or(0) as u64,
        mem_kib: srow.values[6].as_int().unwrap_or(0) as u64,
    });
    k.warnings = load_warnings_in(db, "benchmark", id);
    Ok(Some(k))
}

/// The full IO500 multi-table join against an explicit database — the
/// shared body of [`KnowledgeStore::load_io500`] and
/// [`Snapshot::load_io500`].
pub(crate) fn load_io500_from(db: &Database, id: u64) -> Result<Option<Io500Knowledge>, DbError> {
    let Some(run) = db.get("IOFHsRuns", id as i64)? else {
        return Ok(None);
    };
    let scores = db
        .select(
            "IOFHsScores",
            &Predicate::Eq("IOFH_id".into(), Value::Int(id as i64)),
            OrderBy::Id,
            Some(1),
        )?
        .into_iter()
        .next();
    let mut testcases = Vec::new();
    for tc in db.select(
        "IOFHsTestcases",
        &Predicate::Eq("IOFH_id".into(), Value::Int(id as i64)),
        OrderBy::Id,
        None,
    )? {
        let result = db
            .select(
                "IOFHsResults",
                &Predicate::Eq("testcase_id".into(), Value::Int(tc.id)),
                OrderBy::Id,
                Some(1),
            )?
            .into_iter()
            .next();
        testcases.push(Io500Testcase {
            name: tc.values[1].as_text().unwrap_or("").to_owned(),
            unit: tc.values[2].as_text().unwrap_or("").to_owned(),
            value: result
                .as_ref()
                .and_then(|r| r.values[1].as_real())
                .unwrap_or(0.0),
            time_s: result
                .as_ref()
                .and_then(|r| r.values[2].as_real())
                .unwrap_or(0.0),
        });
    }
    let mut options = BTreeMap::new();
    for opt in db.select(
        "IOFHsOptions",
        &Predicate::Eq("IOFH_id".into(), Value::Int(id as i64)),
        OrderBy::Id,
        None,
    )? {
        options.insert(
            opt.values[1].as_text().unwrap_or("").to_owned(),
            opt.values[2].as_text().unwrap_or("").to_owned(),
        );
    }
    let system = db
        .select(
            "IOFHsSystem",
            &Predicate::Eq("IOFH_id".into(), Value::Int(id as i64)),
            OrderBy::Id,
            Some(1),
        )?
        .into_iter()
        .next()
        .map(|srow| SystemInfo {
            system: srow.values[1].as_text().unwrap_or("").to_owned(),
            cpu_model: srow.values[2].as_text().unwrap_or("").to_owned(),
            cores: srow.values[3].as_int().unwrap_or(0) as u32,
            cpu_mhz: srow.values[4].as_real().unwrap_or(0.0),
            cache_kib: srow.values[5].as_int().unwrap_or(0) as u64,
            mem_kib: srow.values[6].as_int().unwrap_or(0) as u64,
        });
    Ok(Some(Io500Knowledge {
        id: Some(id),
        tasks: run.values[0].as_int().unwrap_or(0) as u32,
        start_time: run.values[1].as_int().unwrap_or(0) as u64,
        bw_score: scores
            .as_ref()
            .and_then(|s| s.values[1].as_real())
            .unwrap_or(0.0),
        md_score: scores
            .as_ref()
            .and_then(|s| s.values[2].as_real())
            .unwrap_or(0.0),
        total_score: scores
            .as_ref()
            .and_then(|s| s.values[3].as_real())
            .unwrap_or(0.0),
        testcases,
        options,
        system,
        warnings: load_warnings_in(db, "io500", id),
    }))
}

/// Map a database error onto the cycle's error taxonomy: on-disk
/// corruption is its own class (the CLI exits 5 on it and retries are
/// pointless); a full disk is transient (retry after cleanup, exit
/// code 3); everything else is a permanent logic/schema error.
fn db_to_cycle_error(e: DbError) -> CycleError {
    match &e {
        DbError::Corrupt(_) => CycleError::corrupt(PhaseKind::Persistence, "knowledge-store", e),
        DbError::Full(_) => CycleError::transient(PhaseKind::Persistence, "knowledge-store", e),
        _ => CycleError::permanent(PhaseKind::Persistence, "knowledge-store", e),
    }
}

/// Build the paper's schema.
pub(crate) fn build_schema() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "performances",
            vec![
                Column::required("command", ColumnType::Text),
                Column::required("source", ColumnType::Text),
                Column::new("api", ColumnType::Text),
                Column::new("testFileName", ColumnType::Text),
                Column::new("block_size", ColumnType::Integer),
                Column::new("transfer_size", ColumnType::Integer),
                Column::new("segments", ColumnType::Integer),
                Column::new("filePerProc", ColumnType::Integer),
                Column::new("reorderTasks", ColumnType::Integer),
                Column::new("fsync", ColumnType::Integer),
                Column::new("collective", ColumnType::Integer),
                Column::new("iterations", ColumnType::Integer),
                Column::new("tasks", ColumnType::Integer),
                Column::new("clientsPerNode", ColumnType::Integer),
                Column::new("start_time", ColumnType::Integer),
                Column::new("end_time", ColumnType::Integer),
                Column::new("derived_from", ColumnType::Integer),
            ],
        )
        .with_index("api")
        .with_index("command"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "summaries",
            vec![
                Column::required("performance_id", ColumnType::Integer),
                Column::required("operation", ColumnType::Text),
                Column::new("api", ColumnType::Text),
                Column::new("max_mib", ColumnType::Real),
                Column::new("min_mib", ColumnType::Real),
                Column::new("mean_mib", ColumnType::Real),
                Column::new("stddev_mib", ColumnType::Real),
                Column::new("mean_ops", ColumnType::Real),
                Column::new("iterations", ColumnType::Integer),
            ],
        )
        .with_fk("performance_id", "performances")
        .with_index("performance_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "results",
            vec![
                Column::required("summary_id", ColumnType::Integer),
                Column::new("iteration", ColumnType::Integer),
                Column::new("bw_mib", ColumnType::Real),
                Column::new("ops", ColumnType::Integer),
                Column::new("ops_per_sec", ColumnType::Real),
                Column::new("latency_s", ColumnType::Real),
                Column::new("open_s", ColumnType::Real),
                Column::new("wrRd_s", ColumnType::Real),
                Column::new("close_s", ColumnType::Real),
                Column::new("total_s", ColumnType::Real),
            ],
        )
        .with_fk("summary_id", "summaries")
        .with_index("summary_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "filesystems",
            vec![
                Column::required("performance_id", ColumnType::Integer),
                Column::new("fs_type", ColumnType::Text),
                Column::new("entry_type", ColumnType::Text),
                Column::new("entry_id", ColumnType::Text),
                Column::new("metadata_node", ColumnType::Text),
                Column::new("chunk_size", ColumnType::Integer),
                Column::new("storage_targets", ColumnType::Integer),
                Column::new("raid", ColumnType::Text),
                Column::new("storage_pool", ColumnType::Text),
            ],
        )
        .with_fk("performance_id", "performances")
        .with_index("performance_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "systeminfos",
            vec![
                Column::required("performance_id", ColumnType::Integer),
                Column::new("system", ColumnType::Text),
                Column::new("cpu_model", ColumnType::Text),
                Column::new("cores", ColumnType::Integer),
                Column::new("cpu_mhz", ColumnType::Real),
                Column::new("cache_kib", ColumnType::Integer),
                Column::new("mem_kib", ColumnType::Integer),
            ],
        )
        .with_fk("performance_id", "performances")
        .with_index("performance_id"),
    )
    .expect("fresh database accepts schema");

    db.create_table(TableSchema::new(
        "IOFHsRuns",
        vec![
            Column::new("tasks", ColumnType::Integer),
            Column::new("start_time", ColumnType::Integer),
        ],
    ))
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "IOFHsScores",
            vec![
                Column::required("IOFH_id", ColumnType::Integer),
                Column::new("bw_score", ColumnType::Real),
                Column::new("md_score", ColumnType::Real),
                Column::new("total_score", ColumnType::Real),
            ],
        )
        .with_fk("IOFH_id", "IOFHsRuns")
        .with_index("IOFH_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "IOFHsTestcases",
            vec![
                Column::required("IOFH_id", ColumnType::Integer),
                Column::required("name", ColumnType::Text),
                Column::new("unit", ColumnType::Text),
            ],
        )
        .with_fk("IOFH_id", "IOFHsRuns")
        .with_index("IOFH_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "IOFHsResults",
            vec![
                Column::required("testcase_id", ColumnType::Integer),
                Column::new("value", ColumnType::Real),
                Column::new("time_s", ColumnType::Real),
            ],
        )
        .with_fk("testcase_id", "IOFHsTestcases")
        .with_index("testcase_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "IOFHsOptions",
            vec![
                Column::required("IOFH_id", ColumnType::Integer),
                Column::required("key", ColumnType::Text),
                Column::new("value", ColumnType::Text),
            ],
        )
        .with_fk("IOFH_id", "IOFHsRuns")
        .with_index("IOFH_id"),
    )
    .expect("fresh database accepts schema");
    db.create_table(
        TableSchema::new(
            "IOFHsSystem",
            vec![
                Column::required("IOFH_id", ColumnType::Integer),
                Column::new("system", ColumnType::Text),
                Column::new("cpu_model", ColumnType::Text),
                Column::new("cores", ColumnType::Integer),
                Column::new("cpu_mhz", ColumnType::Real),
                Column::new("cache_kib", ColumnType::Integer),
                Column::new("mem_kib", ColumnType::Integer),
            ],
        )
        .with_fk("IOFH_id", "IOFHsRuns")
        .with_index("IOFH_id"),
    )
    .expect("fresh database accepts schema");
    // Extraction warnings for either knowledge kind ("benchmark" rows
    // key off performances ids, "io500" rows off IOFHsRuns ids) — the
    // partiality of a salvaged run must survive persistence.
    db.create_table(
        TableSchema::new(
            "warnings",
            vec![
                Column::required("owner", ColumnType::Text),
                Column::required("owner_id", ColumnType::Integer),
                Column::required("message", ColumnType::Text),
            ],
        )
        .with_index("owner_id"),
    )
    .expect("fresh database accepts schema");
    db
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_knowledge() -> Knowledge {
        let mut k = Knowledge::new(KnowledgeSource::Ior, "ior -a mpiio -b 4m -t 2m -s 40");
        k.pattern = IoPattern {
            api: "MPIIO".into(),
            test_file: "/scratch/test80".into(),
            block_size: 4 << 20,
            transfer_size: 2 << 20,
            segments: 40,
            file_per_proc: true,
            reorder_tasks: true,
            fsync: true,
            collective: false,
            iterations: 2,
            tasks: 80,
            clients_per_node: 20,
        };
        k.summaries.push(OperationSummary {
            operation: "write".into(),
            api: "MPIIO".into(),
            max_mib: 2850.12,
            min_mib: 1251.0,
            mean_mib: 2050.56,
            stddev_mib: 799.56,
            mean_ops: 1025.28,
            iterations: 2,
        });
        for (i, bw) in [2850.12, 1251.0].into_iter().enumerate() {
            k.results.push(IterationResult {
                operation: "write".into(),
                iteration: i as u32,
                bw_mib: bw,
                ops: 6400,
                ops_per_sec: bw / 2.0,
                latency_s: 0.0007,
                open_s: 0.002,
                wrrd_s: 4.4,
                close_s: 0.001,
                total_s: 4.5,
            });
        }
        k.filesystem = Some(FilesystemInfo {
            fs_type: "BeeGFS".into(),
            entry_type: "file".into(),
            entry_id: "A-1".into(),
            metadata_node: "meta01".into(),
            chunk_size: 512 * 1024,
            storage_targets: 4,
            raid: "RAID0".into(),
            storage_pool: "Default".into(),
        });
        k.system = Some(SystemInfo {
            system: "FUCHS-CSC".into(),
            cpu_model: "E5-2670v2".into(),
            cores: 20,
            cpu_mhz: 2500.0,
            cache_kib: 25600,
            mem_kib: 134_217_728,
        });
        k.start_time = 100;
        k.end_time = 200;
        k
    }

    fn sample_io500() -> Io500Knowledge {
        Io500Knowledge {
            id: None,
            tasks: 40,
            bw_score: 1.2,
            md_score: 11.0,
            total_score: (1.2f64 * 11.0).sqrt(),
            testcases: vec![
                Io500Testcase {
                    name: "ior-easy-write".into(),
                    value: 2.5,
                    unit: "GiB/s".into(),
                    time_s: 31.0,
                },
                Io500Testcase {
                    name: "mdtest-easy-write".into(),
                    value: 14.2,
                    unit: "kIOPS".into(),
                    time_s: 8.4,
                },
            ],
            options: BTreeMap::from([("dir".to_owned(), "/scratch/io500".to_owned())]),
            system: Some(SystemInfo {
                system: "FUCHS-CSC".into(),
                cpu_model: "E5-2670v2".into(),
                cores: 20,
                cpu_mhz: 2500.0,
                cache_kib: 25600,
                mem_kib: 134_217_728,
            }),
            start_time: 7777,
            warnings: Vec::new(),
        }
    }

    #[test]
    fn extraction_warnings_roundtrip() {
        let mut store = KnowledgeStore::in_memory();
        let partial = sample_knowledge().with_warning("rows truncated after iteration 1");
        let id = store.save_knowledge(&partial).unwrap();
        let loaded = store.load_knowledge(id).unwrap().unwrap();
        assert_eq!(loaded.warnings, partial.warnings);
        assert!(loaded.is_partial());

        let mut io500 = sample_io500();
        io500.warnings.push("no [SCORE ] line".to_owned());
        let id = store.save_io500(&io500).unwrap();
        let loaded = store.load_io500(id).unwrap().unwrap();
        assert_eq!(loaded.warnings, io500.warnings);
        // Warnings attach to their own object, not to every one.
        let clean_id = store.save_knowledge(&sample_knowledge()).unwrap();
        let clean = store.load_knowledge(clean_id).unwrap().unwrap();
        assert!(clean.warnings.is_empty());
    }

    #[test]
    fn knowledge_roundtrip() {
        let mut store = KnowledgeStore::in_memory();
        let original = sample_knowledge();
        let id = store.save_knowledge(&original).unwrap();
        let mut loaded = store.load_knowledge(id).unwrap().unwrap();
        assert_eq!(loaded.id, Some(id));
        loaded.id = None;
        assert_eq!(loaded, original);
        assert!(store.load_knowledge(99).unwrap().is_none());
    }

    #[test]
    fn io500_roundtrip() {
        let mut store = KnowledgeStore::in_memory();
        let original = sample_io500();
        let id = store.save_io500(&original).unwrap();
        let mut loaded = store.load_io500(id).unwrap().unwrap();
        assert_eq!(loaded.id, Some(id));
        loaded.id = None;
        assert_eq!(loaded, original);
    }

    #[test]
    fn rows_land_in_paper_tables() {
        let mut store = KnowledgeStore::in_memory();
        store.save_knowledge(&sample_knowledge()).unwrap();
        store.save_io500(&sample_io500()).unwrap();
        let db = store.database();
        assert_eq!(db.row_count("performances").unwrap(), 1);
        assert_eq!(db.row_count("summaries").unwrap(), 1);
        assert_eq!(db.row_count("results").unwrap(), 2);
        assert_eq!(db.row_count("filesystems").unwrap(), 1);
        assert_eq!(db.row_count("systeminfos").unwrap(), 1);
        assert_eq!(db.row_count("IOFHsRuns").unwrap(), 1);
        assert_eq!(db.row_count("IOFHsScores").unwrap(), 1);
        assert_eq!(db.row_count("IOFHsTestcases").unwrap(), 2);
        assert_eq!(db.row_count("IOFHsResults").unwrap(), 2);
        assert_eq!(db.row_count("IOFHsOptions").unwrap(), 1);
        assert_eq!(db.row_count("IOFHsSystem").unwrap(), 1);
    }

    #[test]
    fn sql_surface_reaches_knowledge() {
        let mut store = KnowledgeStore::in_memory();
        store.save_knowledge(&sample_knowledge()).unwrap();
        let rows = crate::sql::query(
            store.database(),
            "SELECT * FROM performances WHERE api = 'MPIIO'",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        let rows = crate::sql::query(
            store.database(),
            "SELECT * FROM results WHERE bw_mib < 2000",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn persister_trait_roundtrip() {
        let mut store = KnowledgeStore::in_memory();
        let items = vec![
            KnowledgeItem::Benchmark(sample_knowledge()),
            KnowledgeItem::Io500(sample_io500()),
        ];
        let mut ctx = PhaseCtx::detached(PhaseKind::Persistence, "knowledge-store");
        let ids = store.persist(&mut ctx, &items).unwrap();
        assert_eq!(ids, vec![1, 1]); // separate id spaces, as in the paper
        let loaded = Persister::load_all(&store, &mut ctx).unwrap();
        assert_eq!(loaded.len(), 2);
        assert!(matches!(loaded[0], KnowledgeItem::Benchmark(_)));
        assert!(matches!(loaded[1], KnowledgeItem::Io500(_)));
    }

    #[test]
    fn file_backed_store_survives_reopen() {
        let dir = std::env::temp_dir().join("iokc-kstore-test");
        // The segmented layout is several sibling files (manifest,
        // `.bak`, `.active-<epoch>`); start from an empty directory.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("knowledge.iokc.json");
        {
            let mut store = KnowledgeStore::open(path.clone()).unwrap();
            store.save_knowledge(&sample_knowledge()).unwrap();
        }
        let store = KnowledgeStore::open(path.clone()).unwrap();
        assert_eq!(store.knowledge_count(), 1);
        let k = store.load_knowledge(1).unwrap().unwrap();
        assert_eq!(k.pattern.tasks, 80);
        std::fs::remove_file(&path).unwrap();
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_summary() -> impl Strategy<Value = OperationSummary> {
            (
                "[a-z]{3,8}",
                0.0f64..1e5,
                0.0f64..1e5,
                0.0f64..1e5,
                0u32..20,
            )
                .prop_map(|(operation, max, min, mean, iterations)| OperationSummary {
                    operation,
                    api: "POSIX".into(),
                    max_mib: max,
                    min_mib: min,
                    mean_mib: mean,
                    stddev_mib: 0.0,
                    mean_ops: mean / 2.0,
                    iterations,
                })
        }

        fn arb_knowledge() -> impl Strategy<Value = Knowledge> {
            (
                "[ -~]{1,60}",
                proptest::collection::vec(arb_summary(), 0..4),
                0u64..1u64 << 40,
                0u64..1u64 << 30,
                1u32..512,
                proptest::option::of(0u64..1000),
            )
                .prop_map(|(command, summaries, block, xfer, tasks, _)| {
                    let mut k = Knowledge::new(KnowledgeSource::Ior, &command);
                    // Deduplicate operations: the store keys results by
                    // operation within a knowledge object.
                    let mut seen = std::collections::BTreeSet::new();
                    for summary in summaries {
                        if seen.insert(summary.operation.clone()) {
                            for i in 0..summary.iterations.min(3) {
                                k.results.push(IterationResult {
                                    operation: summary.operation.clone(),
                                    iteration: i,
                                    bw_mib: summary.mean_mib + f64::from(i),
                                    ops: 10,
                                    ops_per_sec: 5.0,
                                    latency_s: 0.001,
                                    open_s: 0.002,
                                    wrrd_s: 1.5,
                                    close_s: 0.003,
                                    total_s: 1.6,
                                });
                            }
                            k.summaries.push(summary);
                        }
                    }
                    k.pattern.block_size = block;
                    k.pattern.transfer_size = xfer;
                    k.pattern.tasks = tasks;
                    k.pattern.api = "POSIX".into();
                    k
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn arbitrary_knowledge_roundtrips(k in arb_knowledge()) {
                let mut store = KnowledgeStore::in_memory();
                let id = store.save_knowledge(&k).unwrap();
                let mut loaded = store.load_knowledge(id).unwrap().unwrap();
                loaded.id = None;
                prop_assert_eq!(loaded, k);
            }

            #[test]
            fn many_objects_keep_distinct_ids(
                ks in proptest::collection::vec(arb_knowledge(), 1..6)
            ) {
                let mut store = KnowledgeStore::in_memory();
                let mut ids = Vec::new();
                for k in &ks {
                    ids.push(store.save_knowledge(k).unwrap());
                }
                let mut unique = ids.clone();
                unique.sort_unstable();
                unique.dedup();
                prop_assert_eq!(unique.len(), ids.len());
                for (id, original) in ids.iter().zip(&ks) {
                    let mut loaded = store.load_knowledge(*id).unwrap().unwrap();
                    loaded.id = None;
                    prop_assert_eq!(&loaded, original);
                }
            }
        }
    }

    mod robustness {
        use super::*;
        use crate::vfs::{FaultPlan, FaultVfs, Vfs};
        use std::path::PathBuf;
        use std::sync::Arc;

        fn kb() -> PathBuf {
            PathBuf::from("/kb.json")
        }

        fn cmd_knowledge(i: usize) -> Knowledge {
            Knowledge::new(KnowledgeSource::Ior, &format!("cmd-{i}"))
        }

        fn stored_commands(store: &KnowledgeStore) -> Vec<String> {
            store
                .database()
                .select("performances", &Predicate::True, OrderBy::Id, None)
                .unwrap()
                .iter()
                .map(|row| row.values[0].as_text().unwrap_or("").to_owned())
                .collect()
        }

        #[test]
        fn enospc_mid_flush_is_transient_and_the_store_stays_coherent() {
            // Probe the op range the second save occupies.
            let probe = Arc::new(FaultVfs::pristine());
            let mut store =
                KnowledgeStore::open_with_vfs(kb(), probe.clone() as Arc<dyn Vfs>).unwrap();
            store.save_knowledge(&cmd_knowledge(0)).unwrap();
            let start = probe.op_count();
            store.save_knowledge(&cmd_knowledge(1)).unwrap();
            let end = probe.op_count();
            assert!(end > start);

            for op in start..end {
                let vfs = Arc::new(FaultVfs::new(FaultPlan::enospc_at(op)));
                let mut store =
                    KnowledgeStore::open_with_vfs(kb(), vfs.clone() as Arc<dyn Vfs>).unwrap();
                store.save_knowledge(&cmd_knowledge(0)).unwrap();
                let generation = store.generation();
                let err = store.save_knowledge(&cmd_knowledge(1)).unwrap_err();
                assert!(matches!(err, DbError::Full(_)), "op {op}: {err}");
                assert!(vfs.faults_injected() >= 1);
                // The failed write bumped nothing and left memory equal
                // to the last loadable image — fully absent or (when the
                // fault hit the final directory sync, after the data
                // already reached the file) fully present, never torn.
                assert_eq!(store.generation(), generation, "op {op}");
                assert!(store.indexes_consistent().unwrap(), "op {op}");
                let commands = stored_commands(&store);
                assert!(
                    commands == vec!["cmd-0".to_owned()]
                        || commands == vec!["cmd-0".to_owned(), "cmd-1".to_owned()],
                    "op {op}: {commands:?}"
                );
                // The fault is one-shot, so a retry succeeds.
                if commands.len() == 1 {
                    store.save_knowledge(&cmd_knowledge(1)).unwrap();
                    assert_eq!(store.generation(), generation + 1);
                    assert_eq!(
                        stored_commands(&store),
                        vec!["cmd-0".to_owned(), "cmd-1".to_owned()]
                    );
                }
            }
        }

        #[test]
        fn degraded_store_rejects_writes_with_read_only() {
            let disk = Arc::new(FaultVfs::pristine());
            {
                let mut store =
                    KnowledgeStore::open_with_vfs(kb(), disk.clone() as Arc<dyn Vfs>).unwrap();
                store.save_knowledge(&cmd_knowledge(0)).unwrap();
            }
            let vfs = FaultVfs::from_state(disk.durable_state());
            // Both manifest generations must be unusable: a corrupt
            // primary alone now recovers from the seeded `.bak`.
            vfs.set_len(&kb(), 9).unwrap();
            vfs.set_len(&persist::backup_path(&kb()), 9).unwrap();
            let mut store = KnowledgeStore::open_or_degraded_with_vfs(
                kb(),
                Arc::new(FaultVfs::from_state(vfs.durable_state())),
            );
            assert!(store.is_read_only());
            assert!(matches!(
                store.save_knowledge(&cmd_knowledge(1)),
                Err(DbError::ReadOnly(_))
            ));
            assert!(matches!(
                store.delete_knowledge(1),
                Err(DbError::ReadOnly(_))
            ));
            // Reads still answer (over the empty schema).
            assert_eq!(store.knowledge_count(), 0);
            // The Persister mapping surfaces it as a permanent error.
            let mut ctx = PhaseCtx::detached(PhaseKind::Persistence, "knowledge-store");
            assert!(store
                .persist(&mut ctx, &[KnowledgeItem::Benchmark(cmd_knowledge(1))])
                .is_err());
        }

        #[test]
        fn robustness_counters_register_on_attach() {
            let disk = Arc::new(FaultVfs::pristine());
            {
                let mut store =
                    KnowledgeStore::open_with_vfs(kb(), disk.clone() as Arc<dyn Vfs>).unwrap();
                store.save_knowledge(&cmd_knowledge(0)).unwrap();
            }
            let vfs = FaultVfs::from_state(disk.durable_state());
            vfs.set_len(&kb(), 9).unwrap();
            vfs.set_len(&persist::backup_path(&kb()), 9).unwrap();
            let serving = Arc::new(FaultVfs::from_state(vfs.durable_state()));
            let mut store = KnowledgeStore::open_or_degraded_with_vfs(kb(), serving);
            let recorder = Arc::new(iokc_obs::Recorder::disabled());
            store.attach_recorder(Arc::clone(&recorder));
            let metrics = recorder.metrics();
            assert_eq!(metrics.counter("store.open_degraded").get(), 1);
            assert_eq!(metrics.counter("store.fsck_repairs").get(), 0);
            // A healthy store does not bump the degraded counter.
            let mut healthy = KnowledgeStore::in_memory();
            let recorder2 = Arc::new(iokc_obs::Recorder::disabled());
            healthy.attach_recorder(Arc::clone(&recorder2));
            assert_eq!(recorder2.metrics().counter("store.open_degraded").get(), 0);
        }

        mod prop {
            use super::*;
            use proptest::prelude::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(24))]
                #[test]
                fn crash_at_any_fsync_recovers_an_acknowledged_prefix(crash_sync in 0u64..24) {
                    let vfs = Arc::new(FaultVfs::new(FaultPlan::crash_at_fsync(crash_sync)));
                    let mut store =
                        KnowledgeStore::open_with_vfs(kb(), vfs.clone() as Arc<dyn Vfs>).unwrap();
                    let mut acked = 0usize;
                    for i in 0..6 {
                        match store.save_knowledge(&cmd_knowledge(i)) {
                            Ok(_) => acked += 1,
                            Err(_) => break,
                        }
                    }
                    // Every disk image the crash could expose must reopen
                    // to an acknowledged prefix — never a torn mixture.
                    // One extra run is allowed: an in-flight save whose
                    // bytes all reached disk before the failure was
                    // reported is durable even though unacknowledged.
                    for state in vfs.crash_states() {
                        let reopened = KnowledgeStore::open_with_vfs(
                            kb(),
                            Arc::new(FaultVfs::from_state(state)),
                        )
                        .unwrap();
                        let commands = stored_commands(&reopened);
                        prop_assert!(
                            commands.len() >= acked && commands.len() <= acked + 1,
                            "acked {acked}, recovered {commands:?}"
                        );
                        let expected: Vec<String> =
                            (0..commands.len()).map(|i| format!("cmd-{i}")).collect();
                        prop_assert_eq!(&commands, &expected);
                        prop_assert!(reopened.indexes_consistent().unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn generation_bumps_on_writes_and_deletes_only() {
        let mut store = KnowledgeStore::in_memory();
        assert_eq!(store.generation(), 0);
        let id = store.save_knowledge(&sample_knowledge()).unwrap();
        assert_eq!(store.generation(), 1);
        store.save_io500(&sample_io500()).unwrap();
        assert_eq!(store.generation(), 2);
        // Reads do not invalidate.
        store.load_knowledge(id).unwrap();
        store.query_items(&Query::all()).unwrap();
        assert_eq!(store.generation(), 2);
        // Deleting an absent object is a no-op for the generation.
        assert!(!store.delete_knowledge(999).unwrap());
        assert_eq!(store.generation(), 2);
        assert!(store.delete_knowledge(id).unwrap());
        assert_eq!(store.generation(), 3);
    }

    #[test]
    fn delete_knowledge_cascades_to_dependents() {
        let mut store = KnowledgeStore::in_memory();
        let keep = store
            .save_knowledge(&sample_knowledge().with_warning("partial"))
            .unwrap();
        let gone = store
            .save_knowledge(&sample_knowledge().with_warning("other"))
            .unwrap();
        assert!(store.delete_knowledge(gone).unwrap());
        assert!(store.load_knowledge(gone).unwrap().is_none());
        let db = store.database();
        assert_eq!(db.row_count("performances").unwrap(), 1);
        assert_eq!(db.row_count("summaries").unwrap(), 1);
        assert_eq!(db.row_count("results").unwrap(), 2);
        assert_eq!(db.row_count("filesystems").unwrap(), 1);
        assert_eq!(db.row_count("systeminfos").unwrap(), 1);
        assert_eq!(db.row_count("warnings").unwrap(), 1);
        // The surviving object is intact, warnings included.
        let survivor = store.load_knowledge(keep).unwrap().unwrap();
        assert_eq!(survivor.warnings, vec!["partial".to_owned()]);
    }

    #[test]
    fn derived_from_is_persisted() {
        let mut store = KnowledgeStore::in_memory();
        let parent = store.save_knowledge(&sample_knowledge()).unwrap();
        let mut child = sample_knowledge();
        child.derived_from = Some(parent);
        let child_id = store.save_knowledge(&child).unwrap();
        let loaded = store.load_knowledge(child_id).unwrap().unwrap();
        assert_eq!(loaded.derived_from, Some(parent));
    }
}
