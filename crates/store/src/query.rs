//! The typed query engine: predicates, ordering, projection and
//! secondary run indexes executed *inside* the store.
//!
//! Every interactive reader of the knowledge base — the explorer
//! service, the comparison and box-plot views, the CLI listings — used
//! to load every item and filter in its own code, fully deserializing
//! every `Knowledge` object (a multi-table join) per request. This
//! module moves that work into the storage layer:
//!
//! * [`RunPredicate`] — the filter algebra (kind, api/op equality,
//!   tasks/transfer-size/bandwidth ranges, command substring, id sets,
//!   `And`/`Or`/`Not`);
//! * [`Query`] — predicate + order + offset/limit, with a canonical
//!   [`Query::cache_key`] read-through caches can key on;
//! * [`RunSummary`] — the projection row answering list/compare/boxplot
//!   queries without touching `results`/`filesystems`/`systeminfos`;
//! * [`RunIndexes`] — secondary indexes by api, by tasks, and a sorted
//!   bandwidth index (top-k, range scans), maintained incrementally on
//!   every `save_*`/`delete_*` and rebuilt on `open()`;
//! * per-query obs: a `store.query` span plus counters for index hits,
//!   full-scan fallbacks, rows pruned by pushdown, and full `Knowledge`
//!   deserializations.
//!
//! The executor always re-evaluates the complete predicate on every
//! candidate row, so indexes are purely an optimization — the
//! index-backed plan and the forced full scan return identical ids in
//! identical order (property-tested in this module).

use crate::database::{Database, DbError, OrderBy, Predicate, Row};
use crate::knowledge_store::KnowledgeStore;
use crate::segment::{may_match_segment, Segment, SegmentData};
use crate::value::Value;
use crate::vfs::Vfs;
use iokc_obs::{Counter, DeadlineToken, Recorder, SpanStatus};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Which id space a run lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RunKind {
    /// Benchmark knowledge (`performances` tables).
    Benchmark,
    /// IO500 knowledge (`IOFHs*` tables).
    Io500,
}

impl RunKind {
    /// Stable lowercase name (JSON/cache-key form).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RunKind::Benchmark => "benchmark",
            RunKind::Io500 => "io500",
        }
    }
}

/// A reference to one stored run: kind plus id (the two kinds have
/// separate id spaces, as in the paper's schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RunRef {
    /// Which id space.
    pub kind: RunKind,
    /// The id within that space.
    pub id: u64,
}

/// The filter algebra over stored runs.
///
/// Field semantics across the two kinds: an IO500 run has command
/// `"io500"`, api `""`, no operations and transfer size `0`; its
/// *bandwidth* is the `bw_score`, a benchmark's bandwidth is the mean
/// write throughput (`0` when the run has no write summary).
#[derive(Debug, Clone, PartialEq)]
pub enum RunPredicate {
    /// Matches everything.
    True,
    /// Runs of one kind.
    Kind(RunKind),
    /// Exact API match (`""` matches IO500 runs).
    ApiEq(String),
    /// Has a summary for this operation (never true for IO500).
    HasOp(String),
    /// Task count in an inclusive range.
    TasksBetween(u32, u32),
    /// Transfer size in an inclusive range (IO500 runs have size 0).
    TransferBetween(u64, u64),
    /// Bandwidth in an inclusive range (write mean MiB/s, or IO500
    /// `bw_score`).
    BandwidthBetween(f64, f64),
    /// Command contains a substring.
    CommandContains(String),
    /// Id is in the set (applies within each kind's id space; combine
    /// with [`RunPredicate::Kind`] to pin the space).
    IdIn(Vec<u64>),
    /// Conjunction.
    And(Box<RunPredicate>, Box<RunPredicate>),
    /// Disjunction.
    Or(Box<RunPredicate>, Box<RunPredicate>),
    /// Negation.
    Not(Box<RunPredicate>),
}

impl RunPredicate {
    /// Conjunction helper.
    #[must_use]
    pub fn and(self, other: RunPredicate) -> RunPredicate {
        RunPredicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    #[must_use]
    pub fn or(self, other: RunPredicate) -> RunPredicate {
        RunPredicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[must_use]
    pub fn negate(self) -> RunPredicate {
        RunPredicate::Not(Box::new(self))
    }

    /// Could a run of `kind` possibly match? Conservative: `false` only
    /// when the predicate *provably* excludes the kind, so planning can
    /// skip a whole table.
    pub(crate) fn may_match_kind(&self, kind: RunKind) -> bool {
        match self {
            RunPredicate::Kind(k) => *k == kind,
            RunPredicate::HasOp(_) => kind == RunKind::Benchmark,
            RunPredicate::And(a, b) => a.may_match_kind(kind) && b.may_match_kind(kind),
            RunPredicate::Or(a, b) => a.may_match_kind(kind) || b.may_match_kind(kind),
            _ => true,
        }
    }

    /// Evaluate against a materialized projection row — the segment scan
    /// path, where every run already has its [`RunSummary`] in memory.
    /// Must agree exactly with the row-probe evaluation
    /// (property-tested: the segment path and the active path return the
    /// same runs for the same data).
    pub(crate) fn matches_summary(&self, s: &RunSummary) -> bool {
        match self {
            RunPredicate::True => true,
            RunPredicate::Kind(kind) => *kind == s.kind,
            RunPredicate::ApiEq(api) => s.api == *api,
            RunPredicate::HasOp(op) => s.ops.iter().any(|o| o.operation == *op),
            RunPredicate::TasksBetween(lo, hi) => (*lo..=*hi).contains(&s.tasks),
            RunPredicate::TransferBetween(lo, hi) => (*lo..=*hi).contains(&s.transfer_size),
            RunPredicate::BandwidthBetween(lo, hi) => {
                let bw = s.bandwidth();
                *lo <= bw && bw <= *hi
            }
            RunPredicate::CommandContains(text) => s.command.contains(text.as_str()),
            RunPredicate::IdIn(ids) => ids.contains(&s.id),
            RunPredicate::And(a, b) => a.matches_summary(s) && b.matches_summary(s),
            RunPredicate::Or(a, b) => a.matches_summary(s) || b.matches_summary(s),
            RunPredicate::Not(inner) => !inner.matches_summary(s),
        }
    }

    fn write_key(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            RunPredicate::True => out.push('*'),
            RunPredicate::Kind(k) => {
                let _ = write!(out, "kind={}", k.as_str());
            }
            RunPredicate::ApiEq(api) => {
                let _ = write!(out, "api={api}");
            }
            RunPredicate::HasOp(op) => {
                let _ = write!(out, "op={op}");
            }
            RunPredicate::TasksBetween(lo, hi) => {
                let _ = write!(out, "tasks={lo}..{hi}");
            }
            RunPredicate::TransferBetween(lo, hi) => {
                let _ = write!(out, "xfer={lo}..{hi}");
            }
            RunPredicate::BandwidthBetween(lo, hi) => {
                let _ = write!(out, "bw={lo}..{hi}");
            }
            RunPredicate::CommandContains(text) => {
                let _ = write!(out, "cmd~{text}");
            }
            RunPredicate::IdIn(ids) => {
                let _ = write!(out, "id∈{ids:?}");
            }
            RunPredicate::And(a, b) => {
                out.push_str("(& ");
                a.write_key(out);
                out.push(' ');
                b.write_key(out);
                out.push(')');
            }
            RunPredicate::Or(a, b) => {
                out.push_str("(| ");
                a.write_key(out);
                out.push(' ');
                b.write_key(out);
                out.push(')');
            }
            RunPredicate::Not(inner) => {
                out.push_str("(! ");
                inner.write_key(out);
                out.push(')');
            }
        }
    }
}

/// Sort key for query results. Every order breaks ties by `(id, kind)`,
/// so paginated or limited results are deterministic across requests
/// even when the sort key (tasks, bandwidth) is not unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOrder {
    /// By id (benchmark before io500 on equal ids).
    Id,
    /// By task count.
    Tasks,
    /// By command string.
    Command,
    /// By bandwidth (write mean MiB/s, or IO500 `bw_score`).
    Bandwidth,
}

impl RunOrder {
    fn as_str(self) -> &'static str {
        match self {
            RunOrder::Id => "id",
            RunOrder::Tasks => "tasks",
            RunOrder::Command => "command",
            RunOrder::Bandwidth => "bw",
        }
    }
}

/// A typed query: predicate, order, offset/limit. Projection is chosen
/// by the executing method — [`KnowledgeStore::query_summaries`] for
/// the cheap [`RunSummary`] rows, [`KnowledgeStore::query_ids`] for
/// bare refs, [`KnowledgeStore::query_items`] for explicit full
/// deserialization, [`KnowledgeStore::count`] for the no-materialize
/// count fast path.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The filter.
    pub predicate: RunPredicate,
    /// The sort key.
    pub order: RunOrder,
    /// Reverse the sort (ties still ascend by id, keeping pagination
    /// deterministic).
    pub descending: bool,
    /// Rows to skip after sorting.
    pub offset: usize,
    /// Maximum rows to return (`None` = all).
    pub limit: Option<usize>,
}

impl Query {
    /// Everything, in id order.
    #[must_use]
    pub fn all() -> Query {
        Query::new(RunPredicate::True)
    }

    /// A query with defaults: id order, no offset, no limit.
    #[must_use]
    pub fn new(predicate: RunPredicate) -> Query {
        Query {
            predicate,
            order: RunOrder::Id,
            descending: false,
            offset: 0,
            limit: None,
        }
    }

    /// Set the sort key (builder style).
    #[must_use]
    pub fn order_by(mut self, order: RunOrder) -> Query {
        self.order = order;
        self
    }

    /// Sort descending (builder style).
    #[must_use]
    pub fn descending(mut self) -> Query {
        self.descending = true;
        self
    }

    /// Skip `n` rows (builder style).
    #[must_use]
    pub fn offset(mut self, n: usize) -> Query {
        self.offset = n;
        self
    }

    /// Return at most `n` rows (builder style).
    #[must_use]
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// A canonical text form of the *typed* query — read-through caches
    /// key on this (plus the store generation), so two request strings
    /// that parse to the same query share one cache entry.
    #[must_use]
    pub fn cache_key(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut pred = String::new();
        self.predicate.write_key(&mut pred);
        write!(
            f,
            "q[{pred}|{}{}|{}+{}]",
            self.order.as_str(),
            if self.descending { "-" } else { "+" },
            self.offset,
            self.limit.map_or("all".to_owned(), |n| n.to_string()),
        )
    }
}

/// Per-operation statistics of one benchmark run — the slice of an
/// `OperationSummary` the interactive views actually read.
#[derive(Debug, Clone, PartialEq)]
pub struct OpStat {
    /// Operation name (`write`, `read`, …).
    pub operation: String,
    /// Mean bandwidth, MiB/s.
    pub mean_mib: f64,
    /// Max bandwidth, MiB/s.
    pub max_mib: f64,
    /// Mean operation rate, ops/s.
    pub mean_ops: f64,
}

/// The projection row: everything the list/compare/boxplot views need,
/// materialized from `performances` + `summaries` (+ scores for IO500)
/// without deserializing the full `Knowledge` object.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Which id space.
    pub kind: RunKind,
    /// Run id.
    pub id: u64,
    /// Benchmark command (`"io500"` for IO500 runs).
    pub command: String,
    /// API (`""` for IO500 runs).
    pub api: String,
    /// Task count.
    pub tasks: u32,
    /// Block size in bytes (0 for IO500).
    pub block_size: u64,
    /// Transfer size in bytes (0 for IO500).
    pub transfer_size: u64,
    /// Segment count (0 for IO500).
    pub segments: u64,
    /// Clients per node (0 for IO500).
    pub clients_per_node: u32,
    /// Per-operation statistics (empty for IO500).
    pub ops: Vec<OpStat>,
    /// IO500 bandwidth score (0 for benchmarks).
    pub bw_score: f64,
    /// IO500 metadata score (0 for benchmarks).
    pub md_score: f64,
    /// IO500 total score (0 for benchmarks).
    pub total_score: f64,
    /// Number of extraction warnings attached to the run.
    pub warning_count: usize,
}

impl RunSummary {
    /// Statistics for one operation.
    #[must_use]
    pub fn op(&self, operation: &str) -> Option<&OpStat> {
        self.ops.iter().find(|o| o.operation == operation)
    }

    /// The run's bandwidth under the engine's ordering: write mean for
    /// benchmarks, `bw_score` for IO500.
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        match self.kind {
            RunKind::Benchmark => self.op("write").map_or(0.0, |o| o.mean_mib),
            RunKind::Io500 => self.bw_score,
        }
    }
}

/// A bandwidth key with a total order (`f64` via `total_cmp`), usable
/// in the sorted bandwidth index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct BwKey(pub(crate) f64);

impl Eq for BwKey {}

impl PartialOrd for BwKey {
    fn partial_cmp(&self, other: &BwKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BwKey {
    fn cmp(&self, other: &BwKey) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The secondary run indexes: by api (benchmarks), by tasks and by
/// bandwidth (both kinds). Values are sorted id vectors. Maintained
/// incrementally by `save_*`/`delete_*`; rebuilt from the tables on
/// `open()`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunIndexes {
    pub(crate) bench_by_api: BTreeMap<String, Vec<u64>>,
    pub(crate) bench_by_tasks: BTreeMap<u32, Vec<u64>>,
    pub(crate) io500_by_tasks: BTreeMap<u32, Vec<u64>>,
    pub(crate) bench_by_bw: BTreeMap<BwKey, Vec<u64>>,
    pub(crate) io500_by_bw: BTreeMap<BwKey, Vec<u64>>,
}

fn entry_insert<K: Ord>(map: &mut BTreeMap<K, Vec<u64>>, key: K, id: u64) {
    let ids = map.entry(key).or_default();
    match ids.binary_search(&id) {
        Ok(_) => {}
        Err(pos) => ids.insert(pos, id),
    }
}

fn entry_remove<K: Ord>(map: &mut BTreeMap<K, Vec<u64>>, key: &K, id: u64) {
    if let Some(ids) = map.get_mut(key) {
        ids.retain(|x| *x != id);
        if ids.is_empty() {
            map.remove(key);
        }
    }
}

impl RunIndexes {
    pub(crate) fn insert_bench(&mut self, id: u64, api: &str, tasks: u32, bw: f64) {
        entry_insert(&mut self.bench_by_api, api.to_owned(), id);
        entry_insert(&mut self.bench_by_tasks, tasks, id);
        entry_insert(&mut self.bench_by_bw, BwKey(bw), id);
    }

    pub(crate) fn remove_bench(&mut self, id: u64, api: &str, tasks: u32, bw: f64) {
        entry_remove(&mut self.bench_by_api, &api.to_owned(), id);
        entry_remove(&mut self.bench_by_tasks, &tasks, id);
        entry_remove(&mut self.bench_by_bw, &BwKey(bw), id);
    }

    pub(crate) fn insert_io500(&mut self, id: u64, tasks: u32, bw_score: f64) {
        entry_insert(&mut self.io500_by_tasks, tasks, id);
        entry_insert(&mut self.io500_by_bw, BwKey(bw_score), id);
    }

    pub(crate) fn remove_io500(&mut self, id: u64, tasks: u32, bw_score: f64) {
        entry_remove(&mut self.io500_by_tasks, &tasks, id);
        entry_remove(&mut self.io500_by_bw, &BwKey(bw_score), id);
    }

    /// Rebuild every index from the tables — the `open()` invariant:
    /// after a rebuild the indexes agree exactly with the rows, whatever
    /// the on-disk image contained.
    pub(crate) fn rebuild(db: &Database) -> Result<RunIndexes, DbError> {
        let mut indexes = RunIndexes::default();
        let mut write_bw: BTreeMap<i64, f64> = BTreeMap::new();
        for srow in db.select("summaries", &Predicate::True, OrderBy::Id, None)? {
            if srow.values[1].as_text() == Some("write") {
                if let Some(perf_id) = srow.values[0].as_int() {
                    write_bw.insert(perf_id, srow.values[5].as_real().unwrap_or(0.0));
                }
            }
        }
        for row in db.select("performances", &Predicate::True, OrderBy::Id, None)? {
            let api = row.values[2].as_text().unwrap_or("");
            let tasks = row.values[12].as_int().unwrap_or(0) as u32;
            let bw = write_bw.get(&row.id).copied().unwrap_or(0.0);
            indexes.insert_bench(row.id as u64, api, tasks, bw);
        }
        let mut scores: BTreeMap<i64, f64> = BTreeMap::new();
        for srow in db.select("IOFHsScores", &Predicate::True, OrderBy::Id, None)? {
            if let Some(iofh_id) = srow.values[0].as_int() {
                scores.insert(iofh_id, srow.values[1].as_real().unwrap_or(0.0));
            }
        }
        for row in db.select("IOFHsRuns", &Predicate::True, OrderBy::Id, None)? {
            let tasks = row.values[0].as_int().unwrap_or(0) as u32;
            let bw = scores.get(&row.id).copied().unwrap_or(0.0);
            indexes.insert_io500(row.id as u64, tasks, bw);
        }
        Ok(indexes)
    }
}

/// Cached counter handles for the engine's observability. Rebuilt when
/// a recorder is attached; the default registry belongs to a disabled
/// recorder, so the counters always work and attaching is optional.
#[derive(Clone)]
pub(crate) struct QueryObs {
    pub(crate) recorder: Arc<Recorder>,
    pub(crate) queries: Counter,
    pub(crate) index_hits: Counter,
    pub(crate) full_scans: Counter,
    pub(crate) rows_pruned: Counter,
    pub(crate) knowledge_deserialized: Counter,
    pub(crate) cancelled: Counter,
    pub(crate) agg: crate::aggregate::AggObs,
}

impl QueryObs {
    pub(crate) fn new(recorder: Arc<Recorder>) -> QueryObs {
        let metrics = recorder.metrics();
        QueryObs {
            queries: metrics.counter("store.query.queries"),
            index_hits: metrics.counter("store.query.index_hits"),
            full_scans: metrics.counter("store.query.full_scans"),
            rows_pruned: metrics.counter("store.query.rows_pruned"),
            knowledge_deserialized: metrics.counter("store.query.knowledge_deserialized"),
            cancelled: metrics.counter("store.query_cancelled"),
            agg: crate::aggregate::AggObs::new(&metrics),
            recorder,
        }
    }
}

impl Default for QueryObs {
    fn default() -> QueryObs {
        QueryObs::new(Arc::new(Recorder::disabled()))
    }
}

/// One matched run plus the sort key captured during evaluation, so
/// ordering never needs a second row probe.
struct Matched {
    run: RunRef,
    key: SortKey,
}

enum SortKey {
    Int(u64),
    Text(String),
    Bw(f64),
}

impl SortKey {
    fn cmp_key(&self, other: &SortKey) -> std::cmp::Ordering {
        match (self, other) {
            (SortKey::Int(a), SortKey::Int(b)) => a.cmp(b),
            (SortKey::Text(a), SortKey::Text(b)) => a.cmp(b),
            (SortKey::Bw(a), SortKey::Bw(b)) => a.total_cmp(b),
            _ => std::cmp::Ordering::Equal,
        }
    }
}

/// A lazily-probed benchmark row: the `performances` row is fetched
/// once, `summaries` only when the predicate or sort key needs them.
struct BenchProbe<'a> {
    db: &'a Database,
    id: u64,
    row: Row,
    ops: Option<Vec<OpStat>>,
}

impl<'a> BenchProbe<'a> {
    fn fetch(db: &'a Database, id: u64) -> Result<Option<BenchProbe<'a>>, DbError> {
        Ok(db.get("performances", id as i64)?.map(|row| BenchProbe {
            db,
            id,
            row,
            ops: None,
        }))
    }

    fn command(&self) -> &str {
        self.row.values[0].as_text().unwrap_or("")
    }

    fn api(&self) -> &str {
        self.row.values[2].as_text().unwrap_or("")
    }

    fn transfer_size(&self) -> u64 {
        self.row.values[5].as_int().unwrap_or(0) as u64
    }

    fn tasks(&self) -> u32 {
        self.row.values[12].as_int().unwrap_or(0) as u32
    }

    fn ops(&mut self) -> Result<&[OpStat], DbError> {
        if self.ops.is_none() {
            let rows = self.db.select(
                "summaries",
                &Predicate::Eq("performance_id".into(), Value::Int(self.id as i64)),
                OrderBy::Id,
                None,
            )?;
            self.ops = Some(
                rows.iter()
                    .map(|srow| OpStat {
                        operation: srow.values[1].as_text().unwrap_or("").to_owned(),
                        max_mib: srow.values[3].as_real().unwrap_or(0.0),
                        mean_mib: srow.values[5].as_real().unwrap_or(0.0),
                        mean_ops: srow.values[7].as_real().unwrap_or(0.0),
                    })
                    .collect(),
            );
        }
        Ok(self.ops.as_deref().unwrap_or(&[]))
    }

    fn bandwidth(&mut self) -> Result<f64, DbError> {
        Ok(self
            .ops()?
            .iter()
            .find(|o| o.operation == "write")
            .map_or(0.0, |o| o.mean_mib))
    }

    fn eval(&mut self, predicate: &RunPredicate) -> Result<bool, DbError> {
        Ok(match predicate {
            RunPredicate::True => true,
            RunPredicate::Kind(kind) => *kind == RunKind::Benchmark,
            RunPredicate::ApiEq(api) => self.api() == api,
            RunPredicate::HasOp(op) => self.ops()?.iter().any(|o| &o.operation == op),
            RunPredicate::TasksBetween(lo, hi) => (*lo..=*hi).contains(&self.tasks()),
            RunPredicate::TransferBetween(lo, hi) => (*lo..=*hi).contains(&self.transfer_size()),
            RunPredicate::BandwidthBetween(lo, hi) => {
                let bw = self.bandwidth()?;
                *lo <= bw && bw <= *hi
            }
            RunPredicate::CommandContains(text) => self.command().contains(text.as_str()),
            RunPredicate::IdIn(ids) => ids.contains(&self.id),
            RunPredicate::And(a, b) => self.eval(a)? && self.eval(b)?,
            RunPredicate::Or(a, b) => self.eval(a)? || self.eval(b)?,
            RunPredicate::Not(inner) => !self.eval(inner)?,
        })
    }

    fn sort_key(&mut self, order: RunOrder) -> Result<SortKey, DbError> {
        Ok(match order {
            RunOrder::Id => SortKey::Int(self.id),
            RunOrder::Tasks => SortKey::Int(u64::from(self.tasks())),
            RunOrder::Command => SortKey::Text(self.command().to_owned()),
            RunOrder::Bandwidth => SortKey::Bw(self.bandwidth()?),
        })
    }
}

/// A lazily-probed IO500 row.
struct Io500Probe<'a> {
    db: &'a Database,
    id: u64,
    row: Row,
    bw_score: Option<f64>,
}

impl<'a> Io500Probe<'a> {
    fn fetch(db: &'a Database, id: u64) -> Result<Option<Io500Probe<'a>>, DbError> {
        Ok(db.get("IOFHsRuns", id as i64)?.map(|row| Io500Probe {
            db,
            id,
            row,
            bw_score: None,
        }))
    }

    fn tasks(&self) -> u32 {
        self.row.values[0].as_int().unwrap_or(0) as u32
    }

    fn bw_score(&mut self) -> Result<f64, DbError> {
        if self.bw_score.is_none() {
            let score = self
                .db
                .select(
                    "IOFHsScores",
                    &Predicate::Eq("IOFH_id".into(), Value::Int(self.id as i64)),
                    OrderBy::Id,
                    Some(1),
                )?
                .first()
                .and_then(|s| s.values[1].as_real())
                .unwrap_or(0.0);
            self.bw_score = Some(score);
        }
        Ok(self.bw_score.unwrap_or(0.0))
    }

    fn eval(&mut self, predicate: &RunPredicate) -> Result<bool, DbError> {
        Ok(match predicate {
            RunPredicate::True => true,
            RunPredicate::Kind(kind) => *kind == RunKind::Io500,
            RunPredicate::ApiEq(api) => api.is_empty(),
            RunPredicate::HasOp(_) => false,
            RunPredicate::TasksBetween(lo, hi) => (*lo..=*hi).contains(&self.tasks()),
            RunPredicate::TransferBetween(lo, hi) => *lo == 0 || (*lo..=*hi).contains(&0),
            RunPredicate::BandwidthBetween(lo, hi) => {
                let bw = self.bw_score()?;
                *lo <= bw && bw <= *hi
            }
            RunPredicate::CommandContains(text) => "io500".contains(text.as_str()),
            RunPredicate::IdIn(ids) => ids.contains(&self.id),
            RunPredicate::And(a, b) => self.eval(a)? && self.eval(b)?,
            RunPredicate::Or(a, b) => self.eval(a)? || self.eval(b)?,
            RunPredicate::Not(inner) => !self.eval(inner)?,
        })
    }

    fn sort_key(&mut self, order: RunOrder) -> Result<SortKey, DbError> {
        Ok(match order {
            RunOrder::Id => SortKey::Int(self.id),
            RunOrder::Tasks => SortKey::Int(u64::from(self.tasks())),
            RunOrder::Command => SortKey::Text("io500".to_owned()),
            RunOrder::Bandwidth => SortKey::Bw(self.bw_score()?),
        })
    }
}

/// The candidate plan for one kind: either an index-pruned id list or a
/// full scan of the kind's table.
pub(crate) enum Plan {
    Index(Vec<u64>),
    Scan,
}

/// Two-pointer intersection of ascending-sorted id lists.
fn intersect_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

pub(crate) fn plan_candidates(
    indexes: &RunIndexes,
    kind: RunKind,
    predicate: &RunPredicate,
) -> Plan {
    // Walk the top-level AND chain: every indexable conjunct contributes
    // a sorted candidate list, and a matching row must appear in all of
    // them, so the plan is their intersection — each usable index
    // narrows the probe set further instead of the first one winning.
    let mut conjuncts = Vec::new();
    let mut stack = vec![predicate];
    while let Some(p) = stack.pop() {
        if let RunPredicate::And(a, b) = p {
            stack.push(a);
            stack.push(b);
        } else {
            conjuncts.push(p);
        }
    }
    let mut lists: Vec<Vec<u64>> = Vec::new();
    for conjunct in &conjuncts {
        match conjunct {
            RunPredicate::IdIn(set) => {
                let mut ids = set.clone();
                ids.sort_unstable();
                ids.dedup();
                lists.push(ids);
            }
            RunPredicate::ApiEq(api) if kind == RunKind::Benchmark => {
                lists.push(
                    indexes
                        .bench_by_api
                        .get(api.as_str())
                        .cloned()
                        .unwrap_or_default(),
                );
            }
            RunPredicate::TasksBetween(lo, hi) => {
                if lo > hi {
                    return Plan::Index(Vec::new());
                }
                let map = match kind {
                    RunKind::Benchmark => &indexes.bench_by_tasks,
                    RunKind::Io500 => &indexes.io500_by_tasks,
                };
                let mut ids: Vec<u64> = map
                    .range(lo..=hi)
                    .flat_map(|(_, v)| v.iter().copied())
                    .collect();
                ids.sort_unstable();
                lists.push(ids);
            }
            RunPredicate::BandwidthBetween(lo, hi) => {
                if lo > hi {
                    return Plan::Index(Vec::new());
                }
                let map = match kind {
                    RunKind::Benchmark => &indexes.bench_by_bw,
                    RunKind::Io500 => &indexes.io500_by_bw,
                };
                let mut ids: Vec<u64> = map
                    .range(BwKey(*lo)..=BwKey(*hi))
                    .flat_map(|(_, v)| v.iter().copied())
                    .collect();
                ids.sort_unstable();
                lists.push(ids);
            }
            _ => {}
        }
    }
    // Intersect starting from the smallest list, which bounds the output.
    lists.sort_by_key(Vec::len);
    let mut lists = lists.into_iter();
    let Some(mut ids) = lists.next() else {
        return Plan::Scan;
    };
    for other in lists {
        if ids.is_empty() {
            break;
        }
        ids = intersect_sorted(&ids, &other);
    }
    Plan::Index(ids)
}

impl KnowledgeStore {
    /// Attach an observability recorder: engine spans and counters
    /// (`store.query.*`) register with its metrics registry, so
    /// `/metrics` shows whether queries are index-served. The
    /// robustness counters (`store.faults_injected`,
    /// `store.open_degraded`, `store.fsck_repairs`) register too, so a
    /// degraded open or an injected storage fault is visible in the same
    /// schema-1 dump.
    pub fn attach_recorder(&mut self, recorder: Arc<Recorder>) {
        let metrics = recorder.metrics();
        let degraded = metrics.counter("store.open_degraded");
        let _ = metrics.counter("store.fsck_repairs");
        self.vfs()
            .attach_fault_counter(metrics.counter("store.faults_injected"));
        if self.is_read_only() && degraded.get() == 0 {
            degraded.inc();
            if let Some(detail) = self.health().detail() {
                recorder.log(None, &format!("WARN store.open_degraded: {detail}"));
            }
        }
        self.obs = QueryObs::new(recorder);
    }

    /// Execute a query, returning matched run refs in query order.
    ///
    /// The scan polls `deadline` between row probes and stops with
    /// [`DbError::Cancelled`] (partial-progress counters included) the
    /// moment the budget runs out or cancellation fires — counted in
    /// `store.query_cancelled`. Pass [`DeadlineToken::unbounded`] when
    /// there is no deadline to impose.
    pub fn query_ids(
        &self,
        query: &Query,
        deadline: &DeadlineToken,
    ) -> Result<Vec<RunRef>, DbError> {
        self.view().execute(query, false, deadline)
    }

    /// Execute a query, materializing the cheap [`RunSummary`]
    /// projection for each matched run (no `results`, `filesystems`,
    /// `systeminfos` or full-`Knowledge` deserialization). The scan
    /// *and* the per-row projection both poll `deadline`.
    pub fn query_summaries(
        &self,
        query: &Query,
        deadline: &DeadlineToken,
    ) -> Result<Vec<RunSummary>, DbError> {
        self.view().query_summaries(query, deadline)
    }

    /// Execute a query and *fully deserialize* every matched run — the
    /// explicit full projection. Use only when per-iteration results or
    /// system/filesystem details are genuinely needed.
    pub fn query_items(
        &self,
        query: &Query,
    ) -> Result<Vec<iokc_core::model::KnowledgeItem>, DbError> {
        use iokc_core::model::KnowledgeItem;
        let refs = self.execute(query, false)?;
        let mut items = Vec::with_capacity(refs.len());
        for r in refs {
            match r.kind {
                RunKind::Benchmark => {
                    if let Some(k) = self.load_knowledge(r.id)? {
                        items.push(KnowledgeItem::Benchmark(k));
                    }
                }
                RunKind::Io500 => {
                    if let Some(k) = self.load_io500(r.id)? {
                        items.push(KnowledgeItem::Io500(k));
                    }
                }
            }
        }
        Ok(items)
    }

    /// Count matching runs without materializing any row projection.
    /// Kind-only predicates are answered straight from the active table
    /// sizes plus the sealed segments' metadata counts (minus
    /// tombstones); everything else runs the id executor (row probes,
    /// but never a `Knowledge` deserialization).
    pub fn count(&self, predicate: &RunPredicate) -> Result<usize, DbError> {
        self.view().count(predicate)
    }

    /// The per-run bandwidth series for one operation across every
    /// matching benchmark run — the box-plot projection. Reads only the
    /// matched `summaries` and `results` rows (both index-backed), not
    /// the full `Knowledge` objects. Returns `(command, series)` pairs
    /// in query order. `deadline` is polled between runs, since each
    /// run fans out into `summaries` and `results` selects.
    pub fn boxplot_series(
        &self,
        predicate: &RunPredicate,
        operation: &str,
        deadline: &DeadlineToken,
    ) -> Result<Vec<(String, Vec<f64>)>, DbError> {
        self.view().boxplot_series(predicate, operation, deadline)
    }

    /// Evaluate an aggregation inside the store: group-by + streaming
    /// statistics over the [`RunSummary`] projections, segments pruned
    /// by their index blocks, no `Knowledge` deserialization (see
    /// [`crate::aggregate`]). Polls `deadline` per row like the query
    /// executor.
    pub fn aggregate(
        &self,
        query: &crate::aggregate::AggregateQuery,
        deadline: &DeadlineToken,
    ) -> Result<crate::aggregate::AggregateResult, DbError> {
        self.view().aggregate(query, false, deadline)
    }

    /// The unpruned aggregate executor — the equivalence oracle the
    /// property tests compare against.
    #[cfg(test)]
    pub(crate) fn aggregate_force_scan(
        &self,
        query: &crate::aggregate::AggregateQuery,
    ) -> Result<crate::aggregate::AggregateResult, DbError> {
        self.view()
            .aggregate(query, true, &DeadlineToken::unbounded())
    }

    /// The unbounded executor: used by internal callers that cannot be
    /// cancelled (fsck, the Persister trait). `force_scan` disables
    /// index planning — the equivalence oracle the property tests
    /// compare against.
    pub(crate) fn execute(&self, query: &Query, force_scan: bool) -> Result<Vec<RunRef>, DbError> {
        self.view()
            .execute(query, force_scan, &DeadlineToken::unbounded())
    }
}

/// A coherent read-only view of store state: the active generation with
/// its indexes, the sealed segments, and the tombstones hiding deleted
/// segment-resident runs. Both [`KnowledgeStore`] (live state) and
/// [`crate::Snapshot`] (pinned state) execute every read through this
/// one type, so there is exactly one read path over the segmented
/// store.
pub(crate) struct StoreView<'a> {
    pub(crate) active: &'a Database,
    pub(crate) indexes: &'a RunIndexes,
    pub(crate) segments: &'a [Arc<Segment>],
    pub(crate) tombstones: &'a BTreeSet<(RunKind, u64)>,
    pub(crate) vfs: &'a dyn Vfs,
    pub(crate) obs: &'a QueryObs,
}

/// Where one run's rows live — the active generation, or a sealed
/// segment whose loaded body the location keeps alive.
pub(crate) enum RunLocation<'a> {
    /// The run is in the active generation.
    Active(&'a Database),
    /// The run is in a sealed segment.
    Segment(Arc<SegmentData>),
}

impl RunLocation<'_> {
    /// The database holding the run's rows.
    pub(crate) fn db(&self) -> &Database {
        match self {
            RunLocation::Active(db) => db,
            RunLocation::Segment(data) => &data.db,
        }
    }
}

impl<'a> StoreView<'a> {
    /// Find the generation holding run `(kind, id)`: the active
    /// database first (no I/O), then each sealed segment whose id range
    /// and membership filter admit the id (loading its body on first
    /// touch). Tombstoned runs resolve to `None`.
    pub(crate) fn locate(
        &self,
        kind: RunKind,
        id: u64,
    ) -> Result<Option<RunLocation<'a>>, DbError> {
        let table = match kind {
            RunKind::Benchmark => "performances",
            RunKind::Io500 => "IOFHsRuns",
        };
        if self.active.get(table, id as i64)?.is_some() {
            return Ok(Some(RunLocation::Active(self.active)));
        }
        if self.tombstones.contains(&(kind, id)) {
            return Ok(None);
        }
        for seg in self.segments {
            let range = match kind {
                RunKind::Benchmark => seg.meta.bench_ids,
                RunKind::Io500 => seg.meta.io500_ids,
            };
            if !range.is_some_and(|(lo, hi)| (lo..=hi).contains(&id)) {
                continue;
            }
            if !seg.meta.bloom.may_contain(kind, id) {
                continue;
            }
            let data = seg.data(self.vfs)?;
            if data.summaries.iter().any(|s| s.kind == kind && s.id == id) {
                return Ok(Some(RunLocation::Segment(data)));
            }
        }
        Ok(None)
    }

    /// Build the [`RunSummary`] projection for one run: computed from
    /// rows when the run is active, cloned from the segment's
    /// pre-computed summary block when sealed.
    pub(crate) fn summarize(&self, r: RunRef) -> Result<RunSummary, DbError> {
        match self.locate(r.kind, r.id)? {
            Some(RunLocation::Active(db)) => summarize_in_db(db, r),
            Some(RunLocation::Segment(data)) => data
                .summaries
                .iter()
                .find(|s| s.kind == r.kind && s.id == r.id)
                .cloned()
                .ok_or_else(|| {
                    DbError::Corrupt(format!(
                        "{} run {} vanished mid-query",
                        r.kind.as_str(),
                        r.id
                    ))
                }),
            None => Err(DbError::Corrupt(format!(
                "{} run {} vanished mid-query",
                r.kind.as_str(),
                r.id
            ))),
        }
    }

    /// [`KnowledgeStore::query_summaries`] over this view.
    pub(crate) fn query_summaries(
        &self,
        query: &Query,
        deadline: &DeadlineToken,
    ) -> Result<Vec<RunSummary>, DbError> {
        let refs = self.execute(query, false, deadline)?;
        let mut rows = Vec::with_capacity(refs.len());
        for (done, r) in refs.iter().enumerate() {
            if deadline.should_stop() {
                self.obs.cancelled.inc();
                return Err(DbError::Cancelled {
                    examined: refs.len(),
                    matched: done,
                });
            }
            rows.push(self.summarize(*r)?);
        }
        Ok(rows)
    }

    /// [`KnowledgeStore::count`] over this view.
    pub(crate) fn count(&self, predicate: &RunPredicate) -> Result<usize, DbError> {
        let sealed = |kind: RunKind| -> usize {
            let live: usize = self.segments.iter().map(|s| s.meta.count(kind)).sum();
            // Tombstones only ever reference segment-resident runs, so
            // this subtraction is exact (saturating defends a corrupt
            // manifest, not a normal state).
            live.saturating_sub(self.tombstones.iter().filter(|(k, _)| *k == kind).count())
        };
        match predicate {
            RunPredicate::True => Ok(self.active.row_count("performances")?
                + self.active.row_count("IOFHsRuns")?
                + sealed(RunKind::Benchmark)
                + sealed(RunKind::Io500)),
            RunPredicate::Kind(RunKind::Benchmark) => {
                Ok(self.active.row_count("performances")? + sealed(RunKind::Benchmark))
            }
            RunPredicate::Kind(RunKind::Io500) => {
                Ok(self.active.row_count("IOFHsRuns")? + sealed(RunKind::Io500))
            }
            _ => Ok(self
                .execute(
                    &Query::new(predicate.clone()),
                    false,
                    &DeadlineToken::unbounded(),
                )?
                .len()),
        }
    }

    /// [`KnowledgeStore::boxplot_series`] over this view.
    pub(crate) fn boxplot_series(
        &self,
        predicate: &RunPredicate,
        operation: &str,
        deadline: &DeadlineToken,
    ) -> Result<Vec<(String, Vec<f64>)>, DbError> {
        let query = Query::new(
            RunPredicate::Kind(RunKind::Benchmark)
                .and(RunPredicate::HasOp(operation.to_owned()))
                .and(predicate.clone()),
        );
        let refs = self.execute(&query, false, deadline)?;
        let total = refs.len();
        let mut out = Vec::with_capacity(refs.len());
        for (done, r) in refs.into_iter().enumerate() {
            if deadline.should_stop() {
                self.obs.cancelled.inc();
                return Err(DbError::Cancelled {
                    examined: total,
                    matched: done,
                });
            }
            let Some(location) = self.locate(r.kind, r.id)? else {
                continue;
            };
            let db = location.db();
            let Some(row) = db.get("performances", r.id as i64)? else {
                continue;
            };
            let command = row.values[0].as_text().unwrap_or("").to_owned();
            let summaries = db.select(
                "summaries",
                &Predicate::Eq("performance_id".into(), Value::Int(r.id as i64)),
                OrderBy::Id,
                None,
            )?;
            let mut series = Vec::new();
            for srow in summaries
                .iter()
                .filter(|s| s.values[1].as_text() == Some(operation))
            {
                for rrow in db.select(
                    "results",
                    &Predicate::Eq("summary_id".into(), Value::Int(srow.id)),
                    OrderBy::Id,
                    None,
                )? {
                    series.push(rrow.values[2].as_real().unwrap_or(0.0));
                }
            }
            if !series.is_empty() {
                out.push((command, series));
            }
        }
        Ok(out)
    }

    /// The executor entry point: runs [`StoreView::execute_inner`]
    /// under a `store.query` span and counts cancellations.
    pub(crate) fn execute(
        &self,
        query: &Query,
        force_scan: bool,
        deadline: &DeadlineToken,
    ) -> Result<Vec<RunRef>, DbError> {
        let span =
            self.obs
                .recorder
                .start_span("store.query", None, Some("analysis"), Some("store"));
        let result = self.execute_inner(query, force_scan, deadline);
        if matches!(result, Err(DbError::Cancelled { .. })) {
            self.obs.cancelled.inc();
        }
        self.obs.recorder.end_span(
            &span,
            if result.is_ok() {
                SpanStatus::Ok
            } else {
                SpanStatus::Failed
            },
        );
        result
    }

    /// The executor: plan candidates per kind over the active
    /// generation (index or scan), evaluate the full predicate on each,
    /// then scan each sealed segment's pre-computed summary block —
    /// pruned by the segment's index block ([`may_match_segment`]) so
    /// non-matching segments are never loaded — sort with the id
    /// tie-break, apply offset/limit. `force_scan` disables index
    /// planning — the equivalence oracle the property tests compare
    /// against.
    fn execute_inner(
        &self,
        query: &Query,
        force_scan: bool,
        deadline: &DeadlineToken,
    ) -> Result<Vec<RunRef>, DbError> {
        self.obs.queries.inc();
        let mut matched: Vec<Matched> = Vec::new();
        let mut examined = 0usize;
        let mut total = 0usize;
        let mut any_index = false;
        let mut any_scan = false;

        for kind in [RunKind::Benchmark, RunKind::Io500] {
            let table = match kind {
                RunKind::Benchmark => "performances",
                RunKind::Io500 => "IOFHsRuns",
            };
            let table_rows = self.active.row_count(table)?;
            total += table_rows;
            total += self
                .segments
                .iter()
                .map(|s| s.meta.count(kind))
                .sum::<usize>();
            if !query.predicate.may_match_kind(kind) {
                continue;
            }
            let plan = if force_scan {
                Plan::Scan
            } else {
                plan_candidates(self.indexes, kind, &query.predicate)
            };
            let ids: Vec<u64> = match &plan {
                Plan::Index(ids) => {
                    any_index = true;
                    ids.clone()
                }
                Plan::Scan => {
                    any_scan = true;
                    self.active
                        .select(table, &Predicate::True, OrderBy::Id, None)?
                        .into_iter()
                        .map(|row| row.id as u64)
                        .collect()
                }
            };
            for id in ids {
                // Poll the deadline per candidate row: each probe is at
                // least one table `get`, so the poll is cheap relative
                // to the work it bounds, and a runaway scan stops within
                // one row of the budget expiring.
                if deadline.should_stop() {
                    return Err(DbError::Cancelled {
                        examined,
                        matched: matched.len(),
                    });
                }
                match kind {
                    RunKind::Benchmark => {
                        let Some(mut probe) = BenchProbe::fetch(self.active, id)? else {
                            continue;
                        };
                        examined += 1;
                        if probe.eval(&query.predicate)? {
                            matched.push(Matched {
                                run: RunRef { kind, id },
                                key: probe.sort_key(query.order)?,
                            });
                        }
                    }
                    RunKind::Io500 => {
                        let Some(mut probe) = Io500Probe::fetch(self.active, id)? else {
                            continue;
                        };
                        examined += 1;
                        if probe.eval(&query.predicate)? {
                            matched.push(Matched {
                                run: RunRef { kind, id },
                                key: probe.sort_key(query.order)?,
                            });
                        }
                    }
                }
            }
            // Sealed segments: evaluate against the pre-computed
            // summary block. Segments whose index block rules out the
            // predicate are skipped without touching disk — their rows
            // show up in `rows_pruned`.
            for seg in self.segments {
                if seg.meta.count(kind) == 0 {
                    continue;
                }
                if !may_match_segment(&query.predicate, &seg.meta, kind) {
                    continue;
                }
                let data = seg.data(self.vfs)?;
                for s in data.summaries.iter().filter(|s| s.kind == kind) {
                    if deadline.should_stop() {
                        return Err(DbError::Cancelled {
                            examined,
                            matched: matched.len(),
                        });
                    }
                    if self.tombstones.contains(&(kind, s.id)) {
                        continue;
                    }
                    examined += 1;
                    if query.predicate.matches_summary(s) {
                        matched.push(Matched {
                            run: RunRef { kind, id: s.id },
                            key: summary_sort_key(s, query.order),
                        });
                    }
                }
            }
        }

        if any_index && !any_scan {
            self.obs.index_hits.inc();
        } else {
            self.obs.full_scans.inc();
        }
        self.obs
            .rows_pruned
            .add(total.saturating_sub(examined) as u64);

        // Sort: the requested key (possibly reversed), then always the
        // (id, kind) tie-break ascending, so non-unique keys still give
        // one deterministic order across requests and pages.
        matched.sort_by(|a, b| {
            let key = a.key.cmp_key(&b.key);
            let key = if query.descending { key.reverse() } else { key };
            key.then(a.run.id.cmp(&b.run.id))
                .then(a.run.kind.cmp(&b.run.kind))
        });

        let refs = matched
            .into_iter()
            .skip(query.offset)
            .take(query.limit.unwrap_or(usize::MAX))
            .map(|m| m.run)
            .collect();
        Ok(refs)
    }
}

/// The sort key for a run already projected to a [`RunSummary`] — the
/// segment-side mirror of the probes' `sort_key`.
fn summary_sort_key(s: &RunSummary, order: RunOrder) -> SortKey {
    match order {
        RunOrder::Id => SortKey::Int(s.id),
        RunOrder::Tasks => SortKey::Int(u64::from(s.tasks)),
        RunOrder::Command => SortKey::Text(s.command.clone()),
        RunOrder::Bandwidth => SortKey::Bw(s.bandwidth()),
    }
}

/// Every run in `db`, benchmarks then io500s, each in id order.
pub(crate) fn run_refs_in_db(db: &Database) -> Result<Vec<RunRef>, DbError> {
    let mut refs = Vec::new();
    for row in db.select("performances", &Predicate::True, OrderBy::Id, None)? {
        refs.push(RunRef {
            kind: RunKind::Benchmark,
            id: row.id as u64,
        });
    }
    for row in db.select("IOFHsRuns", &Predicate::True, OrderBy::Id, None)? {
        refs.push(RunRef {
            kind: RunKind::Io500,
            id: row.id as u64,
        });
    }
    Ok(refs)
}

/// Build the [`RunSummary`] projection for one run from its rows in
/// `db` — used for active-generation reads and for computing a
/// segment's summary block at seal time.
pub(crate) fn summarize_in_db(db: &Database, r: RunRef) -> Result<RunSummary, DbError> {
    match r.kind {
        RunKind::Benchmark => {
            let row = db.get("performances", r.id as i64)?.ok_or_else(|| {
                DbError::Corrupt(format!("benchmark run {} vanished mid-query", r.id))
            })?;
            let mut probe = BenchProbe {
                db,
                id: r.id,
                row,
                ops: None,
            };
            let ops = probe.ops()?.to_vec();
            Ok(RunSummary {
                kind: RunKind::Benchmark,
                id: r.id,
                command: probe.command().to_owned(),
                api: probe.api().to_owned(),
                tasks: probe.tasks(),
                block_size: probe.row.values[4].as_int().unwrap_or(0) as u64,
                transfer_size: probe.transfer_size(),
                segments: probe.row.values[6].as_int().unwrap_or(0) as u64,
                clients_per_node: probe.row.values[13].as_int().unwrap_or(0) as u32,
                ops,
                bw_score: 0.0,
                md_score: 0.0,
                total_score: 0.0,
                warning_count: warning_count_in(db, "benchmark", r.id)?,
            })
        }
        RunKind::Io500 => {
            let row = db.get("IOFHsRuns", r.id as i64)?.ok_or_else(|| {
                DbError::Corrupt(format!("io500 run {} vanished mid-query", r.id))
            })?;
            let tasks = row.values[0].as_int().unwrap_or(0) as u32;
            let scores = db
                .select(
                    "IOFHsScores",
                    &Predicate::Eq("IOFH_id".into(), Value::Int(r.id as i64)),
                    OrderBy::Id,
                    Some(1),
                )?
                .into_iter()
                .next();
            let score = |i: usize| {
                scores
                    .as_ref()
                    .and_then(|s| s.values[i].as_real())
                    .unwrap_or(0.0)
            };
            Ok(RunSummary {
                kind: RunKind::Io500,
                id: r.id,
                command: "io500".to_owned(),
                api: String::new(),
                tasks,
                block_size: 0,
                transfer_size: 0,
                segments: 0,
                clients_per_node: 0,
                ops: Vec::new(),
                bw_score: score(1),
                md_score: score(2),
                total_score: score(3),
                warning_count: warning_count_in(db, "io500", r.id)?,
            })
        }
    }
}

fn warning_count_in(db: &Database, owner: &str, id: u64) -> Result<usize, DbError> {
    Ok(db
        .select(
            "warnings",
            &Predicate::Eq("owner_id".into(), Value::Int(id as i64)),
            OrderBy::Id,
            None,
        )?
        .iter()
        .filter(|row| row.values[0].as_text() == Some(owner))
        .count())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_core::model::{
        Io500Knowledge, IterationResult, Knowledge, KnowledgeSource, OperationSummary,
    };

    fn bench(command: &str, api: &str, tasks: u32, write_bw: f64) -> Knowledge {
        let mut k = Knowledge::new(KnowledgeSource::Ior, command);
        k.pattern.api = api.to_owned();
        k.pattern.tasks = tasks;
        k.pattern.transfer_size = 1 << 20;
        k.summaries.push(OperationSummary {
            operation: "write".into(),
            api: api.to_owned(),
            max_mib: write_bw * 1.2,
            min_mib: write_bw * 0.8,
            mean_mib: write_bw,
            stddev_mib: 0.0,
            mean_ops: write_bw / 2.0,
            iterations: 2,
        });
        for i in 0..2u32 {
            k.results.push(IterationResult {
                operation: "write".into(),
                iteration: i,
                bw_mib: write_bw + f64::from(i),
                ops: 10,
                ops_per_sec: 5.0,
                latency_s: 0.001,
                open_s: 0.002,
                wrrd_s: 1.0,
                close_s: 0.003,
                total_s: 1.1,
            });
        }
        k
    }

    fn io500(tasks: u32, bw_score: f64) -> Io500Knowledge {
        Io500Knowledge {
            id: None,
            tasks,
            bw_score,
            md_score: bw_score * 2.0,
            total_score: bw_score * 1.5,
            testcases: Vec::new(),
            options: std::collections::BTreeMap::new(),
            system: None,
            start_time: 1,
            warnings: Vec::new(),
        }
    }

    fn seeded() -> KnowledgeStore {
        let mut store = KnowledgeStore::in_memory();
        store
            .save_knowledge(&bench("ior -a posix", "POSIX", 8, 100.0))
            .unwrap();
        store
            .save_knowledge(&bench("ior -a mpiio", "MPIIO", 16, 300.0))
            .unwrap();
        store
            .save_knowledge(&bench("ior -a posix -x", "POSIX", 32, 200.0))
            .unwrap();
        store.save_io500(&io500(16, 1.5)).unwrap();
        store
    }

    fn ids(refs: &[RunRef]) -> Vec<(RunKind, u64)> {
        refs.iter().map(|r| (r.kind, r.id)).collect()
    }

    #[test]
    fn api_filter_is_index_served_and_scan_equivalent() {
        let store = seeded();
        let q = Query::new(RunPredicate::ApiEq("POSIX".into()));
        let indexed = store.execute(&q, false).unwrap();
        let scanned = store.execute(&q, true).unwrap();
        assert_eq!(
            ids(&indexed),
            vec![(RunKind::Benchmark, 1), (RunKind::Benchmark, 3)]
        );
        assert_eq!(indexed, scanned);
    }

    #[test]
    fn bandwidth_range_uses_sorted_index() {
        let store = seeded();
        let q = Query::new(RunPredicate::BandwidthBetween(150.0, 250.0));
        let refs = store.execute(&q, false).unwrap();
        assert_eq!(ids(&refs), vec![(RunKind::Benchmark, 3)]);
        // Reversed range is empty, never a panic.
        let rev = Query::new(RunPredicate::BandwidthBetween(250.0, 150.0));
        assert!(store.execute(&rev, false).unwrap().is_empty());
    }

    #[test]
    fn duplicate_sort_keys_break_ties_by_id() {
        let mut store = KnowledgeStore::in_memory();
        for _ in 0..4 {
            store
                .save_knowledge(&bench("dup", "POSIX", 8, 500.0))
                .unwrap();
        }
        let q = Query::new(RunPredicate::True)
            .order_by(RunOrder::Bandwidth)
            .descending();
        let all = store.query_ids(&q, &DeadlineToken::unbounded()).unwrap();
        assert_eq!(
            ids(&all),
            vec![
                (RunKind::Benchmark, 1),
                (RunKind::Benchmark, 2),
                (RunKind::Benchmark, 3),
                (RunKind::Benchmark, 4),
            ]
        );
        // Pagination over the duplicate keys is deterministic: pages
        // partition the same total order.
        let page1 = store
            .query_ids(&q.clone().limit(2), &DeadlineToken::unbounded())
            .unwrap();
        let page2 = store
            .query_ids(&q.clone().offset(2).limit(2), &DeadlineToken::unbounded())
            .unwrap();
        let mut joined = ids(&page1);
        joined.extend(ids(&page2));
        assert_eq!(joined, ids(&all));
    }

    #[test]
    fn counts_deserialize_nothing() {
        let mut store = seeded();
        let recorder = Arc::new(Recorder::disabled());
        store.attach_recorder(Arc::clone(&recorder));
        let deser = recorder
            .metrics()
            .counter("store.query.knowledge_deserialized");
        assert_eq!(store.knowledge_count(), 3);
        assert_eq!(store.io500_count(), 1);
        assert_eq!(
            store.count(&RunPredicate::ApiEq("POSIX".into())).unwrap(),
            2
        );
        assert_eq!(store.count(&RunPredicate::TasksBetween(10, 40)).unwrap(), 3);
        assert_eq!(deser.get(), 0, "count paths must not deserialize Knowledge");
        store.load_knowledge(1).unwrap().unwrap();
        assert_eq!(deser.get(), 1);
    }

    #[test]
    fn summaries_project_without_full_deserialization() {
        let mut store = seeded();
        let recorder = Arc::new(Recorder::disabled());
        store.attach_recorder(Arc::clone(&recorder));
        let deser = recorder
            .metrics()
            .counter("store.query.knowledge_deserialized");
        let rows = store
            .query_summaries(
                &Query::all().order_by(RunOrder::Bandwidth).descending(),
                &DeadlineToken::unbounded(),
            )
            .unwrap();
        assert_eq!(deser.get(), 0);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].command, "ior -a mpiio");
        assert_eq!(rows[0].bandwidth(), 300.0);
        let last = &rows[3];
        assert_eq!(last.kind, RunKind::Io500);
        assert_eq!(last.command, "io500");
        assert_eq!(last.bandwidth(), 1.5);
        assert_eq!(last.md_score, 3.0);
    }

    #[test]
    fn query_items_is_the_explicit_full_projection() {
        let store = seeded();
        let items = store
            .query_items(&Query::new(RunPredicate::ApiEq("MPIIO".into())))
            .unwrap();
        assert_eq!(items.len(), 1);
        match &items[0] {
            iokc_core::model::KnowledgeItem::Benchmark(k) => {
                assert_eq!(k.command, "ior -a mpiio");
                assert_eq!(k.results.len(), 2); // full join, results included
            }
            other => panic!("expected benchmark, got {other:?}"),
        }
    }

    #[test]
    fn obs_counters_distinguish_index_hits_from_scans() {
        let mut store = seeded();
        let recorder = Arc::new(Recorder::disabled());
        store.attach_recorder(Arc::clone(&recorder));
        let hits = recorder.metrics().counter("store.query.index_hits");
        let scans = recorder.metrics().counter("store.query.full_scans");
        let pruned = recorder.metrics().counter("store.query.rows_pruned");
        store
            .query_ids(
                &Query::new(
                    RunPredicate::Kind(RunKind::Benchmark).and(RunPredicate::ApiEq("MPIIO".into())),
                ),
                &DeadlineToken::unbounded(),
            )
            .unwrap();
        assert_eq!((hits.get(), scans.get()), (1, 0));
        assert!(pruned.get() >= 3, "api index should prune non-MPIIO rows");
        store
            .query_ids(
                &Query::new(RunPredicate::CommandContains("ior".into())),
                &DeadlineToken::unbounded(),
            )
            .unwrap();
        assert_eq!((hits.get(), scans.get()), (1, 1));
    }

    #[test]
    fn indexes_rebuild_identically_on_open() {
        let dir = std::env::temp_dir().join("iokc-query-reopen-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("knowledge.iokc.json");
        let _ = std::fs::remove_file(&path);
        let incremental = {
            let mut store = KnowledgeStore::open(path.clone()).unwrap();
            store
                .save_knowledge(&bench("a", "POSIX", 8, 100.0))
                .unwrap();
            store
                .save_knowledge(&bench("b", "MPIIO", 16, 300.0))
                .unwrap();
            store.save_io500(&io500(16, 1.5)).unwrap();
            store.delete_knowledge(1).unwrap();
            format!("{:?}", store.indexes)
        };
        let reopened = KnowledgeStore::open(path.clone()).unwrap();
        assert_eq!(format!("{:?}", reopened.indexes), incremental);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn boxplot_series_reads_iteration_results() {
        let store = seeded();
        let series = store
            .boxplot_series(
                &RunPredicate::ApiEq("POSIX".into()),
                "write",
                &DeadlineToken::unbounded(),
            )
            .unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, "ior -a posix");
        assert_eq!(series[0].1, vec![100.0, 101.0]);
        assert_eq!(series[1].1, vec![200.0, 201.0]);
    }

    #[test]
    fn exhausted_deadline_cancels_scans_with_progress_counters() {
        use iokc_obs::CancelToken;
        use std::time::Duration;
        let mut store = seeded();
        let recorder = Arc::new(Recorder::disabled());
        store.attach_recorder(Arc::clone(&recorder));
        let cancelled = recorder.metrics().counter("store.query_cancelled");

        let expired = DeadlineToken::with_budget(CancelToken::new(), Duration::ZERO);
        let err = store.query_ids(&Query::all(), &expired).unwrap_err();
        assert!(matches!(err, DbError::Cancelled { .. }), "{err}");
        assert_eq!(cancelled.get(), 1);

        let err = store.query_summaries(&Query::all(), &expired).unwrap_err();
        assert!(matches!(err, DbError::Cancelled { .. }), "{err}");
        let err = store
            .boxplot_series(&RunPredicate::True, "write", &expired)
            .unwrap_err();
        assert!(matches!(err, DbError::Cancelled { .. }), "{err}");
        assert_eq!(cancelled.get(), 3);

        // A cancelled token stops scans too, and the partial-progress
        // display names how far it got.
        let token = CancelToken::new();
        token.cancel();
        let err = store
            .query_ids(&Query::all(), &DeadlineToken::cancellable(token))
            .unwrap_err();
        assert!(err.to_string().contains("query cancelled"), "{err}");

        // An unbounded, un-cancelled token runs to completion and does
        // not bump the counter.
        let open = DeadlineToken::unbounded();
        assert_eq!(store.query_ids(&Query::all(), &open).unwrap().len(), 4);
        assert_eq!(
            store.query_summaries(&Query::all(), &open).unwrap().len(),
            4
        );
        assert_eq!(cancelled.get(), 4);
    }

    #[test]
    fn cache_key_is_canonical_for_equal_queries() {
        let a = Query::new(RunPredicate::ApiEq("POSIX".into())).limit(5);
        let b = Query::new(RunPredicate::ApiEq("POSIX".into())).limit(5);
        assert_eq!(a.cache_key(), b.cache_key());
        let c = Query::new(RunPredicate::ApiEq("MPIIO".into())).limit(5);
        assert_ne!(a.cache_key(), c.cache_key());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_predicate() -> impl Strategy<Value = RunPredicate> {
            let leaf = prop_oneof![
                Just(RunPredicate::True),
                Just(RunPredicate::Kind(RunKind::Benchmark)),
                Just(RunPredicate::Kind(RunKind::Io500)),
                prop_oneof![Just("POSIX"), Just("MPIIO"), Just("HDF5"), Just("")]
                    .prop_map(|api: &str| RunPredicate::ApiEq(api.to_owned())),
                prop_oneof![Just("write"), Just("read"), Just("stat")]
                    .prop_map(|op: &str| RunPredicate::HasOp(op.to_owned())),
                (0u32..64, 0u32..64).prop_map(|(a, b)| RunPredicate::TasksBetween(a, b)),
                (0.0f64..600.0, 0.0f64..600.0)
                    .prop_map(|(a, b)| RunPredicate::BandwidthBetween(a, b)),
                prop_oneof![Just("ior"), Just("io500"), Just("-x"), Just("zz")]
                    .prop_map(|t: &str| RunPredicate::CommandContains(t.to_owned())),
                proptest::collection::vec(1u64..12, 0..4).prop_map(RunPredicate::IdIn),
            ];
            leaf.prop_recursive(3, 16, 2, |inner| {
                prop_oneof![
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| RunPredicate::And(Box::new(a), Box::new(b))),
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| RunPredicate::Or(Box::new(a), Box::new(b))),
                    inner.prop_map(|p| RunPredicate::Not(Box::new(p))),
                ]
            })
        }

        fn arb_query() -> impl Strategy<Value = Query> {
            (
                arb_predicate(),
                prop_oneof![
                    Just(RunOrder::Id),
                    Just(RunOrder::Tasks),
                    Just(RunOrder::Command),
                    Just(RunOrder::Bandwidth),
                ],
                any::<bool>(),
                0usize..6,
                proptest::option::of(0usize..8),
            )
                .prop_map(|(predicate, order, descending, offset, limit)| Query {
                    predicate,
                    order,
                    descending,
                    offset,
                    limit,
                })
        }

        /// (api, tasks, bw) tuples for benchmark runs, (tasks, bw) for
        /// io500 runs, and interleaved delete positions.
        type StoreOps = (Vec<(u8, u32, f64)>, Vec<(u32, f64)>, Vec<u64>, Vec<u64>);

        fn arb_store_ops() -> impl Strategy<Value = StoreOps> {
            (
                proptest::collection::vec((0u8..3, 1u32..64, 0.0f64..600.0), 1..10),
                proptest::collection::vec((1u32..64, 0.0f64..10.0), 0..5),
                proptest::collection::vec(1u64..12, 0..4),
                proptest::collection::vec(1u64..6, 0..3),
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn index_plan_equals_full_scan(
                (benches, io500s, bench_dels, io500_dels) in arb_store_ops(),
                queries in proptest::collection::vec(arb_query(), 1..4),
            ) {
                let mut store = KnowledgeStore::in_memory();
                let apis = ["POSIX", "MPIIO", "HDF5"];
                for (api, tasks, bw) in &benches {
                    let k = bench(
                        &format!("ior -a {} -t {tasks}", apis[*api as usize]),
                        apis[*api as usize],
                        *tasks,
                        *bw,
                    );
                    store.save_knowledge(&k).unwrap();
                }
                for (tasks, bw) in &io500s {
                    store.save_io500(&io500(*tasks, *bw)).unwrap();
                }
                // Interleaved deletes of both kinds: the incremental
                // index maintenance must stay equivalent to a scan.
                for id in &bench_dels {
                    store.delete_knowledge(*id).unwrap();
                }
                for id in &io500_dels {
                    store.delete_io500(*id).unwrap();
                }
                for q in &queries {
                    let indexed = store.execute(q, false).unwrap();
                    let scanned = store.execute(q, true).unwrap();
                    prop_assert_eq!(&indexed, &scanned, "query {} diverged", q);
                }
            }
        }
    }
}
