//! Append-only, checksummed journal files.
//!
//! The campaign layer needs a *write-ahead* record of work-item state
//! transitions that survives process death at any instant. The database
//! image in [`crate::persist`] is the wrong shape for that — it rewrites
//! the whole file per save — so this module provides the complementary
//! primitive: an append-only line journal where every record carries its
//! own FNV-1a 64 checksum (the same checksum the image footer uses) and
//! is fsynced before the writer proceeds.
//!
//! A crash can only ever tear the *last* record. [`read_journal`]
//! therefore salvages the longest valid prefix and reports the torn
//! tail instead of failing, mirroring [`crate::persist::load_with_recovery`]'s
//! "detect, then fall back to the last good generation" contract.
//! [`crate::persist::inject_torn_write`] works on journal files too, so
//! tests can cut one at any byte offset.
//!
//! Record format, one record per line:
//!
//! ```text
//! j1 <crc64:016x> <payload>
//! ```
//!
//! Payloads must be single-line (the campaign layer writes compact
//! JSON); the writer rejects embedded newlines rather than corrupting
//! the frame.

use crate::persist::checksum;
use crate::vfs::{StdVfs, Vfs, VfsFile};
use std::path::Path;

/// Version/magic prefix of every record line.
const RECORD_MAGIC: &str = "j1";

/// An open journal file, appending checksummed records durably.
pub struct JournalWriter {
    file: Box<dyn VfsFile>,
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter").finish_non_exhaustive()
    }
}

impl JournalWriter {
    /// Open (creating if absent) a journal for appending.
    pub fn open(path: &Path) -> Result<JournalWriter, std::io::Error> {
        JournalWriter::open_vfs(path, &StdVfs)
    }

    /// [`JournalWriter::open`] over an explicit [`Vfs`].
    pub fn open_vfs(path: &Path, vfs: &dyn Vfs) -> Result<JournalWriter, std::io::Error> {
        Ok(JournalWriter {
            file: vfs.append(path)?,
        })
    }

    /// Append one record and fsync it. The payload must not contain a
    /// newline — records are line-framed.
    pub fn append(&mut self, payload: &str) -> Result<(), std::io::Error> {
        if payload.contains('\n') || payload.contains('\r') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "journal payloads must be single-line",
            ));
        }
        let crc = checksum(payload.as_bytes());
        let line = format!("{RECORD_MAGIC} {crc:016x} {payload}\n");
        self.file.write_all(line.as_bytes())?;
        self.file.sync()
    }
}

/// The result of replaying a journal file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalReadReport {
    /// Every checksum-valid record payload, in append order.
    pub records: Vec<String>,
    /// A torn or corrupt tail was found (and everything from the first
    /// bad line onward was dropped).
    pub torn_tail: bool,
    /// Bytes dropped with the torn tail.
    pub dropped_bytes: usize,
}

/// Replay a journal, salvaging the longest valid prefix.
///
/// A missing file is an empty journal, not an error: a fresh campaign
/// directory and a crashed-before-first-record one are indistinguishable
/// and both resume from nothing. Reading stops at the first record that
/// is torn (no trailing newline), malformed, or checksum-invalid;
/// everything before it is returned and the remainder is reported as
/// dropped.
pub fn read_journal(path: &Path) -> Result<JournalReadReport, std::io::Error> {
    read_journal_vfs(path, &StdVfs)
}

/// [`read_journal`] over an explicit [`Vfs`].
pub fn read_journal_vfs(path: &Path, vfs: &dyn Vfs) -> Result<JournalReadReport, std::io::Error> {
    let bytes = match vfs.read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(JournalReadReport::default())
        }
        Err(e) => return Err(e),
    };
    let text = String::from_utf8(bytes).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("journal: {e}"))
    })?;
    let mut report = JournalReadReport::default();
    let mut consumed = 0usize;
    for line in text.split_inclusive('\n') {
        let Some(payload) = decode_record(line) else {
            report.torn_tail = true;
            break;
        };
        report.records.push(payload.to_owned());
        consumed += line.len();
    }
    report.dropped_bytes = text.len() - consumed;
    // A trailing partial line with no newline is also a torn tail even
    // when every complete line verified.
    if report.dropped_bytes > 0 {
        report.torn_tail = true;
    }
    Ok(report)
}

/// Truncate a journal to its longest valid prefix, dropping any torn or
/// corrupt tail, and report what survived.
///
/// A writer MUST salvage with this before appending to a journal that a
/// crash may have torn: the torn tail has no newline, so a raw append
/// would fuse the new record onto the torn bytes and corrupt every
/// record from there on.
///
/// This is idempotent: the truncated journal ends in a valid record (or
/// is empty), so a second invocation — e.g. after a crash mid-repair —
/// finds nothing to drop and leaves the file untouched.
pub fn truncate_torn_tail(path: &Path) -> Result<JournalReadReport, std::io::Error> {
    truncate_torn_tail_vfs(path, &StdVfs)
}

/// [`truncate_torn_tail`] over an explicit [`Vfs`].
pub fn truncate_torn_tail_vfs(
    path: &Path,
    vfs: &dyn Vfs,
) -> Result<JournalReadReport, std::io::Error> {
    let report = read_journal_vfs(path, vfs)?;
    if report.dropped_bytes > 0 {
        let len = vfs.len(path)?;
        vfs.set_len(path, len.saturating_sub(report.dropped_bytes as u64))?;
    }
    Ok(report)
}

/// An [`iokc_obs::EventSink`] that appends every observability event as a
/// checksummed journal record.
///
/// This is how span/log streams become durable: each [`iokc_obs::Event`]
/// is serialized to its compact single-line JSON form and framed exactly
/// like the campaign journal, so a crashed run leaves a salvageable
/// prefix that `iokc trace` can replay (open spans in the rebuilt tree
/// show where the process died).
///
/// Sinks are infallible by contract; an I/O error stops further writes
/// and is reported through [`JournalEventSink::error`] instead of
/// panicking inside instrumented code.
#[derive(Debug)]
pub struct JournalEventSink {
    writer: std::sync::Mutex<JournalWriter>,
    failed: std::sync::atomic::AtomicBool,
    error: std::sync::Mutex<Option<String>>,
}

impl JournalEventSink {
    /// Open (creating if absent) an event journal at `path`, salvaging a
    /// torn tail first so appends never fuse onto torn bytes.
    pub fn open(path: &Path) -> Result<JournalEventSink, std::io::Error> {
        truncate_torn_tail(path)?;
        Ok(JournalEventSink {
            writer: std::sync::Mutex::new(JournalWriter::open(path)?),
            failed: std::sync::atomic::AtomicBool::new(false),
            error: std::sync::Mutex::new(None),
        })
    }

    /// The first write error, if the sink has gone dark.
    #[must_use]
    pub fn error(&self) -> Option<String> {
        match self.error.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }
}

impl iokc_obs::EventSink for JournalEventSink {
    fn emit(&self, event: &iokc_obs::Event) {
        use std::sync::atomic::Ordering;
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let record = event.to_record();
        let mut writer = match self.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Err(e) = writer.append(&record) {
            self.failed.store(true, Ordering::Relaxed);
            let mut slot = match self.error.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            slot.get_or_insert_with(|| e.to_string());
        }
    }
}

/// Decode one framed line into its payload, verifying the checksum.
/// Returns `None` for torn (unterminated), malformed, or corrupt lines.
fn decode_record(line: &str) -> Option<&str> {
    let body = line.strip_suffix('\n')?;
    let body = body.strip_suffix('\r').unwrap_or(body);
    let rest = body.strip_prefix(RECORD_MAGIC)?.strip_prefix(' ')?;
    let (crc_hex, payload) = rest.split_once(' ')?;
    let recorded = u64::from_str_radix(crc_hex, 16).ok()?;
    if checksum(payload.as_bytes()) != recorded {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::persist::inject_torn_write;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("iokc-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = scratch("roundtrip");
        let path = dir.join("campaign.journal");
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            writer.append("{\"rec\":\"start\",\"wp\":0}").unwrap();
            writer.append("{\"rec\":\"done\",\"wp\":0}").unwrap();
        }
        // Re-open appends, it does not truncate.
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            writer.append("{\"rec\":\"start\",\"wp\":1}").unwrap();
        }
        let report = read_journal(&path).unwrap();
        assert_eq!(report.records.len(), 3);
        assert!(!report.torn_tail);
        assert_eq!(report.dropped_bytes, 0);
        assert_eq!(report.records[2], "{\"rec\":\"start\",\"wp\":1}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_is_empty() {
        let dir = scratch("missing");
        let report = read_journal(&dir.join("nope.journal")).unwrap();
        assert!(report.records.is_empty());
        assert!(!report.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newline_payloads_are_rejected() {
        let dir = scratch("newline");
        let mut writer = JournalWriter::open(&dir.join("j")).unwrap();
        assert!(writer.append("two\nlines").is_err());
        assert!(writer.append("cr\rline").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_any_offset_keeps_a_valid_prefix() {
        let dir = scratch("truncate");
        let path = dir.join("j");
        let payloads: Vec<String> = (0..8).map(|i| format!("{{\"wp\":{i}}}")).collect();
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            for p in &payloads {
                writer.append(p).unwrap();
            }
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let full = text.len() as u64;
        // Byte offsets that coincide with a record boundary: a cut there
        // is indistinguishable from a shorter (but valid) journal.
        let mut boundaries = vec![0u64];
        let mut at = 0u64;
        for line in text.split_inclusive('\n') {
            at += line.len() as u64;
            boundaries.push(at);
        }
        for keep in 0..=full {
            let _ = std::fs::remove_file(&path);
            {
                let mut writer = JournalWriter::open(&path).unwrap();
                for p in &payloads {
                    writer.append(p).unwrap();
                }
            }
            inject_torn_write(&path, keep).unwrap();
            let report = read_journal(&path).unwrap();
            // The salvaged records are exactly a prefix of what was
            // written — never reordered, never a phantom record.
            assert!(report.records.len() <= payloads.len());
            assert_eq!(
                report.records,
                payloads[..report.records.len()].to_vec(),
                "keep={keep}"
            );
            // A mid-record cut is always detected as torn.
            assert_eq!(report.torn_tail, !boundaries.contains(&keep), "keep={keep}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_truncates_the_torn_tail_so_appends_stay_valid() {
        let dir = scratch("salvage");
        let path = dir.join("j");
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            writer.append("alpha").unwrap();
            writer.append("beta").unwrap();
        }
        // Tear the second record mid-line, then salvage and append.
        let full = std::fs::metadata(&path).unwrap().len();
        inject_torn_write(&path, full - 3).unwrap();
        let report = truncate_torn_tail(&path).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.records, vec!["alpha".to_owned()]);
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            writer.append("gamma").unwrap();
        }
        // Without the truncation, `gamma` would have fused onto the torn
        // bytes of `beta` and been dropped too.
        let report = read_journal(&path).unwrap();
        assert_eq!(report.records, vec!["alpha".to_owned(), "gamma".to_owned()]);
        assert!(!report.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_torn_tail_twice_is_a_no_op() {
        let dir = scratch("idempotent");
        let path = dir.join("j");
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            writer.append("alpha").unwrap();
            writer.append("beta").unwrap();
        }
        let full = std::fs::metadata(&path).unwrap().len();
        inject_torn_write(&path, full - 3).unwrap();
        let first = truncate_torn_tail(&path).unwrap();
        assert!(first.torn_tail);
        let after_first = std::fs::read(&path).unwrap();
        // A second salvage — e.g. after a crash during repair — must not
        // drop anything further or rewrite the file.
        let second = truncate_torn_tail(&path).unwrap();
        assert!(!second.torn_tail);
        assert_eq!(second.dropped_bytes, 0);
        assert_eq!(second.records, vec!["alpha".to_owned()]);
        assert_eq!(std::fs::read(&path).unwrap(), after_first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_repair_survives_a_failed_truncate() {
        use crate::vfs::{FaultPlan, FaultVfs};
        let path = Path::new("/j");
        // Build a torn journal image under the in-memory vfs.
        let pristine = FaultVfs::pristine();
        {
            let mut writer = JournalWriter::open_vfs(path, &pristine).unwrap();
            writer.append("alpha").unwrap();
            writer.append("beta").unwrap();
        }
        let full = pristine.len(path).unwrap();
        pristine.set_len(path, full - 3).unwrap();
        let image = pristine.durable_state();
        // First repair attempt dies on the truncating set_len (reads are
        // not mutating ops, so the set_len is op 0)...
        let failing = FaultVfs::from_state_with_plan(image.clone(), FaultPlan::eio_at(0));
        assert!(truncate_torn_tail_vfs(path, &failing).is_err());
        // ...and a clean retry over the same disk state succeeds, after
        // which a further invocation is a no-op.
        let retry = FaultVfs::from_state(failing.durable_state());
        let report = truncate_torn_tail_vfs(path, &retry).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.records, vec!["alpha".to_owned()]);
        let again = truncate_torn_tail_vfs(path, &retry).unwrap();
        assert!(!again.torn_tail);
        assert_eq!(again.dropped_bytes, 0);
    }

    #[test]
    fn corrupt_middle_record_drops_the_rest() {
        let dir = scratch("corrupt");
        let path = dir.join("j");
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            writer.append("alpha").unwrap();
            writer.append("beta").unwrap();
            writer.append("gamma").unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("beta", "beta!", 1)).unwrap();
        let report = read_journal(&path).unwrap();
        assert_eq!(report.records, vec!["alpha".to_owned()]);
        assert!(report.torn_tail);
        assert!(report.dropped_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
