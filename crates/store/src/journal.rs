//! Append-only, checksummed journal files.
//!
//! The campaign layer needs a *write-ahead* record of work-item state
//! transitions that survives process death at any instant. The database
//! image in [`crate::persist`] is the wrong shape for that — it rewrites
//! the whole file per save — so this module provides the complementary
//! primitive: an append-only line journal where every record carries its
//! own FNV-1a 64 checksum (the same checksum the image footer uses) and
//! is fsynced before the writer proceeds.
//!
//! A crash can only ever tear the *last* record. [`read_journal`]
//! therefore salvages the longest valid prefix and reports the torn
//! tail instead of failing, mirroring [`crate::persist::load_with_recovery`]'s
//! "detect, then fall back to the last good generation" contract.
//! [`crate::persist::inject_torn_write`] works on journal files too, so
//! tests can cut one at any byte offset.
//!
//! Record format, one record per line:
//!
//! ```text
//! j1 <crc64:016x> <payload>
//! ```
//!
//! Payloads must be single-line (the campaign layer writes compact
//! JSON); the writer rejects embedded newlines rather than corrupting
//! the frame.

use crate::persist::checksum;
use crate::vfs::{StdVfs, Vfs, VfsFile};
use std::path::Path;

/// Version/magic prefix of every record line.
const RECORD_MAGIC: &str = "j1";

/// An open journal file, appending checksummed records durably.
pub struct JournalWriter {
    file: Box<dyn VfsFile>,
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter").finish_non_exhaustive()
    }
}

impl JournalWriter {
    /// Open (creating if absent) a journal for appending.
    pub fn open(path: &Path) -> Result<JournalWriter, std::io::Error> {
        JournalWriter::open_vfs(path, &StdVfs)
    }

    /// [`JournalWriter::open`] over an explicit [`Vfs`].
    pub fn open_vfs(path: &Path, vfs: &dyn Vfs) -> Result<JournalWriter, std::io::Error> {
        Ok(JournalWriter {
            file: vfs.append(path)?,
        })
    }

    /// Append one record and fsync it. The payload must not contain a
    /// newline — records are line-framed.
    pub fn append(&mut self, payload: &str) -> Result<(), std::io::Error> {
        self.append_batch(&[payload])
    }

    /// Append a batch of records with ONE buffer write and ONE fsync —
    /// the group-commit primitive. Durability is all-or-torn-tail: a
    /// crash mid-batch tears at most the framing of the last records
    /// written, and [`read_journal`] salvages the valid prefix exactly
    /// as for single appends.
    pub fn append_batch(&mut self, payloads: &[&str]) -> Result<(), std::io::Error> {
        if payloads.is_empty() {
            return Ok(());
        }
        let mut buf = String::new();
        for payload in payloads {
            if payload.contains('\n') || payload.contains('\r') {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "journal payloads must be single-line",
                ));
            }
            let crc = checksum(payload.as_bytes());
            buf.push_str(RECORD_MAGIC);
            buf.push(' ');
            buf.push_str(&format!("{crc:016x}"));
            buf.push(' ');
            buf.push_str(payload);
            buf.push('\n');
        }
        self.file.write_all(buf.as_bytes())?;
        self.file.sync()
    }
}

/// A group-committing front over a [`JournalWriter`]: concurrent
/// appenders share one fsync.
///
/// Each caller of [`GroupJournal::append`] enqueues its record and
/// blocks until the record is durable. The first thread to find no
/// flush in flight becomes the *leader*: it drains everything queued so
/// far (its own record and any followers'), writes the whole batch with
/// [`JournalWriter::append_batch`] — one buffer write, one fsync — and
/// wakes the followers with the outcome. Under contention `n` appends
/// cost far fewer than `n` fsyncs while every append still returns only
/// once its record is on disk; uncontended appends degrade to exactly
/// the single-record protocol.
///
/// Failure is reported to precisely the records that were in the failed
/// batch: the leader stamps the batch's last sequence number on the
/// error, and a waiter whose record is covered gets the error while
/// later appends proceed against a fresh batch.
pub struct GroupJournal {
    writer: std::sync::Mutex<JournalWriter>,
    state: std::sync::Mutex<GroupState>,
    cond: std::sync::Condvar,
}

struct GroupState {
    /// Records queued for the next batch, with their sequence numbers
    /// (assigned from 1 upward).
    pending: Vec<(u64, String)>,
    /// A leader is currently writing a batch.
    flushing: bool,
    /// Sequence number assigned to the next enqueued record.
    next_seq: u64,
    /// Every record with `seq <= processed_through` has had its batch
    /// completed — durably written unless a range below covers it.
    processed_through: u64,
    /// Seq ranges `(from, through)` of batches whose write failed, with
    /// the error to report to exactly those waiters.
    failed: Vec<(u64, u64, String)>,
}

impl Default for GroupState {
    fn default() -> GroupState {
        GroupState {
            pending: Vec::new(),
            flushing: false,
            next_seq: 1,
            processed_through: 0,
            failed: Vec::new(),
        }
    }
}

impl std::fmt::Debug for GroupJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupJournal").finish_non_exhaustive()
    }
}

impl GroupJournal {
    /// Open (creating if absent) a group-committing journal.
    pub fn open(path: &Path) -> Result<GroupJournal, std::io::Error> {
        GroupJournal::open_vfs(path, &StdVfs)
    }

    /// [`GroupJournal::open`] over an explicit [`Vfs`].
    pub fn open_vfs(path: &Path, vfs: &dyn Vfs) -> Result<GroupJournal, std::io::Error> {
        Ok(GroupJournal::from_writer(JournalWriter::open_vfs(
            path, vfs,
        )?))
    }

    /// Wrap an already-open [`JournalWriter`].
    #[must_use]
    pub fn from_writer(writer: JournalWriter) -> GroupJournal {
        GroupJournal {
            writer: std::sync::Mutex::new(writer),
            state: std::sync::Mutex::new(GroupState::default()),
            cond: std::sync::Condvar::new(),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, GroupState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Append one record, returning once it is durable. Takes `&self`:
    /// any number of threads may append concurrently, and concurrent
    /// appends are batched under one fsync.
    pub fn append(&self, payload: &str) -> Result<(), std::io::Error> {
        if payload.contains('\n') || payload.contains('\r') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "journal payloads must be single-line",
            ));
        }
        let mut state = self.lock_state();
        let my_seq = state.next_seq;
        state.next_seq += 1;
        state.pending.push((my_seq, payload.to_owned()));
        loop {
            if let Some((_, _, msg)) = state
                .failed
                .iter()
                .find(|(from, through, _)| (*from..=*through).contains(&my_seq))
            {
                return Err(std::io::Error::other(msg.clone()));
            }
            if state.processed_through >= my_seq {
                return Ok(());
            }
            if !state.flushing {
                // Become the leader: take the whole queue, write it
                // outside the state lock, publish the outcome. Batches
                // are taken in seq order and only one flush runs at a
                // time, so `processed_through` advances contiguously.
                state.flushing = true;
                let batch = std::mem::take(&mut state.pending);
                let from = batch.iter().map(|(s, _)| *s).min().unwrap_or(my_seq);
                let through = batch.iter().map(|(s, _)| *s).max().unwrap_or(my_seq);
                drop(state);
                let payloads: Vec<&str> = batch.iter().map(|(_, p)| p.as_str()).collect();
                let result = {
                    let mut writer = match self.writer.lock() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    writer.append_batch(&payloads)
                };
                state = self.lock_state();
                state.flushing = false;
                state.processed_through = state.processed_through.max(through);
                if let Err(e) = result {
                    state.failed.push((from, through, e.to_string()));
                }
                self.cond.notify_all();
                continue;
            }
            state = match self.cond.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// The result of replaying a journal file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalReadReport {
    /// Every checksum-valid record payload, in append order.
    pub records: Vec<String>,
    /// A torn or corrupt tail was found (and everything from the first
    /// bad line onward was dropped).
    pub torn_tail: bool,
    /// Bytes dropped with the torn tail.
    pub dropped_bytes: usize,
}

/// Replay a journal, salvaging the longest valid prefix.
///
/// A missing file is an empty journal, not an error: a fresh campaign
/// directory and a crashed-before-first-record one are indistinguishable
/// and both resume from nothing. Reading stops at the first record that
/// is torn (no trailing newline), malformed, or checksum-invalid;
/// everything before it is returned and the remainder is reported as
/// dropped.
pub fn read_journal(path: &Path) -> Result<JournalReadReport, std::io::Error> {
    read_journal_vfs(path, &StdVfs)
}

/// [`read_journal`] over an explicit [`Vfs`].
pub fn read_journal_vfs(path: &Path, vfs: &dyn Vfs) -> Result<JournalReadReport, std::io::Error> {
    let bytes = match vfs.read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(JournalReadReport::default())
        }
        Err(e) => return Err(e),
    };
    let text = String::from_utf8(bytes).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("journal: {e}"))
    })?;
    let mut report = JournalReadReport::default();
    let mut consumed = 0usize;
    for line in text.split_inclusive('\n') {
        let Some(payload) = decode_record(line) else {
            report.torn_tail = true;
            break;
        };
        report.records.push(payload.to_owned());
        consumed += line.len();
    }
    report.dropped_bytes = text.len() - consumed;
    // A trailing partial line with no newline is also a torn tail even
    // when every complete line verified.
    if report.dropped_bytes > 0 {
        report.torn_tail = true;
    }
    Ok(report)
}

/// Truncate a journal to its longest valid prefix, dropping any torn or
/// corrupt tail, and report what survived.
///
/// A writer MUST salvage with this before appending to a journal that a
/// crash may have torn: the torn tail has no newline, so a raw append
/// would fuse the new record onto the torn bytes and corrupt every
/// record from there on.
///
/// This is idempotent: the truncated journal ends in a valid record (or
/// is empty), so a second invocation — e.g. after a crash mid-repair —
/// finds nothing to drop and leaves the file untouched.
pub fn truncate_torn_tail(path: &Path) -> Result<JournalReadReport, std::io::Error> {
    truncate_torn_tail_vfs(path, &StdVfs)
}

/// [`truncate_torn_tail`] over an explicit [`Vfs`].
pub fn truncate_torn_tail_vfs(
    path: &Path,
    vfs: &dyn Vfs,
) -> Result<JournalReadReport, std::io::Error> {
    let report = read_journal_vfs(path, vfs)?;
    if report.dropped_bytes > 0 {
        let len = vfs.len(path)?;
        vfs.set_len(path, len.saturating_sub(report.dropped_bytes as u64))?;
    }
    Ok(report)
}

/// An [`iokc_obs::EventSink`] that appends every observability event as a
/// checksummed journal record.
///
/// This is how span/log streams become durable: each [`iokc_obs::Event`]
/// is serialized to its compact single-line JSON form and framed exactly
/// like the campaign journal, so a crashed run leaves a salvageable
/// prefix that `iokc trace` can replay (open spans in the rebuilt tree
/// show where the process died).
///
/// Sinks are infallible by contract; an I/O error stops further writes
/// and is reported through [`JournalEventSink::error`] instead of
/// panicking inside instrumented code.
///
/// Writes go through a [`GroupJournal`]: when several instrumented
/// threads emit at once, their records share one fsync instead of
/// queuing one fsync each behind a writer lock.
#[derive(Debug)]
pub struct JournalEventSink {
    journal: GroupJournal,
    failed: std::sync::atomic::AtomicBool,
    error: std::sync::Mutex<Option<String>>,
}

impl JournalEventSink {
    /// Open (creating if absent) an event journal at `path`, salvaging a
    /// torn tail first so appends never fuse onto torn bytes.
    pub fn open(path: &Path) -> Result<JournalEventSink, std::io::Error> {
        truncate_torn_tail(path)?;
        Ok(JournalEventSink {
            journal: GroupJournal::open(path)?,
            failed: std::sync::atomic::AtomicBool::new(false),
            error: std::sync::Mutex::new(None),
        })
    }

    /// The first write error, if the sink has gone dark.
    #[must_use]
    pub fn error(&self) -> Option<String> {
        match self.error.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }
}

impl iokc_obs::EventSink for JournalEventSink {
    fn emit(&self, event: &iokc_obs::Event) {
        use std::sync::atomic::Ordering;
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let record = event.to_record();
        if let Err(e) = self.journal.append(&record) {
            self.failed.store(true, Ordering::Relaxed);
            let mut slot = match self.error.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            slot.get_or_insert_with(|| e.to_string());
        }
    }
}

/// Decode one framed line into its payload, verifying the checksum.
/// Returns `None` for torn (unterminated), malformed, or corrupt lines.
fn decode_record(line: &str) -> Option<&str> {
    let body = line.strip_suffix('\n')?;
    let body = body.strip_suffix('\r').unwrap_or(body);
    let rest = body.strip_prefix(RECORD_MAGIC)?.strip_prefix(' ')?;
    let (crc_hex, payload) = rest.split_once(' ')?;
    let recorded = u64::from_str_radix(crc_hex, 16).ok()?;
    if checksum(payload.as_bytes()) != recorded {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::persist::inject_torn_write;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("iokc-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = scratch("roundtrip");
        let path = dir.join("campaign.journal");
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            writer.append("{\"rec\":\"start\",\"wp\":0}").unwrap();
            writer.append("{\"rec\":\"done\",\"wp\":0}").unwrap();
        }
        // Re-open appends, it does not truncate.
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            writer.append("{\"rec\":\"start\",\"wp\":1}").unwrap();
        }
        let report = read_journal(&path).unwrap();
        assert_eq!(report.records.len(), 3);
        assert!(!report.torn_tail);
        assert_eq!(report.dropped_bytes, 0);
        assert_eq!(report.records[2], "{\"rec\":\"start\",\"wp\":1}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_is_empty() {
        let dir = scratch("missing");
        let report = read_journal(&dir.join("nope.journal")).unwrap();
        assert!(report.records.is_empty());
        assert!(!report.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newline_payloads_are_rejected() {
        let dir = scratch("newline");
        let mut writer = JournalWriter::open(&dir.join("j")).unwrap();
        assert!(writer.append("two\nlines").is_err());
        assert!(writer.append("cr\rline").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_any_offset_keeps_a_valid_prefix() {
        let dir = scratch("truncate");
        let path = dir.join("j");
        let payloads: Vec<String> = (0..8).map(|i| format!("{{\"wp\":{i}}}")).collect();
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            for p in &payloads {
                writer.append(p).unwrap();
            }
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let full = text.len() as u64;
        // Byte offsets that coincide with a record boundary: a cut there
        // is indistinguishable from a shorter (but valid) journal.
        let mut boundaries = vec![0u64];
        let mut at = 0u64;
        for line in text.split_inclusive('\n') {
            at += line.len() as u64;
            boundaries.push(at);
        }
        for keep in 0..=full {
            let _ = std::fs::remove_file(&path);
            {
                let mut writer = JournalWriter::open(&path).unwrap();
                for p in &payloads {
                    writer.append(p).unwrap();
                }
            }
            inject_torn_write(&path, keep).unwrap();
            let report = read_journal(&path).unwrap();
            // The salvaged records are exactly a prefix of what was
            // written — never reordered, never a phantom record.
            assert!(report.records.len() <= payloads.len());
            assert_eq!(
                report.records,
                payloads[..report.records.len()].to_vec(),
                "keep={keep}"
            );
            // A mid-record cut is always detected as torn.
            assert_eq!(report.torn_tail, !boundaries.contains(&keep), "keep={keep}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_truncates_the_torn_tail_so_appends_stay_valid() {
        let dir = scratch("salvage");
        let path = dir.join("j");
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            writer.append("alpha").unwrap();
            writer.append("beta").unwrap();
        }
        // Tear the second record mid-line, then salvage and append.
        let full = std::fs::metadata(&path).unwrap().len();
        inject_torn_write(&path, full - 3).unwrap();
        let report = truncate_torn_tail(&path).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.records, vec!["alpha".to_owned()]);
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            writer.append("gamma").unwrap();
        }
        // Without the truncation, `gamma` would have fused onto the torn
        // bytes of `beta` and been dropped too.
        let report = read_journal(&path).unwrap();
        assert_eq!(report.records, vec!["alpha".to_owned(), "gamma".to_owned()]);
        assert!(!report.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_torn_tail_twice_is_a_no_op() {
        let dir = scratch("idempotent");
        let path = dir.join("j");
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            writer.append("alpha").unwrap();
            writer.append("beta").unwrap();
        }
        let full = std::fs::metadata(&path).unwrap().len();
        inject_torn_write(&path, full - 3).unwrap();
        let first = truncate_torn_tail(&path).unwrap();
        assert!(first.torn_tail);
        let after_first = std::fs::read(&path).unwrap();
        // A second salvage — e.g. after a crash during repair — must not
        // drop anything further or rewrite the file.
        let second = truncate_torn_tail(&path).unwrap();
        assert!(!second.torn_tail);
        assert_eq!(second.dropped_bytes, 0);
        assert_eq!(second.records, vec!["alpha".to_owned()]);
        assert_eq!(std::fs::read(&path).unwrap(), after_first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_repair_survives_a_failed_truncate() {
        use crate::vfs::{FaultPlan, FaultVfs};
        let path = Path::new("/j");
        // Build a torn journal image under the in-memory vfs.
        let pristine = FaultVfs::pristine();
        {
            let mut writer = JournalWriter::open_vfs(path, &pristine).unwrap();
            writer.append("alpha").unwrap();
            writer.append("beta").unwrap();
        }
        let full = pristine.len(path).unwrap();
        pristine.set_len(path, full - 3).unwrap();
        let image = pristine.durable_state();
        // First repair attempt dies on the truncating set_len (reads are
        // not mutating ops, so the set_len is op 0)...
        let failing = FaultVfs::from_state_with_plan(image.clone(), FaultPlan::eio_at(0));
        assert!(truncate_torn_tail_vfs(path, &failing).is_err());
        // ...and a clean retry over the same disk state succeeds, after
        // which a further invocation is a no-op.
        let retry = FaultVfs::from_state(failing.durable_state());
        let report = truncate_torn_tail_vfs(path, &retry).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.records, vec!["alpha".to_owned()]);
        let again = truncate_torn_tail_vfs(path, &retry).unwrap();
        assert!(!again.torn_tail);
        assert_eq!(again.dropped_bytes, 0);
    }

    #[test]
    fn append_batch_costs_one_sync() {
        use crate::vfs::FaultVfs;
        let path = Path::new("/j");
        let vfs = FaultVfs::pristine();
        {
            let mut writer = JournalWriter::open_vfs(path, &vfs).unwrap();
            writer
                .append_batch(&["alpha", "beta", "gamma", "delta"])
                .unwrap();
        }
        assert_eq!(vfs.sync_count(), 1);
        let report = read_journal_vfs(path, &vfs).unwrap();
        assert_eq!(report.records, vec!["alpha", "beta", "gamma", "delta"]);
        assert!(!report.torn_tail);
    }

    #[test]
    fn append_batch_rejects_newlines_before_writing() {
        use crate::vfs::FaultVfs;
        let path = Path::new("/j");
        let vfs = FaultVfs::pristine();
        let mut writer = JournalWriter::open_vfs(path, &vfs).unwrap();
        assert!(writer.append_batch(&["ok", "two\nlines"]).is_err());
        // Nothing was written: the batch is validated up front.
        assert_eq!(read_journal_vfs(path, &vfs).unwrap().records.len(), 0);
    }

    #[test]
    fn group_journal_uncontended_appends_are_durable_per_record() {
        use crate::vfs::FaultVfs;
        let path = Path::new("/j");
        let vfs = FaultVfs::pristine();
        let journal = GroupJournal::open_vfs(path, &vfs).unwrap();
        journal.append("alpha").unwrap();
        journal.append("beta").unwrap();
        assert_eq!(vfs.sync_count(), 2);
        let report = read_journal_vfs(path, &vfs).unwrap();
        assert_eq!(report.records, vec!["alpha", "beta"]);
    }

    #[test]
    fn concurrent_group_appends_all_land_with_shared_syncs() {
        let dir = scratch("group-commit");
        let path = dir.join("j");
        let journal = std::sync::Arc::new(GroupJournal::open(&path).unwrap());
        const THREADS: usize = 8;
        const PER_THREAD: usize = 25;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let journal = std::sync::Arc::clone(&journal);
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..PER_THREAD {
                        journal.append(&format!("t{t}-r{i}")).unwrap();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let report = read_journal(&path).unwrap();
        assert_eq!(report.records.len(), THREADS * PER_THREAD);
        assert!(!report.torn_tail);
        // Every thread's own records appear in its append order.
        for t in 0..THREADS {
            let mine: Vec<&String> = report
                .records
                .iter()
                .filter(|r| r.starts_with(&format!("t{t}-")))
                .collect();
            let expected: Vec<String> = (0..PER_THREAD).map(|i| format!("t{t}-r{i}")).collect();
            assert_eq!(mine.len(), PER_THREAD);
            assert!(mine.iter().zip(&expected).all(|(a, b)| *a == b));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_appends_share_fsyncs_under_contention() {
        use crate::vfs::FaultVfs;
        use std::sync::atomic::{AtomicU64, Ordering};
        // A slow VFS would show batching naturally; the in-memory one is
        // fast, so force a batch by pre-loading the queue: spawn writers
        // that all enqueue before the leader drains. Run a few rounds
        // and assert the sync count never exceeds the record count (it
        // is usually far below under real contention).
        let path = Path::new("/j");
        let vfs = std::sync::Arc::new(FaultVfs::pristine());
        let writer = JournalWriter::open_vfs(path, vfs.as_ref()).unwrap();
        let journal = std::sync::Arc::new(GroupJournal::from_writer(writer));
        const THREADS: usize = 6;
        let done = std::sync::Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let journal = std::sync::Arc::clone(&journal);
                let done = std::sync::Arc::clone(&done);
                std::thread::spawn(move || {
                    for i in 0..10 {
                        journal.append(&format!("t{t}-r{i}")).unwrap();
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let records = done.load(Ordering::Relaxed);
        assert_eq!(records, (THREADS * 10) as u64);
        assert!(
            vfs.sync_count() <= records,
            "group commit must never need more syncs than records \
             (got {} syncs for {records} records)",
            vfs.sync_count()
        );
        let report = read_journal_vfs(path, vfs.as_ref()).unwrap();
        assert_eq!(report.records.len(), records as usize);
    }

    #[test]
    fn group_journal_failure_reaches_the_covered_appender() {
        use crate::vfs::{FaultPlan, FaultVfs};
        let path = Path::new("/j");
        // First sync fails; later syncs succeed.
        let vfs = FaultVfs::new(FaultPlan {
            fail_syncs: std::collections::BTreeSet::from([0]),
            ..FaultPlan::default()
        });
        let writer = JournalWriter::open_vfs(path, &vfs).unwrap();
        let journal = GroupJournal::from_writer(writer);
        assert!(journal.append("alpha").is_err());
        // The journal keeps accepting later appends against new batches.
        journal.append("beta").unwrap();
        let report = read_journal_vfs(path, &vfs).unwrap();
        // `alpha`'s bytes may or may not have landed (the write happened,
        // the sync failed) but `beta` is durable.
        assert!(report.records.iter().any(|r| r == "beta"));
    }

    #[test]
    fn corrupt_middle_record_drops_the_rest() {
        let dir = scratch("corrupt");
        let path = dir.join("j");
        {
            let mut writer = JournalWriter::open(&path).unwrap();
            writer.append("alpha").unwrap();
            writer.append("beta").unwrap();
            writer.append("gamma").unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("beta", "beta!", 1)).unwrap();
        let report = read_journal(&path).unwrap();
        assert_eq!(report.records, vec!["alpha".to_owned()]);
        assert!(report.torn_tail);
        assert!(report.dropped_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
