//! A small SQL subset — the store's "DB-API 2.0" face.
//!
//! The paper's prototype talks to SQLite through DB-API; tooling built on
//! this store can use the same idiom:
//!
//! ```
//! use iokc_store::{Database, TableSchema, Column, ColumnType, sql};
//!
//! let mut db = Database::new();
//! db.create_table(TableSchema::new("runs", vec![
//!     Column::required("command", ColumnType::Text),
//!     Column::new("bw", ColumnType::Real),
//! ])).unwrap();
//! sql::execute(&mut db, "INSERT INTO runs VALUES ('ior -b 4m', 2850.12)").unwrap();
//! let rows = sql::query(&db, "SELECT * FROM runs WHERE bw > 1000 ORDER BY bw DESC LIMIT 5").unwrap();
//! assert_eq!(rows.len(), 1);
//! ```
//!
//! Supported statements:
//! `SELECT *|cols FROM t [WHERE cond [AND|OR cond]…] [ORDER BY col [ASC|DESC]] [LIMIT n]`,
//! `INSERT INTO t VALUES (…)`, `UPDATE t SET col = lit [WHERE …]`,
//! `DELETE FROM t [WHERE …]`,
//! `SELECT COUNT(*) FROM t [WHERE …]`. Conditions are
//! `col (=|!=|<|<=|>|>=|LIKE) literal`; literals are numbers, `'strings'`
//! (with `''` escaping) and `NULL`. `AND` binds tighter than `OR`.

use crate::database::{Database, DbError, OrderBy, Predicate, Row};
use crate::value::Value;
use std::fmt;

/// A SQL error.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Syntax error with context.
    Syntax(String),
    /// Database-level failure.
    Db(DbError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Syntax(msg) => write!(f, "sql syntax error: {msg}"),
            SqlError::Db(e) => write!(f, "sql: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<DbError> for SqlError {
    fn from(e: DbError) -> SqlError {
        SqlError::Db(e)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    /// A numeric literal; the flag records whether the source text was an
    /// integer (no decimal point or exponent), so `-1.5e2` stays REAL.
    Number(f64, bool),
    Str(String),
    Symbol(String),
}

fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        // Multibyte UTF-8 is only legal inside string literals; handle the
        // quote/byte cases on raw bytes and slice the original &str for
        // string contents so non-ASCII text survives intact.
        let c = if b.is_ascii() { b as char } else { '\u{80}' };
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c == '\'' {
            let mut s = String::new();
            i += 1;
            let mut run_start = i;
            loop {
                if i >= bytes.len() {
                    return Err(SqlError::Syntax("unterminated string".into()));
                }
                if bytes[i] == b'\'' {
                    s.push_str(&input[run_start..i]);
                    if bytes.get(i + 1) == Some(&b'\'') {
                        s.push('\'');
                        i += 2;
                        run_start = i;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            tokens.push(Token::Str(s));
        } else if c.is_ascii_digit()
            || (c == '-' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit))
        {
            let start = i;
            i += 1;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_digit()
                    || bytes[i] == b'.'
                    || bytes[i] == b'e'
                    || bytes[i] == b'E'
                    || bytes[i] == b'+'
                    || bytes[i] == b'-')
            {
                // Stop '-'/'+' unless following an exponent marker.
                if (bytes[i] == b'-' || bytes[i] == b'+')
                    && !(bytes[i - 1] == b'e' || bytes[i - 1] == b'E')
                {
                    break;
                }
                i += 1;
            }
            let text = &input[start..i];
            let n: f64 = text
                .parse()
                .map_err(|_| SqlError::Syntax(format!("bad number {text}")))?;
            let is_int = !text.contains(['.', 'e', 'E']);
            tokens.push(Token::Number(n, is_int));
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            tokens.push(Token::Ident(input[start..i].to_owned()));
        } else {
            // Multi-char operators first (byte compare: all operators are
            // ASCII, so this never lands inside a UTF-8 sequence).
            let two = bytes.get(i..i + 2);
            if matches!(two, Some(b"!=") | Some(b"<=") | Some(b">=") | Some(b"<>")) {
                tokens.push(Token::Symbol(
                    std::str::from_utf8(two.expect("matched above"))
                        .expect("ascii operator")
                        .to_owned(),
                ));
                i += 2;
            } else if b.is_ascii() && "=<>(),*".contains(c) {
                tokens.push(Token::Symbol(c.to_string()));
                i += 1;
            } else {
                let offending = input[i..].chars().next().unwrap_or('?');
                return Err(SqlError::Syntax(format!(
                    "unexpected character '{offending}'"
                )));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, word: &str) -> bool {
        if let Some(Token::Ident(id)) = self.peek() {
            if id.eq_ignore_ascii_case(word) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, word: &str) -> Result<(), SqlError> {
        if self.keyword(word) {
            Ok(())
        } else {
            Err(SqlError::Syntax(format!("expected {word}")))
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(Token::Symbol(s)) if s == sym => Ok(()),
            other => Err(SqlError::Syntax(format!(
                "expected '{sym}', found {other:?}"
            ))),
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(id)) => Ok(id),
            other => Err(SqlError::Syntax(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn literal(&mut self) -> Result<Value, SqlError> {
        match self.next() {
            Some(Token::Number(n, is_int)) => {
                if is_int && n.fract() == 0.0 && n.abs() < 9e15 {
                    Ok(Value::Int(n as i64))
                } else {
                    Ok(Value::Real(n))
                }
            }
            Some(Token::Str(s)) => Ok(Value::Text(s)),
            Some(Token::Ident(id)) if id.eq_ignore_ascii_case("null") => Ok(Value::Null),
            other => Err(SqlError::Syntax(format!(
                "expected literal, found {other:?}"
            ))),
        }
    }

    /// `cond (AND cond)*` — one AND-chain.
    fn conjunction(&mut self) -> Result<Predicate, SqlError> {
        let mut pred = self.condition()?;
        while self.keyword("AND") {
            pred = pred.and(self.condition()?);
        }
        Ok(pred)
    }

    /// Full WHERE expression: AND binds tighter than OR.
    fn where_expr(&mut self) -> Result<Predicate, SqlError> {
        let mut pred = self.conjunction()?;
        while self.keyword("OR") {
            pred = pred.or(self.conjunction()?);
        }
        Ok(pred)
    }

    fn condition(&mut self) -> Result<Predicate, SqlError> {
        let column = self.ident()?;
        if self.keyword("LIKE") {
            let Value::Text(pattern) = self.literal()? else {
                return Err(SqlError::Syntax("LIKE needs a string".into()));
            };
            return Ok(Predicate::Contains(
                column,
                pattern.trim_matches('%').to_owned(),
            ));
        }
        let op = match self.next() {
            Some(Token::Symbol(s)) => s,
            other => {
                return Err(SqlError::Syntax(format!(
                    "expected operator, found {other:?}"
                )))
            }
        };
        let value = self.literal()?;
        Ok(match op.as_str() {
            "=" => Predicate::Eq(column, value),
            "!=" | "<>" => Predicate::Ne(column, value),
            "<" => Predicate::Lt(column, value),
            "<=" => Predicate::Le(column, value),
            ">" => Predicate::Gt(column, value),
            ">=" => Predicate::Ge(column, value),
            other => return Err(SqlError::Syntax(format!("unknown operator {other}"))),
        })
    }

    fn tail(&mut self) -> Result<(Predicate, OrderBy, Option<usize>), SqlError> {
        let predicate = if self.keyword("WHERE") {
            self.where_expr()?
        } else {
            Predicate::True
        };
        let order = if self.keyword("ORDER") {
            self.expect_keyword("BY")?;
            let column = self.ident()?;
            if self.keyword("DESC") {
                OrderBy::Desc(column)
            } else {
                let _ = self.keyword("ASC");
                OrderBy::Asc(column)
            }
        } else {
            OrderBy::Id
        };
        let limit = if self.keyword("LIMIT") {
            match self.next() {
                Some(Token::Number(n, _)) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                other => return Err(SqlError::Syntax(format!("bad LIMIT {other:?}"))),
            }
        } else {
            None
        };
        if let Some(tok) = self.peek() {
            return Err(SqlError::Syntax(format!("trailing tokens at {tok:?}")));
        }
        Ok((predicate, order, limit))
    }
}

/// Result of a `SELECT`: either rows (with the projected column names) or
/// a count.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Projected rows.
    Rows {
        /// Projected column names (`id` included when `*`).
        columns: Vec<String>,
        /// Cell values per row, in `columns` order.
        rows: Vec<Vec<Value>>,
    },
    /// `COUNT(*)` result.
    Count(usize),
}

/// Run a `SELECT`; convenience wrapper returning raw rows for `*`.
pub fn query(db: &Database, statement: &str) -> Result<Vec<Row>, SqlError> {
    match select(db, statement)? {
        QueryResult::Rows { columns, rows } => {
            // Reassemble Row structs when the projection was `*`.
            Ok(rows
                .into_iter()
                .map(|mut values| {
                    let id = if columns.first().map(String::as_str) == Some("id") {
                        match values.remove(0) {
                            Value::Int(i) => i,
                            _ => 0,
                        }
                    } else {
                        0
                    };
                    Row { id, values }
                })
                .collect())
        }
        QueryResult::Count(n) => Ok(vec![Row {
            id: n as i64,
            values: vec![Value::Int(n as i64)],
        }]),
    }
}

/// Run a `SELECT` with full projection support.
pub fn select(db: &Database, statement: &str) -> Result<QueryResult, SqlError> {
    let mut p = Parser {
        tokens: tokenize(statement)?,
        pos: 0,
    };
    p.expect_keyword("SELECT")?;

    // COUNT(*)?
    if let Some(Token::Ident(id)) = p.peek() {
        if id.eq_ignore_ascii_case("count") {
            p.pos += 1;
            p.expect_symbol("(")?;
            p.expect_symbol("*")?;
            p.expect_symbol(")")?;
            p.expect_keyword("FROM")?;
            let table = p.ident()?;
            let (predicate, _, _) = p.tail()?;
            let rows = db.select(&table, &predicate, OrderBy::Id, None)?;
            return Ok(QueryResult::Count(rows.len()));
        }
    }

    let mut projection: Option<Vec<String>> = None;
    if matches!(p.peek(), Some(Token::Symbol(s)) if s == "*") {
        p.pos += 1;
    } else {
        let mut cols = vec![p.ident()?];
        while matches!(p.peek(), Some(Token::Symbol(s)) if s == ",") {
            p.pos += 1;
            cols.push(p.ident()?);
        }
        projection = Some(cols);
    }
    p.expect_keyword("FROM")?;
    let table = p.ident()?;
    let (predicate, order, limit) = p.tail()?;
    let rows = db.select(&table, &predicate, order, limit)?;
    let schema = db.schema(&table)?;
    match projection {
        None => {
            let mut columns = vec!["id".to_owned()];
            columns.extend(schema.columns.iter().map(|c| c.name.clone()));
            Ok(QueryResult::Rows {
                columns,
                rows: rows
                    .into_iter()
                    .map(|r| {
                        let mut cells = vec![Value::Int(r.id)];
                        cells.extend(r.values);
                        cells
                    })
                    .collect(),
            })
        }
        Some(columns) => {
            let mut projected = Vec::with_capacity(rows.len());
            for row in &rows {
                let mut cells = Vec::with_capacity(columns.len());
                for column in &columns {
                    cells.push(db.cell(&table, row, column)?);
                }
                projected.push(cells);
            }
            Ok(QueryResult::Rows {
                columns,
                rows: projected,
            })
        }
    }
}

/// Execute a mutating statement (`INSERT`, `DELETE`). Returns the new
/// rowid for inserts, the number of removed rows for deletes.
pub fn execute(db: &mut Database, statement: &str) -> Result<i64, SqlError> {
    let mut p = Parser {
        tokens: tokenize(statement)?,
        pos: 0,
    };
    if p.keyword("INSERT") {
        p.expect_keyword("INTO")?;
        let table = p.ident()?;
        p.expect_keyword("VALUES")?;
        p.expect_symbol("(")?;
        let mut values = vec![p.literal()?];
        while matches!(p.peek(), Some(Token::Symbol(s)) if s == ",") {
            p.pos += 1;
            values.push(p.literal()?);
        }
        p.expect_symbol(")")?;
        if let Some(tok) = p.peek() {
            return Err(SqlError::Syntax(format!("trailing tokens at {tok:?}")));
        }
        Ok(db.insert(&table, values)?)
    } else if p.keyword("UPDATE") {
        let table = p.ident()?;
        p.expect_keyword("SET")?;
        let column = p.ident()?;
        p.expect_symbol("=")?;
        let value = p.literal()?;
        let (predicate, _, _) = p.tail()?;
        Ok(db.update(&table, &column, value, &predicate)? as i64)
    } else if p.keyword("DELETE") {
        p.expect_keyword("FROM")?;
        let table = p.ident()?;
        let (predicate, _, _) = p.tail()?;
        Ok(db.delete(&table, &predicate)? as i64)
    } else {
        Err(SqlError::Syntax("expected INSERT, UPDATE or DELETE".into()))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::database::{Column, TableSchema};
    use crate::value::ColumnType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "runs",
            vec![
                Column::required("command", ColumnType::Text),
                Column::new("bw", ColumnType::Real),
                Column::new("tasks", ColumnType::Integer),
            ],
        ))
        .unwrap();
        let mut database = db;
        for (cmd, bw, tasks) in [
            ("ior -b 4m", 2850.12, 80i64),
            ("ior -b 8m", 1251.0, 80),
            ("mdtest -n 100", 0.0, 40),
        ] {
            database
                .insert(
                    "runs",
                    vec![Value::from(cmd), Value::from(bw), Value::Int(tasks)],
                )
                .unwrap();
        }
        database
    }

    #[test]
    fn select_star() {
        let db = db();
        let rows = query(&db, "SELECT * FROM runs").unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].id, 1);
        assert_eq!(rows[0].values[0], Value::from("ior -b 4m"));
    }

    #[test]
    fn where_order_limit() {
        let db = db();
        let rows = query(
            &db,
            "SELECT * FROM runs WHERE tasks = 80 ORDER BY bw DESC LIMIT 1",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[1], Value::Real(2850.12));
    }

    #[test]
    fn and_or_precedence() {
        let db = db();
        // tasks = 40 OR (tasks = 80 AND bw > 2000) → rows 1 and 3.
        let rows = query(
            &db,
            "SELECT * FROM runs WHERE tasks = 40 OR tasks = 80 AND bw > 2000",
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn like_and_projection() {
        let db = db();
        let result = select(
            &db,
            "SELECT command, bw FROM runs WHERE command LIKE '%mdtest%'",
        )
        .unwrap();
        let QueryResult::Rows { columns, rows } = result else {
            panic!("expected rows")
        };
        assert_eq!(columns, vec!["command", "bw"]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::from("mdtest -n 100"));
    }

    #[test]
    fn count_star() {
        let db = db();
        assert_eq!(
            select(&db, "SELECT COUNT(*) FROM runs WHERE tasks = 80").unwrap(),
            QueryResult::Count(2)
        );
    }

    #[test]
    fn insert_and_delete() {
        let mut db = db();
        let id = execute(&mut db, "INSERT INTO runs VALUES ('it''s ior', 99.5, NULL)").unwrap();
        assert_eq!(id, 4);
        let rows = query(&db, "SELECT * FROM runs WHERE command LIKE '%it''s%'").unwrap();
        assert_eq!(rows.len(), 1);
        let removed = execute(&mut db, "DELETE FROM runs WHERE bw < 100").unwrap();
        assert_eq!(removed, 2, "mdtest row and the new row");
        assert_eq!(db.row_count("runs").unwrap(), 2);
    }

    #[test]
    fn update_statement() {
        let mut db = db();
        let changed = execute(&mut db, "UPDATE runs SET bw = 99.5 WHERE tasks = 80").unwrap();
        assert_eq!(changed, 2);
        let rows = query(&db, "SELECT * FROM runs WHERE bw = 99.5").unwrap();
        assert_eq!(rows.len(), 2);
        // Unconditional update touches everything.
        let all = execute(&mut db, "UPDATE runs SET tasks = 1").unwrap();
        assert_eq!(all, 3);
    }

    #[test]
    fn syntax_errors() {
        let mut db = db();
        assert!(matches!(
            query(&db, "SELEC * FROM runs"),
            Err(SqlError::Syntax(_))
        ));
        assert!(matches!(
            query(&db, "SELECT * FROM runs WHERE"),
            Err(SqlError::Syntax(_))
        ));
        assert!(matches!(
            query(&db, "SELECT * FROM runs LIMIT -1"),
            Err(SqlError::Syntax(_))
        ));
        assert!(matches!(
            query(&db, "SELECT * FROM runs junk"),
            Err(SqlError::Syntax(_))
        ));
        assert!(matches!(
            execute(&mut db, "CREATE TABLE x (y INTEGER)"),
            Err(SqlError::Syntax(_))
        ));
        assert!(matches!(
            execute(&mut db, "UPDATE runs SET"),
            Err(SqlError::Syntax(_))
        ));
        assert!(matches!(
            query(&db, "SELECT * FROM runs WHERE command LIKE 5"),
            Err(SqlError::Syntax(_))
        ));
        assert!(matches!(
            query(&db, "SELECT * FROM runs WHERE command ~ 'x'"),
            Err(SqlError::Syntax(_))
        ));
    }

    #[test]
    fn db_errors_propagate() {
        let db = db();
        assert!(matches!(
            query(&db, "SELECT * FROM ghosts"),
            Err(SqlError::Db(DbError::NoSuchTable(_)))
        ));
        assert!(matches!(
            query(&db, "SELECT * FROM runs WHERE ghost = 1"),
            Err(SqlError::Db(DbError::NoSuchColumn { .. }))
        ));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]
            #[test]
            fn sql_never_panics_on_noise(statement in ".{0,120}") {
                let mut database = db();
                let _ = query(&database, &statement);
                let _ = select(&database, &statement);
                let _ = execute(&mut database, &statement);
            }

            #[test]
            fn inserted_strings_roundtrip(text in "[^']{0,40}") {
                let mut database = db();
                let escaped = text.replace('\'', "''");
                let statement =
                    format!("INSERT INTO runs VALUES ('{escaped}', 1.0, 1)");
                let id = execute(&mut database, &statement).unwrap();
                let row = database.get("runs", id).unwrap().unwrap();
                prop_assert_eq!(row.values[0].as_text().unwrap(), text);
            }
        }
    }

    #[test]
    fn unknown_columns_error_in_every_clause() {
        let db = db();
        // Projection: the cell lookup fails, it does not silently yield NULL.
        assert!(matches!(
            select(&db, "SELECT ghost FROM runs"),
            Err(SqlError::Db(DbError::NoSuchColumn { .. }))
        ));
        // ORDER BY is resolved before any row work.
        assert!(matches!(
            select(&db, "SELECT * FROM runs ORDER BY ghost"),
            Err(SqlError::Db(DbError::NoSuchColumn { .. }))
        ));
        // A valid projection with an unknown WHERE column still errors.
        assert!(matches!(
            select(&db, "SELECT command FROM runs WHERE ghost = 1"),
            Err(SqlError::Db(DbError::NoSuchColumn { .. }))
        ));
    }

    #[test]
    fn reversed_range_matches_nothing_without_error() {
        let db = db();
        // An unsatisfiable conjunction (bw > 2000 AND bw < 100) is a
        // valid query with an empty answer, not a planner panic.
        let rows = query(&db, "SELECT * FROM runs WHERE bw > 2000 AND bw < 100").unwrap();
        assert!(rows.is_empty());
        assert_eq!(
            select(
                &db,
                "SELECT COUNT(*) FROM runs WHERE tasks > 80 AND tasks < 40"
            )
            .unwrap(),
            QueryResult::Count(0)
        );
    }

    #[test]
    fn limit_zero_returns_no_rows() {
        let db = db();
        let QueryResult::Rows { rows, .. } = select(&db, "SELECT * FROM runs LIMIT 0").unwrap()
        else {
            panic!("expected rows")
        };
        assert!(rows.is_empty());
        let QueryResult::Rows { rows, .. } =
            select(&db, "SELECT command FROM runs WHERE tasks = 80 LIMIT 0").unwrap()
        else {
            panic!("expected rows")
        };
        assert!(rows.is_empty());
    }

    #[test]
    fn limit_pushdown_short_circuits_row_iteration() {
        use crate::database::{OrderBy, Predicate};
        let db = db();
        // In id order the limit is pushed into the scan: one matching
        // row is enough, the remaining two are never examined.
        let (rows, stats) = db
            .select_with_stats("runs", &Predicate::True, OrderBy::Id, Some(1))
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(stats.rows_examined, 1, "{stats:?}");
        // Ordering by a column needs the full match set before the
        // limit truncates it, so every row is examined.
        let (rows, stats) = db
            .select_with_stats(
                "runs",
                &Predicate::True,
                OrderBy::Desc("bw".to_owned()),
                Some(1),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[1], Value::Real(2850.12));
        assert_eq!(stats.rows_examined, 3, "{stats:?}");
        assert_eq!(stats.rows_matched, 3, "{stats:?}");
    }

    #[test]
    fn numbers_parse_with_signs_and_exponents() {
        let mut db = db();
        execute(&mut db, "INSERT INTO runs VALUES ('neg', -1.5e2, -3)").unwrap();
        let rows = query(&db, "SELECT * FROM runs WHERE bw <= -100").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[1], Value::Real(-150.0));
        assert_eq!(rows[0].values[2], Value::Int(-3));
    }
}
