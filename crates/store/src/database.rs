//! The embedded relational engine: schemas, tables, constraints, indexes
//! and queries.
//!
//! This plays the role SQLite plays in the paper's prototype (§V-C). It
//! supports exactly what the knowledge cycle needs — typed columns,
//! auto-increment rowids, primary/foreign keys, secondary indexes,
//! predicate queries with ordering and limits — with a deterministic
//! on-disk representation (see [`crate::persist`]).

use crate::value::{ColumnType, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
    /// NOT NULL constraint.
    pub not_null: bool,
}

impl Column {
    /// A nullable column.
    #[must_use]
    pub fn new(name: &str, ty: ColumnType) -> Column {
        Column {
            name: name.to_owned(),
            ty,
            not_null: false,
        }
    }

    /// A NOT NULL column.
    #[must_use]
    pub fn required(name: &str, ty: ColumnType) -> Column {
        Column {
            name: name.to_owned(),
            ty,
            not_null: true,
        }
    }
}

/// A foreign-key constraint: `column` must reference an existing rowid of
/// `references_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column of this table.
    pub column: String,
    /// Referenced table (its rowid).
    pub references_table: String,
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns (rowid is implicit, as in SQLite).
    pub columns: Vec<Column>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
    /// Columns with secondary indexes.
    pub indexes: Vec<String>,
}

impl TableSchema {
    /// A schema with no constraints.
    #[must_use]
    pub fn new(name: &str, columns: Vec<Column>) -> TableSchema {
        TableSchema {
            name: name.to_owned(),
            columns,
            foreign_keys: Vec::new(),
            indexes: Vec::new(),
        }
    }

    /// Add a foreign key (builder style).
    #[must_use]
    pub fn with_fk(mut self, column: &str, references_table: &str) -> TableSchema {
        self.foreign_keys.push(ForeignKey {
            column: column.to_owned(),
            references_table: references_table.to_owned(),
        });
        self
    }

    /// Add a secondary index (builder style).
    #[must_use]
    pub fn with_index(mut self, column: &str) -> TableSchema {
        self.indexes.push(column.to_owned());
        self
    }

    /// Index of a named column.
    #[must_use]
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

/// Errors from database operations.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are documented by the variant docs
pub enum DbError {
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn { table: String, column: String },
    /// Wrong number of values for an insert.
    Arity {
        table: String,
        expected: usize,
        got: usize,
    },
    /// Value does not fit the column type.
    TypeMismatch {
        table: String,
        column: String,
        value: String,
    },
    /// NOT NULL violated.
    NotNull { table: String, column: String },
    /// Foreign key references a missing row.
    ForeignKey {
        table: String,
        column: String,
        missing_id: i64,
    },
    /// Creating a table that exists.
    TableExists(String),
    /// Corrupt persistence payload.
    Corrupt(String),
    /// The storage device rejected a write for lack of space (ENOSPC,
    /// quota, or a short write) — transient: retryable after cleanup,
    /// unlike corruption.
    Full(String),
    /// Any other I/O failure while persisting or loading an image.
    Io(String),
    /// The store is serving in degraded, read-only mode and refused a
    /// write.
    ReadOnly(String),
    /// A query was stopped mid-scan because its deadline budget ran out
    /// or cancellation was requested. Carries partial-progress counters
    /// so callers can report how far the scan got.
    Cancelled {
        /// Rows examined before the query stopped.
        examined: usize,
        /// Rows that had matched before the query stopped.
        matched: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no such column: {table}.{column}")
            }
            DbError::Arity {
                table,
                expected,
                got,
            } => {
                write!(f, "{table}: expected {expected} values, got {got}")
            }
            DbError::TypeMismatch {
                table,
                column,
                value,
            } => {
                write!(f, "{table}.{column}: value {value} has wrong type")
            }
            DbError::NotNull { table, column } => {
                write!(f, "{table}.{column}: NOT NULL constraint failed")
            }
            DbError::ForeignKey {
                table,
                column,
                missing_id,
            } => {
                write!(f, "{table}.{column}: FOREIGN KEY row {missing_id} missing")
            }
            DbError::TableExists(t) => write!(f, "table exists: {t}"),
            DbError::Corrupt(msg) => write!(f, "corrupt database image: {msg}"),
            DbError::Full(msg) => write!(f, "storage full: {msg}"),
            DbError::Io(msg) => write!(f, "i/o error: {msg}"),
            DbError::ReadOnly(msg) => write!(f, "store is read-only: {msg}"),
            DbError::Cancelled { examined, matched } => {
                write!(
                    f,
                    "query cancelled after examining {examined} rows ({matched} matched)"
                )
            }
        }
    }
}

impl std::error::Error for DbError {}

/// A row: its rowid plus cell values in schema column order.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Implicit primary key.
    pub id: i64,
    /// Cells.
    pub values: Vec<Value>,
}

/// A filter predicate over rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// `column = value`.
    Eq(String, Value),
    /// `column != value`.
    Ne(String, Value),
    /// `column < value`.
    Lt(String, Value),
    /// `column <= value`.
    Le(String, Value),
    /// `column > value`.
    Gt(String, Value),
    /// `column >= value`.
    Ge(String, Value),
    /// `column LIKE '%text%'` (substring containment).
    Contains(String, String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Conjunction helper.
    #[must_use]
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    #[must_use]
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    fn eval(&self, schema: &TableSchema, row: &Row) -> Result<bool, DbError> {
        let cell = |name: &str| -> Result<Value, DbError> {
            if name == "id" {
                return Ok(Value::Int(row.id));
            }
            let idx = schema
                .column_index(name)
                .ok_or_else(|| DbError::NoSuchColumn {
                    table: schema.name.clone(),
                    column: name.to_owned(),
                })?;
            Ok(row.values[idx].clone())
        };
        Ok(match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => cell(c)?.total_cmp(v).is_eq(),
            Predicate::Ne(c, v) => !cell(c)?.total_cmp(v).is_eq(),
            Predicate::Lt(c, v) => cell(c)?.total_cmp(v).is_lt(),
            Predicate::Le(c, v) => cell(c)?.total_cmp(v).is_le(),
            Predicate::Gt(c, v) => cell(c)?.total_cmp(v).is_gt(),
            Predicate::Ge(c, v) => cell(c)?.total_cmp(v).is_ge(),
            Predicate::Contains(c, text) => cell(c)?
                .as_text()
                .map(|t| t.contains(text.as_str()))
                .unwrap_or(false),
            Predicate::And(a, b) => a.eval(schema, row)? && b.eval(schema, row)?,
            Predicate::Or(a, b) => a.eval(schema, row)? || b.eval(schema, row)?,
        })
    }
}

/// Sort order for queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderBy {
    /// Rowid ascending (insertion order).
    Id,
    /// A column ascending.
    Asc(String),
    /// A column descending.
    Desc(String),
}

/// What one [`Database::select_with_stats`] call actually did — the
/// observable half of predicate and limit pushdown. `rows_examined`
/// counts rows the engine touched (probed from an index or visited in a
/// scan), so `rows_examined < table size` proves pruning happened and
/// `rows_examined ≈ limit` proves the limit short-circuited iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectStats {
    /// Rows probed or visited while answering the query.
    pub rows_examined: usize,
    /// Rows that matched (before the limit truncates them).
    pub rows_matched: usize,
    /// Whether a secondary index narrowed the candidate set.
    pub index_used: bool,
}

/// A table: schema, rows, auto-increment counter, secondary indexes.
#[derive(Debug, Clone)]
pub(crate) struct Table {
    pub(crate) schema: TableSchema,
    pub(crate) rows: BTreeMap<i64, Vec<Value>>,
    pub(crate) next_id: i64,
    /// column name → value → rowids.
    pub(crate) secondary: BTreeMap<String, BTreeMap<Value, Vec<i64>>>,
}

impl Table {
    fn new(schema: TableSchema) -> Table {
        let secondary = schema
            .indexes
            .iter()
            .map(|c| (c.clone(), BTreeMap::new()))
            .collect();
        Table {
            schema,
            rows: BTreeMap::new(),
            next_id: 1,
            secondary,
        }
    }

    fn index_insert(&mut self, id: i64, values: &[Value]) {
        for (column, index) in &mut self.secondary {
            if let Some(ci) = self.schema.column_index(column) {
                index.entry(values[ci].clone()).or_default().push(id);
            }
        }
    }

    fn index_remove(&mut self, id: i64, values: &[Value]) {
        for (column, index) in &mut self.secondary {
            if let Some(ci) = self.schema.column_index(column) {
                if let Some(ids) = index.get_mut(&values[ci]) {
                    ids.retain(|x| *x != id);
                    if ids.is_empty() {
                        index.remove(&values[ci]);
                    }
                }
            }
        }
    }
}

/// Find one indexable conjunct in the predicate's top-level `AND` chain
/// and return the candidate rowids it selects. Equality wins over a
/// range bound (it is more selective); `Or`/`Not`-shaped predicates and
/// non-indexed columns fall back to a scan (`None`). Because `Value`'s
/// `Ord` is exactly the comparison `Predicate::eval` uses, a range over
/// the index's key space selects precisely the rows the conjunct
/// accepts, so the full predicate re-evaluated on candidates stays the
/// single source of truth.
fn indexable_candidates(t: &Table, predicate: &Predicate) -> Option<Vec<i64>> {
    use std::ops::Bound;

    let mut conjuncts = Vec::new();
    let mut stack = vec![predicate];
    while let Some(p) = stack.pop() {
        if let Predicate::And(a, b) = p {
            stack.push(a);
            stack.push(b);
        } else {
            conjuncts.push(p);
        }
    }

    for conjunct in &conjuncts {
        if let Predicate::Eq(column, value) = conjunct {
            if let Some(index) = t.secondary.get(column) {
                return Some(index.get(value).cloned().unwrap_or_default());
            }
        }
    }
    for conjunct in &conjuncts {
        let (column, bounds) = match conjunct {
            Predicate::Lt(c, v) => (c, (Bound::Unbounded, Bound::Excluded(v.clone()))),
            Predicate::Le(c, v) => (c, (Bound::Unbounded, Bound::Included(v.clone()))),
            Predicate::Gt(c, v) => (c, (Bound::Excluded(v.clone()), Bound::Unbounded)),
            Predicate::Ge(c, v) => (c, (Bound::Included(v.clone()), Bound::Unbounded)),
            _ => continue,
        };
        if let Some(index) = t.secondary.get(column) {
            let mut ids = Vec::new();
            for entry in index.range(bounds) {
                ids.extend_from_slice(entry.1);
            }
            return Some(ids);
        }
    }
    None
}

fn validate_predicate_columns(schema: &TableSchema, predicate: &Predicate) -> Result<(), DbError> {
    let check = |column: &str| -> Result<(), DbError> {
        if column == "id" || schema.column_index(column).is_some() {
            Ok(())
        } else {
            Err(DbError::NoSuchColumn {
                table: schema.name.clone(),
                column: column.to_owned(),
            })
        }
    };
    match predicate {
        Predicate::True => Ok(()),
        Predicate::Eq(c, _)
        | Predicate::Ne(c, _)
        | Predicate::Lt(c, _)
        | Predicate::Le(c, _)
        | Predicate::Gt(c, _)
        | Predicate::Ge(c, _)
        | Predicate::Contains(c, _) => check(c),
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            validate_predicate_columns(schema, a)?;
            validate_predicate_columns(schema, b)
        }
    }
}

/// The database: a set of tables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    pub(crate) tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    #[must_use]
    pub fn new() -> Database {
        Database::default()
    }

    /// Create a table.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), DbError> {
        if self.tables.contains_key(&schema.name) {
            return Err(DbError::TableExists(schema.name));
        }
        self.tables.insert(schema.name.clone(), Table::new(schema));
        Ok(())
    }

    /// Table names in deterministic order.
    #[must_use]
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// A table's schema.
    pub fn schema(&self, table: &str) -> Result<&TableSchema, DbError> {
        self.tables
            .get(table)
            .map(|t| &t.schema)
            .ok_or_else(|| DbError::NoSuchTable(table.to_owned()))
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &str) -> Result<usize, DbError> {
        Ok(self
            .tables
            .get(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_owned()))?
            .rows
            .len())
    }

    /// Insert a row (values in schema column order); returns the rowid.
    /// Enforces arity, types, NOT NULL and foreign keys.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> Result<i64, DbError> {
        // Validate against an immutable borrow first.
        {
            let t = self
                .tables
                .get(table)
                .ok_or_else(|| DbError::NoSuchTable(table.to_owned()))?;
            if values.len() != t.schema.columns.len() {
                return Err(DbError::Arity {
                    table: table.to_owned(),
                    expected: t.schema.columns.len(),
                    got: values.len(),
                });
            }
            for (column, value) in t.schema.columns.iter().zip(&values) {
                if value.is_null() && column.not_null {
                    return Err(DbError::NotNull {
                        table: table.to_owned(),
                        column: column.name.clone(),
                    });
                }
                if !value.fits(column.ty) {
                    return Err(DbError::TypeMismatch {
                        table: table.to_owned(),
                        column: column.name.clone(),
                        value: value.to_string(),
                    });
                }
            }
            for fk in t.schema.foreign_keys.clone() {
                let ci =
                    t.schema
                        .column_index(&fk.column)
                        .ok_or_else(|| DbError::NoSuchColumn {
                            table: table.to_owned(),
                            column: fk.column.clone(),
                        })?;
                if let Some(refid) = values[ci].as_int() {
                    let target = self
                        .tables
                        .get(&fk.references_table)
                        .ok_or_else(|| DbError::NoSuchTable(fk.references_table.clone()))?;
                    if !target.rows.contains_key(&refid) {
                        return Err(DbError::ForeignKey {
                            table: table.to_owned(),
                            column: fk.column,
                            missing_id: refid,
                        });
                    }
                } else if !values[ci].is_null() {
                    return Err(DbError::TypeMismatch {
                        table: table.to_owned(),
                        column: fk.column,
                        value: values[ci].to_string(),
                    });
                }
            }
        }
        let t = self.tables.get_mut(table).expect("validated above");
        let id = t.next_id;
        t.next_id += 1;
        t.index_insert(id, &values);
        t.rows.insert(id, values);
        Ok(id)
    }

    /// Insert a row with an explicit id — the restore path used when
    /// loading a persisted image. Validates arity and types but not
    /// foreign keys (the image is loaded table by table, so parents may
    /// arrive after children; the image was FK-consistent when written).
    pub(crate) fn insert_raw(
        &mut self,
        table: &str,
        id: i64,
        values: Vec<Value>,
    ) -> Result<(), DbError> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_owned()))?;
        if values.len() != t.schema.columns.len() {
            return Err(DbError::Arity {
                table: table.to_owned(),
                expected: t.schema.columns.len(),
                got: values.len(),
            });
        }
        for (column, value) in t.schema.columns.iter().zip(&values) {
            if !value.fits(column.ty) {
                return Err(DbError::TypeMismatch {
                    table: table.to_owned(),
                    column: column.name.clone(),
                    value: value.to_string(),
                });
            }
        }
        t.next_id = t.next_id.max(id + 1);
        t.index_insert(id, &values);
        t.rows.insert(id, values);
        Ok(())
    }

    /// A table's auto-increment counter: the id the next [`Database::insert`]
    /// would assign. `None` for unknown tables.
    pub(crate) fn next_id(&self, table: &str) -> Option<i64> {
        self.tables.get(table).map(|t| t.next_id)
    }

    /// Raise a table's auto-increment counter to at least `next`. Counters
    /// never move backwards, so replaying a persisted image over freshly
    /// restored rows (whose `insert_raw` calls already advanced the
    /// counter) is safe in either order. Unknown tables are ignored — an
    /// image may carry counters for tables a newer schema dropped.
    pub(crate) fn bump_next_id(&mut self, table: &str, next: i64) {
        if let Some(t) = self.tables.get_mut(table) {
            t.next_id = t.next_id.max(next);
        }
    }

    /// Fetch one row by id.
    pub fn get(&self, table: &str, id: i64) -> Result<Option<Row>, DbError> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_owned()))?;
        Ok(t.rows.get(&id).map(|values| Row {
            id,
            values: values.clone(),
        }))
    }

    /// Query rows matching `predicate`, ordered and limited.
    ///
    /// Indexable conjuncts of the predicate (equality or a single range
    /// bound on an indexed column, anywhere in the top-level `AND` chain)
    /// are served from the secondary index; everything else scans. With
    /// `OrderBy::Id` the limit is pushed into the iteration, so the scan
    /// stops as soon as enough rows matched.
    pub fn select(
        &self,
        table: &str,
        predicate: &Predicate,
        order: OrderBy,
        limit: Option<usize>,
    ) -> Result<Vec<Row>, DbError> {
        Ok(self.select_with_stats(table, predicate, order, limit)?.0)
    }

    /// [`Database::select`] plus the execution statistics: how many rows
    /// were actually examined, how many matched, and whether a secondary
    /// index pruned the candidate set.
    pub fn select_with_stats(
        &self,
        table: &str,
        predicate: &Predicate,
        order: OrderBy,
        limit: Option<usize>,
    ) -> Result<(Vec<Row>, SelectStats), DbError> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_owned()))?;
        validate_predicate_columns(&t.schema, predicate)?;
        // Resolve the ORDER BY column before doing any work, so an
        // unknown column errors even on an empty result set.
        let order_ci = match &order {
            OrderBy::Id => None,
            OrderBy::Asc(column) | OrderBy::Desc(column) => Some(
                t.schema
                    .column_index(column)
                    .ok_or_else(|| DbError::NoSuchColumn {
                        table: table.to_owned(),
                        column: column.clone(),
                    })?,
            ),
        };

        let mut stats = SelectStats::default();
        let candidate_ids = indexable_candidates(t, predicate);
        stats.index_used = candidate_ids.is_some();

        // With id ordering the output order equals the iteration order,
        // so the limit short-circuits; ordered queries must see every
        // match before sorting.
        let cap = match (order_ci, limit) {
            (None, Some(n)) => n,
            _ => usize::MAX,
        };

        let mut rows: Vec<Row> = Vec::new();
        match candidate_ids {
            Some(mut ids) => {
                ids.sort_unstable();
                ids.dedup();
                for id in ids {
                    if rows.len() >= cap {
                        break;
                    }
                    let Some(values) = t.rows.get(&id) else {
                        continue;
                    };
                    stats.rows_examined += 1;
                    let row = Row {
                        id,
                        values: values.clone(),
                    };
                    if predicate.eval(&t.schema, &row)? {
                        stats.rows_matched += 1;
                        rows.push(row);
                    }
                }
            }
            None => {
                for (id, values) in &t.rows {
                    if rows.len() >= cap {
                        break;
                    }
                    stats.rows_examined += 1;
                    let row = Row {
                        id: *id,
                        values: values.clone(),
                    };
                    if predicate.eval(&t.schema, &row)? {
                        stats.rows_matched += 1;
                        rows.push(row);
                    }
                }
            }
        }

        if let Some(ci) = order_ci {
            rows.sort_by(|a, b| a.values[ci].total_cmp(&b.values[ci]).then(a.id.cmp(&b.id)));
            if matches!(order, OrderBy::Desc(_)) {
                rows.reverse();
            }
        }
        if let Some(n) = limit {
            rows.truncate(n);
        }
        Ok((rows, stats))
    }

    /// Update one named column of every row matching a predicate; returns
    /// the number of rows changed. Enforces the column's type and NOT
    /// NULL constraint and keeps secondary indexes consistent.
    pub fn update(
        &mut self,
        table: &str,
        column: &str,
        value: Value,
        predicate: &Predicate,
    ) -> Result<usize, DbError> {
        let victims: Vec<i64> = self
            .select(table, predicate, OrderBy::Id, None)?
            .into_iter()
            .map(|r| r.id)
            .collect();
        let t = self.tables.get_mut(table).expect("select verified table");
        let ci = t
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: table.to_owned(),
                column: column.to_owned(),
            })?;
        let col = &t.schema.columns[ci];
        if value.is_null() && col.not_null {
            return Err(DbError::NotNull {
                table: table.to_owned(),
                column: column.to_owned(),
            });
        }
        if !value.fits(col.ty) {
            return Err(DbError::TypeMismatch {
                table: table.to_owned(),
                column: column.to_owned(),
                value: value.to_string(),
            });
        }
        for id in &victims {
            let old_values = t.rows.get(id).expect("selected row exists").clone();
            t.index_remove(*id, &old_values);
            let mut new_values = old_values;
            new_values[ci] = value.clone();
            t.index_insert(*id, &new_values);
            t.rows.insert(*id, new_values);
        }
        Ok(victims.len())
    }

    /// Delete rows matching a predicate; returns the number removed.
    pub fn delete(&mut self, table: &str, predicate: &Predicate) -> Result<usize, DbError> {
        let victims: Vec<i64> = self
            .select(table, predicate, OrderBy::Id, None)?
            .into_iter()
            .map(|r| r.id)
            .collect();
        let t = self.tables.get_mut(table).expect("select verified table");
        for id in &victims {
            if let Some(values) = t.rows.remove(id) {
                t.index_remove(*id, &values);
            }
        }
        Ok(victims.len())
    }

    /// Read one named cell of a row.
    pub fn cell(&self, table: &str, row: &Row, column: &str) -> Result<Value, DbError> {
        if column == "id" {
            return Ok(Value::Int(row.id));
        }
        let schema = self.schema(table)?;
        let ci = schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: table.to_owned(),
                column: column.to_owned(),
            })?;
        Ok(row.values[ci].clone())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn db_with_perf() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "performances",
                vec![
                    Column::required("command", ColumnType::Text),
                    Column::required("api", ColumnType::Text),
                    Column::new("tasks", ColumnType::Integer),
                ],
            )
            .with_index("api"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "summaries",
                vec![
                    Column::required("performance_id", ColumnType::Integer),
                    Column::required("operation", ColumnType::Text),
                    Column::new("mean_mib", ColumnType::Real),
                ],
            )
            .with_fk("performance_id", "performances")
            .with_index("performance_id"),
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_and_get() {
        let mut db = db_with_perf();
        let id = db
            .insert(
                "performances",
                vec![
                    Value::from("ior -w"),
                    Value::from("MPIIO"),
                    Value::from(80u32),
                ],
            )
            .unwrap();
        assert_eq!(id, 1);
        let row = db.get("performances", id).unwrap().unwrap();
        assert_eq!(row.values[0], Value::from("ior -w"));
        assert!(db.get("performances", 99).unwrap().is_none());
    }

    #[test]
    fn constraints_enforced() {
        let mut db = db_with_perf();
        // Arity.
        assert!(matches!(
            db.insert("performances", vec![Value::from("x")]),
            Err(DbError::Arity { .. })
        ));
        // NOT NULL.
        assert!(matches!(
            db.insert(
                "performances",
                vec![Value::Null, Value::from("a"), Value::Null]
            ),
            Err(DbError::NotNull { .. })
        ));
        // Type mismatch.
        assert!(matches!(
            db.insert(
                "performances",
                vec![Value::from("c"), Value::from(1i64), Value::Null]
            ),
            Err(DbError::TypeMismatch { .. })
        ));
        // FK violation.
        assert!(matches!(
            db.insert(
                "summaries",
                vec![Value::from(7i64), Value::from("write"), Value::from(1.0)]
            ),
            Err(DbError::ForeignKey { missing_id: 7, .. })
        ));
        // Unknown table.
        assert!(matches!(
            db.insert("nope", vec![]),
            Err(DbError::NoSuchTable(_))
        ));
    }

    #[test]
    fn foreign_key_accepts_existing_parent() {
        let mut db = db_with_perf();
        let pid = db
            .insert(
                "performances",
                vec![Value::from("ior"), Value::from("POSIX"), Value::Null],
            )
            .unwrap();
        let sid = db
            .insert(
                "summaries",
                vec![Value::from(pid), Value::from("write"), Value::from(2850.12)],
            )
            .unwrap();
        assert_eq!(sid, 1);
    }

    #[test]
    fn select_with_predicates_order_limit() {
        let mut db = db_with_perf();
        for (cmd, api, tasks) in [
            ("ior -b 4m", "MPIIO", 80i64),
            ("ior -b 8m", "POSIX", 40),
            ("ior -b 16m", "MPIIO", 20),
        ] {
            db.insert(
                "performances",
                vec![Value::from(cmd), Value::from(api), Value::Int(tasks)],
            )
            .unwrap();
        }
        let mpiio = db
            .select(
                "performances",
                &Predicate::Eq("api".into(), Value::from("MPIIO")),
                OrderBy::Id,
                None,
            )
            .unwrap();
        assert_eq!(mpiio.len(), 2);

        let big = db
            .select(
                "performances",
                &Predicate::Gt("tasks".into(), Value::Int(30)),
                OrderBy::Desc("tasks".into()),
                Some(1),
            )
            .unwrap();
        assert_eq!(big.len(), 1);
        assert_eq!(big[0].values[2], Value::Int(80));

        let like = db
            .select(
                "performances",
                &Predicate::Contains("command".into(), "8m".into()),
                OrderBy::Id,
                None,
            )
            .unwrap();
        assert_eq!(like.len(), 1);

        let compound = db
            .select(
                "performances",
                &Predicate::Eq("api".into(), Value::from("MPIIO"))
                    .and(Predicate::Lt("tasks".into(), Value::Int(50))),
                OrderBy::Id,
                None,
            )
            .unwrap();
        assert_eq!(compound.len(), 1);
        assert_eq!(compound[0].values[0], Value::from("ior -b 16m"));
    }

    #[test]
    fn indexed_eq_matches_scan() {
        let mut db = db_with_perf();
        for i in 0..50 {
            let api = if i % 3 == 0 { "MPIIO" } else { "POSIX" };
            db.insert(
                "performances",
                vec![
                    Value::from(format!("c{i}")),
                    Value::from(api),
                    Value::Int(i),
                ],
            )
            .unwrap();
        }
        let via_index = db
            .select(
                "performances",
                &Predicate::Eq("api".into(), Value::from("MPIIO")),
                OrderBy::Id,
                None,
            )
            .unwrap();
        // Force a scan with an equivalent non-indexable predicate.
        let via_scan = db
            .select(
                "performances",
                &Predicate::Contains("api".into(), "MPIIO".into()),
                OrderBy::Id,
                None,
            )
            .unwrap();
        assert_eq!(via_index, via_scan);
        assert_eq!(via_index.len(), 17);
    }

    #[test]
    fn delete_removes_and_updates_index() {
        let mut db = db_with_perf();
        for i in 0..10 {
            db.insert(
                "performances",
                vec![
                    Value::from(format!("c{i}")),
                    Value::from("MPIIO"),
                    Value::Int(i),
                ],
            )
            .unwrap();
        }
        let removed = db
            .delete(
                "performances",
                &Predicate::Lt("tasks".into(), Value::Int(5)),
            )
            .unwrap();
        assert_eq!(removed, 5);
        assert_eq!(db.row_count("performances").unwrap(), 5);
        let rest = db
            .select(
                "performances",
                &Predicate::Eq("api".into(), Value::from("MPIIO")),
                OrderBy::Id,
                None,
            )
            .unwrap();
        assert_eq!(rest.len(), 5);
    }

    #[test]
    fn update_changes_rows_and_indexes() {
        let mut db = db_with_perf();
        for i in 0..6 {
            db.insert(
                "performances",
                vec![
                    Value::from(format!("c{i}")),
                    Value::from("POSIX"),
                    Value::Int(i),
                ],
            )
            .unwrap();
        }
        let changed = db
            .update(
                "performances",
                "api",
                Value::from("MPIIO"),
                &Predicate::Ge("tasks".into(), Value::Int(3)),
            )
            .unwrap();
        assert_eq!(changed, 3);
        // The secondary index on `api` reflects the change.
        let mpiio = db
            .select(
                "performances",
                &Predicate::Eq("api".into(), Value::from("MPIIO")),
                OrderBy::Id,
                None,
            )
            .unwrap();
        assert_eq!(mpiio.len(), 3);
        // Constraints still apply.
        assert!(matches!(
            db.update("performances", "command", Value::Null, &Predicate::True),
            Err(DbError::NotNull { .. })
        ));
        assert!(matches!(
            db.update(
                "performances",
                "tasks",
                Value::from("oops"),
                &Predicate::True
            ),
            Err(DbError::TypeMismatch { .. })
        ));
        assert!(matches!(
            db.update("performances", "ghost", Value::Null, &Predicate::True),
            Err(DbError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn select_on_unknown_column_errors() {
        let db = db_with_perf();
        assert!(matches!(
            db.select(
                "performances",
                &Predicate::Eq("ghost".into(), Value::Null),
                OrderBy::Id,
                None
            ),
            Err(DbError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn id_pseudocolumn_in_predicates() {
        let mut db = db_with_perf();
        for i in 0..3 {
            db.insert(
                "performances",
                vec![
                    Value::from(format!("c{i}")),
                    Value::from("POSIX"),
                    Value::Int(i),
                ],
            )
            .unwrap();
        }
        let rows = db
            .select(
                "performances",
                &Predicate::Eq("id".into(), Value::Int(2)),
                OrderBy::Id,
                None,
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id, 2);
    }
}
