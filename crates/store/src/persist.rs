//! Durable storage of a database.
//!
//! The paper stores knowledge "either directly as a local SQLite database
//! or by specifying a SQL connection URL remotely" (§V-C). Here the
//! local form is a deterministic JSON image on disk — schemas, rows and
//! auto-increment counters — written atomically (temp file + rename).
//! CSV export/import covers the paper's "saved e.g. as a CSV file" path.

use crate::database::{Column, Database, DbError, ForeignKey, OrderBy, Predicate, TableSchema};
use crate::value::{ColumnType, Value};
use iokc_util::json::Json;
use iokc_util::table::TextTable;
use std::path::Path;

/// Serialize the whole database to a JSON document.
#[must_use]
pub fn to_json(db: &Database) -> Json {
    let mut tables = Vec::new();
    for name in db.table_names() {
        let schema = db.schema(name).expect("listed table exists");
        let rows = db
            .select(name, &Predicate::True, OrderBy::Id, None)
            .expect("full scan of existing table");
        let columns: Vec<Json> = schema
            .columns
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("name", Json::from(c.name.as_str())),
                    ("type", Json::from(c.ty.as_str())),
                    ("not_null", Json::from(c.not_null)),
                ])
            })
            .collect();
        let fks: Vec<Json> = schema
            .foreign_keys
            .iter()
            .map(|fk| {
                Json::obj(vec![
                    ("column", Json::from(fk.column.as_str())),
                    ("references", Json::from(fk.references_table.as_str())),
                ])
            })
            .collect();
        let indexes: Vec<Json> = schema
            .indexes
            .iter()
            .map(|i| Json::from(i.as_str()))
            .collect();
        let row_json: Vec<Json> = rows
            .iter()
            .map(|row| {
                let mut cells = vec![Json::from(row.id)];
                cells.extend(row.values.iter().map(value_to_json));
                Json::Arr(cells)
            })
            .collect();
        tables.push(Json::obj(vec![
            ("name", Json::from(name)),
            ("columns", Json::Arr(columns)),
            ("foreign_keys", Json::Arr(fks)),
            ("indexes", Json::Arr(indexes)),
            ("rows", Json::Arr(row_json)),
        ]));
    }
    Json::obj(vec![
        ("format", Json::from("iokc-store")),
        ("version", Json::from(1u64)),
        ("tables", Json::Arr(tables)),
    ])
}

/// Rebuild a database from its JSON image.
pub fn from_json(json: &Json) -> Result<Database, DbError> {
    if json.get("format").and_then(Json::as_str) != Some("iokc-store") {
        return Err(DbError::Corrupt("missing iokc-store format tag".into()));
    }
    let mut db = Database::new();
    let tables = json
        .get("tables")
        .and_then(Json::as_arr)
        .ok_or_else(|| DbError::Corrupt("missing tables array".into()))?;
    for table in tables {
        let name = table
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| DbError::Corrupt("table without name".into()))?;
        let mut columns = Vec::new();
        for col in table
            .get("columns")
            .and_then(Json::as_arr)
            .ok_or_else(|| DbError::Corrupt(format!("{name}: missing columns")))?
        {
            let cname = col
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| DbError::Corrupt(format!("{name}: column without name")))?;
            let ty = match col.get("type").and_then(Json::as_str) {
                Some("INTEGER") => ColumnType::Integer,
                Some("REAL") => ColumnType::Real,
                Some("TEXT") => ColumnType::Text,
                other => {
                    return Err(DbError::Corrupt(format!(
                        "{name}.{cname}: bad type {other:?}"
                    )))
                }
            };
            let not_null = col.get("not_null").and_then(Json::as_bool).unwrap_or(false);
            columns.push(Column { name: cname.to_owned(), ty, not_null });
        }
        let mut schema = TableSchema::new(name, columns);
        if let Some(fks) = table.get("foreign_keys").and_then(Json::as_arr) {
            for fk in fks {
                schema.foreign_keys.push(ForeignKey {
                    column: fk
                        .get("column")
                        .and_then(Json::as_str)
                        .ok_or_else(|| DbError::Corrupt("fk without column".into()))?
                        .to_owned(),
                    references_table: fk
                        .get("references")
                        .and_then(Json::as_str)
                        .ok_or_else(|| DbError::Corrupt("fk without references".into()))?
                        .to_owned(),
                });
            }
        }
        if let Some(indexes) = table.get("indexes").and_then(Json::as_arr) {
            for index in indexes {
                schema.indexes.push(
                    index
                        .as_str()
                        .ok_or_else(|| DbError::Corrupt("non-text index".into()))?
                        .to_owned(),
                );
            }
        }
        db.create_table(schema)?;
        // Rows: insert preserving original ids. FK checks hold because
        // tables are serialized in name order but rows reference ids that
        // may live in tables loaded later — so load rows in a second pass.
    }
    // Second pass: rows, FK-safe because parents are fully loaded in pass
    // order only if tables happen to sort that way; instead insert raw.
    for table in tables {
        let name = table
            .get("name")
            .and_then(Json::as_str)
            .expect("validated in first pass");
        let rows = table
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| DbError::Corrupt(format!("{name}: missing rows")))?;
        for row in rows {
            let cells = row
                .as_arr()
                .ok_or_else(|| DbError::Corrupt(format!("{name}: row not an array")))?;
            if cells.is_empty() {
                return Err(DbError::Corrupt(format!("{name}: empty row")));
            }
            let id = cells[0]
                .as_f64()
                .map(|f| f as i64)
                .ok_or_else(|| DbError::Corrupt(format!("{name}: row without id")))?;
            let values: Vec<Value> = cells[1..].iter().map(json_to_value).collect();
            db.insert_raw(name, id, values)?;
        }
    }
    Ok(db)
}

fn value_to_json(value: &Value) -> Json {
    match value {
        Value::Null => Json::Null,
        Value::Int(i) => Json::obj(vec![("i", Json::from(*i))]),
        Value::Real(r) => Json::Num(*r),
        Value::Text(t) => Json::from(t.as_str()),
    }
}

fn json_to_value(json: &Json) -> Value {
    match json {
        Json::Null => Value::Null,
        Json::Obj(map) => map
            .get("i")
            .and_then(Json::as_f64)
            .map(|f| Value::Int(f as i64))
            .unwrap_or(Value::Null),
        Json::Num(n) => Value::Real(*n),
        Json::Str(s) => Value::Text(s.clone()),
        _ => Value::Null,
    }
}

/// Save a database to a file (atomic: temp file + rename).
pub fn save(db: &Database, path: &Path) -> Result<(), std::io::Error> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, to_json(db).to_pretty())?;
    std::fs::rename(&tmp, path)
}

/// Load a database from a file.
pub fn load(path: &Path) -> Result<Database, DbError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| DbError::Corrupt(format!("read {}: {e}", path.display())))?;
    let json = iokc_util::json::parse(&text)
        .map_err(|e| DbError::Corrupt(format!("parse {}: {e}", path.display())))?;
    from_json(&json)
}

/// Export one table as CSV (header = `id` + column names).
pub fn export_csv(db: &Database, table: &str) -> Result<String, DbError> {
    let schema = db.schema(table)?;
    let mut header = vec!["id".to_owned()];
    header.extend(schema.columns.iter().map(|c| c.name.clone()));
    let mut text_table = TextTable::new(header);
    for row in db.select(table, &Predicate::True, OrderBy::Id, None)? {
        let mut cells = vec![row.id.to_string()];
        cells.extend(row.values.iter().map(|v| match v {
            Value::Null => String::new(),
            other => other.to_string(),
        }));
        text_table.push_row(cells);
    }
    Ok(text_table.render_csv())
}

/// Import CSV rows into an existing table. The header must name the
/// table's columns (an `id` column, if present, is preserved as the
/// rowid); empty cells become NULL; numeric cells are typed by the
/// column's declared type.
pub fn import_csv(db: &mut Database, table: &str, text: &str) -> Result<usize, DbError> {
    let rows = iokc_util::table::parse_csv(text);
    let Some((header, data)) = rows.split_first() else {
        return Ok(0);
    };
    let schema = db.schema(table)?.clone();
    // Map CSV columns → schema positions (or the id pseudo-column).
    let mut id_column = None;
    let mut mapping = Vec::with_capacity(header.len());
    for (i, name) in header.iter().enumerate() {
        if name == "id" {
            id_column = Some(i);
            mapping.push(None);
        } else {
            let ci = schema.column_index(name).ok_or_else(|| DbError::NoSuchColumn {
                table: table.to_owned(),
                column: name.clone(),
            })?;
            mapping.push(Some(ci));
        }
    }
    let mut imported = 0;
    for row in data {
        let mut values = vec![Value::Null; schema.columns.len()];
        for (cell, target) in row.iter().zip(&mapping) {
            let Some(ci) = target else { continue };
            values[*ci] = if cell.is_empty() {
                Value::Null
            } else {
                match schema.columns[*ci].ty {
                    ColumnType::Integer => cell
                        .parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| DbError::TypeMismatch {
                            table: table.to_owned(),
                            column: schema.columns[*ci].name.clone(),
                            value: cell.clone(),
                        })?,
                    ColumnType::Real => cell
                        .parse::<f64>()
                        .map(Value::Real)
                        .map_err(|_| DbError::TypeMismatch {
                            table: table.to_owned(),
                            column: schema.columns[*ci].name.clone(),
                            value: cell.clone(),
                        })?,
                    ColumnType::Text => Value::Text(cell.clone()),
                }
            };
        }
        match id_column.and_then(|i| row.get(i)).and_then(|c| c.parse::<i64>().ok()) {
            Some(id) => db.insert_raw(table, id, values)?,
            None => {
                db.insert(table, values)?;
            }
        }
        imported += 1;
    }
    Ok(imported)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{Column, TableSchema};

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "performances",
                vec![
                    Column::required("command", ColumnType::Text),
                    Column::new("mean", ColumnType::Real),
                    Column::new("tasks", ColumnType::Integer),
                ],
            )
            .with_index("command"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "summaries",
                vec![Column::required("performance_id", ColumnType::Integer)],
            )
            .with_fk("performance_id", "performances"),
        )
        .unwrap();
        let pid = db
            .insert(
                "performances",
                vec![Value::from("ior -b 4m"), Value::from(2850.12), Value::from(80u32)],
            )
            .unwrap();
        db.insert(
            "performances",
            vec![Value::from("ior -b 8m"), Value::Null, Value::Null],
        )
        .unwrap();
        db.insert("summaries", vec![Value::from(pid)]).unwrap();
        db
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let db = sample_db();
        let image = to_json(&db);
        let restored = from_json(&image).unwrap();
        assert_eq!(restored.table_names(), db.table_names());
        for table in db.table_names() {
            let a = db.select(table, &Predicate::True, OrderBy::Id, None).unwrap();
            let b = restored.select(table, &Predicate::True, OrderBy::Id, None).unwrap();
            assert_eq!(a, b, "table {table} differs");
        }
        // Auto-increment continues past restored ids.
        let mut restored = restored;
        let next = restored
            .insert(
                "performances",
                vec![Value::from("new"), Value::Null, Value::Null],
            )
            .unwrap();
        assert_eq!(next, 3);
    }

    #[test]
    fn int_real_distinction_survives_roundtrip() {
        // Integers are tagged in JSON so Int(2) doesn't come back Real(2.0).
        let db = sample_db();
        let restored = from_json(&to_json(&db)).unwrap();
        let rows = restored
            .select("performances", &Predicate::True, OrderBy::Id, None)
            .unwrap();
        assert_eq!(rows[0].values[2], Value::Int(80));
        assert_eq!(rows[0].values[1], Value::Real(2850.12));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("iokc-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.iokc.json");
        let db = sample_db();
        save(&db, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored.row_count("performances").unwrap(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn csv_export_import_roundtrip() {
        let db = sample_db();
        let csv = export_csv(&db, "performances").unwrap();
        // Import into a fresh database with the same schema.
        let mut fresh = Database::new();
        fresh
            .create_table(
                TableSchema::new(
                    "performances",
                    vec![
                        Column::required("command", ColumnType::Text),
                        Column::new("mean", ColumnType::Real),
                        Column::new("tasks", ColumnType::Integer),
                    ],
                )
                .with_index("command"),
            )
            .unwrap();
        let imported = import_csv(&mut fresh, "performances", &csv).unwrap();
        assert_eq!(imported, 2);
        let original = db
            .select("performances", &Predicate::True, OrderBy::Id, None)
            .unwrap();
        let restored = fresh
            .select("performances", &Predicate::True, OrderBy::Id, None)
            .unwrap();
        // Text/NULL/Int columns round trip exactly; the REAL column too
        // (f64 display → parse is lossless for these values).
        assert_eq!(original.len(), restored.len());
        for (a, b) in original.iter().zip(&restored) {
            assert_eq!(a.id, b.id, "ids preserved");
            assert_eq!(a.values[0], b.values[0]);
            assert_eq!(a.values[2], b.values[2]);
        }
        // Errors: unknown column and bad numeric cell.
        assert!(matches!(
            import_csv(&mut fresh, "performances", "ghost
x
"),
            Err(DbError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            import_csv(&mut fresh, "performances", "tasks
not-a-number
"),
            Err(DbError::TypeMismatch { .. })
        ));
        assert_eq!(import_csv(&mut fresh, "performances", "").unwrap(), 0);
    }

    #[test]
    fn rejects_corrupt_images() {
        assert!(from_json(&Json::Null).is_err());
        assert!(from_json(&Json::obj(vec![("format", Json::from("wrong"))])).is_err());
        let mut good = to_json(&sample_db());
        // Break a row.
        if let Json::Obj(map) = &mut good {
            if let Some(Json::Arr(tables)) = map.get_mut("tables") {
                if let Some(Json::Obj(t)) = tables.first_mut() {
                    t.insert("rows".into(), Json::Arr(vec![Json::Num(5.0)]));
                }
            }
        }
        assert!(from_json(&good).is_err());
    }

    #[test]
    fn csv_export_contains_rows() {
        let db = sample_db();
        let csv = export_csv(&db, "performances").unwrap();
        let rows = iokc_util::table::parse_csv(&csv);
        assert_eq!(rows[0], vec!["id", "command", "mean", "tasks"]);
        assert_eq!(rows[1][1], "ior -b 4m");
        assert_eq!(rows[2][2], "", "NULL exports as empty cell");
        assert!(export_csv(&db, "nope").is_err());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn arbitrary_rows_roundtrip(
                rows in proptest::collection::vec(
                    ("[a-z ]{0,20}", proptest::option::of(-1e9f64..1e9), proptest::option::of(any::<i32>())),
                    0..30
                )
            ) {
                let mut db = Database::new();
                db.create_table(TableSchema::new(
                    "t",
                    vec![
                        Column::new("a", ColumnType::Text),
                        Column::new("b", ColumnType::Real),
                        Column::new("c", ColumnType::Integer),
                    ],
                )).unwrap();
                for (a, b, c) in &rows {
                    db.insert("t", vec![
                        Value::from(a.as_str()),
                        b.map(Value::Real).unwrap_or(Value::Null),
                        c.map(|v| Value::Int(i64::from(v))).unwrap_or(Value::Null),
                    ]).unwrap();
                }
                let restored = from_json(&to_json(&db)).unwrap();
                let a = db.select("t", &Predicate::True, OrderBy::Id, None).unwrap();
                let b = restored.select("t", &Predicate::True, OrderBy::Id, None).unwrap();
                prop_assert_eq!(a, b);
            }
        }
    }
}
