//! Durable storage of a database.
//!
//! The paper stores knowledge "either directly as a local SQLite database
//! or by specifying a SQL connection URL remotely" (§V-C). Here the
//! local form is a deterministic JSON image on disk — schemas, rows and
//! auto-increment counters. CSV export/import covers the paper's "saved
//! e.g. as a CSV file" path.
//!
//! Writes are crash-safe: the image is written to a temp file, fsynced,
//! and renamed over the target, with the previous checksum-valid image
//! rotated to a `.bak` generation first. Every image carries a trailing
//! checksum footer (`#iokc-crc64:<hex>` over the JSON body, FNV-1a 64),
//! so a torn or bit-flipped image is *detected* on load rather than
//! silently yielding wrong data — [`load_with_recovery`] then falls back
//! to the last good generation. [`inject_torn_write`] truncates an image
//! at a byte offset so tests can exercise exactly that path.

use crate::database::{Column, Database, DbError, ForeignKey, OrderBy, Predicate, TableSchema};
use crate::value::{ColumnType, Value};
use crate::vfs::{StdVfs, Vfs};
use iokc_util::json::Json;
use iokc_util::table::TextTable;
use std::path::{Path, PathBuf};

/// Serialize the whole database to a JSON document.
#[must_use]
pub fn to_json(db: &Database) -> Json {
    let mut tables = Vec::new();
    for name in db.table_names() {
        let schema = db.schema(name).expect("listed table exists");
        let rows = db
            .select(name, &Predicate::True, OrderBy::Id, None)
            .expect("full scan of existing table");
        let columns: Vec<Json> = schema
            .columns
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("name", Json::from(c.name.as_str())),
                    ("type", Json::from(c.ty.as_str())),
                    ("not_null", Json::from(c.not_null)),
                ])
            })
            .collect();
        let fks: Vec<Json> = schema
            .foreign_keys
            .iter()
            .map(|fk| {
                Json::obj(vec![
                    ("column", Json::from(fk.column.as_str())),
                    ("references", Json::from(fk.references_table.as_str())),
                ])
            })
            .collect();
        let indexes: Vec<Json> = schema
            .indexes
            .iter()
            .map(|i| Json::from(i.as_str()))
            .collect();
        let row_json: Vec<Json> = rows
            .iter()
            .map(|row| {
                let mut cells = vec![Json::from(row.id)];
                cells.extend(row.values.iter().map(value_to_json));
                Json::Arr(cells)
            })
            .collect();
        tables.push(Json::obj(vec![
            ("name", Json::from(name)),
            ("columns", Json::Arr(columns)),
            ("foreign_keys", Json::Arr(fks)),
            ("indexes", Json::Arr(indexes)),
            ("rows", Json::Arr(row_json)),
        ]));
    }
    // Auto-increment counters, so an image that holds only a slice of
    // the corpus (the segmented store's active generation) still
    // allocates ids after the highest ever issued, not after the highest
    // it happens to contain. Images without the key (written before the
    // segmented store) fall back to max(id)+1 per table.
    let next_ids = Json::obj(
        db.table_names()
            .into_iter()
            .map(|name| (name, Json::from(db.next_id(name).unwrap_or(1) as u64)))
            .collect(),
    );
    Json::obj(vec![
        ("format", Json::from("iokc-store")),
        ("version", Json::from(1u64)),
        ("next_ids", next_ids),
        ("tables", Json::Arr(tables)),
    ])
}

/// Rebuild a database from its JSON image.
pub fn from_json(json: &Json) -> Result<Database, DbError> {
    if json.get("format").and_then(Json::as_str) != Some("iokc-store") {
        return Err(DbError::Corrupt("missing iokc-store format tag".into()));
    }
    let mut db = Database::new();
    let tables = json
        .get("tables")
        .and_then(Json::as_arr)
        .ok_or_else(|| DbError::Corrupt("missing tables array".into()))?;
    for table in tables {
        let name = table
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| DbError::Corrupt("table without name".into()))?;
        let mut columns = Vec::new();
        for col in table
            .get("columns")
            .and_then(Json::as_arr)
            .ok_or_else(|| DbError::Corrupt(format!("{name}: missing columns")))?
        {
            let cname = col
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| DbError::Corrupt(format!("{name}: column without name")))?;
            let ty = match col.get("type").and_then(Json::as_str) {
                Some("INTEGER") => ColumnType::Integer,
                Some("REAL") => ColumnType::Real,
                Some("TEXT") => ColumnType::Text,
                other => {
                    return Err(DbError::Corrupt(format!(
                        "{name}.{cname}: bad type {other:?}"
                    )))
                }
            };
            let not_null = col.get("not_null").and_then(Json::as_bool).unwrap_or(false);
            columns.push(Column {
                name: cname.to_owned(),
                ty,
                not_null,
            });
        }
        let mut schema = TableSchema::new(name, columns);
        if let Some(fks) = table.get("foreign_keys").and_then(Json::as_arr) {
            for fk in fks {
                schema.foreign_keys.push(ForeignKey {
                    column: fk
                        .get("column")
                        .and_then(Json::as_str)
                        .ok_or_else(|| DbError::Corrupt("fk without column".into()))?
                        .to_owned(),
                    references_table: fk
                        .get("references")
                        .and_then(Json::as_str)
                        .ok_or_else(|| DbError::Corrupt("fk without references".into()))?
                        .to_owned(),
                });
            }
        }
        if let Some(indexes) = table.get("indexes").and_then(Json::as_arr) {
            for index in indexes {
                schema.indexes.push(
                    index
                        .as_str()
                        .ok_or_else(|| DbError::Corrupt("non-text index".into()))?
                        .to_owned(),
                );
            }
        }
        db.create_table(schema)?;
        // Rows: insert preserving original ids. FK checks hold because
        // tables are serialized in name order but rows reference ids that
        // may live in tables loaded later — so load rows in a second pass.
    }
    // Second pass: rows, FK-safe because parents are fully loaded in pass
    // order only if tables happen to sort that way; instead insert raw.
    for table in tables {
        let name = table
            .get("name")
            .and_then(Json::as_str)
            .expect("validated in first pass");
        let rows = table
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| DbError::Corrupt(format!("{name}: missing rows")))?;
        for row in rows {
            let cells = row
                .as_arr()
                .ok_or_else(|| DbError::Corrupt(format!("{name}: row not an array")))?;
            if cells.is_empty() {
                return Err(DbError::Corrupt(format!("{name}: empty row")));
            }
            let id = cells[0]
                .as_f64()
                .map(|f| f as i64)
                .ok_or_else(|| DbError::Corrupt(format!("{name}: row without id")))?;
            let values: Vec<Value> = cells[1..].iter().map(json_to_value).collect();
            db.insert_raw(name, id, values)?;
        }
    }
    // Restore auto-increment counters when the image carries them;
    // `insert_raw` already advanced each to max(id)+1, so this only ever
    // moves counters forward (segmented images allocate past ids that
    // live in sealed segments, not in this image).
    if let Some(Json::Obj(next_ids)) = json.get("next_ids") {
        for (table, next) in next_ids {
            if let Some(next) = next.as_u64() {
                db.bump_next_id(table, next as i64);
            }
        }
    }
    Ok(db)
}

fn value_to_json(value: &Value) -> Json {
    match value {
        Value::Null => Json::Null,
        Value::Int(i) => Json::obj(vec![("i", Json::from(*i))]),
        Value::Real(r) => Json::Num(*r),
        Value::Text(t) => Json::from(t.as_str()),
    }
}

fn json_to_value(json: &Json) -> Value {
    match json {
        Json::Null => Value::Null,
        Json::Obj(map) => map
            .get("i")
            .and_then(Json::as_f64)
            .map(|f| Value::Int(f as i64))
            .unwrap_or(Value::Null),
        Json::Num(n) => Value::Real(*n),
        Json::Str(s) => Value::Text(s.clone()),
        _ => Value::Null,
    }
}

/// Marker introducing the checksum footer line.
const FOOTER_MARKER: &str = "\n#iokc-crc64:";

/// FNV-1a 64-bit checksum of the image body.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Render the on-disk image: pretty JSON body plus the checksum footer.
#[must_use]
pub fn render_image(db: &Database) -> String {
    let body = to_json(db).to_pretty();
    let crc = checksum(body.as_bytes());
    format!("{body}{FOOTER_MARKER}{crc:016x}\n")
}

/// Split an image into its JSON body, verifying the checksum footer.
///
/// Images without a footer (written before checksumming existed) are
/// accepted as-is; a present-but-wrong footer, or a malformed one, is
/// corruption.
pub fn verify_image(text: &str) -> Result<&str, DbError> {
    let Some(at) = text.rfind(FOOTER_MARKER) else {
        return Ok(text);
    };
    let body = &text[..at];
    let footer = text[at + FOOTER_MARKER.len()..].trim_end();
    let Ok(recorded) = u64::from_str_radix(footer, 16) else {
        return Err(DbError::Corrupt(format!(
            "malformed checksum footer {footer:?} (torn write?)"
        )));
    };
    let actual = checksum(body.as_bytes());
    if actual != recorded {
        return Err(DbError::Corrupt(format!(
            "checksum mismatch: image records {recorded:016x}, body hashes to {actual:016x}"
        )));
    }
    Ok(body)
}

/// The sibling temp file a save writes before the atomic rename.
#[must_use]
pub fn temp_path(path: &Path) -> PathBuf {
    sibling(path, ".tmp")
}

/// The previous-generation backup kept next to the image.
#[must_use]
pub fn backup_path(path: &Path) -> PathBuf {
    sibling(path, ".bak")
}

/// The segmented store's active-generation image for `epoch`, kept next
/// to the manifest (which lives at the store's nominal path).
#[must_use]
pub fn active_path(path: &Path, epoch: u64) -> PathBuf {
    sibling(path, &format!(".active-{epoch}"))
}

/// A sealed segment's file, kept next to the manifest.
#[must_use]
pub fn segment_path(path: &Path, id: u64) -> PathBuf {
    sibling(path, &format!(".seg-{id}"))
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(suffix);
    path.with_file_name(name)
}

/// Save a database to a file, crash-safely.
///
/// The image (with checksum footer) is written to a temp file and
/// fsynced; the current image — if it verifies — is rotated to the
/// `.bak` generation; then the temp file is renamed into place. A crash
/// at any point leaves either the old image, the old image plus a stray
/// temp file, or the new image — never a file that loads as wrong data.
pub fn save(db: &Database, path: &Path) -> Result<(), std::io::Error> {
    save_vfs(db, path, &StdVfs)
}

/// [`save`] over an explicit [`Vfs`] — the seam the fault-injection
/// harness uses. An error at any step (including the final directory
/// sync, whose renames a crash could otherwise revert) means the save
/// is *not acknowledged*; the caller must treat the on-disk state as
/// whatever the previous generation was.
pub fn save_vfs(db: &Database, path: &Path, vfs: &dyn Vfs) -> Result<(), std::io::Error> {
    let image = render_image(db);
    let tmp = temp_path(path);
    {
        let mut file = vfs.create(&tmp)?;
        file.write_all(image.as_bytes())?;
        file.sync()?;
    }
    // Rotate only a checksum-valid current image into the backup slot;
    // rotating a torn image would evict the last good generation.
    if vfs.exists(path) && load_verified_vfs(path, vfs).is_ok() {
        vfs.rename(path, &backup_path(path))?;
    }
    vfs.rename(&tmp, path)?;
    // Make the renames durable. `StdVfs` treats this as best-effort
    // (not all platforms allow opening a directory for sync);
    // fault-injecting VFS implementations fail it for real so the
    // rename-uncertainty window is exercised.
    vfs.sync_parent_dir(path)?;
    Ok(())
}

/// Classify an I/O failure from the persistence layer onto the store's
/// error taxonomy: ENOSPC-like conditions (`StorageFull`, `WriteZero`)
/// are transient — retryable once space is freed — while everything
/// else is an opaque I/O failure. Corruption is never produced here; it
/// is detected by checksums on the *read* path.
#[must_use]
pub fn classify_io_error(context: &str, e: &std::io::Error) -> DbError {
    match e.kind() {
        std::io::ErrorKind::StorageFull | std::io::ErrorKind::WriteZero => {
            DbError::Full(format!("{context}: {e}"))
        }
        _ => DbError::Io(format!("{context}: {e}")),
    }
}

/// What happened while loading an image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The primary image was unusable and the `.bak` generation was
    /// loaded instead.
    pub recovered_from_backup: bool,
    /// Why the primary image was rejected, when it was.
    pub primary_error: Option<String>,
}

/// Load a database from a file, verifying its checksum.
pub fn load(path: &Path) -> Result<Database, DbError> {
    load_verified_vfs(path, &StdVfs)
}

/// [`load`] over an explicit [`Vfs`].
pub fn load_vfs(path: &Path, vfs: &dyn Vfs) -> Result<Database, DbError> {
    load_verified_vfs(path, vfs)
}

/// Load a database, falling back to the `.bak` generation when the
/// primary image is missing, torn, or corrupt. The report says which
/// generation was used and why.
pub fn load_with_recovery(path: &Path) -> Result<(Database, RecoveryReport), DbError> {
    load_with_recovery_vfs(path, &StdVfs)
}

/// [`load_with_recovery`] over an explicit [`Vfs`].
pub fn load_with_recovery_vfs(
    path: &Path,
    vfs: &dyn Vfs,
) -> Result<(Database, RecoveryReport), DbError> {
    match load_verified_vfs(path, vfs) {
        Ok(db) => Ok((db, RecoveryReport::default())),
        Err(primary_error) => {
            let backup = backup_path(path);
            if !vfs.exists(&backup) {
                return Err(primary_error);
            }
            match load_verified_vfs(&backup, vfs) {
                Ok(db) => Ok((
                    db,
                    RecoveryReport {
                        recovered_from_backup: true,
                        primary_error: Some(primary_error.to_string()),
                    },
                )),
                Err(backup_error) => Err(DbError::Corrupt(format!(
                    "primary image unusable ({primary_error}) and backup image unusable \
                     ({backup_error})"
                ))),
            }
        }
    }
}

fn load_verified_vfs(path: &Path, vfs: &dyn Vfs) -> Result<Database, DbError> {
    let bytes = vfs
        .read(path)
        .map_err(|e| DbError::Corrupt(format!("read {}: {e}", path.display())))?;
    let text = String::from_utf8(bytes)
        .map_err(|e| DbError::Corrupt(format!("read {}: {e}", path.display())))?;
    let body = verify_image(&text)?;
    let json = iokc_util::json::parse(body)
        .map_err(|e| DbError::Corrupt(format!("parse {}: {e}", path.display())))?;
    from_json(&json)
}

/// Render any JSON document the way images are rendered: pretty body
/// plus the checksum footer. Manifest and segment files of the segmented
/// store use this, so every file the store writes is torn-write
/// detectable by the same footer check.
#[must_use]
pub fn render_document(body: &Json) -> String {
    let text = body.to_pretty();
    let crc = checksum(text.as_bytes());
    format!("{text}{FOOTER_MARKER}{crc:016x}\n")
}

/// Write a checksummed JSON document crash-safely: temp file, fsync,
/// rotate a still-verifiable current generation to `.bak`, rename into
/// place, sync the directory. The same protocol as [`save_vfs`], for
/// documents that are not whole database images (manifests, segments).
pub fn write_document_vfs(path: &Path, vfs: &dyn Vfs, body: &Json) -> Result<(), std::io::Error> {
    let image = render_document(body);
    let tmp = temp_path(path);
    {
        let mut file = vfs.create(&tmp)?;
        file.write_all(image.as_bytes())?;
        file.sync()?;
    }
    // Rotate only a checksum-valid current file into the backup slot;
    // rotating a torn one would evict the last good generation.
    if vfs.exists(path) && read_document_vfs(path, vfs).is_ok() {
        vfs.rename(path, &backup_path(path))?;
    }
    vfs.rename(&tmp, path)?;
    vfs.sync_parent_dir(path)?;
    Ok(())
}

/// Read a checksummed JSON document, verifying its footer.
pub fn read_document_vfs(path: &Path, vfs: &dyn Vfs) -> Result<Json, DbError> {
    let bytes = vfs
        .read(path)
        .map_err(|e| DbError::Corrupt(format!("read {}: {e}", path.display())))?;
    let text = String::from_utf8(bytes)
        .map_err(|e| DbError::Corrupt(format!("read {}: {e}", path.display())))?;
    let body = verify_image(&text)?;
    iokc_util::json::parse(body)
        .map_err(|e| DbError::Corrupt(format!("parse {}: {e}", path.display())))
}

/// [`read_document_vfs`] with the `.bak` fallback [`load_with_recovery`]
/// gives database images: a missing, torn, or corrupt primary falls back
/// to the previous generation when one survives.
pub fn read_document_with_recovery_vfs(
    path: &Path,
    vfs: &dyn Vfs,
) -> Result<(Json, RecoveryReport), DbError> {
    match read_document_vfs(path, vfs) {
        Ok(doc) => Ok((doc, RecoveryReport::default())),
        Err(primary_error) => {
            let backup = backup_path(path);
            if !vfs.exists(&backup) {
                return Err(primary_error);
            }
            match read_document_vfs(&backup, vfs) {
                Ok(doc) => Ok((
                    doc,
                    RecoveryReport {
                        recovered_from_backup: true,
                        primary_error: Some(primary_error.to_string()),
                    },
                )),
                Err(backup_error) => Err(DbError::Corrupt(format!(
                    "primary document unusable ({primary_error}) and backup unusable \
                     ({backup_error})"
                ))),
            }
        }
    }
}

/// Fault-injection hook: truncate an on-disk image to `keep_bytes`,
/// simulating a write torn by a crash or a full disk. Used by the
/// resilience test harness; safe to call on any file.
pub fn inject_torn_write(path: &Path, keep_bytes: u64) -> Result<(), std::io::Error> {
    StdVfs.set_len(path, keep_bytes)
}

/// Export one table as CSV (header = `id` + column names).
pub fn export_csv(db: &Database, table: &str) -> Result<String, DbError> {
    let schema = db.schema(table)?;
    let mut header = vec!["id".to_owned()];
    header.extend(schema.columns.iter().map(|c| c.name.clone()));
    let mut text_table = TextTable::new(header);
    for row in db.select(table, &Predicate::True, OrderBy::Id, None)? {
        let mut cells = vec![row.id.to_string()];
        cells.extend(row.values.iter().map(|v| match v {
            Value::Null => String::new(),
            other => other.to_string(),
        }));
        text_table.push_row(cells);
    }
    Ok(text_table.render_csv())
}

/// Import CSV rows into an existing table. The header must name the
/// table's columns (an `id` column, if present, is preserved as the
/// rowid); empty cells become NULL; numeric cells are typed by the
/// column's declared type.
pub fn import_csv(db: &mut Database, table: &str, text: &str) -> Result<usize, DbError> {
    let rows = iokc_util::table::parse_csv(text);
    let Some((header, data)) = rows.split_first() else {
        return Ok(0);
    };
    let schema = db.schema(table)?.clone();
    // Map CSV columns → schema positions (or the id pseudo-column).
    let mut id_column = None;
    let mut mapping = Vec::with_capacity(header.len());
    for (i, name) in header.iter().enumerate() {
        if name == "id" {
            id_column = Some(i);
            mapping.push(None);
        } else {
            let ci = schema
                .column_index(name)
                .ok_or_else(|| DbError::NoSuchColumn {
                    table: table.to_owned(),
                    column: name.clone(),
                })?;
            mapping.push(Some(ci));
        }
    }
    let mut imported = 0;
    for row in data {
        let mut values = vec![Value::Null; schema.columns.len()];
        for (cell, target) in row.iter().zip(&mapping) {
            let Some(ci) = target else { continue };
            values[*ci] =
                if cell.is_empty() {
                    Value::Null
                } else {
                    match schema.columns[*ci].ty {
                        ColumnType::Integer => {
                            cell.parse::<i64>().map(Value::Int).map_err(|_| {
                                DbError::TypeMismatch {
                                    table: table.to_owned(),
                                    column: schema.columns[*ci].name.clone(),
                                    value: cell.clone(),
                                }
                            })?
                        }
                        ColumnType::Real => cell.parse::<f64>().map(Value::Real).map_err(|_| {
                            DbError::TypeMismatch {
                                table: table.to_owned(),
                                column: schema.columns[*ci].name.clone(),
                                value: cell.clone(),
                            }
                        })?,
                        ColumnType::Text => Value::Text(cell.clone()),
                    }
                };
        }
        match id_column
            .and_then(|i| row.get(i))
            .and_then(|c| c.parse::<i64>().ok())
        {
            Some(id) => db.insert_raw(table, id, values)?,
            None => {
                db.insert(table, values)?;
            }
        }
        imported += 1;
    }
    Ok(imported)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::database::{Column, TableSchema};

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "performances",
                vec![
                    Column::required("command", ColumnType::Text),
                    Column::new("mean", ColumnType::Real),
                    Column::new("tasks", ColumnType::Integer),
                ],
            )
            .with_index("command"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "summaries",
                vec![Column::required("performance_id", ColumnType::Integer)],
            )
            .with_fk("performance_id", "performances"),
        )
        .unwrap();
        let pid = db
            .insert(
                "performances",
                vec![
                    Value::from("ior -b 4m"),
                    Value::from(2850.12),
                    Value::from(80u32),
                ],
            )
            .unwrap();
        db.insert(
            "performances",
            vec![Value::from("ior -b 8m"), Value::Null, Value::Null],
        )
        .unwrap();
        db.insert("summaries", vec![Value::from(pid)]).unwrap();
        db
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let db = sample_db();
        let image = to_json(&db);
        let restored = from_json(&image).unwrap();
        assert_eq!(restored.table_names(), db.table_names());
        for table in db.table_names() {
            let a = db
                .select(table, &Predicate::True, OrderBy::Id, None)
                .unwrap();
            let b = restored
                .select(table, &Predicate::True, OrderBy::Id, None)
                .unwrap();
            assert_eq!(a, b, "table {table} differs");
        }
        // Auto-increment continues past restored ids.
        let mut restored = restored;
        let next = restored
            .insert(
                "performances",
                vec![Value::from("new"), Value::Null, Value::Null],
            )
            .unwrap();
        assert_eq!(next, 3);
    }

    #[test]
    fn int_real_distinction_survives_roundtrip() {
        // Integers are tagged in JSON so Int(2) doesn't come back Real(2.0).
        let db = sample_db();
        let restored = from_json(&to_json(&db)).unwrap();
        let rows = restored
            .select("performances", &Predicate::True, OrderBy::Id, None)
            .unwrap();
        assert_eq!(rows[0].values[2], Value::Int(80));
        assert_eq!(rows[0].values[1], Value::Real(2850.12));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("iokc-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.iokc.json");
        let db = sample_db();
        save(&db, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored.row_count("performances").unwrap(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn csv_export_import_roundtrip() {
        let db = sample_db();
        let csv = export_csv(&db, "performances").unwrap();
        // Import into a fresh database with the same schema.
        let mut fresh = Database::new();
        fresh
            .create_table(
                TableSchema::new(
                    "performances",
                    vec![
                        Column::required("command", ColumnType::Text),
                        Column::new("mean", ColumnType::Real),
                        Column::new("tasks", ColumnType::Integer),
                    ],
                )
                .with_index("command"),
            )
            .unwrap();
        let imported = import_csv(&mut fresh, "performances", &csv).unwrap();
        assert_eq!(imported, 2);
        let original = db
            .select("performances", &Predicate::True, OrderBy::Id, None)
            .unwrap();
        let restored = fresh
            .select("performances", &Predicate::True, OrderBy::Id, None)
            .unwrap();
        // Text/NULL/Int columns round trip exactly; the REAL column too
        // (f64 display → parse is lossless for these values).
        assert_eq!(original.len(), restored.len());
        for (a, b) in original.iter().zip(&restored) {
            assert_eq!(a.id, b.id, "ids preserved");
            assert_eq!(a.values[0], b.values[0]);
            assert_eq!(a.values[2], b.values[2]);
        }
        // Errors: unknown column and bad numeric cell.
        assert!(matches!(
            import_csv(
                &mut fresh,
                "performances",
                "ghost
x
"
            ),
            Err(DbError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            import_csv(
                &mut fresh,
                "performances",
                "tasks
not-a-number
"
            ),
            Err(DbError::TypeMismatch { .. })
        ));
        assert_eq!(import_csv(&mut fresh, "performances", "").unwrap(), 0);
    }

    #[test]
    fn rejects_corrupt_images() {
        assert!(from_json(&Json::Null).is_err());
        assert!(from_json(&Json::obj(vec![("format", Json::from("wrong"))])).is_err());
        let mut good = to_json(&sample_db());
        // Break a row.
        if let Json::Obj(map) = &mut good {
            if let Some(Json::Arr(tables)) = map.get_mut("tables") {
                if let Some(Json::Obj(t)) = tables.first_mut() {
                    t.insert("rows".into(), Json::Arr(vec![Json::Num(5.0)]));
                }
            }
        }
        assert!(from_json(&good).is_err());
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("iokc-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn image_carries_verifiable_checksum() {
        let image = render_image(&sample_db());
        let body = verify_image(&image).unwrap();
        assert!(!body.contains("#iokc-crc64"));
        // Flipping one byte in the body is detected.
        let tampered = image.replacen("performances", "perform4nces", 1);
        assert!(matches!(verify_image(&tampered), Err(DbError::Corrupt(_))));
        // A malformed footer is detected.
        assert!(matches!(
            verify_image("{}\n#iokc-crc64:zz"),
            Err(DbError::Corrupt(_))
        ));
        // Footer-less legacy images pass through unchanged.
        assert_eq!(verify_image("{\"a\": 1}").unwrap(), "{\"a\": 1}");
    }

    #[test]
    fn save_rotates_backup_generation() {
        let dir = scratch_dir("rotate");
        let path = dir.join("kb.json");
        let mut db = sample_db();
        save(&db, &path).unwrap();
        assert!(
            !backup_path(&path).exists(),
            "first save has nothing to rotate"
        );
        db.insert(
            "performances",
            vec![Value::from("ior -b 16m"), Value::Null, Value::Null],
        )
        .unwrap();
        save(&db, &path).unwrap();
        assert!(backup_path(&path).exists());
        // Backup holds the previous generation, primary the new one.
        assert_eq!(load(&path).unwrap().row_count("performances").unwrap(), 3);
        assert_eq!(
            load(&backup_path(&path))
                .unwrap()
                .row_count("performances")
                .unwrap(),
            2
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_detected_and_recovered_from_backup() {
        let dir = scratch_dir("torn");
        let path = dir.join("kb.json");
        let mut db = sample_db();
        save(&db, &path).unwrap();
        db.insert(
            "performances",
            vec![Value::from("ior -b 16m"), Value::Null, Value::Null],
        )
        .unwrap();
        save(&db, &path).unwrap();

        // Tear the primary image in half.
        let full = std::fs::metadata(&path).unwrap().len();
        inject_torn_write(&path, full / 2).unwrap();

        // Plain load reports corruption; recovery falls back to the
        // previous generation.
        assert!(load(&path).is_err());
        let (recovered, report) = load_with_recovery(&path).unwrap();
        assert!(report.recovered_from_backup);
        assert!(report.primary_error.is_some());
        assert_eq!(recovered.row_count("performances").unwrap(), 2);

        // A save after recovery must not rotate the torn image over the
        // good backup.
        save(&recovered, &path).unwrap();
        assert_eq!(
            load(&backup_path(&path))
                .unwrap()
                .row_count("performances")
                .unwrap(),
            2
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_without_backup_reports_the_primary_error() {
        let dir = scratch_dir("nobak");
        let path = dir.join("kb.json");
        save(&sample_db(), &path).unwrap();
        inject_torn_write(&path, 10).unwrap();
        assert!(matches!(
            load_with_recovery(&path),
            Err(DbError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_backup_and_torn_primary_is_an_error() {
        let dir = scratch_dir("bothtorn");
        let path = dir.join("kb.json");
        let db = sample_db();
        save(&db, &path).unwrap();
        save(&db, &path).unwrap();
        inject_torn_write(&path, 7).unwrap();
        inject_torn_write(&backup_path(&path), 7).unwrap();
        let err = load_with_recovery(&path).unwrap_err();
        assert!(err.to_string().contains("backup image unusable"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn documents_roundtrip_with_rotation_and_recovery() {
        let dir = scratch_dir("doc");
        let path = dir.join("manifest.json");
        let vfs = StdVfs;
        let gen1 = Json::obj(vec![("gen", Json::from(1u64))]);
        let gen2 = Json::obj(vec![("gen", Json::from(2u64))]);
        write_document_vfs(&path, &vfs, &gen1).unwrap();
        assert_eq!(
            read_document_vfs(&path, &vfs).unwrap().get("gen"),
            Some(&Json::Num(1.0))
        );
        write_document_vfs(&path, &vfs, &gen2).unwrap();
        // Tear the primary: recovery falls back to generation 1.
        let len = std::fs::metadata(&path).unwrap().len();
        inject_torn_write(&path, len / 2).unwrap();
        assert!(read_document_vfs(&path, &vfs).is_err());
        let (doc, report) = read_document_with_recovery_vfs(&path, &vfs).unwrap();
        assert!(report.recovered_from_backup);
        assert_eq!(doc.get("gen"), Some(&Json::Num(1.0)));
        // A further write must not rotate the torn primary over the backup.
        write_document_vfs(&path, &vfs, &gen2).unwrap();
        assert_eq!(
            read_document_vfs(&backup_path(&path), &vfs)
                .unwrap()
                .get("gen"),
            Some(&Json::Num(1.0))
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_image_restores_forwarded_counters() {
        // A segmented active image holds a slice of the corpus but the
        // full auto-increment state: ids must not be reissued.
        let db = sample_db();
        let mut json = to_json(&db);
        if let Json::Obj(map) = &mut json {
            if let Some(Json::Obj(next_ids)) = map.get_mut("next_ids") {
                next_ids.insert("performances".into(), Json::from(100u64));
            }
        }
        let mut restored = from_json(&json).unwrap();
        let next = restored
            .insert(
                "performances",
                vec![Value::from("new"), Value::Null, Value::Null],
            )
            .unwrap();
        assert_eq!(next, 100);
    }

    #[test]
    fn csv_export_contains_rows() {
        let db = sample_db();
        let csv = export_csv(&db, "performances").unwrap();
        let rows = iokc_util::table::parse_csv(&csv);
        assert_eq!(rows[0], vec!["id", "command", "mean", "tasks"]);
        assert_eq!(rows[1][1], "ior -b 4m");
        assert_eq!(rows[2][2], "", "NULL exports as empty cell");
        assert!(export_csv(&db, "nope").is_err());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn arbitrary_rows_roundtrip(
                rows in proptest::collection::vec(
                    ("[a-z ]{0,20}", proptest::option::of(-1e9f64..1e9), proptest::option::of(any::<i32>())),
                    0..30
                )
            ) {
                let mut db = Database::new();
                db.create_table(TableSchema::new(
                    "t",
                    vec![
                        Column::new("a", ColumnType::Text),
                        Column::new("b", ColumnType::Real),
                        Column::new("c", ColumnType::Integer),
                    ],
                )).unwrap();
                for (a, b, c) in &rows {
                    db.insert("t", vec![
                        Value::from(a.as_str()),
                        b.map(Value::Real).unwrap_or(Value::Null),
                        c.map(|v| Value::Int(i64::from(v))).unwrap_or(Value::Null),
                    ]).unwrap();
                }
                let restored = from_json(&to_json(&db)).unwrap();
                let a = db.select("t", &Predicate::True, OrderBy::Id, None).unwrap();
                let b = restored.select("t", &Predicate::True, OrderBy::Id, None).unwrap();
                prop_assert_eq!(a, b);
            }
        }

        fn stored_commands(db: &Database) -> Vec<String> {
            db.select("performances", &Predicate::True, OrderBy::Id, None)
                .unwrap()
                .iter()
                .map(|row| row.values[0].to_string())
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn truncation_recovers_a_generation_or_reports_corruption(
                commands in proptest::collection::vec("[a-z ]{1,16}", 1..6),
                fraction in 0f64..1f64
            ) {
                use std::sync::atomic::{AtomicU32, Ordering};
                static CASE: AtomicU32 = AtomicU32::new(0);
                let dir = scratch_dir(&format!("prop-torn-{}", CASE.fetch_add(1, Ordering::Relaxed)));
                let path = dir.join("kb.json");

                // Generation 1: the given rows. Generation 2: one more.
                let mut db = Database::new();
                db.create_table(TableSchema::new(
                    "performances",
                    vec![Column::required("command", ColumnType::Text)],
                )).unwrap();
                for c in &commands {
                    db.insert("performances", vec![Value::from(c.as_str())]).unwrap();
                }
                save(&db, &path).unwrap();
                let generation1 = stored_commands(&db);
                db.insert("performances", vec![Value::from("generation-two-extra")]).unwrap();
                save(&db, &path).unwrap();
                let generation2 = stored_commands(&db);

                // Tear the primary image at an arbitrary byte offset.
                let len = std::fs::metadata(&path).unwrap().len();
                let keep = ((len as f64) * fraction) as u64;
                inject_torn_write(&path, keep).unwrap();

                // Whatever happens, the loaded data must be *a* complete
                // generation — never a silently truncated mixture.
                match load_with_recovery(&path) {
                    Ok((loaded, report)) => {
                        let rows = stored_commands(&loaded);
                        if report.recovered_from_backup {
                            prop_assert_eq!(rows, generation1);
                        } else {
                            prop_assert_eq!(rows, generation2);
                        }
                    }
                    Err(DbError::Corrupt(_)) => {}
                    Err(other) => prop_assert!(false, "unexpected error {other:?}"),
                }
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
    }
}
