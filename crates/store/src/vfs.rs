//! A virtual filesystem under every store file operation.
//!
//! Persistence code that talks to `std::fs` directly can only be tested
//! against the failures a developer's laptop happens to produce. The
//! [`Vfs`] trait routes every read, write, fsync, rename and truncate
//! through one seam so the same save/load/journal code runs over:
//!
//! * [`StdVfs`] — the real filesystem, used in production; and
//! * [`FaultVfs`] — a deterministic in-memory filesystem that injects
//!   ENOSPC, EIO, short writes, fsync failures and power-loss crash
//!   points according to a reproducible [`FaultPlan`], while tracking
//!   which bytes a real disk would actually guarantee after a crash.
//!
//! # The durability model
//!
//! [`FaultVfs`] keeps two images of every file: the *volatile* content
//! (what the running process observes) and the *durable* content (what
//! the disk promises to still hold after power loss). Writes land in
//! the volatile image only; a successful `sync` on a file handle
//! promotes that file's volatile content to durable. Renames apply to
//! the volatile namespace immediately but are queued as *pending
//! metadata operations* until [`Vfs::sync_parent_dir`] commits them —
//! exactly the window in which a crashed POSIX system may expose either
//! the old or the new directory entry.
//!
//! After a simulated crash, [`FaultVfs::crash_states`] enumerates the
//! disk images a real machine could reboot into: the durable map with
//! any *prefix* of the pending renames applied (journaling filesystems
//! preserve metadata ordering), and — for each file written since its
//! last successful fsync — variants where that file surfaces with its
//! durable content, a torn prefix, or its full unsynced content (the
//! page cache may have flushed it anyway). Enumeration varies one dirty
//! file at a time and is capped, which bounds the state count while
//! still covering every single-fault outcome.

use iokc_obs::Counter;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// An open writable file handle, abstracted over the backing store.
pub trait VfsFile: Send {
    /// Append `data` to the file (handles are append-ordered: `create`
    /// handles start at offset zero, `append` handles at the end).
    fn write_all(&mut self, data: &[u8]) -> io::Result<()>;
    /// Make everything written through this handle durable (fsync).
    fn sync(&mut self) -> io::Result<()>;
}

/// The filesystem operations the store's persistence layer needs.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create (or truncate) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open (creating if absent) a file for appending.
    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Whether a file exists.
    fn exists(&self, path: &Path) -> bool;
    /// Current length of a file in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;
    /// Truncate a file to `len` bytes and make the truncation durable.
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Atomically rename `from` onto `to` (replacing any existing `to`).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Durability barrier for renames in `path`'s parent directory.
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()>;
    /// Route injected-fault counts into an observability counter
    /// (`store.faults_injected`). A no-op for real filesystems.
    fn attach_fault_counter(&self, _counter: Counter) {}
    /// How many faults this VFS has injected so far (always zero for
    /// real filesystems).
    fn faults_injected(&self) -> u64 {
        0
    }
}

/// The production VFS: a thin veneer over `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

struct StdFile(std::fs::File);

impl VfsFile for StdFile {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(std::fs::File::create(path)?)))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        // Best-effort: not every platform allows opening a directory
        // for sync, and rename durability is already the common case on
        // journaling filesystems.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(handle) = std::fs::File::open(dir) {
                let _ = handle.sync_all();
            }
        }
        Ok(())
    }
}

/// A reproducible fault schedule for [`FaultVfs`].
///
/// Faults are keyed by the VFS's global *operation counter* — every
/// mutating call (create, write, sync, rename, truncate, remove,
/// directory sync) increments it by one — and by the *sync counter*,
/// which counts only durability barriers. Keying by position makes a
/// plan deterministic: the same plan over the same workload injects the
/// same faults at the same instants, every run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Operations that fail with `ErrorKind::StorageFull` (ENOSPC).
    pub enospc_ops: BTreeSet<u64>,
    /// Operations that fail with an EIO-style error.
    pub eio_ops: BTreeSet<u64>,
    /// Write operations that tear: half the payload lands, then the
    /// write reports `ErrorKind::WriteZero`.
    pub short_write_ops: BTreeSet<u64>,
    /// Sync operations (by sync counter) that fail with EIO without
    /// advancing durability.
    pub fail_syncs: BTreeSet<u64>,
    /// Power loss when the operation counter reaches this value; every
    /// operation from there on fails.
    pub crash_at_op: Option<u64>,
    /// Power loss at the nth durability barrier (file or directory
    /// sync), counted from zero.
    pub crash_at_sync: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing — [`FaultVfs`] degenerates to a
    /// faithful in-memory filesystem.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Power loss when the global operation counter reaches `op`.
    #[must_use]
    pub fn crash_at_op(op: u64) -> FaultPlan {
        FaultPlan {
            crash_at_op: Some(op),
            ..FaultPlan::default()
        }
    }

    /// Power loss at the nth fsync/dir-sync boundary.
    #[must_use]
    pub fn crash_at_fsync(n: u64) -> FaultPlan {
        FaultPlan {
            crash_at_sync: Some(n),
            ..FaultPlan::default()
        }
    }

    /// ENOSPC on operation `op`.
    #[must_use]
    pub fn enospc_at(op: u64) -> FaultPlan {
        FaultPlan {
            enospc_ops: BTreeSet::from([op]),
            ..FaultPlan::default()
        }
    }

    /// EIO on operation `op`.
    #[must_use]
    pub fn eio_at(op: u64) -> FaultPlan {
        FaultPlan {
            eio_ops: BTreeSet::from([op]),
            ..FaultPlan::default()
        }
    }

    /// Short (torn) write on operation `op`.
    #[must_use]
    pub fn short_write_at(op: u64) -> FaultPlan {
        FaultPlan {
            short_write_ops: BTreeSet::from([op]),
            ..FaultPlan::default()
        }
    }

    /// Failed fsync at sync counter `n` (durability does not advance).
    #[must_use]
    pub fn fail_fsync(n: u64) -> FaultPlan {
        FaultPlan {
            fail_syncs: BTreeSet::from([n]),
            ..FaultPlan::default()
        }
    }

    /// A seeded chaos plan: `faults` distinct ENOSPC/EIO/short-write
    /// injections spread deterministically over the first `horizon`
    /// operations. The same seed always yields the same plan, so a
    /// failing chaos run reproduces from its seed alone.
    #[must_use]
    pub fn seeded_chaos(seed: u64, horizon: u64, faults: usize) -> FaultPlan {
        let mut plan = FaultPlan::default();
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64* — deterministic, dependency-free.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut placed = 0usize;
        while placed < faults && horizon > 0 {
            let op = next() % horizon;
            let bucket = next() % 3;
            let inserted = match bucket {
                0 => plan.enospc_ops.insert(op),
                1 => plan.eio_ops.insert(op),
                _ => plan.short_write_ops.insert(op),
            };
            if inserted {
                placed += 1;
            }
        }
        plan
    }
}

/// The volatile image of one file: its current bytes plus how many of
/// them were covered by the last successful fsync. Bytes past
/// `synced_len` are the ones a crash may tear or lose; bytes before it
/// are pinned (the store only ever appends between fsyncs, never
/// overwrites in place).
#[derive(Debug, Default, Clone)]
struct FileNode {
    bytes: Vec<u8>,
    synced_len: usize,
}

impl FileNode {
    fn dirty(&self) -> bool {
        self.bytes.len() != self.synced_len
    }
}

/// One file in the simulated filesystem is described by two byte
/// images; `Inner` keys both by path.
#[derive(Debug, Default)]
struct Inner {
    /// What the running process observes.
    volatile: BTreeMap<PathBuf, FileNode>,
    /// What the disk guarantees to still hold after power loss.
    durable: BTreeMap<PathBuf, Vec<u8>>,
    /// Renames applied to the volatile namespace but not yet committed
    /// by a directory sync, in application order.
    pending_renames: Vec<(PathBuf, PathBuf)>,
    /// Global mutating-operation counter.
    ops: u64,
    /// Durability-barrier counter.
    syncs: u64,
    /// Power has been lost: every further operation fails.
    crashed: bool,
    /// Faults injected so far.
    faults: u64,
    /// Observability handle for `store.faults_injected`.
    counter: Option<Counter>,
}

impl Inner {
    fn fault(&mut self) {
        self.faults += 1;
        if let Some(counter) = &self.counter {
            counter.inc();
        }
    }

    /// Account one mutating operation and apply any op-keyed fault.
    fn begin_op(&mut self, plan: &FaultPlan) -> Result<u64, io::Error> {
        if self.crashed {
            return Err(crash_error());
        }
        let op = self.ops;
        self.ops += 1;
        if plan.crash_at_op == Some(op) {
            self.crashed = true;
            self.fault();
            return Err(crash_error());
        }
        if plan.eio_ops.contains(&op) {
            self.fault();
            return Err(io::Error::other("injected EIO"));
        }
        if plan.enospc_ops.contains(&op) {
            self.fault();
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            ));
        }
        Ok(op)
    }

    /// Account one durability barrier and apply any sync-keyed fault.
    fn begin_sync(&mut self, plan: &FaultPlan) -> Result<(), io::Error> {
        let sync = self.syncs;
        self.syncs += 1;
        if plan.crash_at_sync == Some(sync) {
            self.crashed = true;
            self.fault();
            return Err(crash_error());
        }
        if plan.fail_syncs.contains(&sync) {
            self.fault();
            return Err(io::Error::other("injected fsync failure"));
        }
        Ok(())
    }
}

fn crash_error() -> io::Error {
    io::Error::other("simulated power loss")
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("{}: no such file", path.display()),
    )
}

/// A deterministic in-memory filesystem with fault injection and
/// crash-state tracking. See the module docs for the durability model.
#[derive(Debug)]
pub struct FaultVfs {
    plan: FaultPlan,
    inner: Arc<Mutex<Inner>>,
}

impl FaultVfs {
    /// An empty filesystem executing `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> FaultVfs {
        FaultVfs {
            plan,
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// An empty filesystem with no faults — a faithful in-memory FS.
    #[must_use]
    pub fn pristine() -> FaultVfs {
        FaultVfs::new(FaultPlan::none())
    }

    /// A filesystem booted from a post-crash disk image (as produced by
    /// [`FaultVfs::crash_states`]), with no faults planned: volatile and
    /// durable views start identical, like a freshly mounted disk.
    #[must_use]
    pub fn from_state(state: BTreeMap<PathBuf, Vec<u8>>) -> FaultVfs {
        let vfs = FaultVfs::pristine();
        {
            let mut inner = vfs.lock();
            inner.volatile = state
                .iter()
                .map(|(path, bytes)| {
                    (
                        path.clone(),
                        FileNode {
                            bytes: bytes.clone(),
                            synced_len: bytes.len(),
                        },
                    )
                })
                .collect();
            inner.durable = state;
        }
        vfs
    }

    /// [`FaultVfs::from_state`], but executing `plan` — for
    /// retry-after-failure scenarios over a recovered disk image.
    #[must_use]
    pub fn from_state_with_plan(state: BTreeMap<PathBuf, Vec<u8>>, plan: FaultPlan) -> FaultVfs {
        let mut vfs = FaultVfs::from_state(state);
        vfs.plan = plan;
        vfs
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Total mutating operations performed so far.
    #[must_use]
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// Total durability barriers performed so far.
    #[must_use]
    pub fn sync_count(&self) -> u64 {
        self.lock().syncs
    }

    /// Whether a planned power loss has triggered.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// The conservative post-crash image: only bytes durable at the
    /// last successful fsync, with no pending rename committed.
    #[must_use]
    pub fn durable_state(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        self.lock().durable.clone()
    }

    /// Every disk image a reboot could expose, bounded: each prefix of
    /// the pending renames, optionally combined with one dirty file
    /// surfacing as a torn half-prefix or as its full unsynced content.
    #[must_use]
    pub fn crash_states(&self) -> Vec<BTreeMap<PathBuf, Vec<u8>>> {
        const MAX_STATES: usize = 64;
        let inner = self.lock();
        let mut states = BTreeSet::new();
        for applied in 0..=inner.pending_renames.len() {
            let mut base = inner.durable.clone();
            for (from, to) in &inner.pending_renames[..applied] {
                if let Some(bytes) = base.remove(from) {
                    base.insert(to.clone(), bytes);
                }
            }
            states.insert(base.clone());
            // One dirty file at a time: surface its unsynced suffix
            // torn in half or fully flushed. (The base state already
            // covers "fully lost"; bytes under `synced_len` are pinned,
            // the store never overwrites them between fsyncs.)
            for (path, node) in &inner.volatile {
                if !node.dirty() {
                    continue;
                }
                let suffix = node.bytes.len() - node.synced_len;
                let mut torn = base.clone();
                torn.insert(
                    path.clone(),
                    node.bytes[..node.synced_len + suffix / 2].to_vec(),
                );
                states.insert(torn);
                let mut full = base.clone();
                full.insert(path.clone(), node.bytes.clone());
                states.insert(full);
                if states.len() >= MAX_STATES {
                    return states.into_iter().collect();
                }
            }
        }
        states.into_iter().collect()
    }
}

/// A handle into the simulated filesystem. Writes append to the file's
/// volatile image; `sync` promotes it to durable.
struct FaultFile {
    path: PathBuf,
    plan: FaultPlan,
    inner: Arc<Mutex<Inner>>,
}

impl FaultFile {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        let mut inner = self.lock();
        let op = inner.begin_op(&self.plan)?;
        if self.plan.short_write_ops.contains(&op) {
            let half = &data[..data.len() / 2];
            let node = inner.volatile.entry(self.path.clone()).or_default();
            node.bytes.extend_from_slice(half);
            inner.fault();
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write",
            ));
        }
        inner
            .volatile
            .entry(self.path.clone())
            .or_default()
            .bytes
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut inner = self.lock();
        inner.begin_op(&self.plan)?;
        inner.begin_sync(&self.plan)?;
        let bytes = match inner.volatile.get_mut(&self.path) {
            Some(node) => {
                node.synced_len = node.bytes.len();
                node.bytes.clone()
            }
            None => Vec::new(),
        };
        inner.durable.insert(self.path.clone(), bytes);
        Ok(())
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let inner = self.lock();
        if inner.crashed {
            return Err(crash_error());
        }
        inner
            .volatile
            .get(path)
            .map(|node| node.bytes.clone())
            .ok_or_else(|| not_found(path))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut inner = self.lock();
        inner.begin_op(&self.plan)?;
        inner
            .volatile
            .insert(path.to_path_buf(), FileNode::default());
        Ok(Box::new(FaultFile {
            path: path.to_path_buf(),
            plan: self.plan.clone(),
            inner: Arc::clone(&self.inner),
        }))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut inner = self.lock();
        inner.begin_op(&self.plan)?;
        inner.volatile.entry(path.to_path_buf()).or_default();
        Ok(Box::new(FaultFile {
            path: path.to_path_buf(),
            plan: self.plan.clone(),
            inner: Arc::clone(&self.inner),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        let inner = self.lock();
        !inner.crashed && inner.volatile.contains_key(path)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        let inner = self.lock();
        if inner.crashed {
            return Err(crash_error());
        }
        inner
            .volatile
            .get(path)
            .map(|node| node.bytes.len() as u64)
            .ok_or_else(|| not_found(path))
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut inner = self.lock();
        inner.begin_op(&self.plan)?;
        let Some(node) = inner.volatile.get_mut(path) else {
            return Err(not_found(path));
        };
        node.bytes.truncate(len as usize);
        // `StdVfs::set_len` syncs the truncation; mirror that.
        inner.begin_sync(&self.plan)?;
        let bytes = match inner.volatile.get_mut(path) {
            Some(node) => {
                node.synced_len = node.bytes.len();
                node.bytes.clone()
            }
            None => Vec::new(),
        };
        inner.durable.insert(path.to_path_buf(), bytes);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        inner.begin_op(&self.plan)?;
        let Some(node) = inner.volatile.remove(from) else {
            return Err(not_found(from));
        };
        inner.volatile.insert(to.to_path_buf(), node);
        inner
            .pending_renames
            .push((from.to_path_buf(), to.to_path_buf()));
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        inner.begin_op(&self.plan)?;
        if inner.volatile.remove(path).is_none() {
            return Err(not_found(path));
        }
        // Model the unlink as immediately durable (conservative for the
        // fsck-repair flows that use it; nothing in the save path does).
        inner.durable.remove(path);
        inner.pending_renames.retain(|(from, _)| from != path);
        Ok(())
    }

    fn sync_parent_dir(&self, _path: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        inner.begin_op(&self.plan)?;
        inner.begin_sync(&self.plan)?;
        let pending = std::mem::take(&mut inner.pending_renames);
        for (from, to) in pending {
            if let Some(bytes) = inner.durable.remove(&from) {
                inner.durable.insert(to, bytes);
            } else {
                inner.durable.remove(&to);
            }
        }
        Ok(())
    }

    fn attach_fault_counter(&self, counter: Counter) {
        let mut inner = self.lock();
        // Backfill faults injected before the recorder was attached.
        let seen = counter.get();
        if inner.faults > seen {
            counter.add(inner.faults - seen);
        }
        inner.counter = Some(counter);
    }

    fn faults_injected(&self) -> u64 {
        self.lock().faults
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathBuf {
        PathBuf::from(name)
    }

    #[test]
    fn writes_are_volatile_until_synced() {
        let vfs = FaultVfs::pristine();
        let mut file = vfs.create(&p("a")).unwrap();
        file.write_all(b"hello").unwrap();
        assert_eq!(vfs.read(&p("a")).unwrap(), b"hello");
        assert!(vfs.durable_state().is_empty(), "no fsync yet");
        file.sync().unwrap();
        assert_eq!(vfs.durable_state().get(&p("a")).unwrap(), b"hello");
    }

    #[test]
    fn renames_are_pending_until_dir_sync() {
        let vfs = FaultVfs::pristine();
        let mut file = vfs.create(&p("a.tmp")).unwrap();
        file.write_all(b"x").unwrap();
        file.sync().unwrap();
        vfs.rename(&p("a.tmp"), &p("a")).unwrap();
        // Volatile view sees the new name; durable still the old.
        assert!(vfs.exists(&p("a")));
        assert!(!vfs.exists(&p("a.tmp")));
        assert!(vfs.durable_state().contains_key(&p("a.tmp")));
        // The crash states cover both orders.
        let states = vfs.crash_states();
        assert!(states.iter().any(|s| s.contains_key(&p("a.tmp"))));
        assert!(states.iter().any(|s| s.contains_key(&p("a"))));
        vfs.sync_parent_dir(&p("a")).unwrap();
        assert!(vfs.durable_state().contains_key(&p("a")));
        assert!(!vfs.durable_state().contains_key(&p("a.tmp")));
    }

    #[test]
    fn enospc_and_short_writes_inject_their_error_kinds() {
        // Op 0 is the create; op 1 the first write.
        let vfs = FaultVfs::new(FaultPlan::enospc_at(1));
        let mut file = vfs.create(&p("a")).unwrap();
        let err = file.write_all(b"data").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(vfs.faults_injected(), 1);

        let vfs = FaultVfs::new(FaultPlan::short_write_at(1));
        let mut file = vfs.create(&p("a")).unwrap();
        let err = file.write_all(b"data").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(vfs.read(&p("a")).unwrap(), b"da", "half landed");
    }

    #[test]
    fn failed_fsync_does_not_advance_durability() {
        let vfs = FaultVfs::new(FaultPlan::fail_fsync(0));
        let mut file = vfs.create(&p("a")).unwrap();
        file.write_all(b"hello").unwrap();
        assert!(file.sync().is_err());
        assert!(vfs.durable_state().is_empty());
        // The next sync succeeds and promotes the content.
        file.sync().unwrap();
        assert_eq!(vfs.durable_state().get(&p("a")).unwrap(), b"hello");
    }

    #[test]
    fn crash_fails_every_later_operation() {
        let vfs = FaultVfs::new(FaultPlan::crash_at_op(2));
        let mut file = vfs.create(&p("a")).unwrap(); // op 0
        file.write_all(b"x").unwrap(); // op 1
        assert!(file.write_all(b"y").is_err()); // op 2: crash
        assert!(vfs.crashed());
        assert!(file.sync().is_err());
        assert!(vfs.create(&p("b")).is_err());
        assert!(vfs.read(&p("a")).is_err());
    }

    #[test]
    fn crash_states_cover_torn_and_flushed_variants() {
        let vfs = FaultVfs::pristine();
        let mut file = vfs.create(&p("a")).unwrap();
        file.write_all(b"durable!").unwrap();
        file.sync().unwrap();
        file.write_all(b" plus unsynced").unwrap();
        let states = vfs.crash_states();
        let images: BTreeSet<Vec<u8>> = states
            .iter()
            .filter_map(|s| s.get(&p("a")).cloned())
            .collect();
        assert!(images.contains(b"durable!".as_slice()), "durable-only");
        assert!(
            images.contains(b"durable! plus unsynced".as_slice()),
            "fully flushed"
        );
        assert_eq!(images.len(), 3, "plus exactly one torn prefix");
    }

    #[test]
    fn seeded_chaos_plans_are_reproducible() {
        let a = FaultPlan::seeded_chaos(7, 100, 5);
        let b = FaultPlan::seeded_chaos(7, 100, 5);
        assert_eq!(a, b);
        let c = FaultPlan::seeded_chaos(8, 100, 5);
        assert_ne!(a, c, "different seed, different plan");
        let total = a.enospc_ops.len() + a.eio_ops.len() + a.short_write_ops.len();
        assert_eq!(total, 5);
    }

    #[test]
    fn from_state_round_trips_a_disk_image() {
        let state = BTreeMap::from([(p("kb.json"), b"content".to_vec())]);
        let vfs = FaultVfs::from_state(state);
        assert_eq!(vfs.read(&p("kb.json")).unwrap(), b"content");
        assert_eq!(vfs.durable_state().get(&p("kb.json")).unwrap(), b"content");
    }
}
