//! `iokc-store` — the knowledge persistence phase (§V-C).
//!
//! A from-scratch embedded relational engine standing in for SQLite:
//! typed columns, auto-increment rowids, NOT NULL / foreign-key
//! constraints, secondary indexes, predicate queries, a small SQL
//! dialect (the DB-API 2.0 face), deterministic JSON images on disk, and
//! CSV export. [`KnowledgeStore`] binds the paper's exact schema —
//! `performances`, `summaries`, `results`, `filesystems` plus the IO500
//! `IOFHs*` tables — and implements [`iokc_core::Persister`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod aggregate;
pub mod compaction;
pub mod database;
pub mod fsck;
pub mod journal;
pub mod knowledge_store;
pub mod persist;
pub mod query;
pub mod segment;
pub mod sql;
pub mod value;
pub mod vfs;

pub use aggregate::{
    AggregateQuery, AggregateResult, CorrelationMatrix, Factor, GroupBy, GroupStats,
    DEFAULT_PERCENTILES,
};
pub use compaction::{CompactionPlan, CompactionReport};
pub use database::{
    Column, Database, DbError, ForeignKey, OrderBy, Predicate, Row, SelectStats, TableSchema,
};
pub use fsck::{fsck, FsckFinding, FsckOptions, FsckReport};
pub use iokc_obs::DeadlineToken;
pub use journal::{
    read_journal, truncate_torn_tail, GroupJournal, JournalEventSink, JournalReadReport,
    JournalWriter,
};
pub use knowledge_store::{KnowledgeStore, Snapshot, StoreHealth};
pub use persist::{classify_io_error, export_csv, import_csv, load, save};
pub use query::{OpStat, Query, RunKind, RunOrder, RunPredicate, RunRef, RunSummary};
pub use segment::{Segment, SegmentMeta};
pub use value::{ColumnType, Value};
pub use vfs::{FaultPlan, FaultVfs, StdVfs, Vfs, VfsFile};
