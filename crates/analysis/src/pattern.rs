//! I/O pattern analysis (§IV use case).
//!
//! "A deep understanding of the I/O pattern helps to better exploit
//! resources as well as improve the requirements for HPC storage
//! resources" — this module classifies a run's access pattern from its
//! Darshan counters: sequentiality, dominant access size, read/write mix
//! and metadata intensity, and names the pattern in the vocabulary HPC
//! I/O studies use (checkpoint-style, scan-style, metadata-bound, …).

use iokc_darshan::{DarshanLog, Module};

/// Direction mix of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// ≥ 80% of bytes written.
    WriteHeavy,
    /// ≥ 80% of bytes read.
    ReadHeavy,
    /// Anything in between.
    Mixed,
}

/// Spatial locality of accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// ≥ 75% of accesses consecutive to the previous one.
    Sequential,
    /// ≥ 75% sequential-or-forward.
    MostlyForward,
    /// Everything else.
    Scattered,
}

/// Dominant transfer size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// Most accesses below 100 KiB.
    Small,
    /// Most accesses in 100 KiB – 4 MiB.
    Medium,
    /// Most accesses above 4 MiB.
    Large,
}

/// The classified pattern of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct IoPatternProfile {
    /// Byte-direction mix.
    pub direction: Direction,
    /// Access locality.
    pub locality: Locality,
    /// Dominant access size.
    pub size_class: SizeClass,
    /// Metadata ops (opens+stats+fsyncs) per data op; ≥ 1.0 is
    /// metadata-bound territory.
    pub metadata_intensity: f64,
    /// Distinct files touched.
    pub files: usize,
    /// Human-readable pattern name.
    pub label: String,
}

/// Classify a Darshan log's POSIX-level pattern. Returns `None` when the
/// log has no data operations at all (a pure metadata run still
/// classifies — with `metadata_intensity = ∞` represented as `f64::MAX`).
#[must_use]
pub fn classify(log: &DarshanLog) -> Option<IoPatternProfile> {
    let m = Module::Posix;
    let reads = log.total_counter(m, "POSIX_READS").max(0) as f64;
    let writes = log.total_counter(m, "POSIX_WRITES").max(0) as f64;
    let bytes_read = log.total_counter(m, "POSIX_BYTES_READ").max(0) as f64;
    let bytes_written = log.total_counter(m, "POSIX_BYTES_WRITTEN").max(0) as f64;
    let opens = log.total_counter(m, "POSIX_OPENS").max(0) as f64;
    let stats = log.total_counter(m, "POSIX_STATS").max(0) as f64;
    let fsyncs = log.total_counter(m, "POSIX_FSYNCS").max(0) as f64;
    let data_ops = reads + writes;
    let meta_ops = opens + stats + fsyncs;
    if data_ops == 0.0 && meta_ops == 0.0 {
        return None;
    }

    let total_bytes = bytes_read + bytes_written;
    let direction = if total_bytes == 0.0 {
        Direction::Mixed
    } else if bytes_written / total_bytes >= 0.8 {
        Direction::WriteHeavy
    } else if bytes_read / total_bytes >= 0.8 {
        Direction::ReadHeavy
    } else {
        Direction::Mixed
    };

    let consec = (log.total_counter(m, "POSIX_CONSEC_READS")
        + log.total_counter(m, "POSIX_CONSEC_WRITES"))
    .max(0) as f64;
    let seq = (log.total_counter(m, "POSIX_SEQ_READS") + log.total_counter(m, "POSIX_SEQ_WRITES"))
        .max(0) as f64;
    let locality = if data_ops == 0.0 {
        Locality::Scattered
    } else if consec / data_ops >= 0.75 {
        Locality::Sequential
    } else if seq / data_ops >= 0.75 {
        Locality::MostlyForward
    } else {
        Locality::Scattered
    };

    // Histogram mass per size class (read + write buckets combined).
    let bucket = |name: &str| log.total_counter(m, name).max(0) as f64;
    let small = bucket("POSIX_SIZE_READ_0_100")
        + bucket("POSIX_SIZE_READ_100_1K")
        + bucket("POSIX_SIZE_READ_1K_10K")
        + bucket("POSIX_SIZE_READ_10K_100K")
        + bucket("POSIX_SIZE_WRITE_0_100")
        + bucket("POSIX_SIZE_WRITE_100_1K")
        + bucket("POSIX_SIZE_WRITE_1K_10K")
        + bucket("POSIX_SIZE_WRITE_10K_100K");
    let medium = bucket("POSIX_SIZE_READ_100K_1M")
        + bucket("POSIX_SIZE_READ_1M_4M")
        + bucket("POSIX_SIZE_WRITE_100K_1M")
        + bucket("POSIX_SIZE_WRITE_1M_4M");
    let large = bucket("POSIX_SIZE_READ_4M_10M")
        + bucket("POSIX_SIZE_READ_10M_PLUS")
        + bucket("POSIX_SIZE_WRITE_4M_10M")
        + bucket("POSIX_SIZE_WRITE_10M_PLUS");
    let size_class = if large >= medium && large >= small {
        SizeClass::Large
    } else if medium >= small {
        SizeClass::Medium
    } else {
        SizeClass::Small
    };

    let metadata_intensity = if data_ops == 0.0 {
        f64::MAX
    } else {
        meta_ops / data_ops
    };
    let files = log.names.len();

    let label = match (direction, locality, size_class) {
        _ if metadata_intensity >= 1.0 => "metadata-bound (mdtest-style)",
        (
            Direction::WriteHeavy,
            Locality::Sequential | Locality::MostlyForward,
            SizeClass::Large | SizeClass::Medium,
        ) => "checkpoint-style sequential write",
        (
            Direction::ReadHeavy,
            Locality::Sequential | Locality::MostlyForward,
            SizeClass::Large | SizeClass::Medium,
        ) => "restart/scan-style sequential read",
        (_, Locality::Scattered, SizeClass::Small) => "random small-access (ior-hard-style)",
        (Direction::Mixed, _, _) => "mixed read/write workload",
        (_, _, SizeClass::Small) => "small-access stream",
        _ => "bulk-transfer workload",
    }
    .to_owned();

    Some(IoPatternProfile {
        direction,
        locality,
        size_class,
        metadata_intensity,
        files,
        label,
    })
}

/// Render the profile as a short report for the explorer.
#[must_use]
pub fn render_profile(profile: &IoPatternProfile) -> String {
    format!(
        "I/O pattern : {}\n\
         direction   : {:?}\n\
         locality    : {:?}\n\
         access size : {:?}\n\
         metadata    : {:.2} meta-ops per data-op\n\
         files       : {}\n",
        profile.label,
        profile.direction,
        profile.locality,
        profile.size_class,
        profile.metadata_intensity,
        profile.files
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_darshan::LogBuilder;

    #[test]
    fn checkpoint_pattern_detected() {
        let mut b = LogBuilder::new(1, 4, "hacc", false);
        for rank in 0..4 {
            let path = format!("/scratch/ckpt.{rank}");
            b.open(Module::Posix, &path, rank, 0.0, 0.01);
            for i in 0..8u64 {
                b.transfer(&path, rank, true, i * (8 << 20), 8 << 20, 0.1, 0.2, None);
            }
            b.close(Module::Posix, &path, rank, 0.9, 0.91);
        }
        let profile = classify(&b.finish()).unwrap();
        assert_eq!(profile.direction, Direction::WriteHeavy);
        assert_eq!(profile.locality, Locality::Sequential);
        assert_eq!(profile.size_class, SizeClass::Large);
        assert_eq!(profile.label, "checkpoint-style sequential write");
        assert_eq!(profile.files, 4);
        assert!(profile.metadata_intensity < 0.2);
    }

    #[test]
    fn random_small_pattern_detected() {
        let mut b = LogBuilder::new(1, 2, "ior-hard", false);
        // Interleaved strided 47008-byte writes: forward but never
        // consecutive, and with gaps (rank writes every second slot).
        for i in 0..32u64 {
            let offset = i * 2 * 47_008;
            b.transfer("/scratch/shared", 0, true, offset, 47_008, 0.1, 0.2, None);
        }
        // And a scattered read-back from the other rank.
        for i in (0..32u64).rev() {
            b.transfer(
                "/scratch/shared",
                1,
                false,
                i * 2 * 47_008,
                47_008,
                0.3,
                0.4,
                None,
            );
        }
        let profile = classify(&b.finish()).unwrap();
        assert_eq!(profile.size_class, SizeClass::Small);
        assert_ne!(profile.locality, Locality::Sequential);
    }

    #[test]
    fn metadata_bound_detected() {
        let mut b = LogBuilder::new(1, 4, "mdtest", false);
        for i in 0..100 {
            let path = format!("/scratch/md/f{i}");
            b.open(Module::Posix, &path, 0, 0.0, 0.001);
            b.meta(&path, 0, iokc_darshan::MetaKind::Stat, 0.002, 0.003);
            b.close(Module::Posix, &path, 0, 0.004, 0.005);
        }
        let profile = classify(&b.finish()).unwrap();
        assert!(profile.metadata_intensity >= 1.0);
        assert_eq!(profile.label, "metadata-bound (mdtest-style)");
    }

    #[test]
    fn read_heavy_scan_detected() {
        let mut b = LogBuilder::new(1, 1, "scan", false);
        for i in 0..16u64 {
            b.transfer(
                "/data/input",
                0,
                false,
                i * (1 << 20),
                1 << 20,
                0.0,
                0.1,
                None,
            );
        }
        let profile = classify(&b.finish()).unwrap();
        assert_eq!(profile.direction, Direction::ReadHeavy);
        assert_eq!(profile.label, "restart/scan-style sequential read");
    }

    #[test]
    fn empty_log_is_none_and_render_works() {
        let log = LogBuilder::new(1, 1, "x", false).finish();
        assert!(classify(&log).is_none());
        let mut b = LogBuilder::new(1, 1, "y", false);
        b.transfer("/f", 0, true, 0, 1 << 20, 0.0, 0.1, None);
        let profile = classify(&b.finish()).unwrap();
        let text = render_profile(&profile);
        assert!(text.contains("I/O pattern"));
        assert!(text.contains("files       : 1"));
    }
}
