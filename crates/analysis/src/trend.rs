//! Performance-trend detection across the accumulated knowledge base.
//!
//! The knowledge cycle's value compounds as the base grows (§III): the
//! same benchmark command re-run over weeks becomes a regression monitor.
//! This module groups benchmark knowledge by command, orders each group
//! by run time, and flags groups whose recent runs fall significantly
//! below their own history — the system-drift flavour of the paper's
//! anomaly-detection use case ("anomalies can be caused by … hardware
//! failures, and incorrect system configuration").

use iokc_core::ctx::PhaseCtx;
use iokc_core::model::{Knowledge, KnowledgeItem};
use iokc_core::phases::{Analyzer, CycleError, Finding};
use iokc_util::stats;

/// A detected drift in one command's history.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// The benchmark command whose history drifted.
    pub command: String,
    /// Operation examined.
    pub operation: String,
    /// Mean bandwidth of the baseline (older) runs, MiB/s.
    pub baseline_mib: f64,
    /// Mean bandwidth of the recent runs, MiB/s.
    pub recent_mib: f64,
    /// Relative change (negative = regression).
    pub change: f64,
    /// Number of runs in the history.
    pub runs: usize,
}

/// Detects regressions in repeated runs of the same command.
#[derive(Debug, Clone)]
pub struct TrendDetector {
    /// How many of the newest runs form the "recent" window.
    pub recent_window: usize,
    /// Minimum total runs of a command before a verdict.
    pub min_runs: usize,
    /// Relative drop that counts as a regression (e.g. `0.15` = 15%).
    pub threshold: f64,
}

impl Default for TrendDetector {
    fn default() -> TrendDetector {
        TrendDetector {
            recent_window: 2,
            min_runs: 5,
            threshold: 0.15,
        }
    }
}

impl TrendDetector {
    /// Scan a corpus for drifts. Both regressions and improvements beyond
    /// the threshold are reported (an unexplained speedup usually means a
    /// caching artifact or a config change worth recording).
    #[must_use]
    pub fn detect(&self, corpus: &[&Knowledge]) -> Vec<Drift> {
        let mut groups: Vec<(&str, Vec<&Knowledge>)> = Vec::new();
        for k in corpus {
            match groups.iter_mut().find(|(command, _)| *command == k.command) {
                Some((_, list)) => list.push(k),
                None => groups.push((k.command.as_str(), vec![k])),
            }
        }
        let mut drifts = Vec::new();
        for (command, mut history) in groups {
            if history.len() < self.min_runs {
                continue;
            }
            history.sort_by_key(|k| k.start_time);
            for operation in ["write", "read"] {
                let series: Vec<f64> = history
                    .iter()
                    .filter_map(|k| k.summary(operation).map(|s| s.mean_mib))
                    .collect();
                if series.len() < self.min_runs {
                    continue;
                }
                let split = series.len() - self.recent_window.min(series.len() - 1);
                let baseline = stats::mean(&series[..split]);
                let recent = stats::mean(&series[split..]);
                if baseline <= 0.0 {
                    continue;
                }
                let change = (recent - baseline) / baseline;
                if change.abs() >= self.threshold {
                    drifts.push(Drift {
                        command: command.to_owned(),
                        operation: operation.to_owned(),
                        baseline_mib: baseline,
                        recent_mib: recent,
                        change,
                        runs: series.len(),
                    });
                }
            }
        }
        drifts
    }
}

impl Analyzer for TrendDetector {
    fn name(&self) -> &str {
        "trend-detector"
    }

    fn analyze(
        &self,
        _ctx: &mut PhaseCtx,
        items: &[KnowledgeItem],
    ) -> Result<Vec<Finding>, CycleError> {
        let corpus: Vec<&Knowledge> = items
            .iter()
            .filter_map(|item| match item {
                KnowledgeItem::Benchmark(k) => Some(k),
                KnowledgeItem::Io500(_) => None,
            })
            .collect();
        Ok(self
            .detect(&corpus)
            .into_iter()
            .map(|drift| Finding {
                tag: if drift.change < 0.0 {
                    "regression"
                } else {
                    "improvement"
                }
                .to_owned(),
                knowledge_id: None,
                message: format!(
                    "{} {} bandwidth drifted {:+.1}% over {} runs of `{}` \
                     (baseline {:.0} MiB/s, recent {:.0} MiB/s)",
                    drift.operation,
                    if drift.change < 0.0 {
                        "regressed:"
                    } else {
                        "improved:"
                    },
                    drift.change * 100.0,
                    drift.runs,
                    drift.command,
                    drift.baseline_mib,
                    drift.recent_mib
                ),
                values: vec![drift.baseline_mib, drift.recent_mib, drift.change],
            })
            .collect())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn test_ctx() -> PhaseCtx {
        PhaseCtx::detached(iokc_core::phases::PhaseKind::Analysis, "test")
    }
    use iokc_core::model::{KnowledgeSource, OperationSummary};

    fn run(command: &str, start: u64, write_bw: f64) -> Knowledge {
        let mut k = Knowledge::new(KnowledgeSource::Ior, command);
        k.start_time = start;
        k.summaries.push(OperationSummary {
            operation: "write".into(),
            api: "MPIIO".into(),
            max_mib: write_bw,
            min_mib: write_bw,
            mean_mib: write_bw,
            stddev_mib: 0.0,
            mean_ops: 0.0,
            iterations: 1,
        });
        k
    }

    #[test]
    fn regression_detected_in_history() {
        // Five healthy nightly runs, then two after a disk started dying.
        let corpus: Vec<Knowledge> = vec![
            run("ior -b 4m", 100, 2850.0),
            run("ior -b 4m", 200, 2830.0),
            run("ior -b 4m", 300, 2870.0),
            run("ior -b 4m", 400, 2845.0),
            run("ior -b 4m", 500, 2860.0),
            run("ior -b 4m", 600, 2100.0),
            run("ior -b 4m", 700, 2050.0),
        ];
        let refs: Vec<&Knowledge> = corpus.iter().collect();
        let drifts = TrendDetector::default().detect(&refs);
        assert_eq!(drifts.len(), 1);
        let d = &drifts[0];
        assert!(d.change < -0.2, "change {:.2}", d.change);
        assert_eq!(d.runs, 7);
        assert!((d.baseline_mib - 2851.0).abs() < 1.0);
    }

    #[test]
    fn history_order_comes_from_timestamps_not_input_order() {
        // Shuffled input: the regression is still at the (chronological)
        // end.
        let corpus: Vec<Knowledge> = vec![
            run("ior", 600, 2100.0),
            run("ior", 200, 2830.0),
            run("ior", 700, 2050.0),
            run("ior", 100, 2850.0),
            run("ior", 400, 2845.0),
            run("ior", 300, 2870.0),
            run("ior", 500, 2860.0),
        ];
        let refs: Vec<&Knowledge> = corpus.iter().collect();
        let drifts = TrendDetector::default().detect(&refs);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].change < -0.2);
    }

    #[test]
    fn stable_history_and_short_history_stay_quiet() {
        let stable: Vec<Knowledge> = (0..8)
            .map(|i| run("ior", i * 100, 2850.0 + f64::from(i as u32)))
            .collect();
        let refs: Vec<&Knowledge> = stable.iter().collect();
        assert!(TrendDetector::default().detect(&refs).is_empty());

        let short: Vec<Knowledge> = vec![run("ior", 100, 2850.0), run("ior", 200, 1000.0)];
        let refs: Vec<&Knowledge> = short.iter().collect();
        assert!(TrendDetector::default().detect(&refs).is_empty());
    }

    #[test]
    fn different_commands_are_separate_histories() {
        let mut corpus = Vec::new();
        for i in 0..5 {
            corpus.push(run("ior -b 4m", i * 100, 2850.0));
            corpus.push(run("ior -b 8m", i * 100, 3000.0));
        }
        // Only the -b 8m history regresses.
        corpus.push(run("ior -b 8m", 600, 1500.0));
        corpus.push(run("ior -b 8m", 700, 1450.0));
        corpus.push(run("ior -b 4m", 600, 2840.0));
        corpus.push(run("ior -b 4m", 700, 2860.0));
        let refs: Vec<&Knowledge> = corpus.iter().collect();
        let drifts = TrendDetector::default().detect(&refs);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].command, "ior -b 8m");
    }

    #[test]
    fn analyzer_tags_regressions_and_improvements() {
        let mut corpus: Vec<KnowledgeItem> = (0..5)
            .map(|i| KnowledgeItem::Benchmark(run("ior", i * 100, 2000.0)))
            .collect();
        corpus.push(KnowledgeItem::Benchmark(run("ior", 600, 2600.0)));
        corpus.push(KnowledgeItem::Benchmark(run("ior", 700, 2700.0)));
        let findings = TrendDetector::default()
            .analyze(&mut test_ctx(), &corpus)
            .unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].tag, "improvement");
        assert!(findings[0].message.contains("improved"));
    }
}
