//! The knowledge viewer (§V-D): single-run views.
//!
//! "By selecting the command used for the benchmark, all related
//! benchmarks and file system information, as well as the corresponding
//! benchmark summary are displayed immediately" — here as plain-text
//! panels suitable for a terminal (the web GUI substitution documented in
//! DESIGN.md).
//!
//! Each view comes in two flavours: a `write_*` function that streams the
//! panel into any [`fmt::Write`] target (what the explorer service uses to
//! fill HTTP response bodies without an intermediate copy) and a
//! `render_*` convenience wrapper returning a `String`.

use std::fmt;

use iokc_core::model::{Io500Knowledge, Knowledge};
use iokc_util::table::TextTable;

/// Stream the full single-run view of a benchmark knowledge object —
/// command, pattern, file-system info, system info, summary table and the
/// per-iteration detail table — into `out`.
pub fn write_knowledge<W: fmt::Write>(k: &Knowledge, out: &mut W) -> fmt::Result {
    writeln!(out, "command : {}", k.command)?;
    writeln!(out, "source  : {}", k.source.as_str())?;
    if k.start_time > 0 {
        writeln!(
            out,
            "window  : {} .. {} ({} s)",
            k.start_time,
            k.end_time,
            k.end_time.saturating_sub(k.start_time)
        )?;
    }
    writeln!(out)?;

    let p = &k.pattern;
    let mut pattern = TextTable::new(vec!["parameter", "value"]);
    pattern.push_row(vec!["api".to_owned(), p.api.clone()]);
    pattern.push_row(vec!["test file".to_owned(), p.test_file.clone()]);
    pattern.push_row(vec![
        "block size".to_owned(),
        iokc_util::units::format_size(p.block_size),
    ]);
    pattern.push_row(vec![
        "transfer size".to_owned(),
        iokc_util::units::format_size(p.transfer_size),
    ]);
    pattern.push_row(vec!["segments".to_owned(), p.segments.to_string()]);
    pattern.push_row(vec!["tasks".to_owned(), p.tasks.to_string()]);
    pattern.push_row(vec![
        "clients/node".to_owned(),
        p.clients_per_node.to_string(),
    ]);
    pattern.push_row(vec!["iterations".to_owned(), p.iterations.to_string()]);
    pattern.push_row(vec![
        "file per proc".to_owned(),
        p.file_per_proc.to_string(),
    ]);
    pattern.push_row(vec![
        "reorder tasks".to_owned(),
        p.reorder_tasks.to_string(),
    ]);
    pattern.push_row(vec!["fsync".to_owned(), p.fsync.to_string()]);
    pattern.push_row(vec!["collective".to_owned(), p.collective.to_string()]);
    writeln!(out, "I/O pattern:")?;
    out.write_str(&pattern.render())?;
    writeln!(out)?;

    if let Some(fs) = &k.filesystem {
        let mut table = TextTable::new(vec!["filesystem", "value"]);
        table.push_row(vec!["type".to_owned(), fs.fs_type.clone()]);
        table.push_row(vec!["entry type".to_owned(), fs.entry_type.clone()]);
        table.push_row(vec!["entry id".to_owned(), fs.entry_id.clone()]);
        table.push_row(vec!["metadata node".to_owned(), fs.metadata_node.clone()]);
        table.push_row(vec![
            "chunk size".to_owned(),
            iokc_util::units::format_size(fs.chunk_size),
        ]);
        table.push_row(vec![
            "storage targets".to_owned(),
            fs.storage_targets.to_string(),
        ]);
        table.push_row(vec!["raid".to_owned(), fs.raid.clone()]);
        table.push_row(vec!["storage pool".to_owned(), fs.storage_pool.clone()]);
        out.write_str(&table.render())?;
        writeln!(out)?;
    }

    if let Some(sys) = &k.system {
        let mut table = TextTable::new(vec!["system", "value"]);
        table.push_row(vec!["name".to_owned(), sys.system.clone()]);
        table.push_row(vec!["cpu".to_owned(), sys.cpu_model.clone()]);
        table.push_row(vec!["cores/node".to_owned(), sys.cores.to_string()]);
        table.push_row(vec!["cpu MHz".to_owned(), format!("{:.0}", sys.cpu_mhz)]);
        table.push_row(vec!["memory".to_owned(), format!("{} KiB", sys.mem_kib)]);
        out.write_str(&table.render())?;
        writeln!(out)?;
    }

    let mut summary = TextTable::new(vec![
        "operation",
        "api",
        "max(MiB/s)",
        "min(MiB/s)",
        "mean(MiB/s)",
        "stddev",
        "mean ops/s",
        "iters",
    ]);
    for s in &k.summaries {
        summary.push_row(vec![
            s.operation.clone(),
            s.api.clone(),
            format!("{:.2}", s.max_mib),
            format!("{:.2}", s.min_mib),
            format!("{:.2}", s.mean_mib),
            format!("{:.2}", s.stddev_mib),
            format!("{:.2}", s.mean_ops),
            s.iterations.to_string(),
        ]);
    }
    writeln!(out, "summary:")?;
    out.write_str(&summary.render())?;
    writeln!(out)?;

    if !k.results.is_empty() {
        let mut detail = TextTable::new(vec![
            "operation",
            "iter",
            "bw(MiB/s)",
            "ops/s",
            "latency(s)",
            "open(s)",
            "wr/rd(s)",
            "close(s)",
            "total(s)",
        ]);
        for r in &k.results {
            detail.push_row(vec![
                r.operation.clone(),
                r.iteration.to_string(),
                format!("{:.2}", r.bw_mib),
                format!("{:.2}", r.ops_per_sec),
                format!("{:.6}", r.latency_s),
                format!("{:.6}", r.open_s),
                format!("{:.6}", r.wrrd_s),
                format!("{:.6}", r.close_s),
                format!("{:.6}", r.total_s),
            ]);
        }
        writeln!(out, "per-iteration detail:")?;
        out.write_str(&detail.render())?;
    }
    Ok(())
}

/// Render the full single-run view as a `String` (see [`write_knowledge`]).
#[must_use]
pub fn render_knowledge(k: &Knowledge) -> String {
    let mut out = String::new();
    let _ = write_knowledge(k, &mut out);
    out
}

/// Stream the IO500 viewer (§V-D: "it can additionally visualize score
/// value and different test cases for each IO500 execution") into `out`.
pub fn write_io500<W: fmt::Write>(k: &Io500Knowledge, out: &mut W) -> fmt::Result {
    writeln!(out, "IO500 run (tasks = {})", k.tasks)?;
    writeln!(
        out,
        "scores: bandwidth {:.4} GiB/s | metadata {:.4} kIOPS | total {:.4}\n",
        k.bw_score, k.md_score, k.total_score
    )?;
    let mut table = TextTable::new(vec!["testcase", "value", "unit", "time(s)"]);
    for tc in &k.testcases {
        table.push_row(vec![
            tc.name.clone(),
            format!("{:.4}", tc.value),
            tc.unit.clone(),
            format!("{:.2}", tc.time_s),
        ]);
    }
    out.write_str(&table.render())?;
    if !k.options.is_empty() {
        writeln!(out, "\noptions:")?;
        for (key, value) in &k.options {
            writeln!(out, "  {key} = {value}")?;
        }
    }
    Ok(())
}

/// Render the IO500 viewer as a `String` (see [`write_io500`]).
#[must_use]
pub fn render_io500(k: &Io500Knowledge) -> String {
    let mut out = String::new();
    let _ = write_io500(k, &mut out);
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_core::model::{
        FilesystemInfo, Io500Testcase, IterationResult, KnowledgeSource, OperationSummary,
        SystemInfo,
    };

    fn sample() -> Knowledge {
        let mut k = Knowledge::new(KnowledgeSource::Ior, "ior -a mpiio -b 4m");
        k.pattern.api = "MPIIO".into();
        k.pattern.block_size = 4 << 20;
        k.pattern.transfer_size = 2 << 20;
        k.pattern.tasks = 80;
        k.summaries.push(OperationSummary {
            operation: "write".into(),
            api: "MPIIO".into(),
            max_mib: 2850.12,
            min_mib: 1251.0,
            mean_mib: 2583.5,
            stddev_mib: 590.0,
            mean_ops: 1290.0,
            iterations: 6,
        });
        k.results.push(IterationResult {
            operation: "write".into(),
            iteration: 0,
            bw_mib: 2850.12,
            ops: 6400,
            ops_per_sec: 1425.06,
            latency_s: 0.0007,
            open_s: 0.002,
            wrrd_s: 4.4,
            close_s: 0.001,
            total_s: 4.5,
        });
        k.filesystem = Some(FilesystemInfo {
            fs_type: "BeeGFS".into(),
            entry_type: "file".into(),
            entry_id: "E-1".into(),
            metadata_node: "meta01".into(),
            chunk_size: 512 * 1024,
            storage_targets: 4,
            raid: "RAID0".into(),
            storage_pool: "Default".into(),
        });
        k.system = Some(SystemInfo {
            system: "FUCHS-CSC".into(),
            cpu_model: "E5-2670v2".into(),
            cores: 20,
            cpu_mhz: 2500.0,
            cache_kib: 25_600,
            mem_kib: 134_217_728,
        });
        k
    }

    #[test]
    fn knowledge_view_shows_all_panels() {
        let text = render_knowledge(&sample());
        assert!(text.contains("command : ior -a mpiio -b 4m"));
        assert!(text.contains("block size"));
        assert!(text.contains("4 MiB"));
        assert!(text.contains("BeeGFS"));
        assert!(text.contains("meta01"));
        assert!(text.contains("FUCHS-CSC"));
        assert!(text.contains("2850.12"));
        assert!(text.contains("per-iteration detail:"));
    }

    #[test]
    fn optional_panels_are_skipped() {
        let mut k = sample();
        k.filesystem = None;
        k.system = None;
        k.results.clear();
        let text = render_knowledge(&k);
        assert!(!text.contains("BeeGFS"));
        assert!(!text.contains("per-iteration detail:"));
        assert!(text.contains("summary:"));
    }

    #[test]
    fn write_knowledge_matches_render() {
        let k = sample();
        let mut streamed = String::new();
        write_knowledge(&k, &mut streamed).unwrap();
        assert_eq!(streamed, render_knowledge(&k));
    }

    #[test]
    fn io500_view() {
        let k = Io500Knowledge {
            id: None,
            tasks: 40,
            bw_score: 0.745,
            md_score: 13.2,
            total_score: 3.15,
            testcases: vec![Io500Testcase {
                name: "ior-easy-write".into(),
                value: 2.5,
                unit: "GiB/s".into(),
                time_s: 31.0,
            }],
            options: std::collections::BTreeMap::from([(
                "dir".to_owned(),
                "/scratch/io500".to_owned(),
            )]),
            system: None,
            start_time: 0,
            warnings: Vec::new(),
        };
        let text = render_io500(&k);
        assert!(text.contains("tasks = 40"));
        assert!(text.contains("total 3.1500"));
        assert!(text.contains("ior-easy-write"));
        assert!(text.contains("dir = /scratch/io500"));
        let mut streamed = String::new();
        write_io500(&k, &mut streamed).unwrap();
        assert_eq!(streamed, text);
    }
}
