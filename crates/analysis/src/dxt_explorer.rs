//! A DXT-Explorer equivalent: interactive log analysis over Darshan
//! extended traces.
//!
//! §II-A2 of the paper discusses DXT Explorer — "an interactive log
//! analysis tool, which uses Darshan's extended tracing module" to
//! visualize I/O behaviour and spot bottlenecks — and the §VI outlook
//! asks for heat-map support in the knowledge explorer. This module
//! provides both: per-rank timelines, time×rank transfer heat maps, rank
//! straggler detection, and an access-size breakdown, all computed from
//! [`iokc_darshan::DxtSegment`]s.

use crate::charts::ChartOptions;
use iokc_darshan::{DarshanLog, DxtSegment};
use iokc_util::stats;

/// Per-rank activity summary derived from DXT segments.
#[derive(Debug, Clone, PartialEq)]
pub struct RankActivity {
    /// Rank id.
    pub rank: i32,
    /// Number of read segments.
    pub reads: u64,
    /// Number of write segments.
    pub writes: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// First segment start, seconds.
    pub first_start: f64,
    /// Last segment end, seconds.
    pub last_end: f64,
    /// Cumulative busy (in-I/O) time, seconds.
    pub busy_secs: f64,
}

/// The timeline view over one log's DXT data.
#[derive(Debug, Clone)]
pub struct DxtTimeline {
    /// All segments, sorted by (rank, start).
    pub segments: Vec<DxtSegment>,
    /// Per-rank summaries, sorted by rank.
    pub ranks: Vec<RankActivity>,
    /// Trace end (max segment end), seconds.
    pub span_secs: f64,
}

impl DxtTimeline {
    /// Build the timeline from a log. Returns `None` when the log carries
    /// no DXT data (tracing was off).
    #[must_use]
    pub fn from_log(log: &DarshanLog) -> Option<DxtTimeline> {
        if log.dxt.is_empty() {
            return None;
        }
        let mut segments = log.dxt.clone();
        segments.sort_by(|a, b| a.rank.cmp(&b.rank).then(a.start.total_cmp(&b.start)));
        let mut ranks: Vec<RankActivity> = Vec::new();
        for segment in &segments {
            if ranks.last().map(|r| r.rank) != Some(segment.rank) {
                ranks.push(RankActivity {
                    rank: segment.rank,
                    reads: 0,
                    writes: 0,
                    bytes: 0,
                    first_start: segment.start,
                    last_end: segment.end,
                    busy_secs: 0.0,
                });
            }
            let current = ranks.last_mut().expect("pushed above");
            if segment.is_write {
                current.writes += 1;
            } else {
                current.reads += 1;
            }
            current.bytes += segment.length;
            current.first_start = current.first_start.min(segment.start);
            current.last_end = current.last_end.max(segment.end);
            current.busy_secs += (segment.end - segment.start).max(0.0);
        }
        let span_secs = segments.iter().map(|s| s.end).fold(0.0f64, f64::max);
        Some(DxtTimeline {
            segments,
            ranks,
            span_secs,
        })
    }

    /// The time × rank transfer heat map: `bins` time buckets per rank,
    /// each cell holding the bytes moved in that window. Returns
    /// `(matrix[rank_index][bin], rank_ids)`.
    #[must_use]
    pub fn heat_map(&self, bins: usize) -> (Vec<Vec<f64>>, Vec<i32>) {
        let bins = bins.max(1);
        let rank_ids: Vec<i32> = self.ranks.iter().map(|r| r.rank).collect();
        let mut matrix = vec![vec![0.0f64; bins]; rank_ids.len()];
        let span = self.span_secs.max(1e-9);
        for segment in &self.segments {
            let Some(row) = rank_ids.iter().position(|r| *r == segment.rank) else {
                continue;
            };
            // Spread the segment's bytes over the bins it overlaps.
            let seg_span = (segment.end - segment.start).max(1e-12);
            let first_bin = ((segment.start / span) * bins as f64).floor() as usize;
            let last_bin = ((segment.end / span) * bins as f64).ceil() as usize;
            let upper = last_bin.min(bins);
            for (bin, cell) in matrix[row][first_bin..upper].iter_mut().enumerate() {
                let bin = bin + first_bin;
                let bin_start = bin as f64 / bins as f64 * span;
                let bin_end = (bin + 1) as f64 / bins as f64 * span;
                let overlap = (segment.end.min(bin_end) - segment.start.max(bin_start)).max(0.0);
                *cell += segment.length as f64 * (overlap / seg_span);
            }
        }
        (matrix, rank_ids)
    }

    /// Straggler detection: ranks whose busy time robustly exceeds the
    /// population (MAD z > `threshold` and ≥ `min_relative` above the
    /// median). These are the ranks an interactive DXT session would zoom
    /// into.
    #[must_use]
    pub fn stragglers(&self, threshold: f64, min_relative: f64) -> Vec<(i32, f64)> {
        let busy: Vec<f64> = self.ranks.iter().map(|r| r.busy_secs).collect();
        if busy.len() < 4 {
            return Vec::new();
        }
        let scores = crate::describe::mad_scores(&busy);
        let median = stats::median(&busy);
        // When more than half the ranks are identical the MAD collapses to
        // zero and every score reads 0; fall back to the relative rule
        // with the score reported as the relative excess.
        let mad_collapsed = scores.iter().all(|s| *s == 0.0) && stats::stddev(&busy) > 0.0;
        self.ranks
            .iter()
            .zip(&scores)
            .filter(|(rank, score)| {
                let relative_ok = rank.busy_secs > median * (1.0 + min_relative);
                relative_ok && (**score > threshold || mad_collapsed)
            })
            .map(|(rank, score)| {
                let reported = if mad_collapsed {
                    (rank.busy_secs - median) / median.max(1e-12)
                } else {
                    *score
                };
                (rank.rank, reported)
            })
            .collect()
    }

    /// Render the per-rank timeline as SVG: one row per rank, one
    /// rectangle per segment (write = orange, read = blue).
    #[must_use]
    pub fn render_timeline_svg(&self, opts: &ChartOptions) -> String {
        let w = f64::from(opts.width);
        let h = f64::from(opts.height);
        let margin = 60.0;
        let plot_w = w - 2.0 * margin;
        let plot_h = h - 2.0 * margin;
        let nranks = self.ranks.len().max(1) as f64;
        let row_h = (plot_h / nranks).min(18.0);
        let span = self.span_secs.max(1e-9);
        let mut svg = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\">\n\
             <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n\
             <text x=\"{:.0}\" y=\"24\" font-size=\"16\" text-anchor=\"middle\">{}</text>\n",
            opts.width,
            opts.height,
            w / 2.0,
            opts.title
        );
        for (row, rank) in self.ranks.iter().enumerate() {
            let y = margin + row as f64 * (plot_h / nranks);
            svg.push_str(&format!(
                "<text x=\"{:.0}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"end\">rank {}</text>\n",
                margin - 6.0,
                y + row_h * 0.8,
                rank.rank
            ));
            for segment in self.segments.iter().filter(|s| s.rank == rank.rank) {
                let x = margin + segment.start / span * plot_w;
                let width = ((segment.end - segment.start) / span * plot_w).max(0.5);
                let color = if segment.is_write {
                    "#ff7f0e"
                } else {
                    "#1f77b4"
                };
                svg.push_str(&format!(
                    "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{width:.1}\" height=\"{:.1}\" fill=\"{color}\"/>\n",
                    row_h * 0.9
                ));
            }
        }
        svg.push_str(&format!(
            "<text x=\"{:.0}\" y=\"{:.0}\" font-size=\"12\" text-anchor=\"middle\">time (0 … {:.3}s)</text>\n",
            w / 2.0,
            h - 16.0,
            self.span_secs
        ));
        svg.push_str("</svg>\n");
        svg
    }

    /// Render a textual report (the terminal face of the explorer).
    #[must_use]
    pub fn render_report(&self) -> String {
        let mut table = iokc_util::table::TextTable::new(vec![
            "rank", "reads", "writes", "MiB", "busy(s)", "span(s)",
        ]);
        for rank in &self.ranks {
            table.push_row(vec![
                rank.rank.to_string(),
                rank.reads.to_string(),
                rank.writes.to_string(),
                format!("{:.2}", rank.bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.4}", rank.busy_secs),
                format!("{:.4}", rank.last_end - rank.first_start),
            ]);
        }
        let mut out = format!(
            "DXT timeline: {} segments, {} ranks, {:.4}s span\n",
            self.segments.len(),
            self.ranks.len(),
            self.span_secs
        );
        out.push_str(&table.render());
        let stragglers = self.stragglers(3.5, 0.25);
        if stragglers.is_empty() {
            out.push_str("\nno straggler ranks detected\n");
        } else {
            for (rank, score) in stragglers {
                out.push_str(&format!(
                    "\nSTRAGGLER: rank {rank} busy time deviates (robust z = {score:.1})\n"
                ));
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_darshan::{LogBuilder, Module};

    fn log_with_straggler() -> DarshanLog {
        let mut builder = LogBuilder::new(1, 8, "ior", true);
        for rank in 0..8 {
            builder.open(Module::Posix, "/scratch/t", rank, 0.0, 0.01);
            // Rank 5 takes 4x longer per op.
            let op_time = if rank == 5 { 0.4 } else { 0.1 };
            for i in 0..4 {
                let start = 0.01 + f64::from(i) * op_time;
                builder.transfer(
                    "/scratch/t",
                    rank,
                    true,
                    (i as u64) << 20,
                    1 << 20,
                    start,
                    start + op_time,
                    None,
                );
            }
        }
        builder.finish()
    }

    #[test]
    fn timeline_summarises_ranks() {
        let log = log_with_straggler();
        let timeline = DxtTimeline::from_log(&log).unwrap();
        assert_eq!(timeline.ranks.len(), 8);
        assert_eq!(timeline.segments.len(), 32);
        let r0 = &timeline.ranks[0];
        assert_eq!(r0.writes, 4);
        assert_eq!(r0.reads, 0);
        assert_eq!(r0.bytes, 4 << 20);
        assert!((r0.busy_secs - 0.4).abs() < 1e-9);
        // The straggler's span dominates the trace.
        assert!((timeline.span_secs - 1.61).abs() < 1e-9);
    }

    #[test]
    fn straggler_is_detected() {
        let log = log_with_straggler();
        let timeline = DxtTimeline::from_log(&log).unwrap();
        let stragglers = timeline.stragglers(3.5, 0.25);
        assert_eq!(stragglers.len(), 1, "{stragglers:?}");
        assert_eq!(stragglers[0].0, 5);
        assert!(
            stragglers[0].1 > 2.5,
            "reported excess: {}",
            stragglers[0].1
        );
    }

    #[test]
    fn uniform_ranks_have_no_stragglers() {
        let mut builder = LogBuilder::new(1, 6, "ior", true);
        for rank in 0..6 {
            builder.transfer("/f", rank, true, 0, 1 << 20, 0.0, 0.1, None);
        }
        let timeline = DxtTimeline::from_log(&builder.finish()).unwrap();
        assert!(timeline.stragglers(3.5, 0.25).is_empty());
    }

    #[test]
    fn heat_map_conserves_bytes() {
        let log = log_with_straggler();
        let timeline = DxtTimeline::from_log(&log).unwrap();
        let (matrix, rank_ids) = timeline.heat_map(16);
        assert_eq!(rank_ids.len(), 8);
        let total: f64 = matrix.iter().flatten().sum();
        let expected: f64 = timeline.segments.iter().map(|s| s.length as f64).sum();
        assert!(
            (total - expected).abs() < expected * 1e-6,
            "heat map must conserve bytes: {total} vs {expected}"
        );
        // The straggler's row is spread wider (later bins non-zero).
        let straggler_row = rank_ids.iter().position(|r| *r == 5).unwrap();
        assert!(matrix[straggler_row][15] > 0.0);
        assert_eq!(matrix[0][15], 0.0);
    }

    #[test]
    fn svg_and_report_render() {
        let log = log_with_straggler();
        let timeline = DxtTimeline::from_log(&log).unwrap();
        let svg = timeline.render_timeline_svg(&ChartOptions {
            title: "dxt".into(),
            ..ChartOptions::default()
        });
        assert!(svg.starts_with("<svg"));
        assert_eq!(
            svg.matches("#ff7f0e").count(),
            32,
            "one rect per write segment"
        );
        let report = timeline.render_report();
        assert!(report.contains("32 segments"));
        assert!(report.contains("STRAGGLER: rank 5"));
    }

    #[test]
    fn empty_dxt_yields_none() {
        let log = LogBuilder::new(1, 1, "x", false).finish();
        assert!(DxtTimeline::from_log(&log).is_none());
    }
}
