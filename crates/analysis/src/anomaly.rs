//! Anomaly detection (§V-E2, Example II).
//!
//! Two detectors, both pluggable into the cycle as [`Analyzer`]s:
//!
//! * [`IterationVarianceDetector`] — flags iterations whose throughput
//!   deviates robustly (MAD z-score beyond a threshold) from the other
//!   iterations of the same run, then corroborates the finding with the
//!   supporting metrics the paper names (`closeTime`, `latency`,
//!   `totalTime`, `wrRdTime`) so "measurement errors can be excluded".
//! * [`crate::bounding_box::BoundingBoxDetector`] — the IO500-based
//!   expectation box after Liem et al.

use crate::describe::mad_scores;
use iokc_core::ctx::PhaseCtx;
use iokc_core::model::{Knowledge, KnowledgeItem};
use iokc_core::phases::{Analyzer, CycleError, Finding};

/// Detects per-iteration throughput anomalies inside each knowledge
/// object.
#[derive(Debug, Clone)]
pub struct IterationVarianceDetector {
    /// Robust z-score threshold (default 3.5, the standard MAD cut-off).
    pub threshold: f64,
    /// Minimum iterations required for a verdict.
    pub min_iterations: usize,
    /// Practical-significance guard: the iteration must also deviate from
    /// the peer mean by at least this fraction (default 20%). Without it,
    /// a run whose healthy iterations are nearly identical would flag
    /// harmless 1–2% wiggles (tiny MAD inflates the z-score).
    pub min_relative_deviation: f64,
}

impl Default for IterationVarianceDetector {
    fn default() -> IterationVarianceDetector {
        IterationVarianceDetector {
            threshold: 3.5,
            min_iterations: 4,
            min_relative_deviation: 0.2,
        }
    }
}

/// One anomalous iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationAnomaly {
    /// Operation (`write` / `read`).
    pub operation: String,
    /// Iteration index.
    pub iteration: u32,
    /// The iteration's bandwidth, MiB/s.
    pub bw_mib: f64,
    /// Mean bandwidth of the non-anomalous iterations, MiB/s.
    pub peer_mean_mib: f64,
    /// Robust z-score.
    pub score: f64,
    /// Names of supporting metrics that corroborate (deviate in the same
    /// direction).
    pub corroborated_by: Vec<String>,
}

impl IterationVarianceDetector {
    /// Scan one knowledge object.
    #[must_use]
    pub fn detect(&self, knowledge: &Knowledge) -> Vec<IterationAnomaly> {
        let mut anomalies = Vec::new();
        let operations: Vec<String> = knowledge
            .summaries
            .iter()
            .map(|s| s.operation.clone())
            .collect();
        for operation in operations {
            let rows: Vec<&iokc_core::model::IterationResult> = knowledge
                .results
                .iter()
                .filter(|r| r.operation == operation)
                .collect();
            if rows.len() < self.min_iterations {
                continue;
            }
            let bws: Vec<f64> = rows.iter().map(|r| r.bw_mib).collect();
            let scores = mad_scores(&bws);
            for (i, score) in scores.iter().enumerate() {
                if score.abs() < self.threshold {
                    continue;
                }
                let peers: Vec<f64> = bws
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, v)| *v)
                    .collect();
                let peer_mean = iokc_util::stats::mean(&peers);
                if peer_mean > 0.0
                    && (bws[i] - peer_mean).abs() / peer_mean < self.min_relative_deviation
                {
                    continue;
                }
                // Corroboration: a genuinely slow iteration must also look
                // slow in its time-domain metrics, not just the bandwidth
                // column (which would suggest a measurement error).
                let mut corroborated_by = Vec::new();
                let slow = *score < 0.0;
                for (name, select) in [
                    (
                        "totalTime",
                        &(|r: &iokc_core::model::IterationResult| r.total_s)
                            as &dyn Fn(&iokc_core::model::IterationResult) -> f64,
                    ),
                    ("wrRdTime", &|r| r.wrrd_s),
                    ("latency", &|r| r.latency_s),
                    ("closeTime", &|r| r.close_s),
                    ("ops", &|r| r.ops_per_sec),
                ] {
                    let series: Vec<f64> = rows.iter().map(|r| select(r)).collect();
                    let metric_scores = mad_scores(&series);
                    let deviates = match name {
                        // Slow iteration ⇒ times up, rates down.
                        "ops" => (metric_scores[i] < -2.0) == slow && metric_scores[i].abs() > 2.0,
                        _ => (metric_scores[i] > 2.0) == slow && metric_scores[i].abs() > 2.0,
                    };
                    if deviates {
                        corroborated_by.push(name.to_owned());
                    }
                }
                anomalies.push(IterationAnomaly {
                    operation: operation.clone(),
                    iteration: rows[i].iteration,
                    bw_mib: bws[i],
                    peer_mean_mib: iokc_util::stats::mean(&peers),
                    score: *score,
                    corroborated_by,
                });
            }
        }
        anomalies
    }
}

impl Analyzer for IterationVarianceDetector {
    fn name(&self) -> &str {
        "iteration-variance-detector"
    }

    fn analyze(
        &self,
        _ctx: &mut PhaseCtx,
        items: &[KnowledgeItem],
    ) -> Result<Vec<Finding>, CycleError> {
        let mut findings = Vec::new();
        for item in items {
            let KnowledgeItem::Benchmark(knowledge) = item else {
                continue;
            };
            for anomaly in self.detect(knowledge) {
                findings.push(Finding {
                    tag: "anomaly".to_owned(),
                    knowledge_id: knowledge.id,
                    message: format!(
                        "{} iteration {} at {:.0} MiB/s vs peer mean {:.0} MiB/s \
                         (robust z = {:.1}; corroborated by {})",
                        anomaly.operation,
                        anomaly.iteration,
                        anomaly.bw_mib,
                        anomaly.peer_mean_mib,
                        anomaly.score,
                        if anomaly.corroborated_by.is_empty() {
                            "nothing — possible measurement error".to_owned()
                        } else {
                            anomaly.corroborated_by.join(", ")
                        }
                    ),
                    values: vec![anomaly.bw_mib, anomaly.peer_mean_mib, anomaly.score],
                });
            }
        }
        Ok(findings)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn test_ctx() -> PhaseCtx {
        PhaseCtx::detached(iokc_core::phases::PhaseKind::Analysis, "test")
    }
    use iokc_core::model::{IterationResult, KnowledgeSource, OperationSummary};

    fn knowledge_with_series(bws: &[f64]) -> Knowledge {
        let mut k = Knowledge::new(KnowledgeSource::Ior, "ior -i 6");
        k.id = Some(9);
        k.summaries.push(OperationSummary {
            operation: "write".into(),
            api: "MPIIO".into(),
            max_mib: iokc_util::stats::max(bws),
            min_mib: iokc_util::stats::min(bws),
            mean_mib: iokc_util::stats::mean(bws),
            stddev_mib: iokc_util::stats::stddev(bws),
            mean_ops: 0.0,
            iterations: bws.len() as u32,
        });
        for (i, bw) in bws.iter().enumerate() {
            // A slow iteration takes proportionally longer.
            let scale = iokc_util::stats::mean(bws) / bw.max(1.0);
            k.results.push(IterationResult {
                operation: "write".into(),
                iteration: i as u32,
                bw_mib: *bw,
                ops: 6400,
                ops_per_sec: bw / 2.0,
                latency_s: 0.0007 * scale,
                open_s: 0.002,
                wrrd_s: 4.4 * scale,
                close_s: 0.001 * scale,
                total_s: 4.5 * scale,
            });
        }
        k
    }

    #[test]
    fn detects_fig5_iteration_two() {
        let k = knowledge_with_series(&[2850.0, 1251.0, 2840.0, 2860.0, 2855.0, 2845.0]);
        let anomalies = IterationVarianceDetector::default().detect(&k);
        assert_eq!(anomalies.len(), 1);
        let a = &anomalies[0];
        assert_eq!(a.iteration, 1);
        assert_eq!(a.bw_mib, 1251.0);
        assert!((a.peer_mean_mib - 2850.0).abs() < 1.0);
        assert!(a.score < -3.5);
        assert!(
            a.corroborated_by.contains(&"totalTime".to_owned()),
            "supporting metrics: {:?}",
            a.corroborated_by
        );
        assert!(a.corroborated_by.contains(&"wrRdTime".to_owned()));
    }

    #[test]
    fn clean_series_yields_nothing() {
        let k = knowledge_with_series(&[2850.0, 2840.0, 2860.0, 2855.0, 2845.0, 2852.0]);
        assert!(IterationVarianceDetector::default().detect(&k).is_empty());
    }

    #[test]
    fn too_few_iterations_skipped() {
        let k = knowledge_with_series(&[2850.0, 1251.0]);
        assert!(IterationVarianceDetector::default().detect(&k).is_empty());
    }

    #[test]
    fn analyzer_trait_produces_findings() {
        let k = knowledge_with_series(&[2850.0, 1251.0, 2840.0, 2860.0, 2855.0, 2845.0]);
        let findings = IterationVarianceDetector::default()
            .analyze(&mut test_ctx(), &[KnowledgeItem::Benchmark(k)])
            .unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].tag, "anomaly");
        assert_eq!(findings[0].knowledge_id, Some(9));
        assert!(findings[0].message.contains("iteration 1"));
        assert!(findings[0].message.contains("corroborated by"));
    }

    #[test]
    fn measurement_error_is_called_out() {
        // Bandwidth dips but every time-domain metric stays flat — the
        // corroboration list must be empty and the message must say so.
        let mut k = knowledge_with_series(&[2850.0, 2840.0, 2860.0, 2855.0, 2845.0, 2852.0]);
        k.results[1].bw_mib = 1251.0; // inconsistent with its times
        let findings = IterationVarianceDetector::default()
            .analyze(&mut test_ctx(), &[KnowledgeItem::Benchmark(k)])
            .unwrap();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("possible measurement error"));
    }
}
