//! Static HTML reports — the web face of the knowledge explorer.
//!
//! The paper's prototype exposes analysis through a web GUI (§V-D). This
//! module renders the same views as a self-contained HTML document
//! (inline CSS, inline SVG charts; no scripts, no external assets) that a
//! browser can open directly: the knowledge-base overview, the per-run
//! summary table, the IO500 runs with their scores, the comparison chart
//! and every analysis finding.

use crate::charts::{box_plot, line_chart, ChartOptions, Series};
use crate::compare::{compare, MetricAxis, OptionAxis};
use crate::describe::Describe;
use iokc_core::model::{Knowledge, KnowledgeItem};
use iokc_core::phases::Finding;

const STYLE: &str = "\
body{font-family:sans-serif;margin:2em;color:#222;max-width:1000px}\
h1,h2{color:#1f3b57}table{border-collapse:collapse;margin:1em 0}\
td,th{border:1px solid #ccc;padding:4px 10px;text-align:left;font-size:14px}\
th{background:#eef3f8}tr:nth-child(even){background:#fafafa}\
.finding{background:#fff4e5;border-left:4px solid #ff7f0e;padding:8px 12px;margin:6px 0}\
.ok{background:#edf7ee;border-left:4px solid #2ca02c;padding:8px 12px;margin:6px 0}\
figure{margin:1em 0}";

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render the knowledge-base report.
#[must_use]
pub fn render_html(items: &[KnowledgeItem], findings: &[Finding]) -> String {
    let benchmarks: Vec<&Knowledge> = items
        .iter()
        .filter_map(|item| match item {
            KnowledgeItem::Benchmark(k) => Some(k),
            KnowledgeItem::Io500(_) => None,
        })
        .collect();
    let io500s: Vec<&iokc_core::model::Io500Knowledge> = items
        .iter()
        .filter_map(|item| match item {
            KnowledgeItem::Io500(k) => Some(k),
            KnowledgeItem::Benchmark(_) => None,
        })
        .collect();

    let mut html = String::with_capacity(16 * 1024);
    html.push_str("<!DOCTYPE html><html><head><meta charset=\"utf-8\">");
    html.push_str("<title>iokc knowledge explorer</title>");
    html.push_str(&format!("<style>{STYLE}</style></head><body>"));
    html.push_str("<h1>I/O knowledge explorer</h1>");
    html.push_str(&format!(
        "<p>{} benchmark knowledge object(s), {} IO500 run(s), {} finding(s).</p>",
        benchmarks.len(),
        io500s.len(),
        findings.len()
    ));

    // Findings first (the anomaly-detection use case is the headline).
    html.push_str("<h2>Findings</h2>");
    if findings.is_empty() {
        html.push_str("<div class=\"ok\">no anomalies detected</div>");
    }
    for finding in findings {
        html.push_str(&format!(
            "<div class=\"finding\"><b>[{}]</b> {}</div>",
            escape(&finding.tag),
            escape(&finding.message)
        ));
    }

    // Benchmark knowledge table.
    if !benchmarks.is_empty() {
        html.push_str(
            "<h2>Benchmark knowledge</h2><table><tr>\
            <th>id</th><th>command</th><th>api</th><th>tasks</th>\
            <th>write mean (MiB/s)</th><th>read mean (MiB/s)</th><th>iters</th></tr>",
        );
        for k in &benchmarks {
            let fmt_bw = |operation: &str| {
                k.summary(operation)
                    .map(|s| format!("{:.1}", s.mean_mib))
                    .unwrap_or_else(|| "—".to_owned())
            };
            html.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                k.id.map(|i| i.to_string()).unwrap_or_default(),
                escape(&k.command),
                escape(&k.pattern.api),
                k.pattern.tasks,
                fmt_bw("write"),
                fmt_bw("read"),
                k.pattern.iterations
            ));
        }
        html.push_str("</table>");

        // Overview box plot by throughput (§V-D's automatic overview).
        let boxes: Vec<(String, Describe)> = benchmarks
            .iter()
            .filter_map(|k| {
                let series: Vec<f64> = k
                    .results
                    .iter()
                    .filter(|r| r.operation == "write")
                    .map(|r| r.bw_mib)
                    .collect();
                (!series.is_empty()).then(|| {
                    let label = k.id.map(|i| format!("#{i}")).unwrap_or_else(|| "?".into());
                    (label, Describe::of(&series))
                })
            })
            .collect();
        if !boxes.is_empty() {
            html.push_str("<h2>Throughput overview</h2><figure>");
            html.push_str(&box_plot(
                &boxes,
                &ChartOptions {
                    title: "write throughput per knowledge object".into(),
                    y_label: "MiB/s".into(),
                    ..ChartOptions::default()
                },
            ));
            html.push_str("</figure>");
        }

        // Comparison: write bandwidth vs transfer size.
        let points = compare(
            &benchmarks,
            &[],
            OptionAxis::TransferSize,
            &MetricAxis::MeanBandwidth("write".into()),
        );
        if points.len() >= 2 {
            html.push_str("<h2>Comparison</h2><figure>");
            html.push_str(&line_chart(
                &[Series {
                    label: "mean write bandwidth".into(),
                    points: points.iter().map(|p| (p.x, p.y)).collect(),
                }],
                &ChartOptions {
                    title: "write bandwidth vs transfer size".into(),
                    x_label: "transfer size (bytes)".into(),
                    y_label: "MiB/s".into(),
                    ..ChartOptions::default()
                },
            ));
            html.push_str("</figure>");
        }
    }

    // IO500 table.
    if !io500s.is_empty() {
        html.push_str(
            "<h2>IO500 runs</h2><table><tr>\
            <th>id</th><th>tasks</th><th>bandwidth (GiB/s)</th>\
            <th>metadata (kIOPS)</th><th>total score</th></tr>",
        );
        for k in &io500s {
            html.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{:.4}</td><td>{:.4}</td><td>{:.4}</td></tr>",
                k.id.map(|i| i.to_string()).unwrap_or_default(),
                k.tasks,
                k.bw_score,
                k.md_score,
                k.total_score
            ));
        }
        html.push_str("</table>");
    }

    html.push_str("</body></html>");
    html
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_core::model::{IterationResult, KnowledgeSource, OperationSummary};

    fn knowledge(id: u64, xfer: u64, bw: f64) -> KnowledgeItem {
        let mut k = Knowledge::new(KnowledgeSource::Ior, &format!("ior -t {xfer}"));
        k.id = Some(id);
        k.pattern.api = "MPIIO".into();
        k.pattern.tasks = 8;
        k.pattern.transfer_size = xfer;
        k.pattern.iterations = 2;
        k.summaries.push(OperationSummary {
            operation: "write".into(),
            api: "MPIIO".into(),
            max_mib: bw * 1.05,
            min_mib: bw * 0.95,
            mean_mib: bw,
            stddev_mib: 1.0,
            mean_ops: bw / 2.0,
            iterations: 2,
        });
        for i in 0..2 {
            k.results.push(IterationResult {
                operation: "write".into(),
                iteration: i,
                bw_mib: bw + f64::from(i),
                ops: 10,
                ops_per_sec: 5.0,
                latency_s: 0.001,
                open_s: 0.001,
                wrrd_s: 1.0,
                close_s: 0.001,
                total_s: 1.0,
            });
        }
        KnowledgeItem::Benchmark(k)
    }

    #[test]
    fn report_contains_all_sections() {
        let items = vec![
            knowledge(1, 1 << 20, 1000.0),
            knowledge(2, 2 << 20, 1500.0),
            KnowledgeItem::Io500(iokc_core::model::Io500Knowledge {
                id: Some(3),
                tasks: 40,
                bw_score: 1.2,
                md_score: 10.5,
                total_score: 3.55,
                testcases: Vec::new(),
                options: Default::default(),
                system: None,
                start_time: 0,
                warnings: Vec::new(),
            }),
        ];
        let findings = vec![Finding {
            tag: "anomaly".into(),
            knowledge_id: Some(1),
            message: "write iteration 1 dipped <b>badly</b>".into(),
            values: vec![],
        }];
        let html = render_html(&items, &findings);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("2 benchmark knowledge object(s), 1 IO500 run(s)"));
        assert!(html.contains("<h2>Findings</h2>"));
        // Finding text is escaped.
        assert!(html.contains("&lt;b&gt;badly&lt;/b&gt;"));
        assert!(html.contains("<h2>Benchmark knowledge</h2>"));
        assert!(html.contains("<h2>Throughput overview</h2>"));
        assert!(html.contains("<h2>Comparison</h2>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("<h2>IO500 runs</h2>"));
        assert!(html.contains("3.5500"));
        assert!(html.ends_with("</body></html>"));
    }

    #[test]
    fn empty_base_reports_cleanly() {
        let html = render_html(&[], &[]);
        assert!(html.contains("no anomalies detected"));
        assert!(!html.contains("<h2>Benchmark knowledge</h2>"));
    }
}
