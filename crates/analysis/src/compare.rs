//! The comparison view (§V-D).
//!
//! "Our tool offers the ability to select any number of knowledge objects
//! and compares them based on defined metrics. … the user can select the
//! axes of the chart at runtime" — the x-axis is an applied option
//! ([`OptionAxis`]), the y-axis a focused metric ([`MetricAxis`]). The
//! overview is a box-plot summary per knowledge object; filtering and
//! sorting narrow the selection.

use crate::describe::Describe;
use iokc_core::model::Knowledge;
use iokc_store::RunSummary;

/// Selectable x-axes: the option whose effect is being studied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptionAxis {
    /// Transfer size in bytes.
    TransferSize,
    /// Block size in bytes.
    BlockSize,
    /// Task count.
    Tasks,
    /// Segment count.
    Segments,
    /// Clients per node.
    ClientsPerNode,
}

impl OptionAxis {
    /// Axis label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OptionAxis::TransferSize => "transfer size (bytes)",
            OptionAxis::BlockSize => "block size (bytes)",
            OptionAxis::Tasks => "tasks",
            OptionAxis::Segments => "segments",
            OptionAxis::ClientsPerNode => "clients per node",
        }
    }

    /// Extract the option value from a knowledge object.
    #[must_use]
    pub fn value(self, k: &Knowledge) -> f64 {
        match self {
            OptionAxis::TransferSize => k.pattern.transfer_size as f64,
            OptionAxis::BlockSize => k.pattern.block_size as f64,
            OptionAxis::Tasks => f64::from(k.pattern.tasks),
            OptionAxis::Segments => k.pattern.segments as f64,
            OptionAxis::ClientsPerNode => f64::from(k.pattern.clients_per_node),
        }
    }

    /// Extract the option value from a query-engine projection row.
    #[must_use]
    pub fn value_of_summary(self, row: &RunSummary) -> f64 {
        match self {
            OptionAxis::TransferSize => row.transfer_size as f64,
            OptionAxis::BlockSize => row.block_size as f64,
            OptionAxis::Tasks => f64::from(row.tasks),
            OptionAxis::Segments => row.segments as f64,
            OptionAxis::ClientsPerNode => f64::from(row.clients_per_node),
        }
    }
}

/// Selectable y-axes: the focused metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricAxis {
    /// Mean bandwidth of an operation, MiB/s.
    MeanBandwidth(String),
    /// Max bandwidth of an operation, MiB/s.
    MaxBandwidth(String),
    /// Mean op rate of an operation, ops/s.
    MeanOps(String),
}

impl MetricAxis {
    /// Axis label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            MetricAxis::MeanBandwidth(op) => format!("mean {op} bandwidth (MiB/s)"),
            MetricAxis::MaxBandwidth(op) => format!("max {op} bandwidth (MiB/s)"),
            MetricAxis::MeanOps(op) => format!("mean {op} ops/s"),
        }
    }

    /// Extract the metric from a knowledge object (absent operation →
    /// `None`).
    #[must_use]
    pub fn value(&self, k: &Knowledge) -> Option<f64> {
        match self {
            MetricAxis::MeanBandwidth(op) => k.summary(op).map(|s| s.mean_mib),
            MetricAxis::MaxBandwidth(op) => k.summary(op).map(|s| s.max_mib),
            MetricAxis::MeanOps(op) => k.summary(op).map(|s| s.mean_ops),
        }
    }

    /// Extract the metric from a query-engine projection row (absent
    /// operation → `None`).
    #[must_use]
    pub fn value_of_summary(&self, row: &RunSummary) -> Option<f64> {
        match self {
            MetricAxis::MeanBandwidth(op) => row.op(op).map(|s| s.mean_mib),
            MetricAxis::MaxBandwidth(op) => row.op(op).map(|s| s.max_mib),
            MetricAxis::MeanOps(op) => row.op(op).map(|s| s.mean_ops),
        }
    }
}

/// Filters over knowledge objects.
#[derive(Debug, Clone, PartialEq)]
pub enum KnowledgeFilter {
    /// Command contains a substring.
    CommandContains(String),
    /// Exact API match.
    Api(String),
    /// Task count in an inclusive range.
    TasksBetween(u32, u32),
    /// Has a summary for this operation.
    HasOperation(String),
}

impl KnowledgeFilter {
    /// Apply the filter.
    #[must_use]
    pub fn matches(&self, k: &Knowledge) -> bool {
        match self {
            KnowledgeFilter::CommandContains(text) => k.command.contains(text.as_str()),
            KnowledgeFilter::Api(api) => k.pattern.api == *api,
            KnowledgeFilter::TasksBetween(lo, hi) => (*lo..=*hi).contains(&k.pattern.tasks),
            KnowledgeFilter::HasOperation(op) => k.summary(op).is_some(),
        }
    }
}

/// One comparison point.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonPoint {
    /// Knowledge id (if persisted).
    pub knowledge_id: Option<u64>,
    /// Command (series label).
    pub command: String,
    /// x value (selected option).
    pub x: f64,
    /// y value (selected metric).
    pub y: f64,
}

/// Build the comparison series: filter, extract both axes, sort by x.
#[must_use]
pub fn compare(
    items: &[&Knowledge],
    filters: &[KnowledgeFilter],
    x: OptionAxis,
    y: &MetricAxis,
) -> Vec<ComparisonPoint> {
    let mut points: Vec<ComparisonPoint> = items
        .iter()
        .filter(|k| filters.iter().all(|f| f.matches(k)))
        .filter_map(|k| {
            y.value(k).map(|yv| ComparisonPoint {
                knowledge_id: k.id,
                command: k.command.clone(),
                x: x.value(k),
                y: yv,
            })
        })
        .collect();
    points.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    points
}

/// Build the comparison series from query-engine projection rows:
/// filtering has already been pushed down into the store, so this only
/// extracts the axes and sorts by x (then y), exactly like [`compare`].
#[must_use]
pub fn compare_summaries(
    rows: &[RunSummary],
    x: OptionAxis,
    y: &MetricAxis,
) -> Vec<ComparisonPoint> {
    let mut points: Vec<ComparisonPoint> = rows
        .iter()
        .filter_map(|row| {
            y.value_of_summary(row).map(|yv| ComparisonPoint {
                knowledge_id: Some(row.id),
                command: row.command.clone(),
                x: x.value_of_summary(row),
                y: yv,
            })
        })
        .collect();
    points.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    points
}

/// Box-plot overview from pre-extracted per-iteration series (the query
/// engine's `boxplot_series` projection): one box per run, labelled by
/// command, matching [`overview`]'s output shape.
#[must_use]
pub fn overview_series(series: &[(String, Vec<f64>)]) -> Vec<(String, Describe)> {
    series
        .iter()
        .filter(|(_, values)| !values.is_empty())
        .map(|(label, values)| (label.clone(), Describe::of(values)))
        .collect()
}

/// Box-plot overview per knowledge object: the per-iteration throughput
/// distribution of one operation (§V-D's automatic overview chart).
#[must_use]
pub fn overview(items: &[&Knowledge], operation: &str) -> Vec<(String, Describe)> {
    items
        .iter()
        .filter_map(|k| {
            let series: Vec<f64> = k
                .results
                .iter()
                .filter(|r| r.operation == operation)
                .map(|r| r.bw_mib)
                .collect();
            if series.is_empty() {
                None
            } else {
                Some((k.command.clone(), Describe::of(&series)))
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_core::model::{IterationResult, KnowledgeSource, OperationSummary};

    fn knowledge(command: &str, api: &str, tasks: u32, xfer: u64, mean_bw: f64) -> Knowledge {
        let mut k = Knowledge::new(KnowledgeSource::Ior, command);
        k.pattern.api = api.into();
        k.pattern.tasks = tasks;
        k.pattern.transfer_size = xfer;
        k.summaries.push(OperationSummary {
            operation: "write".into(),
            api: api.into(),
            max_mib: mean_bw * 1.1,
            min_mib: mean_bw * 0.9,
            mean_mib: mean_bw,
            stddev_mib: mean_bw * 0.05,
            mean_ops: mean_bw / 2.0,
            iterations: 3,
        });
        for i in 0..3 {
            k.results.push(IterationResult {
                operation: "write".into(),
                iteration: i,
                bw_mib: mean_bw + f64::from(i) * 10.0,
                ops: 100,
                ops_per_sec: 50.0,
                latency_s: 0.001,
                open_s: 0.001,
                wrrd_s: 1.0,
                close_s: 0.001,
                total_s: 1.0,
            });
        }
        k
    }

    #[test]
    fn compare_sorts_by_x() {
        let a = knowledge("ior -t 2m", "MPIIO", 80, 2 << 20, 2800.0);
        let b = knowledge("ior -t 512k", "MPIIO", 80, 512 << 10, 1900.0);
        let c = knowledge("ior -t 1m", "MPIIO", 80, 1 << 20, 2400.0);
        let points = compare(
            &[&a, &b, &c],
            &[],
            OptionAxis::TransferSize,
            &MetricAxis::MeanBandwidth("write".into()),
        );
        let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
        assert_eq!(
            xs,
            vec![(512 << 10) as f64, (1 << 20) as f64, (2 << 20) as f64]
        );
        assert_eq!(points[0].y, 1900.0);
    }

    #[test]
    fn filters_narrow_selection() {
        let a = knowledge("ior -a mpiio", "MPIIO", 80, 1 << 20, 2800.0);
        let b = knowledge("ior -a posix", "POSIX", 40, 1 << 20, 2000.0);
        let points = compare(
            &[&a, &b],
            &[KnowledgeFilter::Api("MPIIO".into())],
            OptionAxis::Tasks,
            &MetricAxis::MeanBandwidth("write".into()),
        );
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].command, "ior -a mpiio");

        let points = compare(
            &[&a, &b],
            &[KnowledgeFilter::TasksBetween(30, 50)],
            OptionAxis::Tasks,
            &MetricAxis::MeanBandwidth("write".into()),
        );
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].x, 40.0);

        let points = compare(
            &[&a, &b],
            &[KnowledgeFilter::CommandContains("posix".into())],
            OptionAxis::Tasks,
            &MetricAxis::MaxBandwidth("write".into()),
        );
        assert_eq!(points.len(), 1);
        assert!((points[0].y - 2200.0).abs() < 1e-9);
    }

    #[test]
    fn missing_operation_is_dropped() {
        let a = knowledge("ior", "MPIIO", 80, 1 << 20, 2800.0);
        let points = compare(
            &[&a],
            &[],
            OptionAxis::Tasks,
            &MetricAxis::MeanBandwidth("read".into()),
        );
        assert!(points.is_empty());
        assert!(!KnowledgeFilter::HasOperation("read".into()).matches(&a));
        assert!(KnowledgeFilter::HasOperation("write".into()).matches(&a));
    }

    #[test]
    fn overview_builds_boxplots() {
        let a = knowledge("ior A", "MPIIO", 80, 1 << 20, 2800.0);
        let b = knowledge("ior B", "MPIIO", 80, 1 << 20, 1000.0);
        let boxes = overview(&[&a, &b], "write");
        assert_eq!(boxes.len(), 2);
        assert_eq!(boxes[0].0, "ior A");
        assert_eq!(boxes[0].1.n, 3);
        assert!((boxes[0].1.mean - 2810.0).abs() < 1e-9);
        assert!(overview(&[&a], "read").is_empty());
    }

    #[test]
    fn axis_labels() {
        assert_eq!(OptionAxis::TransferSize.label(), "transfer size (bytes)");
        assert_eq!(
            MetricAxis::MeanOps("stat".into()).label(),
            "mean stat ops/s"
        );
    }
}
