//! The IO500 bounding box (after Liem et al., §II-B and §V-E2).
//!
//! Reference IO500 runs on a healthy system span an *expectation box* per
//! test case; a new run (or an application's measured performance) is
//! mapped into the box, and any dimension falling outside — especially
//! below — indicates an anomaly such as a broken node. The paper's
//! prototype demonstrates a one-dimensional simplification using
//! `ior-easy` and `ior-hard`; this implementation supports any subset of
//! test cases.

use iokc_core::ctx::PhaseCtx;
use iokc_core::model::{Io500Knowledge, KnowledgeItem};
use iokc_core::phases::{Analyzer, CycleError, Finding};
use iokc_util::stats;
use std::collections::BTreeMap;

/// Expected range for one test case, learned from reference runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Bound {
    /// Lowest reference value.
    pub min: f64,
    /// Highest reference value.
    pub max: f64,
    /// Mean of reference values.
    pub mean: f64,
    /// Tolerance margin applied on membership tests (fraction of mean).
    pub margin: f64,
}

impl Bound {
    /// Membership with margin.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        let slack = self.mean * self.margin;
        value >= self.min - slack && value <= self.max + slack
    }
}

/// Where a value landed relative to a bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the expectation box.
    Inside,
    /// Below — the anomalous direction for performance metrics.
    Below,
    /// Above — better than expected (suspicious for caching effects).
    Above,
}

/// The multi-dimensional bounding box.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BoundingBox {
    bounds: BTreeMap<String, Bound>,
}

impl BoundingBox {
    /// Learn a box from reference runs, using `testcases` as dimensions
    /// (empty slice = every test case present in the references).
    /// `margin` is the tolerated fractional slack (e.g. `0.1`).
    #[must_use]
    pub fn fit(references: &[&Io500Knowledge], testcases: &[&str], margin: f64) -> BoundingBox {
        let mut series: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for reference in references {
            for tc in &reference.testcases {
                if testcases.is_empty() || testcases.contains(&tc.name.as_str()) {
                    series.entry(tc.name.clone()).or_default().push(tc.value);
                }
            }
        }
        let bounds = series
            .into_iter()
            .map(|(name, values)| {
                (
                    name,
                    Bound {
                        min: stats::min(&values),
                        max: stats::max(&values),
                        mean: stats::mean(&values),
                        margin,
                    },
                )
            })
            .collect();
        BoundingBox { bounds }
    }

    /// Dimensions of the box.
    #[must_use]
    pub fn dimensions(&self) -> Vec<&str> {
        self.bounds.keys().map(String::as_str).collect()
    }

    /// Bound of one dimension.
    #[must_use]
    pub fn bound(&self, testcase: &str) -> Option<&Bound> {
        self.bounds.get(testcase)
    }

    /// Map a run into the box: verdict per shared dimension.
    #[must_use]
    pub fn check(&self, run: &Io500Knowledge) -> Vec<(String, f64, Verdict)> {
        let mut verdicts = Vec::new();
        for tc in &run.testcases {
            let Some(bound) = self.bounds.get(&tc.name) else {
                continue;
            };
            let verdict = if bound.contains(tc.value) {
                Verdict::Inside
            } else if tc.value < bound.min {
                Verdict::Below
            } else {
                Verdict::Above
            };
            verdicts.push((tc.name.clone(), tc.value, verdict));
        }
        verdicts
    }

    /// Render the paper's simplified one-dimensional view: each dimension
    /// as `name [min … max] value MARK`.
    #[must_use]
    pub fn render_check(&self, run: &Io500Knowledge) -> String {
        let mut out = String::new();
        out.push_str("bounding box check\n");
        for (name, value, verdict) in self.check(run) {
            let bound = &self.bounds[&name];
            let mark = match verdict {
                Verdict::Inside => "ok",
                Verdict::Below => "BELOW EXPECTATION",
                Verdict::Above => "above expectation",
            };
            out.push_str(&format!(
                "  {name:<22} [{:>10.4} … {:>10.4}] got {value:>10.4} {mark}\n",
                bound.min, bound.max
            ));
        }
        out
    }
}

/// The two-dimensional expectation box of Liem et al.: the bandwidth
/// score (from ior-easy/ior-hard) spans one axis, the metadata score
/// (from mdtest-easy/hard) the other, and an application's (bw, md)
/// point is mapped into the rectangle to judge whether its performance
/// is realistic for the system.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectationBox2D {
    /// Bandwidth-axis bound (GiB/s).
    pub bw: Bound,
    /// Metadata-axis bound (kIOPS).
    pub md: Bound,
}

impl ExpectationBox2D {
    /// Fit the rectangle from reference runs' scores.
    #[must_use]
    pub fn fit(references: &[&Io500Knowledge], margin: f64) -> Option<ExpectationBox2D> {
        if references.is_empty() {
            return None;
        }
        let bws: Vec<f64> = references.iter().map(|r| r.bw_score).collect();
        let mds: Vec<f64> = references.iter().map(|r| r.md_score).collect();
        Some(ExpectationBox2D {
            bw: Bound {
                min: stats::min(&bws),
                max: stats::max(&bws),
                mean: stats::mean(&bws),
                margin,
            },
            md: Bound {
                min: stats::min(&mds),
                max: stats::max(&mds),
                mean: stats::mean(&mds),
                margin,
            },
        })
    }

    /// Judge a (bandwidth, metadata) point. Returns a verdict per axis.
    #[must_use]
    pub fn check_point(&self, bw: f64, md: f64) -> (Verdict, Verdict) {
        let axis = |bound: &Bound, value: f64| {
            if bound.contains(value) {
                Verdict::Inside
            } else if value < bound.min {
                Verdict::Below
            } else {
                Verdict::Above
            }
        };
        (axis(&self.bw, bw), axis(&self.md, md))
    }

    /// Render the rectangle with the subject point as ASCII art — the
    /// "visual representation of the bounding box" of §II-B, terminal
    /// edition. The plot spans [0, 1.3 × max] on both axes.
    #[must_use]
    pub fn render_with_point(&self, bw: f64, md: f64) -> String {
        const W: usize = 48;
        const H: usize = 14;
        let x_span = (self.bw.max.max(bw) * 1.3).max(1e-9);
        let y_span = (self.md.max.max(md) * 1.3).max(1e-9);
        let to_col = |value: f64| ((value / x_span) * (W - 1) as f64).round() as usize;
        let to_row = |value: f64| H - 1 - ((value / y_span) * (H - 1) as f64).round() as usize;
        let mut grid = vec![vec![' '; W]; H];
        let (left, right) = (to_col(self.bw.min), to_col(self.bw.max));
        let (bottom, top) = (to_row(self.md.min), to_row(self.md.max));
        let right_edge = right.min(W - 1);
        for cell in &mut grid[top][left..=right_edge] {
            *cell = '-';
        }
        for cell in &mut grid[bottom][left..=right_edge] {
            *cell = '-';
        }
        for row in grid.iter_mut().take(bottom + 1).skip(top) {
            if row[left] == ' ' {
                row[left] = '|';
            }
            if row[right_edge] == ' ' {
                row[right_edge] = '|';
            }
        }
        let (pc, pr) = (to_col(bw).min(W - 1), to_row(md).min(H - 1));
        grid[pr][pc] = '*';
        let mut out = String::new();
        out.push_str(&format!(
            "metadata (kIOPS) up to {y_span:.2}; bandwidth (GiB/s) up to {x_span:.2}
"
        ));
        for row in grid {
            out.push_str(&row.into_iter().collect::<String>());
            out.push('\n');
        }
        let (vb, vm) = self.check_point(bw, md);
        out.push_str(&format!(
            "point * = ({bw:.3} GiB/s, {md:.3} kIOPS): bandwidth {vb:?}, metadata {vm:?}
"
        ));
        out
    }
}

/// An [`Analyzer`] that fits a box on all but the newest IO500 run and
/// checks the newest run against it.
#[derive(Debug, Clone)]
pub struct BoundingBoxDetector {
    /// Dimensions (empty = all).
    pub testcases: Vec<String>,
    /// Fractional slack.
    pub margin: f64,
}

impl Default for BoundingBoxDetector {
    fn default() -> BoundingBoxDetector {
        BoundingBoxDetector {
            testcases: vec![
                "ior-easy-write".to_owned(),
                "ior-easy-read".to_owned(),
                "ior-hard-write".to_owned(),
                "ior-hard-read".to_owned(),
            ],
            margin: 0.15,
        }
    }
}

impl Analyzer for BoundingBoxDetector {
    fn name(&self) -> &str {
        "io500-bounding-box"
    }

    fn analyze(
        &self,
        _ctx: &mut PhaseCtx,
        items: &[KnowledgeItem],
    ) -> Result<Vec<Finding>, CycleError> {
        let runs: Vec<&Io500Knowledge> = items
            .iter()
            .filter_map(|item| match item {
                KnowledgeItem::Io500(k) => Some(k),
                KnowledgeItem::Benchmark(_) => None,
            })
            .collect();
        if runs.len() < 2 {
            return Ok(Vec::new());
        }
        let (subject, references) = runs.split_last().expect("len >= 2");
        let names: Vec<&str> = self.testcases.iter().map(String::as_str).collect();
        let bbox = BoundingBox::fit(references, &names, self.margin);
        let mut findings = Vec::new();
        for (name, value, verdict) in bbox.check(subject) {
            if verdict == Verdict::Inside {
                continue;
            }
            let bound = bbox.bound(&name).expect("checked dimension exists");
            findings.push(Finding {
                tag: "bounding-box".to_owned(),
                knowledge_id: subject.id,
                message: format!(
                    "{name} = {value:.4} falls {} the expectation box [{:.4} … {:.4}]",
                    if verdict == Verdict::Below {
                        "below"
                    } else {
                        "above"
                    },
                    bound.min,
                    bound.max
                ),
                values: vec![value, bound.min, bound.max],
            });
        }
        Ok(findings)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests2d {
    use super::*;
    use iokc_core::model::Io500Knowledge;

    fn scored(bw: f64, md: f64) -> Io500Knowledge {
        Io500Knowledge {
            id: None,
            tasks: 40,
            bw_score: bw,
            md_score: md,
            total_score: (bw * md).sqrt(),
            testcases: Vec::new(),
            options: Default::default(),
            system: None,
            start_time: 0,
            warnings: Vec::new(),
        }
    }

    #[test]
    fn rectangle_classifies_points_per_axis() {
        let refs = [scored(1.0, 10.0), scored(1.2, 12.0), scored(0.9, 11.0)];
        let ref_refs: Vec<&Io500Knowledge> = refs.iter().collect();
        let bbox = ExpectationBox2D::fit(&ref_refs, 0.05).unwrap();
        // A well-tuned application inside the box on both axes.
        assert_eq!(
            bbox.check_point(1.1, 11.0),
            (Verdict::Inside, Verdict::Inside)
        );
        // Bandwidth fine, metadata collapsed (too many tiny files).
        assert_eq!(
            bbox.check_point(1.0, 2.0),
            (Verdict::Inside, Verdict::Below)
        );
        // Suspiciously fast bandwidth (cache artifact).
        assert_eq!(
            bbox.check_point(5.0, 11.0),
            (Verdict::Above, Verdict::Inside)
        );
        assert!(ExpectationBox2D::fit(&[], 0.1).is_none());
    }

    #[test]
    fn ascii_rendering_places_the_point() {
        let refs = [scored(1.0, 10.0), scored(1.4, 14.0)];
        let ref_refs: Vec<&Io500Knowledge> = refs.iter().collect();
        let bbox = ExpectationBox2D::fit(&ref_refs, 0.1).unwrap();
        let art = bbox.render_with_point(0.3, 5.0);
        assert!(art.contains('*'));
        assert!(art.contains('|') && art.contains('-'));
        assert!(art.contains("bandwidth Below"));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn test_ctx() -> PhaseCtx {
        PhaseCtx::detached(iokc_core::phases::PhaseKind::Analysis, "test")
    }
    use iokc_core::model::Io500Testcase;

    fn run(easy_w: f64, easy_r: f64, hard_w: f64, hard_r: f64) -> Io500Knowledge {
        Io500Knowledge {
            id: None,
            tasks: 40,
            bw_score: 0.0,
            md_score: 0.0,
            total_score: 0.0,
            testcases: vec![
                tc("ior-easy-write", easy_w),
                tc("ior-easy-read", easy_r),
                tc("ior-hard-write", hard_w),
                tc("ior-hard-read", hard_r),
            ],
            options: Default::default(),
            system: None,
            start_time: 0,
            warnings: Vec::new(),
        }
    }

    fn tc(name: &str, value: f64) -> Io500Testcase {
        Io500Testcase {
            name: name.into(),
            value,
            unit: "GiB/s".into(),
            time_s: 1.0,
        }
    }

    fn references() -> Vec<Io500Knowledge> {
        vec![
            run(2.4, 2.6, 0.10, 0.40),
            run(2.6, 2.65, 0.14, 0.41),
            run(2.5, 2.62, 0.09, 0.39),
        ]
    }

    #[test]
    fn fit_and_membership() {
        let refs = references();
        let ref_refs: Vec<&Io500Knowledge> = refs.iter().collect();
        let bbox = BoundingBox::fit(&ref_refs, &[], 0.1);
        assert_eq!(bbox.dimensions().len(), 4);
        let b = bbox.bound("ior-easy-write").unwrap();
        assert_eq!(b.min, 2.4);
        assert_eq!(b.max, 2.6);
        assert!(b.contains(2.5));
        assert!(b.contains(2.65), "within 10% slack");
        assert!(!b.contains(1.0));
    }

    #[test]
    fn broken_node_read_detected_below_box() {
        // Fig. 6: write variance is large; the degraded run's ior-easy
        // read collapses.
        let refs = references();
        let ref_refs: Vec<&Io500Knowledge> = refs.iter().collect();
        let bbox = BoundingBox::fit(&ref_refs, &[], 0.1);
        let degraded = run(2.45, 0.9, 0.11, 0.40);
        let verdicts = bbox.check(&degraded);
        let easy_read = verdicts
            .iter()
            .find(|(name, _, _)| name == "ior-easy-read")
            .unwrap();
        assert_eq!(easy_read.2, Verdict::Below);
        let easy_write = verdicts
            .iter()
            .find(|(name, _, _)| name == "ior-easy-write")
            .unwrap();
        assert_eq!(easy_write.2, Verdict::Inside);
    }

    #[test]
    fn above_detected_for_suspicious_speedups() {
        let refs = references();
        let ref_refs: Vec<&Io500Knowledge> = refs.iter().collect();
        let bbox = BoundingBox::fit(&ref_refs, &[], 0.05);
        let cached = run(2.5, 9.9, 0.1, 0.4);
        let verdicts = bbox.check(&cached);
        assert!(verdicts
            .iter()
            .any(|(n, _, v)| n == "ior-easy-read" && *v == Verdict::Above));
    }

    #[test]
    fn render_marks_violations() {
        let refs = references();
        let ref_refs: Vec<&Io500Knowledge> = refs.iter().collect();
        let bbox = BoundingBox::fit(&ref_refs, &[], 0.1);
        let text = bbox.render_check(&run(2.45, 0.9, 0.11, 0.40));
        assert!(text.contains("ior-easy-read"));
        assert!(text.contains("BELOW EXPECTATION"));
        assert!(text.contains("ior-easy-write"));
    }

    #[test]
    fn analyzer_checks_newest_against_rest() {
        let mut items: Vec<KnowledgeItem> =
            references().into_iter().map(KnowledgeItem::Io500).collect();
        items.push(KnowledgeItem::Io500(run(2.45, 0.9, 0.11, 0.40)));
        let findings = BoundingBoxDetector::default()
            .analyze(&mut test_ctx(), &items)
            .unwrap();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("ior-easy-read"));
        assert!(findings[0].message.contains("below"));
    }

    #[test]
    fn analyzer_needs_two_runs() {
        let items = vec![KnowledgeItem::Io500(run(1.0, 1.0, 1.0, 1.0))];
        assert!(BoundingBoxDetector::default()
            .analyze(&mut test_ctx(), &items)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unknown_dimensions_ignored_on_check() {
        let refs = references();
        let ref_refs: Vec<&Io500Knowledge> = refs.iter().collect();
        let bbox = BoundingBox::fit(&ref_refs, &["ior-easy-write"], 0.1);
        let verdicts = bbox.check(&run(2.5, 0.1, 0.1, 0.1));
        assert_eq!(verdicts.len(), 1, "only the fitted dimension is checked");
    }
}
