//! Chart rendering: SVG for exportable figures, ASCII for terminals.
//!
//! §V-D: "the tool provides the ability to visualize results as an
//! interactive graph and export it as an image file." The web front end
//! is substituted by static SVG output (same information content) plus
//! terminal bars for quick looks.
//!
//! Every chart comes in two flavours: a `write_*` function that streams
//! the SVG/text into any [`fmt::Write`] target (used by the explorer
//! service to fill HTTP response bodies directly) and a `*_chart`-style
//! wrapper returning a `String` for callers that want one.

use std::fmt;

use crate::describe::Describe;

/// A named series of (x, y) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// Chart-wide options.
#[derive(Debug, Clone)]
pub struct ChartOptions {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl Default for ChartOptions {
    fn default() -> ChartOptions {
        ChartOptions {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            width: 800,
            height: 480,
        }
    }
}

const MARGIN: f64 = 60.0;
const PALETTE: [&str; 6] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b",
];

fn bounds(series: &[Series]) -> (f64, f64, f64, f64) {
    let mut xmin = f64::INFINITY;
    let mut xmax = f64::NEG_INFINITY;
    let mut ymin = 0.0f64;
    let mut ymax = f64::NEG_INFINITY;
    for s in series {
        for (x, y) in &s.points {
            xmin = xmin.min(*x);
            xmax = xmax.max(*x);
            ymin = ymin.min(*y);
            ymax = ymax.max(*y);
        }
    }
    if !xmin.is_finite() {
        (xmin, xmax) = (0.0, 1.0);
    }
    if !ymax.is_finite() {
        ymax = 1.0;
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    (xmin, xmax, ymin, ymax)
}

/// Stream a line chart (one polyline per series, with point markers and a
/// legend) as a standalone SVG document into `out`.
pub fn write_line_chart<W: fmt::Write>(
    series: &[Series],
    opts: &ChartOptions,
    out: &mut W,
) -> fmt::Result {
    let (xmin, xmax, ymin, ymax) = bounds(series);
    let w = f64::from(opts.width);
    let h = f64::from(opts.height);
    let plot_w = w - 2.0 * MARGIN;
    let plot_h = h - 2.0 * MARGIN;
    let sx = |x: f64| MARGIN + (x - xmin) / (xmax - xmin) * plot_w;
    let sy = |y: f64| h - MARGIN - (y - ymin) / (ymax - ymin) * plot_h;

    write_svg_header(opts, xmin, xmax, ymin, ymax, out)?;
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        write!(
            out,
            "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"2\" points=\""
        )?;
        for (pi, (x, y)) in s.points.iter().enumerate() {
            if pi > 0 {
                out.write_char(' ')?;
            }
            write!(out, "{:.1},{:.1}", sx(*x), sy(*y))?;
        }
        writeln!(out, "\"/>")?;
        for (x, y) in &s.points {
            writeln!(
                out,
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"{color}\"/>",
                sx(*x),
                sy(*y)
            )?;
        }
        writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"{color}\" font-size=\"12\">{}</text>",
            w - MARGIN - 150.0,
            MARGIN + 16.0 * (i as f64 + 1.0),
            escape(&s.label)
        )?;
    }
    writeln!(out, "</svg>")
}

/// Render a line chart as a `String` (see [`write_line_chart`]).
#[must_use]
pub fn line_chart(series: &[Series], opts: &ChartOptions) -> String {
    let mut svg = String::new();
    let _ = write_line_chart(series, opts, &mut svg);
    svg
}

/// Stream grouped bars (e.g. write/read bandwidth per iteration — the
/// Fig. 5 layout) as SVG into `out`. `categories` label the x positions;
/// each series contributes one bar per category.
pub fn write_bar_chart<W: fmt::Write>(
    categories: &[String],
    series: &[Series],
    opts: &ChartOptions,
    out: &mut W,
) -> fmt::Result {
    let ymax = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(_, y)| *y))
        .fold(1.0f64, f64::max);
    let w = f64::from(opts.width);
    let h = f64::from(opts.height);
    let plot_w = w - 2.0 * MARGIN;
    let plot_h = h - 2.0 * MARGIN;
    let ncat = categories.len().max(1) as f64;
    let group_w = plot_w / ncat;
    let bar_w = (group_w * 0.8) / series.len().max(1) as f64;

    write_svg_header(opts, 0.0, ncat, 0.0, ymax, out)?;
    for (si, s) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        for (ci, (_, y)) in s.points.iter().enumerate() {
            let x = MARGIN + ci as f64 * group_w + group_w * 0.1 + si as f64 * bar_w;
            let bar_h = (y / ymax) * plot_h;
            writeln!(
                out,
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{color}\"/>",
                x,
                h - MARGIN - bar_h,
                bar_w,
                bar_h
            )?;
        }
        writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"{color}\" font-size=\"12\">{}</text>",
            w - MARGIN - 150.0,
            MARGIN + 16.0 * (si as f64 + 1.0),
            escape(&s.label)
        )?;
    }
    for (ci, category) in categories.iter().enumerate() {
        writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"middle\">{}</text>",
            MARGIN + (ci as f64 + 0.5) * group_w,
            h - MARGIN + 16.0,
            escape(category)
        )?;
    }
    writeln!(out, "</svg>")
}

/// Render grouped bars as a `String` (see [`write_bar_chart`]).
#[must_use]
pub fn bar_chart(categories: &[String], series: &[Series], opts: &ChartOptions) -> String {
    let mut svg = String::new();
    let _ = write_bar_chart(categories, series, opts, &mut svg);
    svg
}

/// Stream box plots (one per labelled [`Describe`]) as SVG into `out` —
/// the §V-D overview chart.
pub fn write_box_plot<W: fmt::Write>(
    boxes: &[(String, Describe)],
    opts: &ChartOptions,
    out: &mut W,
) -> fmt::Result {
    let ymax = boxes.iter().map(|(_, d)| d.max).fold(1.0f64, f64::max);
    let w = f64::from(opts.width);
    let h = f64::from(opts.height);
    let plot_w = w - 2.0 * MARGIN;
    let plot_h = h - 2.0 * MARGIN;
    let n = boxes.len().max(1) as f64;
    let slot = plot_w / n;
    let sy = |y: f64| h - MARGIN - (y / ymax) * plot_h;

    write_svg_header(opts, 0.0, n, 0.0, ymax, out)?;
    for (i, (label, d)) in boxes.iter().enumerate() {
        let cx = MARGIN + (i as f64 + 0.5) * slot;
        let half = slot * 0.25;
        // Whiskers.
        writeln!(
            out,
            "<line x1=\"{cx:.1}\" y1=\"{:.1}\" x2=\"{cx:.1}\" y2=\"{:.1}\" stroke=\"#333\"/>",
            sy(d.min),
            sy(d.max)
        )?;
        // Box q1..q3.
        writeln!(
            out,
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"#9ecae1\" stroke=\"#333\"/>",
            cx - half,
            sy(d.q3),
            2.0 * half,
            (sy(d.q1) - sy(d.q3)).max(1.0)
        )?;
        // Median.
        writeln!(
            out,
            "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#d62728\" stroke-width=\"2\"/>",
            cx - half,
            sy(d.median),
            cx + half,
            sy(d.median)
        )?;
        // Mean marker.
        writeln!(
            out,
            "<circle cx=\"{cx:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"#2ca02c\"/>",
            sy(d.mean)
        )?;
        writeln!(
            out,
            "<text x=\"{cx:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"middle\">{}</text>",
            h - MARGIN + 16.0,
            escape(label)
        )?;
    }
    writeln!(out, "</svg>")
}

/// Render box plots as a `String` (see [`write_box_plot`]).
#[must_use]
pub fn box_plot(boxes: &[(String, Describe)], opts: &ChartOptions) -> String {
    let mut svg = String::new();
    let _ = write_box_plot(boxes, opts, &mut svg);
    svg
}

fn write_svg_header<W: fmt::Write>(
    opts: &ChartOptions,
    xmin: f64,
    xmax: f64,
    ymin: f64,
    ymax: f64,
    out: &mut W,
) -> fmt::Result {
    let w = f64::from(opts.width);
    let h = f64::from(opts.height);
    writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">",
        opts.width, opts.height, opts.width, opts.height
    )?;
    writeln!(out, "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>")?;
    writeln!(
        out,
        "<text x=\"{:.1}\" y=\"24\" font-size=\"16\" text-anchor=\"middle\">{}</text>",
        w / 2.0,
        escape(&opts.title)
    )?;
    // Axes.
    writeln!(
        out,
        "<line x1=\"{MARGIN}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#333\"/>",
        h - MARGIN,
        w - MARGIN,
        h - MARGIN
    )?;
    writeln!(
        out,
        "<line x1=\"{MARGIN}\" y1=\"{MARGIN}\" x2=\"{MARGIN}\" y2=\"{:.1}\" stroke=\"#333\"/>",
        h - MARGIN
    )?;
    writeln!(
        out,
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\">{}</text>",
        w / 2.0,
        h - 12.0,
        escape(&opts.x_label)
    )?;
    writeln!(
        out,
        "<text x=\"16\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\" transform=\"rotate(-90 16 {:.1})\">{}</text>",
        h / 2.0,
        h / 2.0,
        escape(&opts.y_label)
    )?;
    // Min/max tick labels.
    writeln!(
        out,
        "<text x=\"{MARGIN}\" y=\"{:.1}\" font-size=\"10\">{xmin:.6}</text>",
        h - MARGIN + 28.0
    )?;
    writeln!(
        out,
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"end\">{xmax:.6}</text>",
        w - MARGIN,
        h - MARGIN + 28.0
    )?;
    writeln!(
        out,
        "<text x=\"{:.1}\" y=\"{MARGIN}\" font-size=\"10\" text-anchor=\"end\">{ymax:.6}</text>",
        MARGIN - 6.0
    )?;
    writeln!(
        out,
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"end\">{ymin:.6}</text>",
        MARGIN - 6.0,
        h - MARGIN
    )
}

/// Stream a heat map (rows × columns matrix) as SVG into `out` — the
/// chart type the paper's outlook (§VI) asks for. Cell color scales
/// linearly from white to a dark blue at the matrix maximum.
pub fn write_heat_map<W: fmt::Write>(
    matrix: &[Vec<f64>],
    row_labels: &[String],
    opts: &ChartOptions,
    out: &mut W,
) -> fmt::Result {
    let rows = matrix.len().max(1);
    let cols = matrix.first().map(Vec::len).unwrap_or(0).max(1);
    let max = matrix
        .iter()
        .flatten()
        .copied()
        .fold(f64::MIN_POSITIVE, f64::max);
    let w = f64::from(opts.width);
    let h = f64::from(opts.height);
    let plot_w = w - 2.0 * MARGIN;
    let plot_h = h - 2.0 * MARGIN;
    let cell_w = plot_w / cols as f64;
    let cell_h = plot_h / rows as f64;
    writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\">\n         <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n         <text x=\"{:.0}\" y=\"24\" font-size=\"16\" text-anchor=\"middle\">{}</text>",
        opts.width,
        opts.height,
        w / 2.0,
        escape(&opts.title)
    )?;
    for (r, row) in matrix.iter().enumerate() {
        let y = MARGIN + r as f64 * cell_h;
        if let Some(label) = row_labels.get(r) {
            writeln!(
                out,
                "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"end\">{}</text>",
                MARGIN - 6.0,
                y + cell_h * 0.7,
                escape(label)
            )?;
        }
        for (c, value) in row.iter().enumerate() {
            let intensity = (value / max).clamp(0.0, 1.0);
            // white (255,255,255) → dark blue (8,48,107).
            let red = (255.0 - intensity * 247.0) as u8;
            let green = (255.0 - intensity * 207.0) as u8;
            let blue = (255.0 - intensity * 148.0) as u8;
            writeln!(
                out,
                "<rect x=\"{:.1}\" y=\"{y:.1}\" width=\"{:.2}\" height=\"{:.2}\" fill=\"rgb({red},{green},{blue})\"/>",
                MARGIN + c as f64 * cell_w,
                cell_w.max(0.5),
                cell_h.max(0.5)
            )?;
        }
    }
    writeln!(
        out,
        "<text x=\"{:.0}\" y=\"{:.0}\" font-size=\"12\" text-anchor=\"middle\">{}</text>",
        w / 2.0,
        h - 12.0,
        escape(&opts.x_label)
    )?;
    writeln!(out, "</svg>")
}

/// Render a heat map as a `String` (see [`write_heat_map`]).
#[must_use]
pub fn heat_map(matrix: &[Vec<f64>], row_labels: &[String], opts: &ChartOptions) -> String {
    let mut svg = String::new();
    let _ = write_heat_map(matrix, row_labels, opts, &mut svg);
    svg
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Stream ASCII horizontal bars for terminal views into `out`: one row
/// per (label, value).
pub fn write_ascii_bars<W: fmt::Write>(
    rows: &[(String, f64)],
    width: usize,
    out: &mut W,
) -> fmt::Result {
    let max = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN_POSITIVE, f64::max);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    for (label, value) in rows {
        let bar_len = ((value / max) * width as f64).round() as usize;
        writeln!(
            out,
            "{label:<label_w$} | {}{} {value:.2}",
            "#".repeat(bar_len),
            " ".repeat(width.saturating_sub(bar_len))
        )?;
    }
    Ok(())
}

/// Render ASCII horizontal bars as a `String` (see [`write_ascii_bars`]).
#[must_use]
pub fn ascii_bars(rows: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    let _ = write_ascii_bars(rows, width, &mut out);
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn series() -> Vec<Series> {
        vec![
            Series {
                label: "write".into(),
                points: vec![(0.0, 2850.0), (1.0, 1251.0), (2.0, 2840.0)],
            },
            Series {
                label: "read".into(),
                points: vec![(0.0, 3109.0), (1.0, 3095.0), (2.0, 3100.0)],
            },
        ]
    }

    #[test]
    fn line_chart_is_valid_svg() {
        let svg = line_chart(
            &series(),
            &ChartOptions {
                title: "Fig 5".into(),
                x_label: "iteration".into(),
                y_label: "MiB/s".into(),
                ..ChartOptions::default()
            },
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("Fig 5"));
        assert!(svg.contains("iteration"));
    }

    #[test]
    fn writer_and_string_charts_agree() {
        let opts = ChartOptions::default();
        let mut streamed = String::new();
        write_line_chart(&series(), &opts, &mut streamed).unwrap();
        assert_eq!(streamed, line_chart(&series(), &opts));

        let categories: Vec<String> = (0..3).map(|i| format!("iter {i}")).collect();
        let mut streamed = String::new();
        write_bar_chart(&categories, &series(), &opts, &mut streamed).unwrap();
        assert_eq!(streamed, bar_chart(&categories, &series(), &opts));

        let boxes = vec![("run".to_owned(), Describe::of(&[1.0, 2.0, 3.0]))];
        let mut streamed = String::new();
        write_box_plot(&boxes, &opts, &mut streamed).unwrap();
        assert_eq!(streamed, box_plot(&boxes, &opts));
    }

    #[test]
    fn bar_chart_draws_all_bars() {
        let categories: Vec<String> = (0..3).map(|i| format!("iter {i}")).collect();
        let svg = bar_chart(&categories, &series(), &ChartOptions::default());
        assert_eq!(svg.matches("<rect").count(), 1 + 6, "background + 6 bars");
        assert!(svg.contains("iter 2"));
    }

    #[test]
    fn box_plot_draws_boxes() {
        let boxes = vec![
            ("run A".to_owned(), Describe::of(&[1.0, 2.0, 3.0, 4.0])),
            ("run B".to_owned(), Describe::of(&[2.0, 2.5, 3.5, 5.0])),
        ];
        let svg = box_plot(&boxes, &ChartOptions::default());
        assert!(svg.contains("run A"));
        // 1 background + 2 boxes.
        assert_eq!(svg.matches("<rect").count(), 3);
    }

    #[test]
    fn empty_series_do_not_panic() {
        let svg = line_chart(&[], &ChartOptions::default());
        assert!(svg.contains("</svg>"));
        let svg = bar_chart(&[], &[], &ChartOptions::default());
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn labels_are_escaped() {
        let svg = line_chart(
            &[Series {
                label: "a<b&c".into(),
                points: vec![(0.0, 1.0)],
            }],
            &ChartOptions::default(),
        );
        assert!(svg.contains("a&lt;b&amp;c"));
    }

    #[test]
    fn heat_map_renders_cells() {
        let matrix = vec![vec![0.0, 1.0, 2.0], vec![2.0, 1.0, 0.0]];
        let labels = vec!["rank 0".to_owned(), "rank 1".to_owned()];
        let svg = heat_map(
            &matrix,
            &labels,
            &ChartOptions {
                title: "hm".into(),
                ..ChartOptions::default()
            },
        );
        // 1 background + 6 cells.
        assert_eq!(svg.matches("<rect").count(), 7);
        assert!(svg.contains("rank 1"));
        // Max cell is the darkest (smallest rgb components).
        assert!(svg.contains("rgb(8,48,107)"));
        // Zero cells are white.
        assert!(svg.contains("rgb(255,255,255)"));
    }

    #[test]
    fn heat_map_handles_empty() {
        let svg = heat_map(&[], &[], &ChartOptions::default());
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn ascii_bars_scale() {
        let rows = vec![("write".to_owned(), 100.0), ("read".to_owned(), 50.0)];
        let text = ascii_bars(&rows, 20);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains(&"#".repeat(20)));
        assert!(lines[1].contains(&"#".repeat(10)));
        assert!(!lines[1].contains(&"#".repeat(11)));
    }
}
