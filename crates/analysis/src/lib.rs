//! `iokc-analysis` — the knowledge explorer (Phase IV, §V-D).
//!
//! The paper's web-based analysis tool, recast as a library with
//! terminal/SVG front ends:
//!
//! * [`viewer`] — single-run knowledge viewer and the IO500 viewer;
//! * [`mod@compare`] — multi-object comparison with runtime-selectable axes,
//!   filtering/sorting, and the box-plot overview;
//! * [`describe`] — descriptive statistics backing the views;
//! * [`anomaly`] — per-iteration variance anomaly detection with
//!   supporting-metric corroboration (Example II);
//! * [`bounding_box`] — the IO500 expectation box after Liem et al.;
//! * [`mod@corpus`] — the expectation box lifted to fleet scale: per-group
//!   bands fitted from aggregation-pushdown percentiles;
//! * [`charts`] — SVG line/bar/box-plot/heat-map rendering and ASCII bars;
//! * [`dxt_explorer`] — the DXT-Explorer equivalent: per-rank timelines,
//!   transfer heat maps and straggler detection over Darshan DXT traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod anomaly;
pub mod bounding_box;
pub mod charts;
pub mod compare;
pub mod corpus;
pub mod describe;
pub mod dxt_explorer;
pub mod pattern;
pub mod report;
pub mod trend;
pub mod viewer;

pub use anomaly::{IterationAnomaly, IterationVarianceDetector};
pub use bounding_box::{Bound, BoundingBox, BoundingBoxDetector, ExpectationBox2D, Verdict};
pub use charts::{
    ascii_bars, bar_chart, box_plot, heat_map, line_chart, write_ascii_bars, write_bar_chart,
    write_box_plot, write_heat_map, write_line_chart, ChartOptions, Series,
};
pub use compare::{
    compare, compare_summaries, overview, overview_series, ComparisonPoint, KnowledgeFilter,
    MetricAxis, OptionAxis,
};
pub use corpus::{CorpusBoxes, CorpusOutlier, DEFAULT_HIGH_Q, DEFAULT_LOW_Q, DEFAULT_MARGIN};
pub use describe::{mad_scores, Describe};
pub use dxt_explorer::{DxtTimeline, RankActivity};
pub use pattern::{classify, render_profile, Direction, IoPatternProfile, Locality, SizeClass};
pub use report::render_html;
pub use trend::{Drift, TrendDetector};
pub use viewer::{render_io500, render_knowledge, write_io500, write_knowledge};
