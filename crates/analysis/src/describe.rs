//! Descriptive statistics and box-plot summaries.
//!
//! The knowledge explorer's overview chart shows each knowledge object
//! "on the basis of their throughput with corresponding min, max, mean as
//! a boxplot" (§V-D); this module computes those summaries.

use iokc_util::stats;

/// Five-number summary plus mean/stddev of a metric series.
///
/// ```
/// use iokc_analysis::Describe;
///
/// let d = Describe::of(&[2850.0, 1251.0, 2840.0, 2860.0, 2855.0, 2845.0]);
/// let (lower_fence, _) = d.fences(1.5);
/// assert!(1251.0 < lower_fence, "the anomalous iteration is an outlier");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Describe {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Describe {
    /// Describe a series. An empty series yields all-zero statistics.
    /// All three quartiles come from one sort of the canonical
    /// interpolated-percentile implementation in `iokc_util::stats`.
    #[must_use]
    pub fn of(values: &[f64]) -> Describe {
        let sorted = stats::sorted_copy(values);
        Describe {
            n: values.len(),
            mean: stats::mean(values),
            stddev: stats::stddev(values),
            min: stats::min(values),
            q1: stats::percentile_sorted(&sorted, 0.25),
            median: stats::percentile_sorted(&sorted, 0.5),
            q3: stats::percentile_sorted(&sorted, 0.75),
            max: stats::max(values),
        }
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Tukey fences at `k` IQRs (the classic outlier rule).
    #[must_use]
    pub fn fences(&self, k: f64) -> (f64, f64) {
        (self.q1 - k * self.iqr(), self.q3 + k * self.iqr())
    }

    /// Coefficient of variation (stddev / mean); zero when mean is zero.
    #[must_use]
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Robust z-scores via the median absolute deviation. Returns one score
/// per sample (0 when MAD is zero).
#[must_use]
pub fn mad_scores(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let med = stats::median(values);
    let deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    let mad = stats::median(&deviations);
    if mad <= f64::EPSILON {
        return vec![0.0; values.len()];
    }
    // 1.4826 ≈ normal-consistency constant.
    values.iter().map(|v| (v - med) / (1.4826 * mad)).collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn describe_matches_hand_values() {
        let d = Describe::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(d.n, 8);
        assert!((d.mean - 5.0).abs() < 1e-12);
        assert!((d.stddev - 2.0).abs() < 1e-12);
        assert_eq!(d.min, 2.0);
        assert_eq!(d.max, 9.0);
        assert!((d.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn empty_series() {
        let d = Describe::of(&[]);
        assert_eq!(d.n, 0);
        assert_eq!(d.mean, 0.0);
        assert_eq!(d.cv(), 0.0);
    }

    #[test]
    fn fences_catch_fig5_anomaly() {
        // Five normal iterations around 2850 and the anomalous 1251.
        let series = [2850.0, 1251.0, 2840.0, 2860.0, 2855.0, 2845.0];
        let d = Describe::of(&series);
        let (lo, _hi) = d.fences(1.5);
        assert!(1251.0 < lo, "anomaly must fall below the lower fence");
        assert!(2840.0 > lo);
    }

    #[test]
    fn mad_scores_flag_outlier() {
        let series = [2850.0, 1251.0, 2840.0, 2860.0, 2855.0, 2845.0];
        let scores = mad_scores(&series);
        assert!(scores[1] < -3.5, "anomaly score {}", scores[1]);
        for (i, s) in scores.iter().enumerate() {
            if i != 1 {
                assert!(s.abs() < 3.5, "iteration {i} wrongly flagged: {s}");
            }
        }
    }

    #[test]
    fn mad_zero_when_constant() {
        assert_eq!(mad_scores(&[5.0, 5.0, 5.0]), vec![0.0, 0.0, 0.0]);
        assert!(mad_scores(&[]).is_empty());
    }
}
