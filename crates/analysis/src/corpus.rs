//! Corpus-wide bounding boxes: the IO500 expectation box of
//! [`crate::bounding_box`] lifted to fleet scale.
//!
//! The per-system detector fits its box from a handful of reference
//! runs it holds in memory. At corpus scale (tens of thousands of
//! runs) that no longer works, so this module fits one [`Bound`] per
//! *group* from the percentile bands of an aggregation-pushdown result
//! ([`iokc_store::aggregate`]): the store streams `RunSummary`
//! projections into `GroupStats` without deserializing any `Knowledge`,
//! and the box is derived from the finished group statistics — fitting
//! cost is O(groups), independent of corpus size. Individual runs are
//! then mapped back into their group's box to flag outlier run ids.

use crate::bounding_box::{Bound, Verdict};
use iokc_store::{AggregateResult, Factor, GroupBy, RunKind, RunSummary};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default lower quantile of the expectation band.
pub const DEFAULT_LOW_Q: f64 = 0.01;
/// Default upper quantile of the expectation band.
pub const DEFAULT_HIGH_Q: f64 = 0.99;
/// Default fractional slack applied on membership tests.
pub const DEFAULT_MARGIN: f64 = 0.05;

/// One run flagged outside its group's expectation band.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusOutlier {
    /// Which id space the run lives in.
    pub kind: RunKind,
    /// Run id within that space.
    pub id: u64,
    /// The group whose box the run was checked against.
    pub group: String,
    /// The metric value the run produced.
    pub value: f64,
    /// Which side of the band it fell on (never [`Verdict::Inside`]).
    pub verdict: Verdict,
    /// Lower edge of the band (before margin slack).
    pub lo: f64,
    /// Upper edge of the band (before margin slack).
    pub hi: f64,
}

/// Per-group expectation boxes fitted from aggregated percentile bands.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusBoxes {
    group_by: GroupBy,
    metric: Factor,
    boxes: BTreeMap<String, Bound>,
}

impl CorpusBoxes {
    /// Fit one box per group from an [`AggregateResult`] computed with
    /// `group_by`/`metric`. The band spans the `[low_q, high_q]`
    /// percentiles of each group (falling back to min/max when the
    /// requested quantile was not part of the aggregation), widened by
    /// the fractional `margin` on membership tests. Groups with fewer
    /// than two rows carry no discriminating power and are skipped.
    #[must_use]
    pub fn fit(
        result: &AggregateResult,
        group_by: GroupBy,
        metric: Factor,
        low_q: f64,
        high_q: f64,
        margin: f64,
    ) -> CorpusBoxes {
        let mut boxes = BTreeMap::new();
        for group in &result.groups {
            if group.count < 2 {
                continue;
            }
            let lo = group.percentile(low_q).unwrap_or(group.min);
            let hi = group.percentile(high_q).unwrap_or(group.max);
            boxes.insert(
                group.key.clone(),
                Bound {
                    min: lo,
                    max: hi,
                    mean: group.mean,
                    margin,
                },
            );
        }
        CorpusBoxes {
            group_by,
            metric,
            boxes,
        }
    }

    /// The groups that received a box, in deterministic order.
    #[must_use]
    pub fn groups(&self) -> Vec<&str> {
        self.boxes.keys().map(String::as_str).collect()
    }

    /// Band of one group.
    #[must_use]
    pub fn bound(&self, group: &str) -> Option<&Bound> {
        self.boxes.get(group)
    }

    /// Map one summary row into its group's box. `None` when the row's
    /// group has no box (too few reference rows) or the value sits
    /// inside the band.
    #[must_use]
    pub fn check(&self, row: &RunSummary) -> Option<CorpusOutlier> {
        let group = self.group_by.key(row);
        let bound = self.boxes.get(&group)?;
        let value = self.metric.extract(row);
        if bound.contains(value) {
            return None;
        }
        let verdict = if value < bound.min {
            Verdict::Below
        } else {
            Verdict::Above
        };
        Some(CorpusOutlier {
            kind: row.kind,
            id: row.id,
            group,
            value,
            verdict,
            lo: bound.min,
            hi: bound.max,
        })
    }

    /// Flag every row falling outside its group's band, in input order.
    #[must_use]
    pub fn flag<'a>(&self, rows: impl IntoIterator<Item = &'a RunSummary>) -> Vec<CorpusOutlier> {
        rows.into_iter().filter_map(|row| self.check(row)).collect()
    }

    /// Render the fitted bands plus the flagged runs as a terminal
    /// table — the corpus edition of
    /// [`crate::bounding_box::BoundingBox::render_check`].
    #[must_use]
    pub fn render(&self, outliers: &[CorpusOutlier]) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "corpus bounding boxes: metric {} grouped by {}",
            self.metric.as_str(),
            self.group_by.as_str()
        );
        for (group, bound) in &self.boxes {
            let _ = writeln!(
                out,
                "  {group:<14} band [{:>12.4} … {:>12.4}] mean {:>12.4}",
                bound.min, bound.max, bound.mean
            );
        }
        if outliers.is_empty() {
            out.push_str("no runs outside their band\n");
        } else {
            let _ = writeln!(out, "{} run(s) outside their band:", outliers.len());
            for o in outliers {
                let mark = match o.verdict {
                    Verdict::Below => "BELOW",
                    Verdict::Above => "above",
                    Verdict::Inside => "ok",
                };
                let _ = writeln!(
                    out,
                    "  {} #{:<6} {:<14} got {:>12.4} {mark} [{:.4} … {:.4}]",
                    o.kind.as_str(),
                    o.id,
                    o.group,
                    o.value,
                    o.lo,
                    o.hi
                );
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_store::{AggregateQuery, DEFAULT_PERCENTILES};

    fn io500_row(id: u64, tasks: u32, total: f64) -> RunSummary {
        RunSummary {
            kind: RunKind::Io500,
            id,
            command: "io500".to_owned(),
            api: String::new(),
            tasks,
            block_size: 0,
            transfer_size: 0,
            segments: 0,
            clients_per_node: 0,
            ops: Vec::new(),
            bw_score: total * 0.8,
            md_score: total * 1.2,
            total_score: total,
            warning_count: 0,
        }
    }

    /// A two-band corpus: tasks=4 scores cluster near 1.0, tasks=8 near
    /// 2.0, with one planted outlier in each band.
    fn corpus() -> Vec<RunSummary> {
        let mut rows = Vec::new();
        for i in 0..40u64 {
            let jitter = 1.0 + 0.01 * (i % 7) as f64;
            rows.push(io500_row(i, 4, jitter));
            rows.push(io500_row(100 + i, 8, 2.0 * jitter));
        }
        rows.push(io500_row(900, 4, 0.2)); // degraded
        rows.push(io500_row(901, 8, 9.0)); // cache artifact
        rows
    }

    fn fitted(rows: &[RunSummary]) -> CorpusBoxes {
        let q = AggregateQuery::new(GroupBy::TasksLog2, Factor::TotalScore)
            .with_percentiles(&DEFAULT_PERCENTILES);
        let result = q.evaluate_rows(rows.iter());
        CorpusBoxes::fit(
            &result,
            GroupBy::TasksLog2,
            Factor::TotalScore,
            DEFAULT_LOW_Q,
            DEFAULT_HIGH_Q,
            DEFAULT_MARGIN,
        )
    }

    #[test]
    fn flags_planted_outliers_per_group() {
        let rows = corpus();
        let boxes = fitted(&rows);
        assert_eq!(boxes.groups(), vec!["tasks 2^2", "tasks 2^3"]);
        let outliers = boxes.flag(rows.iter());
        let ids: Vec<u64> = outliers.iter().map(|o| o.id).collect();
        assert_eq!(ids, vec![900, 901]);
        assert_eq!(outliers[0].verdict, Verdict::Below);
        assert_eq!(outliers[0].group, "tasks 2^2");
        assert_eq!(outliers[1].verdict, Verdict::Above);
        assert_eq!(outliers[1].group, "tasks 2^3");
    }

    #[test]
    fn healthy_runs_stay_inside_their_band() {
        let rows: Vec<RunSummary> = corpus().into_iter().filter(|r| r.id < 900).collect();
        let boxes = fitted(&rows);
        assert!(boxes.flag(rows.iter()).is_empty());
    }

    #[test]
    fn sparse_groups_are_skipped_not_fitted() {
        let rows = [io500_row(0, 4, 1.0)];
        let q = AggregateQuery::new(GroupBy::TasksLog2, Factor::TotalScore);
        let result = q.evaluate_rows(rows.iter());
        let boxes = CorpusBoxes::fit(
            &result,
            GroupBy::TasksLog2,
            Factor::TotalScore,
            DEFAULT_LOW_Q,
            DEFAULT_HIGH_Q,
            DEFAULT_MARGIN,
        );
        assert!(boxes.groups().is_empty());
        assert!(boxes.check(&rows[0]).is_none(), "no box, no verdict");
    }

    #[test]
    fn render_lists_bands_and_outliers() {
        let rows = corpus();
        let boxes = fitted(&rows);
        let outliers = boxes.flag(rows.iter());
        let text = boxes.render(&outliers);
        assert!(text.contains("grouped by tasks"));
        assert!(text.contains("tasks 2^2"));
        assert!(text.contains("#900"));
        assert!(text.contains("BELOW"));
        let clean = boxes.render(&[]);
        assert!(clean.contains("no runs outside"));
    }
}
