//! The per-invocation phase context, and the cycle's observability handle.
//!
//! [`PhaseCtx`] is what every phase-trait method receives: which phase and
//! module is running, which attempt this is under the retry policy, the
//! module's open span, and handles to the shared [`Recorder`] (metrics,
//! events, clock) and [`CancelToken`]. It replaces the zero-context
//! signatures the traits used to have — a module no longer needs side
//! channels to report progress, time itself faithfully under the
//! simulator's virtual clock, or notice that the run is being cancelled.
//!
//! [`Observability`] bundles the recorder and cancel token a
//! [`crate::KnowledgeCycle`] runs under. The default is disabled
//! observability: wall clock, events dropped, metrics still counted —
//! cheap enough to be always-on.

use crate::phases::{CycleError, PhaseKind};
use iokc_obs::{CancelToken, Counter, DeadlineToken, Recorder, SpanId};
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The recorder + cancellation pair a cycle (or campaign) runs under.
#[derive(Debug, Clone, Default)]
pub struct Observability {
    recorder: Arc<Recorder>,
    cancel: CancelToken,
}

impl Observability {
    /// Observability with the given recorder and a fresh cancel token.
    #[must_use]
    pub fn new(recorder: Recorder) -> Observability {
        Observability {
            recorder: Arc::new(recorder),
            cancel: CancelToken::new(),
        }
    }

    /// Disabled observability: wall clock, no event sink, metrics only.
    #[must_use]
    pub fn disabled() -> Observability {
        Observability::default()
    }

    /// The shared recorder.
    #[must_use]
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The cancel token; cancel it to wind the cycle down cooperatively.
    #[must_use]
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The recorder's metrics registry.
    #[must_use]
    pub fn metrics(&self) -> Arc<iokc_obs::MetricsRegistry> {
        self.recorder.metrics()
    }
}

/// The context one module invocation runs in.
///
/// A fresh context is built per attempt, so [`PhaseCtx::attempt`] always
/// names the current try. Contexts are cheap: a couple of `Arc` clones
/// and a small struct.
pub struct PhaseCtx {
    phase: PhaseKind,
    module: String,
    attempt: u32,
    max_attempts: u32,
    span: SpanId,
    recorder: Arc<Recorder>,
    deadline: DeadlineToken,
}

impl fmt::Debug for PhaseCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhaseCtx")
            .field("phase", &self.phase)
            .field("module", &self.module)
            .field("attempt", &self.attempt)
            .field("span", &self.span)
            .finish_non_exhaustive()
    }
}

/// The shared recorder behind detached contexts (tests, direct module
/// invocations outside a cycle).
fn null_recorder() -> Arc<Recorder> {
    static NULL: OnceLock<Arc<Recorder>> = OnceLock::new();
    Arc::clone(NULL.get_or_init(|| Arc::new(Recorder::disabled())))
}

impl PhaseCtx {
    /// The context the orchestrator builds for one attempt of one module
    /// invocation.
    #[must_use]
    pub(crate) fn for_attempt(
        phase: PhaseKind,
        module: &str,
        attempt: u32,
        max_attempts: u32,
        span: SpanId,
        recorder: &Arc<Recorder>,
        cancel: &CancelToken,
    ) -> PhaseCtx {
        PhaseCtx {
            phase,
            module: module.to_owned(),
            attempt,
            max_attempts,
            span,
            recorder: Arc::clone(recorder),
            deadline: DeadlineToken::cancellable(cancel.clone()),
        }
    }

    /// A standalone context, for invoking a phase module outside a
    /// running cycle (tests, CLI one-shot commands). Events are dropped;
    /// metrics go to a process-wide null recorder.
    #[must_use]
    pub fn detached(phase: PhaseKind, module: &str) -> PhaseCtx {
        let recorder = null_recorder();
        let span = recorder.start_span(module, None, Some(phase.as_str()), Some(module));
        PhaseCtx {
            phase,
            module: module.to_owned(),
            attempt: 1,
            max_attempts: 1,
            span: span.id,
            recorder,
            deadline: DeadlineToken::unbounded(),
        }
    }

    /// The same context with a wall-clock budget attached: downstream
    /// polls of [`PhaseCtx::is_cancelled`] (and the deadline token itself)
    /// start tripping once `budget` has elapsed, in addition to explicit
    /// cancellation. Servers use this to carry per-request deadlines into
    /// phase and store work.
    #[must_use]
    pub fn with_deadline(mut self, budget: Duration) -> PhaseCtx {
        self.deadline = DeadlineToken::with_budget(self.deadline.cancel_token().clone(), budget);
        self
    }

    /// The deadline token this invocation runs under — pass it to
    /// deadline-aware callees (store query scans) so they stop when the
    /// budget runs out.
    #[must_use]
    pub fn deadline(&self) -> &DeadlineToken {
        &self.deadline
    }

    /// Which phase is running.
    #[must_use]
    pub fn phase(&self) -> PhaseKind {
        self.phase
    }

    /// Which module is running.
    #[must_use]
    pub fn module(&self) -> &str {
        &self.module
    }

    /// Which attempt this is, starting at 1.
    #[must_use]
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The attempt budget the retry policy grants this invocation.
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Is this a retry (attempt 2 or later)?
    #[must_use]
    pub fn is_retry(&self) -> bool {
        self.attempt > 1
    }

    /// The module invocation's open span — pass as the parent when
    /// opening sub-spans on the recorder.
    #[must_use]
    pub fn span(&self) -> SpanId {
        self.span
    }

    /// The shared recorder (clock, events, metrics).
    #[must_use]
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The counter named `name` from the cycle's metrics registry.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.recorder.counter(name)
    }

    /// Record one histogram observation in the cycle's metrics registry.
    pub fn observe(&self, name: &str, value: f64) {
        self.recorder.observe(name, value);
    }

    /// Emit a log event attached to this module's span.
    pub fn log(&self, message: &str) {
        self.recorder.log(Some(self.span), message);
    }

    /// Should this invocation stop — because cancellation was requested
    /// or its deadline budget ran out? Long-running modules poll this at
    /// convenient points and return early.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.deadline.should_stop()
    }

    /// Advance the cycle's virtual clock by `delta_ns` simulated
    /// nanoseconds; a no-op under a wall clock. Simulator-backed modules
    /// call this so spans report simulated time.
    pub fn advance_virtual_ns(&self, delta_ns: u64) {
        self.recorder.advance_ns(delta_ns);
    }

    /// Advance the cycle's virtual clock by `delta_ms` simulated
    /// milliseconds; a no-op under a wall clock.
    pub fn advance_virtual_ms(&self, delta_ms: u64) {
        self.advance_virtual_ns(delta_ms.saturating_mul(1_000_000));
    }

    /// A transient error attributed to this phase and module.
    #[must_use]
    pub fn transient_error(&self, message: impl fmt::Display) -> CycleError {
        CycleError::transient(self.phase, &self.module, message)
    }

    /// A permanent error attributed to this phase and module.
    #[must_use]
    pub fn permanent_error(&self, message: impl fmt::Display) -> CycleError {
        CycleError::permanent(self.phase, &self.module, message)
    }

    /// A corruption error attributed to this phase and module.
    #[must_use]
    pub fn corrupt_error(&self, message: impl fmt::Display) -> CycleError {
        CycleError::corrupt(self.phase, &self.module, message)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::phases::ErrorClass;

    #[test]
    fn detached_context_reports_identity_and_builds_errors() {
        let ctx = PhaseCtx::detached(PhaseKind::Analysis, "variance");
        assert_eq!(ctx.phase(), PhaseKind::Analysis);
        assert_eq!(ctx.module(), "variance");
        assert_eq!(ctx.attempt(), 1);
        assert!(!ctx.is_retry());
        assert!(!ctx.is_cancelled());

        let e = ctx.transient_error("node lost");
        assert_eq!(e.class, ErrorClass::Transient);
        assert_eq!(e.module, "variance");
        assert_eq!(ctx.permanent_error("bad").class, ErrorClass::Permanent);
        assert_eq!(ctx.corrupt_error("torn").class, ErrorClass::Corrupt);
    }

    #[test]
    fn detached_contexts_log_and_count_without_panicking() {
        let ctx = PhaseCtx::detached(PhaseKind::Generation, "gen");
        ctx.log("hello");
        ctx.counter("runs").inc();
        ctx.observe("ms", 1.0);
        ctx.advance_virtual_ms(5); // wall clock: must be a no-op
    }

    #[test]
    fn deadline_budget_trips_is_cancelled() {
        let ctx = PhaseCtx::detached(PhaseKind::Analysis, "variance");
        assert!(!ctx.is_cancelled());
        assert!(ctx.deadline().remaining().is_none());
        let ctx = ctx.with_deadline(Duration::ZERO);
        assert!(ctx.is_cancelled(), "exhausted budget must read as stop");
        assert!(ctx.deadline().expired());
        assert!(!ctx.deadline().cancel_token().is_cancelled());

        let roomy = PhaseCtx::detached(PhaseKind::Analysis, "variance")
            .with_deadline(Duration::from_secs(3600));
        assert!(!roomy.is_cancelled());
        assert!(roomy.deadline().remaining().is_some());
    }
}
