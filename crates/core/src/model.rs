//! The knowledge object model.
//!
//! §V-B of the paper: "the tool extracts different benchmark statistics
//! and transforms the metrics of interest into a knowledge object. Our
//! knowledge object currently consists of the parameters used, i.e.,
//! parameters describing the I/O pattern and the obtained benchmark
//! results", plus file-system settings and `/proc` system statistics.
//! IO500 knowledge is kept as a separate object kind, mirroring the
//! paper's separate `IOFHs*` tables.

use iokc_util::json::Json;
use std::collections::BTreeMap;

/// Where a knowledge object came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnowledgeSource {
    /// IOR benchmark output.
    Ior,
    /// mdtest output.
    Mdtest,
    /// HACC-IO output.
    Hacc,
    /// A Darshan characterization log.
    Darshan,
    /// Another/unknown generator.
    Other,
}

impl KnowledgeSource {
    /// Stable name used in persistence and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            KnowledgeSource::Ior => "ior",
            KnowledgeSource::Mdtest => "mdtest",
            KnowledgeSource::Hacc => "hacc",
            KnowledgeSource::Darshan => "darshan",
            KnowledgeSource::Other => "other",
        }
    }

    /// Parse a stored name.
    #[must_use]
    pub fn parse(name: &str) -> KnowledgeSource {
        match name {
            "ior" => KnowledgeSource::Ior,
            "mdtest" => KnowledgeSource::Mdtest,
            "hacc" => KnowledgeSource::Hacc,
            "darshan" => KnowledgeSource::Darshan,
            _ => KnowledgeSource::Other,
        }
    }
}

/// The I/O pattern parameters of a run (the `performances` table fields).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IoPattern {
    /// I/O interface name (`POSIX`, `MPIIO`, `HDF5`).
    pub api: String,
    /// Test file path.
    pub test_file: String,
    /// Block size, bytes.
    pub block_size: u64,
    /// Transfer size, bytes.
    pub transfer_size: u64,
    /// Segment count.
    pub segments: u64,
    /// File per process?
    pub file_per_proc: bool,
    /// Task reordering?
    pub reorder_tasks: bool,
    /// fsync after write phases?
    pub fsync: bool,
    /// Collective I/O?
    pub collective: bool,
    /// Iterations.
    pub iterations: u32,
    /// Rank count.
    pub tasks: u32,
    /// Ranks per node.
    pub clients_per_node: u32,
}

/// Summary statistics per operation (the `summaries` table).
#[derive(Debug, Clone, PartialEq)]
pub struct OperationSummary {
    /// Operation name (`write` / `read` / `create` / …).
    pub operation: String,
    /// Interface the operation ran through.
    pub api: String,
    /// Max bandwidth over iterations, MiB/s.
    pub max_mib: f64,
    /// Min bandwidth over iterations, MiB/s.
    pub min_mib: f64,
    /// Mean bandwidth over iterations, MiB/s.
    pub mean_mib: f64,
    /// Standard deviation of bandwidth, MiB/s.
    pub stddev_mib: f64,
    /// Mean operations per second.
    pub mean_ops: f64,
    /// Number of iterations summarised.
    pub iterations: u32,
}

/// One per-iteration result (the `results` table; the paper stores
/// individual results "in order to provide a rich set of visualization
/// options").
#[derive(Debug, Clone, PartialEq)]
pub struct IterationResult {
    /// Operation name.
    pub operation: String,
    /// Iteration index.
    pub iteration: u32,
    /// Bandwidth, MiB/s.
    pub bw_mib: f64,
    /// Operation count.
    pub ops: u64,
    /// Operation rate, ops/s.
    pub ops_per_sec: f64,
    /// Mean per-op latency, seconds.
    pub latency_s: f64,
    /// Open span, seconds.
    pub open_s: f64,
    /// Data (wr/rd) span, seconds.
    pub wrrd_s: f64,
    /// Close span, seconds.
    pub close_s: f64,
    /// Total time, seconds.
    pub total_s: f64,
}

/// File-system settings of the run (the `filesystems` table; §V-B lists
/// BeeGFS `Entry type`, `EntryID`, `Metadata node`, `Stripe pattern
/// details`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FilesystemInfo {
    /// File system type (e.g. `BeeGFS`).
    pub fs_type: String,
    /// Entry type (`file` / `directory`).
    pub entry_type: String,
    /// Entry id.
    pub entry_id: String,
    /// Owning metadata node.
    pub metadata_node: String,
    /// Stripe chunk size, bytes.
    pub chunk_size: u64,
    /// Number of storage targets.
    pub storage_targets: u32,
    /// RAID scheme.
    pub raid: String,
    /// Storage pool name.
    pub storage_pool: String,
}

/// System statistics from `/proc` (§V-B).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SystemInfo {
    /// Host/system name.
    pub system: String,
    /// CPU model string.
    pub cpu_model: String,
    /// Processor core count per node.
    pub cores: u32,
    /// Processor frequency, MHz.
    pub cpu_mhz: f64,
    /// Cache size, KiB.
    pub cache_kib: u64,
    /// Memory size, KiB.
    pub mem_kib: u64,
}

/// A benchmark knowledge object.
#[derive(Debug, Clone, PartialEq)]
pub struct Knowledge {
    /// Store-assigned id (`None` until persisted).
    pub id: Option<u64>,
    /// Generator that produced it.
    pub source: KnowledgeSource,
    /// The exact command used (knowledge regeneration keys off this).
    pub command: String,
    /// I/O pattern parameters.
    pub pattern: IoPattern,
    /// Per-operation summaries.
    pub summaries: Vec<OperationSummary>,
    /// Individual per-iteration results.
    pub results: Vec<IterationResult>,
    /// File-system settings, when extracted.
    pub filesystem: Option<FilesystemInfo>,
    /// System statistics, when extracted.
    pub system: Option<SystemInfo>,
    /// Run start, Unix seconds.
    pub start_time: u64,
    /// Run end, Unix seconds.
    pub end_time: u64,
    /// Id of the knowledge object this run was derived from (Example I:
    /// new knowledge generated from existing knowledge).
    pub derived_from: Option<u64>,
    /// Structured extraction warnings: a truncated or partially corrupt
    /// artifact still yields a knowledge object, with the pieces that
    /// could not be recovered recorded here.
    pub warnings: Vec<String>,
}

impl Knowledge {
    /// An empty knowledge object for a source and command.
    #[must_use]
    pub fn new(source: KnowledgeSource, command: &str) -> Knowledge {
        Knowledge {
            id: None,
            source,
            command: command.to_owned(),
            pattern: IoPattern::default(),
            summaries: Vec::new(),
            results: Vec::new(),
            filesystem: None,
            system: None,
            start_time: 0,
            end_time: 0,
            derived_from: None,
            warnings: Vec::new(),
        }
    }

    /// Record an extraction warning (builder style).
    #[must_use]
    pub fn with_warning(mut self, warning: impl Into<String>) -> Knowledge {
        self.warnings.push(warning.into());
        self
    }

    /// Did extraction recover this object only partially?
    #[must_use]
    pub fn is_partial(&self) -> bool {
        !self.warnings.is_empty()
    }

    /// The summary for an operation, if present.
    #[must_use]
    pub fn summary(&self, operation: &str) -> Option<&OperationSummary> {
        self.summaries.iter().find(|s| s.operation == operation)
    }

    /// Per-iteration bandwidth series for an operation.
    #[must_use]
    pub fn series(&self, operation: &str) -> Vec<(u32, f64)> {
        self.results
            .iter()
            .filter(|r| r.operation == operation)
            .map(|r| (r.iteration, r.bw_mib))
            .collect()
    }

    /// Serialize to JSON (the interchange format between the cluster-side
    /// and workstation-side halves of the architecture, Fig. 4).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("source", Json::from(self.source.as_str())),
            ("command", Json::from(self.command.as_str())),
            ("start_time", Json::from(self.start_time)),
            ("end_time", Json::from(self.end_time)),
            ("pattern", pattern_json(&self.pattern)),
            (
                "summaries",
                Json::Arr(self.summaries.iter().map(summary_json).collect()),
            ),
            (
                "results",
                Json::Arr(self.results.iter().map(result_json).collect()),
            ),
        ];
        if let Some(id) = self.id {
            obj.push(("id", Json::from(id)));
        }
        if let Some(fs) = &self.filesystem {
            obj.push(("filesystem", fs_json(fs)));
        }
        if let Some(sys) = &self.system {
            obj.push(("system", system_json(sys)));
        }
        if let Some(parent) = self.derived_from {
            obj.push(("derived_from", Json::from(parent)));
        }
        if !self.warnings.is_empty() {
            obj.push((
                "warnings",
                Json::Arr(
                    self.warnings
                        .iter()
                        .map(|w| Json::from(w.as_str()))
                        .collect(),
                ),
            ));
        }
        Json::obj(obj)
    }

    /// Deserialize from JSON. Returns `None` when required fields are
    /// missing or mistyped.
    #[must_use]
    pub fn from_json(json: &Json) -> Option<Knowledge> {
        let mut k = Knowledge::new(
            KnowledgeSource::parse(json.get("source")?.as_str()?),
            json.get("command")?.as_str()?,
        );
        k.id = json.get("id").and_then(Json::as_u64);
        k.start_time = json.get("start_time")?.as_u64()?;
        k.end_time = json.get("end_time")?.as_u64()?;
        k.pattern = pattern_from(json.get("pattern")?)?;
        for s in json.get("summaries")?.as_arr()? {
            k.summaries.push(summary_from(s)?);
        }
        for r in json.get("results")?.as_arr()? {
            k.results.push(result_from(r)?);
        }
        k.filesystem = json.get("filesystem").and_then(fs_from);
        k.system = json.get("system").and_then(system_from);
        k.derived_from = json.get("derived_from").and_then(Json::as_u64);
        if let Some(warnings) = json.get("warnings").and_then(Json::as_arr) {
            for w in warnings {
                k.warnings.push(w.as_str()?.to_owned());
            }
        }
        Some(k)
    }
}

/// One IO500 test case (the `IOFHsTestcases`/`IOFHsResults` tables).
#[derive(Debug, Clone, PartialEq)]
pub struct Io500Testcase {
    /// Phase name (`ior-easy-write`, …).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit (`GiB/s` or `kIOPS`).
    pub unit: String,
    /// Elapsed seconds.
    pub time_s: f64,
}

/// An IO500 knowledge object (the paper keeps it separate from the IOR
/// knowledge object; `IOFHsRuns`/`IOFHsScores` tables).
#[derive(Debug, Clone, PartialEq)]
pub struct Io500Knowledge {
    /// Store-assigned id.
    pub id: Option<u64>,
    /// Rank count.
    pub tasks: u32,
    /// Bandwidth score, GiB/s.
    pub bw_score: f64,
    /// Metadata score, kIOPS.
    pub md_score: f64,
    /// Total score.
    pub total_score: f64,
    /// All test cases.
    pub testcases: Vec<Io500Testcase>,
    /// Options used (key → value), the `IOFHsOptions` table.
    pub options: BTreeMap<String, String>,
    /// System statistics.
    pub system: Option<SystemInfo>,
    /// Run start, Unix seconds.
    pub start_time: u64,
    /// Structured warnings from lenient extraction. Empty when the run
    /// parsed cleanly.
    pub warnings: Vec<String>,
}

impl Io500Knowledge {
    /// Test case lookup by name.
    #[must_use]
    pub fn testcase(&self, name: &str) -> Option<&Io500Testcase> {
        self.testcases.iter().find(|t| t.name == name)
    }

    /// True when lenient extraction recorded at least one warning.
    #[must_use]
    pub fn is_partial(&self) -> bool {
        !self.warnings.is_empty()
    }

    /// Serialize to JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("tasks", Json::from(u64::from(self.tasks))),
            ("bw_score", Json::from(self.bw_score)),
            ("md_score", Json::from(self.md_score)),
            ("total_score", Json::from(self.total_score)),
            ("start_time", Json::from(self.start_time)),
            (
                "testcases",
                Json::Arr(
                    self.testcases
                        .iter()
                        .map(|t| {
                            Json::obj(vec![
                                ("name", Json::from(t.name.as_str())),
                                ("value", Json::from(t.value)),
                                ("unit", Json::from(t.unit.as_str())),
                                ("time_s", Json::from(t.time_s)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "options",
                Json::Obj(
                    self.options
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                        .collect(),
                ),
            ),
        ];
        if let Some(id) = self.id {
            obj.push(("id", Json::from(id)));
        }
        if let Some(sys) = &self.system {
            obj.push(("system", system_json(sys)));
        }
        if !self.warnings.is_empty() {
            obj.push((
                "warnings",
                Json::Arr(
                    self.warnings
                        .iter()
                        .map(|w| Json::from(w.as_str()))
                        .collect(),
                ),
            ));
        }
        Json::obj(obj)
    }

    /// Deserialize from JSON.
    #[must_use]
    pub fn from_json(json: &Json) -> Option<Io500Knowledge> {
        let mut testcases = Vec::new();
        for t in json.get("testcases")?.as_arr()? {
            testcases.push(Io500Testcase {
                name: t.get("name")?.as_str()?.to_owned(),
                value: t.get("value")?.as_f64()?,
                unit: t.get("unit")?.as_str()?.to_owned(),
                time_s: t.get("time_s")?.as_f64()?,
            });
        }
        let mut options = BTreeMap::new();
        if let Some(Json::Obj(map)) = json.get("options") {
            for (k, v) in map {
                options.insert(k.clone(), v.as_str()?.to_owned());
            }
        }
        Some(Io500Knowledge {
            id: json.get("id").and_then(Json::as_u64),
            tasks: json.get("tasks")?.as_u64()? as u32,
            bw_score: json.get("bw_score")?.as_f64()?,
            md_score: json.get("md_score")?.as_f64()?,
            total_score: json.get("total_score")?.as_f64()?,
            testcases,
            options,
            system: json.get("system").and_then(system_from),
            start_time: json.get("start_time")?.as_u64()?,
            warnings: match json.get("warnings") {
                Some(w) => w
                    .as_arr()?
                    .iter()
                    .map(|x| Some(x.as_str()?.to_owned()))
                    .collect::<Option<Vec<String>>>()?,
                None => Vec::new(),
            },
        })
    }
}

/// Any knowledge item flowing through the cycle.
///
/// The two variants intentionally differ in size — items are moved in
/// small batches between phases, never stored in bulk arrays where the
/// size gap would matter.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum KnowledgeItem {
    /// A benchmark knowledge object.
    Benchmark(Knowledge),
    /// An IO500 knowledge object.
    Io500(Io500Knowledge),
}

impl KnowledgeItem {
    /// Serialize either kind to tagged JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            KnowledgeItem::Benchmark(k) => Json::obj(vec![
                ("kind", Json::from("benchmark")),
                ("knowledge", k.to_json()),
            ]),
            KnowledgeItem::Io500(k) => Json::obj(vec![
                ("kind", Json::from("io500")),
                ("knowledge", k.to_json()),
            ]),
        }
    }

    /// Deserialize tagged JSON.
    #[must_use]
    pub fn from_json(json: &Json) -> Option<KnowledgeItem> {
        match json.get("kind")?.as_str()? {
            "benchmark" => {
                Knowledge::from_json(json.get("knowledge")?).map(KnowledgeItem::Benchmark)
            }
            "io500" => Io500Knowledge::from_json(json.get("knowledge")?).map(KnowledgeItem::Io500),
            _ => None,
        }
    }
}

fn pattern_json(p: &IoPattern) -> Json {
    Json::obj(vec![
        ("api", Json::from(p.api.as_str())),
        ("test_file", Json::from(p.test_file.as_str())),
        ("block_size", Json::from(p.block_size)),
        ("transfer_size", Json::from(p.transfer_size)),
        ("segments", Json::from(p.segments)),
        ("file_per_proc", Json::from(p.file_per_proc)),
        ("reorder_tasks", Json::from(p.reorder_tasks)),
        ("fsync", Json::from(p.fsync)),
        ("collective", Json::from(p.collective)),
        ("iterations", Json::from(u64::from(p.iterations))),
        ("tasks", Json::from(u64::from(p.tasks))),
        (
            "clients_per_node",
            Json::from(u64::from(p.clients_per_node)),
        ),
    ])
}

fn pattern_from(json: &Json) -> Option<IoPattern> {
    Some(IoPattern {
        api: json.get("api")?.as_str()?.to_owned(),
        test_file: json.get("test_file")?.as_str()?.to_owned(),
        block_size: json.get("block_size")?.as_u64()?,
        transfer_size: json.get("transfer_size")?.as_u64()?,
        segments: json.get("segments")?.as_u64()?,
        file_per_proc: json.get("file_per_proc")?.as_bool()?,
        reorder_tasks: json.get("reorder_tasks")?.as_bool()?,
        fsync: json.get("fsync")?.as_bool()?,
        collective: json.get("collective")?.as_bool()?,
        iterations: json.get("iterations")?.as_u64()? as u32,
        tasks: json.get("tasks")?.as_u64()? as u32,
        clients_per_node: json.get("clients_per_node")?.as_u64()? as u32,
    })
}

fn summary_json(s: &OperationSummary) -> Json {
    Json::obj(vec![
        ("operation", Json::from(s.operation.as_str())),
        ("api", Json::from(s.api.as_str())),
        ("max_mib", Json::from(s.max_mib)),
        ("min_mib", Json::from(s.min_mib)),
        ("mean_mib", Json::from(s.mean_mib)),
        ("stddev_mib", Json::from(s.stddev_mib)),
        ("mean_ops", Json::from(s.mean_ops)),
        ("iterations", Json::from(u64::from(s.iterations))),
    ])
}

fn summary_from(json: &Json) -> Option<OperationSummary> {
    Some(OperationSummary {
        operation: json.get("operation")?.as_str()?.to_owned(),
        api: json.get("api")?.as_str()?.to_owned(),
        max_mib: json.get("max_mib")?.as_f64()?,
        min_mib: json.get("min_mib")?.as_f64()?,
        mean_mib: json.get("mean_mib")?.as_f64()?,
        stddev_mib: json.get("stddev_mib")?.as_f64()?,
        mean_ops: json.get("mean_ops")?.as_f64()?,
        iterations: json.get("iterations")?.as_u64()? as u32,
    })
}

fn result_json(r: &IterationResult) -> Json {
    Json::obj(vec![
        ("operation", Json::from(r.operation.as_str())),
        ("iteration", Json::from(u64::from(r.iteration))),
        ("bw_mib", Json::from(r.bw_mib)),
        ("ops", Json::from(r.ops)),
        ("ops_per_sec", Json::from(r.ops_per_sec)),
        ("latency_s", Json::from(r.latency_s)),
        ("open_s", Json::from(r.open_s)),
        ("wrrd_s", Json::from(r.wrrd_s)),
        ("close_s", Json::from(r.close_s)),
        ("total_s", Json::from(r.total_s)),
    ])
}

fn result_from(json: &Json) -> Option<IterationResult> {
    Some(IterationResult {
        operation: json.get("operation")?.as_str()?.to_owned(),
        iteration: json.get("iteration")?.as_u64()? as u32,
        bw_mib: json.get("bw_mib")?.as_f64()?,
        ops: json.get("ops")?.as_u64()?,
        ops_per_sec: json.get("ops_per_sec")?.as_f64()?,
        latency_s: json.get("latency_s")?.as_f64()?,
        open_s: json.get("open_s")?.as_f64()?,
        wrrd_s: json.get("wrrd_s")?.as_f64()?,
        close_s: json.get("close_s")?.as_f64()?,
        total_s: json.get("total_s")?.as_f64()?,
    })
}

fn fs_json(fs: &FilesystemInfo) -> Json {
    Json::obj(vec![
        ("fs_type", Json::from(fs.fs_type.as_str())),
        ("entry_type", Json::from(fs.entry_type.as_str())),
        ("entry_id", Json::from(fs.entry_id.as_str())),
        ("metadata_node", Json::from(fs.metadata_node.as_str())),
        ("chunk_size", Json::from(fs.chunk_size)),
        ("storage_targets", Json::from(u64::from(fs.storage_targets))),
        ("raid", Json::from(fs.raid.as_str())),
        ("storage_pool", Json::from(fs.storage_pool.as_str())),
    ])
}

fn fs_from(json: &Json) -> Option<FilesystemInfo> {
    Some(FilesystemInfo {
        fs_type: json.get("fs_type")?.as_str()?.to_owned(),
        entry_type: json.get("entry_type")?.as_str()?.to_owned(),
        entry_id: json.get("entry_id")?.as_str()?.to_owned(),
        metadata_node: json.get("metadata_node")?.as_str()?.to_owned(),
        chunk_size: json.get("chunk_size")?.as_u64()?,
        storage_targets: json.get("storage_targets")?.as_u64()? as u32,
        raid: json.get("raid")?.as_str()?.to_owned(),
        storage_pool: json.get("storage_pool")?.as_str()?.to_owned(),
    })
}

fn system_json(sys: &SystemInfo) -> Json {
    Json::obj(vec![
        ("system", Json::from(sys.system.as_str())),
        ("cpu_model", Json::from(sys.cpu_model.as_str())),
        ("cores", Json::from(u64::from(sys.cores))),
        ("cpu_mhz", Json::from(sys.cpu_mhz)),
        ("cache_kib", Json::from(sys.cache_kib)),
        ("mem_kib", Json::from(sys.mem_kib)),
    ])
}

fn system_from(json: &Json) -> Option<SystemInfo> {
    Some(SystemInfo {
        system: json.get("system")?.as_str()?.to_owned(),
        cpu_model: json.get("cpu_model")?.as_str()?.to_owned(),
        cores: json.get("cores")?.as_u64()? as u32,
        cpu_mhz: json.get("cpu_mhz")?.as_f64()?,
        cache_kib: json.get("cache_kib")?.as_u64()?,
        mem_kib: json.get("mem_kib")?.as_u64()?,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    pub(crate) fn sample_knowledge() -> Knowledge {
        let mut k = Knowledge::new(
            KnowledgeSource::Ior,
            "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/test80 -k",
        );
        k.pattern = IoPattern {
            api: "MPIIO".into(),
            test_file: "/scratch/test80".into(),
            block_size: 4 << 20,
            transfer_size: 2 << 20,
            segments: 40,
            file_per_proc: true,
            reorder_tasks: true,
            fsync: true,
            collective: false,
            iterations: 6,
            tasks: 80,
            clients_per_node: 20,
        };
        k.summaries.push(OperationSummary {
            operation: "write".into(),
            api: "MPIIO".into(),
            max_mib: 2903.5,
            min_mib: 1251.0,
            mean_mib: 2583.5,
            stddev_mib: 590.0,
            mean_ops: 1290.0,
            iterations: 6,
        });
        for (i, bw) in [2850.0, 1251.0, 2840.0, 2860.0, 2855.0, 2845.0]
            .iter()
            .enumerate()
        {
            k.results.push(IterationResult {
                operation: "write".into(),
                iteration: i as u32,
                bw_mib: *bw,
                ops: 6400,
                ops_per_sec: bw / 2.0,
                latency_s: 0.0007,
                open_s: 0.002,
                wrrd_s: 4.4,
                close_s: 0.001,
                total_s: 4.5,
            });
        }
        k.filesystem = Some(FilesystemInfo {
            fs_type: "BeeGFS".into(),
            entry_type: "file".into(),
            entry_id: "5-2A3B4C5D-1".into(),
            metadata_node: "meta01".into(),
            chunk_size: 512 * 1024,
            storage_targets: 4,
            raid: "RAID6".into(),
            storage_pool: "Default".into(),
        });
        k.system = Some(SystemInfo {
            system: "FUCHS-CSC".into(),
            cpu_model: "Intel(R) Xeon(R) CPU E5-2670 v2 @ 2.50GHz".into(),
            cores: 20,
            cpu_mhz: 2500.0,
            cache_kib: 25600,
            mem_kib: 128 * 1024 * 1024,
        });
        k.start_time = 1_656_590_400;
        k.end_time = 1_656_590_700;
        k
    }

    #[test]
    fn json_roundtrip_benchmark() {
        let k = sample_knowledge();
        let json = k.to_json();
        let back = Knowledge::from_json(&json).unwrap();
        assert_eq!(back, k);
        // And through text.
        let text = json.to_pretty();
        let reparsed = iokc_util::json::parse(&text).unwrap();
        assert_eq!(Knowledge::from_json(&reparsed).unwrap(), k);
    }

    #[test]
    fn json_roundtrip_io500() {
        let k = Io500Knowledge {
            id: Some(3),
            tasks: 40,
            bw_score: 1.25,
            md_score: 9.5,
            total_score: (1.25f64 * 9.5).sqrt(),
            testcases: vec![Io500Testcase {
                name: "ior-easy-write".into(),
                value: 2.5,
                unit: "GiB/s".into(),
                time_s: 30.0,
            }],
            options: BTreeMap::from([("dir".to_owned(), "/scratch/io500".to_owned())]),
            system: None,
            start_time: 1_656_590_400,
            warnings: vec!["salvaged".to_owned()],
        };
        let back = Io500Knowledge::from_json(&k.to_json()).unwrap();
        assert_eq!(back, k);
    }

    #[test]
    fn tagged_item_roundtrip() {
        let item = KnowledgeItem::Benchmark(sample_knowledge());
        let back = KnowledgeItem::from_json(&item.to_json()).unwrap();
        assert_eq!(back, item);
        assert!(
            KnowledgeItem::from_json(&Json::obj(vec![("kind", Json::from("alien"))])).is_none()
        );
    }

    #[test]
    fn series_and_summary_lookup() {
        let k = sample_knowledge();
        let series = k.series("write");
        assert_eq!(series.len(), 6);
        assert_eq!(series[1], (1, 1251.0));
        assert!(k.summary("write").is_some());
        assert!(k.summary("read").is_none());
        assert!(k.series("read").is_empty());
    }

    #[test]
    fn source_parse_roundtrip() {
        for s in [
            KnowledgeSource::Ior,
            KnowledgeSource::Mdtest,
            KnowledgeSource::Hacc,
            KnowledgeSource::Darshan,
        ] {
            assert_eq!(KnowledgeSource::parse(s.as_str()), s);
        }
        assert_eq!(KnowledgeSource::parse("whatever"), KnowledgeSource::Other);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Knowledge::from_json(&Json::Null).is_none());
        let json = sample_knowledge().to_json();
        // Drop a required field.
        if let Json::Obj(mut map) = json {
            map.remove("command");
            assert!(Knowledge::from_json(&Json::Obj(map)).is_none());
        }
    }
}
