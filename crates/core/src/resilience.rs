//! Resilience for the knowledge cycle: retries, deadlines, quarantine.
//!
//! Long benchmark sweeps die for boring reasons — a node drops off the
//! fabric mid-run, a storage target wobbles, one analyzer chokes on one
//! odd knowledge object. The cycle should degrade, not abort: transient
//! failures are retried under a bounded, *deterministic* backoff policy;
//! modules that keep failing are quarantined and skipped with a recorded
//! [`crate::phases::Finding`]; everything that happened is visible in the
//! [`crate::cycle::CycleReport`].
//!
//! Backoff uses **virtual time**: delays are computed (deterministically,
//! from a seed) and accounted against the per-phase deadline, but the
//! orchestrator never sleeps. The same seed and the same fault plan
//! therefore produce byte-identical reports — attempt counts, backoff
//! schedules and all — which is what makes resilience behaviour testable
//! at all.

use crate::phases::{ErrorClass, PhaseKind};
use std::collections::BTreeMap;

/// Bounded retry with deterministic exponential backoff.
///
/// Attempt `n` (1-based) of a failing operation waits
/// `base_delay_ms * multiplier^(n-1)` virtual milliseconds, capped at
/// `max_delay_ms`, plus a deterministic jitter of up to a quarter of the
/// capped delay derived from `jitter_seed`, the phase, the module name
/// and the attempt number. Only [`ErrorClass::Transient`] errors are
/// retried; permanent errors fail on the first attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per module invocation (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual milliseconds.
    pub base_delay_ms: u64,
    /// Exponential growth factor between retries.
    pub multiplier: u64,
    /// Upper bound on a single backoff delay.
    pub max_delay_ms: u64,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No retries: one attempt, fail fast.
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay_ms: 0,
            multiplier: 2,
            max_delay_ms: 0,
            jitter_seed: 0,
        }
    }

    /// A policy with `retries` retries (so `retries + 1` attempts) and a
    /// 100 ms base delay doubling up to 10 s.
    #[must_use]
    pub fn with_retries(retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            base_delay_ms: 100,
            multiplier: 2,
            max_delay_ms: 10_000,
            jitter_seed: 0,
        }
    }

    /// Override the jitter seed (builder style).
    #[must_use]
    pub fn seeded(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = seed;
        self
    }

    /// The virtual backoff before retry attempt `attempt` (2-based: the
    /// first attempt has no delay) of `module` in `phase`.
    #[must_use]
    pub fn delay_ms(&self, phase: PhaseKind, module: &str, attempt: u32) -> u64 {
        if attempt <= 1 {
            return 0;
        }
        let exp = u32::min(attempt - 2, 62);
        let raw = self
            .base_delay_ms
            .saturating_mul(self.multiplier.max(1).saturating_pow(exp));
        let capped = raw.min(self.max_delay_ms);
        let jitter_span = capped / 4;
        if jitter_span == 0 {
            return capped;
        }
        let mut h = self.jitter_seed ^ 0x9e37_79b9_7f4a_7c15;
        h = mix(h ^ phase.as_str().len() as u64);
        for b in phase.as_str().bytes().chain(module.bytes()) {
            h = mix(h ^ u64::from(b));
        }
        h = mix(h ^ u64::from(attempt));
        capped.saturating_add(h % jitter_span)
    }

    /// The full backoff schedule for `module` in `phase`: one entry per
    /// retry (empty when `max_attempts <= 1`).
    #[must_use]
    pub fn schedule(&self, phase: PhaseKind, module: &str) -> Vec<u64> {
        (2..=self.max_attempts)
            .map(|attempt| self.delay_ms(phase, module, attempt))
            .collect()
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// SplitMix64 finalizer — a cheap, well-mixed hash step.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How the cycle behaves under failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Retry policy for transient module failures.
    pub retry: RetryPolicy,
    /// Budget of cumulative virtual backoff per module invocation within
    /// a phase; once exceeded, remaining retries are abandoned and the
    /// module degrades. `None` = unbounded.
    pub phase_deadline_ms: Option<u64>,
    /// Consecutive failed invocations after which an analyzer or usage
    /// module is quarantined (skipped with a recorded finding). `0`
    /// disables quarantine.
    pub quarantine_threshold: u32,
}

impl ResilienceConfig {
    /// No retries, quarantine after 3 consecutive failures, no deadline —
    /// the orchestrator's default.
    #[must_use]
    pub fn new() -> ResilienceConfig {
        ResilienceConfig {
            retry: RetryPolicy::none(),
            phase_deadline_ms: None,
            quarantine_threshold: 3,
        }
    }

    /// Fail-fast configuration: no retries, no quarantine.
    #[must_use]
    pub fn strict() -> ResilienceConfig {
        ResilienceConfig {
            retry: RetryPolicy::none(),
            phase_deadline_ms: None,
            quarantine_threshold: 0,
        }
    }

    /// Override the retry policy (builder style).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> ResilienceConfig {
        self.retry = retry;
        self
    }

    /// Override the per-phase backoff deadline (builder style).
    #[must_use]
    pub fn with_phase_deadline_ms(mut self, deadline: Option<u64>) -> ResilienceConfig {
        self.phase_deadline_ms = deadline;
        self
    }

    /// Override the quarantine threshold (builder style).
    #[must_use]
    pub fn with_quarantine_threshold(mut self, threshold: u32) -> ResilienceConfig {
        self.quarantine_threshold = threshold;
        self
    }
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig::new()
    }
}

/// How one module invocation ended, after retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The module produced its output (possibly after retries).
    Succeeded,
    /// The module failed past its retry budget; the cycle continued
    /// without its contribution.
    Degraded,
    /// The module was quarantined and not invoked at all.
    Skipped,
}

impl AttemptOutcome {
    /// Display name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AttemptOutcome::Succeeded => "succeeded",
            AttemptOutcome::Degraded => "degraded",
            AttemptOutcome::Skipped => "skipped",
        }
    }
}

/// The retry record of one module invocation within one cycle iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// Phase the module ran in.
    pub phase: PhaseKind,
    /// Module name.
    pub module: String,
    /// Attempts made (0 when the module was skipped by quarantine).
    pub attempts: u32,
    /// Cumulative virtual backoff spent, in milliseconds.
    pub backoff_ms: u64,
    /// Final outcome.
    pub outcome: AttemptOutcome,
    /// The error that ended the last failing attempt, if any.
    pub last_error: Option<String>,
}

/// Tracks consecutive failures per (phase, module) and quarantines
/// repeat offenders. State survives across cycle iterations, so a module
/// that fails every iteration is eventually silenced instead of spamming
/// degradations forever.
#[derive(Debug, Clone, Default)]
pub struct QuarantineBook {
    counts: BTreeMap<(PhaseKind, String), u32>,
    quarantined: BTreeMap<(PhaseKind, String), String>,
}

impl QuarantineBook {
    /// Empty book.
    #[must_use]
    pub fn new() -> QuarantineBook {
        QuarantineBook::default()
    }

    /// Is this module quarantined?
    #[must_use]
    pub fn is_quarantined(&self, phase: PhaseKind, module: &str) -> bool {
        self.quarantined.contains_key(&(phase, module.to_owned()))
    }

    /// Record a successful invocation (resets the consecutive-failure
    /// count).
    pub fn record_success(&mut self, phase: PhaseKind, module: &str) {
        self.counts.remove(&(phase, module.to_owned()));
    }

    /// Record a failed invocation. Returns `true` when this failure
    /// crossed the threshold and the module is now quarantined.
    pub fn record_failure(
        &mut self,
        phase: PhaseKind,
        module: &str,
        reason: &str,
        threshold: u32,
    ) -> bool {
        let key = (phase, module.to_owned());
        let count = self.counts.entry(key.clone()).or_insert(0);
        *count += 1;
        if threshold > 0 && *count >= threshold && !self.quarantined.contains_key(&key) {
            self.quarantined.insert(key, reason.to_owned());
            return true;
        }
        false
    }

    /// Consecutive failures recorded for a module.
    #[must_use]
    pub fn failures(&self, phase: PhaseKind, module: &str) -> u32 {
        self.counts
            .get(&(phase, module.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    /// All quarantined modules with the reason that tipped them over.
    #[must_use]
    pub fn quarantined(&self) -> Vec<(PhaseKind, String, String)> {
        self.quarantined
            .iter()
            .map(|((phase, module), reason)| (*phase, module.clone(), reason.clone()))
            .collect()
    }

    /// Lift a quarantine (e.g. after operator intervention).
    pub fn release(&mut self, phase: PhaseKind, module: &str) {
        let key = (phase, module.to_owned());
        self.quarantined.remove(&key);
        self.counts.remove(&key);
    }
}

/// Should this error be retried, given the policy and the class?
#[must_use]
pub fn retryable(class: ErrorClass, attempt: u32, policy: &RetryPolicy) -> bool {
    class == ErrorClass::Transient && attempt < policy.max_attempts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_retry_policy_has_empty_schedule() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert!(p.schedule(PhaseKind::Generation, "g").is_empty());
        assert_eq!(p.delay_ms(PhaseKind::Generation, "g", 1), 0);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 100,
            multiplier: 2,
            max_delay_ms: 500,
            jitter_seed: 0,
        };
        let schedule = p.schedule(PhaseKind::Generation, "gen");
        assert_eq!(schedule.len(), 5);
        // Base values 100, 200, 400, 500 (capped), 500 (capped), each plus
        // jitter below a quarter of the capped value.
        assert!(schedule[0] >= 100 && schedule[0] < 125, "{schedule:?}");
        assert!(schedule[1] >= 200 && schedule[1] < 250, "{schedule:?}");
        assert!(schedule[2] >= 400 && schedule[2] < 500, "{schedule:?}");
        assert!(schedule[3] >= 500 && schedule[3] < 625, "{schedule:?}");
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_module() {
        let p = RetryPolicy::with_retries(4).seeded(7);
        let a = p.schedule(PhaseKind::Analysis, "explorer");
        let b = p.schedule(PhaseKind::Analysis, "explorer");
        assert_eq!(a, b);
        // A different module gets a different jitter stream.
        let c = p.schedule(PhaseKind::Analysis, "anomaly");
        assert_ne!(a, c);
        // A different seed shifts the schedule.
        let d = RetryPolicy::with_retries(4).seeded(8);
        assert_ne!(a, d.schedule(PhaseKind::Analysis, "explorer"));
    }

    #[test]
    fn overflow_proof_backoff() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_delay_ms: u64::MAX / 2,
            multiplier: u64::MAX,
            max_delay_ms: u64::MAX,
            jitter_seed: 1,
        };
        // Saturates instead of panicking.
        let _ = p.delay_ms(PhaseKind::Usage, "m", u32::MAX);
    }

    #[test]
    fn quarantine_after_threshold() {
        let mut book = QuarantineBook::new();
        assert!(!book.record_failure(PhaseKind::Analysis, "bad", "boom", 3));
        assert!(!book.record_failure(PhaseKind::Analysis, "bad", "boom", 3));
        assert!(!book.is_quarantined(PhaseKind::Analysis, "bad"));
        assert!(book.record_failure(PhaseKind::Analysis, "bad", "boom", 3));
        assert!(book.is_quarantined(PhaseKind::Analysis, "bad"));
        // Further failures do not re-announce the quarantine.
        assert!(!book.record_failure(PhaseKind::Analysis, "bad", "boom", 3));
        assert_eq!(book.quarantined().len(), 1);
        book.release(PhaseKind::Analysis, "bad");
        assert!(!book.is_quarantined(PhaseKind::Analysis, "bad"));
        assert_eq!(book.failures(PhaseKind::Analysis, "bad"), 0);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut book = QuarantineBook::new();
        book.record_failure(PhaseKind::Usage, "rec", "x", 3);
        book.record_failure(PhaseKind::Usage, "rec", "x", 3);
        book.record_success(PhaseKind::Usage, "rec");
        assert_eq!(book.failures(PhaseKind::Usage, "rec"), 0);
        assert!(!book.record_failure(PhaseKind::Usage, "rec", "x", 3));
    }

    #[test]
    fn zero_threshold_disables_quarantine() {
        let mut book = QuarantineBook::new();
        for _ in 0..10 {
            assert!(!book.record_failure(PhaseKind::Analysis, "m", "r", 0));
        }
        assert!(!book.is_quarantined(PhaseKind::Analysis, "m"));
    }

    #[test]
    fn retryable_only_for_transient_within_budget() {
        let p = RetryPolicy::with_retries(2);
        assert!(retryable(ErrorClass::Transient, 1, &p));
        assert!(retryable(ErrorClass::Transient, 2, &p));
        assert!(!retryable(ErrorClass::Transient, 3, &p));
        assert!(!retryable(ErrorClass::Permanent, 1, &p));
    }
}
