//! `iokc-core` — the I/O knowledge cycle.
//!
//! This crate is the paper's primary contribution: a generic, modular,
//! tool-agnostic workflow for generating, extracting, persisting,
//! analyzing and using I/O knowledge (Zhu, Neuwirth, Lippert — IEEE
//! CLUSTER 2022). It defines
//!
//! * the [`model`] — the *knowledge object* (§V-B): I/O pattern
//!   parameters, per-operation summaries, individual iteration results,
//!   file-system settings and system statistics, plus the separate IO500
//!   knowledge object — with a stable JSON interchange form;
//! * the [`phases`] — one trait per phase of Fig. 2 (generation,
//!   extraction, persistence, analysis, usage), connected only through
//!   data types so that any tool can plug in;
//! * the [`cycle`] — the orchestrator and module registry realising the
//!   modular architecture of Fig. 4, with iterative re-generation driven
//!   by the usage phase's outcomes;
//! * the [`resilience`] layer — an error taxonomy (transient vs.
//!   permanent), deterministic seeded retry with virtual-time backoff,
//!   per-phase deadlines, and quarantine of repeatedly failing modules,
//!   so long sweeps degrade instead of aborting;
//! * the [`campaign`] vocabulary — the per-item state machine and the
//!   summary/straggler report types that batch drivers (the jube sweep
//!   executor) use to account for durable, resumable campaigns.
//!
//! Everything concrete — benchmark generators over the cluster simulator,
//! output parsers, the relational store, the knowledge explorer, the
//! recommendation/prediction modules — lives in sibling crates and plugs
//! into these traits.

//!
//! Every phase-trait method receives a [`PhaseCtx`] carrying the module's
//! identity, attempt number, open span, and handles to the cycle's
//! recorder (spans, metrics, virtual clock) and cancel token — see the
//! [`ctx`] module and the `iokc-obs` crate.
//!
//! A minimal cycle with inline modules:
//!
//! ```
//! use iokc_core::ctx::PhaseCtx;
//! use iokc_core::cycle::ModuleBox;
//! use iokc_core::model::{Knowledge, KnowledgeItem, KnowledgeSource};
//! use iokc_core::phases::*;
//! use iokc_core::KnowledgeCycle;
//!
//! struct Gen;
//! impl Generator for Gen {
//!     fn name(&self) -> &str { "demo-gen" }
//!     fn generate(&mut self, _ctx: &mut PhaseCtx) -> Result<Vec<Artifact>, CycleError> {
//!         Ok(vec![Artifact::text(ArtifactKind::IorOutput, "out", "bw 42".into())])
//!     }
//! }
//! struct Ext;
//! impl Extractor for Ext {
//!     fn name(&self) -> &str { "demo-ext" }
//!     fn accepts(&self, a: &Artifact) -> bool { a.kind == ArtifactKind::IorOutput }
//!     fn extract(
//!         &self,
//!         _ctx: &mut PhaseCtx,
//!         a: &[&Artifact],
//!     ) -> Result<Vec<KnowledgeItem>, CycleError> {
//!         Ok(a.iter()
//!             .map(|_| KnowledgeItem::Benchmark(Knowledge::new(KnowledgeSource::Ior, "ior")))
//!             .collect())
//!     }
//! }
//!
//! let mut cycle = KnowledgeCycle::new();
//! cycle.register(ModuleBox::generator(Gen)).register(ModuleBox::extractor(Ext));
//! let report = cycle.run_once().unwrap();
//! assert_eq!(report.extracted, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod campaign;
pub mod ctx;
pub mod cycle;
pub mod model;
pub mod phases;
pub mod resilience;

pub use campaign::{CampaignSummary, StragglerReport, WorkState};
pub use ctx::{Observability, PhaseCtx};
pub use cycle::{CycleReport, KnowledgeCycle, ModuleBox, PhaseModule};
pub use model::{
    FilesystemInfo, Io500Knowledge, Io500Testcase, IoPattern, IterationResult, Knowledge,
    KnowledgeItem, KnowledgeSource, OperationSummary, SystemInfo,
};
pub use phases::{
    Analyzer, Artifact, ArtifactKind, CycleError, ErrorClass, Extractor, Finding, Generator,
    Payload, Persister, PhaseKind, UsageModule, UsageOutcome,
};
pub use resilience::{
    AttemptOutcome, AttemptRecord, QuarantineBook, ResilienceConfig, RetryPolicy,
};
