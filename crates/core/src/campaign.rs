//! Campaign-level state and reporting types.
//!
//! A *campaign* is a batch of independent work items — in this workspace,
//! the workpackages of a JUBE-style parameter sweep (§V-A) — executed
//! under supervision: each item moves through a small state machine and
//! the campaign as a whole is summarised for operators and exit-code
//! logic. The types live here, free of sweep/simulator specifics, so
//! that any batch driver (the jube executor today, a trace-replay
//! campaign tomorrow) reports progress in the same vocabulary, just as
//! the phase traits in [`crate::phases`] keep the cycle tool-agnostic.

use std::fmt;

/// The life cycle of one campaign work item.
///
/// ```text
/// pending ──▶ running ──▶ done
///               │  ▲
///               ▼  │ (bounded retry, transient failures)
///             failed ──▶ quarantined   (repeat offenders)
/// pending ──▶ cancelled                (cooperative cancellation)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkState {
    /// Not started (or re-enqueued after a crash).
    Pending,
    /// Claimed by a worker; a journaled `running` without a terminal
    /// state means the process died mid-item.
    Running,
    /// Completed; outputs captured.
    Done,
    /// Failed past its retry budget but still eligible for a resumed
    /// re-run.
    Failed,
    /// Failed repeatedly (or permanently); skipped so one bad parameter
    /// combination cannot sink the campaign.
    Quarantined,
    /// Abandoned because the campaign was cancelled or aborted before
    /// the item ran.
    Cancelled,
}

impl WorkState {
    /// Display name (also the journal encoding).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            WorkState::Pending => "pending",
            WorkState::Running => "running",
            WorkState::Done => "done",
            WorkState::Failed => "failed",
            WorkState::Quarantined => "quarantined",
            WorkState::Cancelled => "cancelled",
        }
    }

    /// Is this a terminal state (no further attempts in this campaign)?
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, WorkState::Done | WorkState::Quarantined)
    }
}

impl fmt::Display for WorkState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A work item that took conspicuously longer than its completed peers.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerReport {
    /// Work item id.
    pub id: usize,
    /// Its elapsed time, in milliseconds (virtual or wall — whichever
    /// clock the campaign ran under).
    pub elapsed_ms: u64,
    /// The p95 elapsed time of all completed peers, in milliseconds.
    pub p95_ms: u64,
}

impl fmt::Display for StragglerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workpackage {:06} took {} ms (p95 of completed peers: {} ms)",
            self.id, self.elapsed_ms, self.p95_ms
        )
    }
}

/// Aggregate outcome of one campaign run (fresh or resumed).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Total work items in the campaign.
    pub total: usize,
    /// Items completed, including previously journaled completions.
    pub completed: usize,
    /// Items skipped because the journal already recorded them done.
    pub replayed: usize,
    /// Items that needed more than one attempt before completing.
    pub retried: usize,
    /// Items quarantined (this run or previously journaled).
    pub quarantined: usize,
    /// Items that failed past their retry budget but remain re-runnable.
    pub failed: usize,
    /// Items never attempted because the campaign was cancelled.
    pub cancelled: usize,
}

impl CampaignSummary {
    /// Did every item reach a terminal state with nothing left to rerun?
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completed + self.quarantined == self.total
    }

    /// Items a resumed campaign would still run.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.total
            .saturating_sub(self.completed)
            .saturating_sub(self.quarantined)
    }
}

impl fmt::Display for CampaignSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} done ({} replayed from journal, {} retried), {} quarantined, \
             {} failed, {} cancelled, {} remaining",
            self.completed,
            self.total,
            self.replayed,
            self.retried,
            self.quarantined,
            self.failed,
            self.cancelled,
            self.remaining()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_names_and_terminality() {
        assert_eq!(WorkState::Pending.as_str(), "pending");
        assert_eq!(WorkState::Quarantined.to_string(), "quarantined");
        assert!(WorkState::Done.is_terminal());
        assert!(WorkState::Quarantined.is_terminal());
        assert!(!WorkState::Failed.is_terminal());
        assert!(!WorkState::Running.is_terminal());
    }

    #[test]
    fn summary_accounting() {
        let summary = CampaignSummary {
            total: 16,
            completed: 12,
            replayed: 5,
            retried: 2,
            quarantined: 4,
            failed: 0,
            cancelled: 0,
        };
        assert!(summary.is_complete());
        assert_eq!(summary.remaining(), 0);
        let text = summary.to_string();
        assert!(text.contains("12/16 done"));
        assert!(text.contains("4 quarantined"));

        let partial = CampaignSummary {
            total: 16,
            completed: 6,
            ..CampaignSummary::default()
        };
        assert!(!partial.is_complete());
        assert_eq!(partial.remaining(), 10);
    }

    #[test]
    fn straggler_display() {
        let s = StragglerReport {
            id: 7,
            elapsed_ms: 900,
            p95_ms: 300,
        };
        assert!(s.to_string().contains("000007"));
        assert!(s.to_string().contains("900 ms"));
    }
}
