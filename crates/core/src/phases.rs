//! The five phase abstractions of the knowledge cycle (Fig. 2).
//!
//! Each phase is a trait; concrete implementations live in the other
//! crates (benchmark generators over the simulator, the extractor, the
//! relational store, the explorer, the usage modules). Keeping the traits
//! here — free of simulator, parser, or storage types — is what makes the
//! workflow "software and hardware agnostic" (§I): a new tool plugs in by
//! implementing one trait and registering it.

use crate::ctx::PhaseCtx;
use crate::model::KnowledgeItem;
use std::collections::BTreeMap;
use std::fmt;

/// What kind of raw output an artifact carries, so extractors can decide
/// whether they understand it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// IOR stdout.
    IorOutput,
    /// mdtest stdout.
    MdtestOutput,
    /// HACC-IO stdout.
    HaccOutput,
    /// IO500 result text.
    Io500Output,
    /// A binary Darshan-style log.
    DarshanLog,
    /// `beegfs-ctl --getentryinfo` text.
    BeegfsEntryInfo,
    /// Lustre `lfs getstripe` text.
    LustreStripeInfo,
    /// `/proc/cpuinfo` text.
    ProcCpuinfo,
    /// `/proc/meminfo` text.
    ProcMeminfo,
    /// Anything else.
    Other,
}

/// Raw output produced by the generation phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Content kind.
    pub kind: ArtifactKind,
    /// Name (e.g. the output file name in a JUBE workspace).
    pub name: String,
    /// Payload.
    pub payload: Payload,
    /// Free-form metadata (command, tasks, system name, …) that travels
    /// with the artifact into extraction.
    pub meta: BTreeMap<String, String>,
}

/// Artifact payload: benchmark outputs are text; Darshan logs are binary.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// UTF-8 text.
    Text(String),
    /// Raw bytes.
    Binary(Vec<u8>),
}

impl Artifact {
    /// A text artifact.
    #[must_use]
    pub fn text(kind: ArtifactKind, name: &str, body: String) -> Artifact {
        Artifact {
            kind,
            name: name.to_owned(),
            payload: Payload::Text(body),
            meta: BTreeMap::new(),
        }
    }

    /// A binary artifact.
    #[must_use]
    pub fn binary(kind: ArtifactKind, name: &str, body: Vec<u8>) -> Artifact {
        Artifact {
            kind,
            name: name.to_owned(),
            payload: Payload::Binary(body),
            meta: BTreeMap::new(),
        }
    }

    /// Attach a metadata entry (builder style).
    #[must_use]
    pub fn with_meta(mut self, key: &str, value: &str) -> Artifact {
        self.meta.insert(key.to_owned(), value.to_owned());
        self
    }

    /// Text payload, if this artifact is textual.
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match &self.payload {
            Payload::Text(t) => Some(t),
            Payload::Binary(_) => None,
        }
    }

    /// Binary payload, if this artifact is binary.
    #[must_use]
    pub fn as_binary(&self) -> Option<&[u8]> {
        match &self.payload {
            Payload::Binary(b) => Some(b),
            Payload::Text(_) => None,
        }
    }
}

/// How an error is expected to behave on retry — the error taxonomy the
/// resilience layer acts on (see [`crate::resilience`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Retrying the same operation may succeed (lost node, torn write,
    /// overloaded storage target). The retry policy applies.
    Transient,
    /// Retrying cannot help (malformed input, logic error, unsupported
    /// format). The module fails immediately after the first attempt.
    Permanent,
    /// Stored state is damaged (checksum mismatch, torn record, truncated
    /// database). Not retryable — the data will not repair itself — and
    /// distinguished from [`ErrorClass::Permanent`] so callers can route
    /// to recovery paths and the CLI can exit with its corruption code.
    Corrupt,
}

impl ErrorClass {
    /// Display name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorClass::Transient => "transient",
            ErrorClass::Permanent => "permanent",
            ErrorClass::Corrupt => "corrupt",
        }
    }

    /// Parse a display name back into a class (the journal decoding
    /// path). Unknown names conservatively decode as permanent.
    #[must_use]
    pub fn parse(name: &str) -> ErrorClass {
        match name {
            "transient" => ErrorClass::Transient,
            "corrupt" => ErrorClass::Corrupt,
            _ => ErrorClass::Permanent,
        }
    }
}

/// Error from any phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleError {
    /// Which phase failed.
    pub phase: PhaseKind,
    /// Module name.
    pub module: String,
    /// Human-readable cause.
    pub message: String,
    /// Whether a retry can plausibly succeed.
    pub class: ErrorClass,
}

impl CycleError {
    /// Construct a permanent error (the conservative default: retrying an
    /// error of unknown nature wastes the retry budget).
    #[must_use]
    pub fn new(phase: PhaseKind, module: &str, message: impl fmt::Display) -> CycleError {
        CycleError {
            phase,
            module: module.to_owned(),
            message: message.to_string(),
            class: ErrorClass::Permanent,
        }
    }

    /// Construct a transient error — one the retry policy should act on.
    #[must_use]
    pub fn transient(phase: PhaseKind, module: &str, message: impl fmt::Display) -> CycleError {
        CycleError::new(phase, module, message).with_class(ErrorClass::Transient)
    }

    /// Construct an explicitly permanent error. Equivalent to
    /// [`CycleError::new`], but spelled out — call sites that *decided*
    /// the error is permanent should say so rather than rely on the
    /// default.
    #[must_use]
    pub fn permanent(phase: PhaseKind, module: &str, message: impl fmt::Display) -> CycleError {
        CycleError::new(phase, module, message).with_class(ErrorClass::Permanent)
    }

    /// Construct a corruption error — stored state is damaged and a
    /// retry cannot repair it.
    #[must_use]
    pub fn corrupt(phase: PhaseKind, module: &str, message: impl fmt::Display) -> CycleError {
        CycleError::new(phase, module, message).with_class(ErrorClass::Corrupt)
    }

    /// Override the error class (builder style).
    #[must_use]
    pub fn with_class(mut self, class: ErrorClass) -> CycleError {
        self.class = class;
        self
    }

    /// Is a retry worth attempting?
    #[must_use]
    pub fn is_transient(&self) -> bool {
        self.class == ErrorClass::Transient
    }
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} phase, module {}: {}",
            self.phase.as_str(),
            self.module,
            self.message
        )
    }
}

impl std::error::Error for CycleError {}

/// The five phases of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseKind {
    /// Phase I: knowledge generation.
    Generation,
    /// Phase II: knowledge extraction.
    Extraction,
    /// Phase III: knowledge persistence.
    Persistence,
    /// Phase IV: knowledge analysis.
    Analysis,
    /// Phase V: knowledge usage.
    Usage,
}

impl PhaseKind {
    /// All phases in cycle order.
    pub const ALL: [PhaseKind; 5] = [
        PhaseKind::Generation,
        PhaseKind::Extraction,
        PhaseKind::Persistence,
        PhaseKind::Analysis,
        PhaseKind::Usage,
    ];

    /// Display name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PhaseKind::Generation => "generation",
            PhaseKind::Extraction => "extraction",
            PhaseKind::Persistence => "persistence",
            PhaseKind::Analysis => "analysis",
            PhaseKind::Usage => "usage",
        }
    }
}

/// Phase I — produce raw artifacts (run benchmarks, collect traces).
///
/// Every phase method receives a [`PhaseCtx`]: the module's span handle,
/// metrics access, the cooperative cancellation token, and which attempt
/// this is under the retry policy. Modules that need none of it simply
/// ignore the argument.
pub trait Generator {
    /// Module name (for the registry and error messages).
    fn name(&self) -> &str;
    /// Run the generator, producing artifacts. Simulator-backed
    /// generators should advance the context's virtual clock by their
    /// simulated elapsed time ([`PhaseCtx::advance_virtual_ns`]) so span
    /// timings reflect simulated, not host, time.
    fn generate(&mut self, ctx: &mut PhaseCtx) -> Result<Vec<Artifact>, CycleError>;
    /// Accept a new command for the next run — the path by which the
    /// usage phase's "create configuration" feeds back into generation
    /// (Example I). The default declines every command.
    fn reconfigure(&mut self, _command: &str) -> bool {
        false
    }
}

/// Phase II — turn artifacts into knowledge items.
pub trait Extractor {
    /// Module name.
    fn name(&self) -> &str;
    /// Does this extractor understand the artifact?
    fn accepts(&self, artifact: &Artifact) -> bool;
    /// Extract knowledge from the artifacts this extractor accepts.
    /// Called once per cycle with every accepted artifact.
    fn extract(
        &self,
        ctx: &mut PhaseCtx,
        artifacts: &[&Artifact],
    ) -> Result<Vec<KnowledgeItem>, CycleError>;
}

/// Phase III — persist knowledge items, returning their assigned ids.
pub trait Persister {
    /// Module name.
    fn name(&self) -> &str;
    /// Store the items; returns one id per item, in order.
    fn persist(
        &mut self,
        ctx: &mut PhaseCtx,
        items: &[KnowledgeItem],
    ) -> Result<Vec<u64>, CycleError>;
    /// Load every stored item (analysis may look beyond the current
    /// cycle's additions — that is the entire point of sharing).
    fn load_all(&self, ctx: &mut PhaseCtx) -> Result<Vec<KnowledgeItem>, CycleError>;
}

/// A finding produced by the analysis phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Severity/class tag (`anomaly`, `observation`, `comparison`, …).
    pub tag: String,
    /// Which knowledge item (store id) the finding concerns, if any.
    pub knowledge_id: Option<u64>,
    /// Human-readable description.
    pub message: String,
    /// Numeric payload (metric values backing the finding).
    pub values: Vec<f64>,
}

/// Phase IV — analyze the accumulated knowledge.
pub trait Analyzer {
    /// Module name.
    fn name(&self) -> &str;
    /// Analyze items (typically everything the persister holds).
    fn analyze(
        &self,
        ctx: &mut PhaseCtx,
        items: &[KnowledgeItem],
    ) -> Result<Vec<Finding>, CycleError>;
}

/// The outcome of the usage phase: what to do next.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UsageOutcome {
    /// New benchmark commands to run in the next cycle iteration
    /// (Example I: new knowledge generation).
    pub new_commands: Vec<String>,
    /// Tuning recommendations for the user.
    pub recommendations: Vec<String>,
    /// Free-form notes (predictions, detected anomalies acted upon, …).
    pub notes: Vec<String>,
}

impl UsageOutcome {
    /// Merge another outcome into this one.
    pub fn merge(&mut self, other: UsageOutcome) {
        self.new_commands.extend(other.new_commands);
        self.recommendations.extend(other.recommendations);
        self.notes.extend(other.notes);
    }
}

/// Phase V — apply the knowledge.
pub trait UsageModule {
    /// Module name.
    fn name(&self) -> &str;
    /// Apply knowledge and analysis findings.
    fn apply(
        &mut self,
        ctx: &mut PhaseCtx,
        items: &[KnowledgeItem],
        findings: &[Finding],
    ) -> Result<UsageOutcome, CycleError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_accessors() {
        let a = Artifact::text(ArtifactKind::IorOutput, "stdout", "Max Write: 1".into())
            .with_meta("command", "ior -w");
        assert_eq!(a.as_text(), Some("Max Write: 1"));
        assert!(a.as_binary().is_none());
        assert_eq!(a.meta["command"], "ior -w");

        let b = Artifact::binary(ArtifactKind::DarshanLog, "log", vec![1, 2, 3]);
        assert_eq!(b.as_binary(), Some(&[1u8, 2, 3][..]));
        assert!(b.as_text().is_none());
    }

    #[test]
    fn phase_kinds_are_ordered() {
        let names: Vec<&str> = PhaseKind::ALL.iter().map(|p| p.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "generation",
                "extraction",
                "persistence",
                "analysis",
                "usage"
            ]
        );
    }

    #[test]
    fn error_display() {
        let e = CycleError::new(PhaseKind::Extraction, "ior-extractor", "no Max Write line");
        assert_eq!(
            e.to_string(),
            "extraction phase, module ior-extractor: no Max Write line"
        );
    }

    #[test]
    fn usage_outcome_merges() {
        let mut a = UsageOutcome {
            new_commands: vec!["ior -w".into()],
            recommendations: vec![],
            notes: vec!["n1".into()],
        };
        a.merge(UsageOutcome {
            new_commands: vec!["ior -r".into()],
            recommendations: vec!["increase stripe".into()],
            notes: vec![],
        });
        assert_eq!(a.new_commands.len(), 2);
        assert_eq!(a.recommendations.len(), 1);
        assert_eq!(a.notes.len(), 1);
    }
}
