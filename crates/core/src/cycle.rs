//! The cycle orchestrator and module registry.
//!
//! [`KnowledgeCycle`] wires registered phase modules into the iterative
//! workflow of Fig. 2: generate → extract → persist → analyze → use, then
//! either terminate or feed the usage phase's new benchmark commands back
//! into generation. The registry realises the modular architecture of
//! Fig. 4 — modules are added independently, can be listed, and a missing
//! phase simply short-circuits (e.g. a cycle without analyzers still
//! persists knowledge).
//!
//! Failures degrade rather than abort: every module invocation runs under
//! the registered [`ResilienceConfig`] — transient errors are retried with
//! deterministic backoff, repeatedly failing analyzers and usage modules
//! are quarantined, and only *critical* failures (a generator that never
//! produces, the primary persister refusing writes) end the iteration
//! with an error. The report records attempts, degradations and
//! quarantines so nothing fails silently.

use crate::model::KnowledgeItem;
use crate::phases::{
    Analyzer, Artifact, CycleError, Extractor, Finding, Generator, Persister, PhaseKind,
    UsageModule, UsageOutcome,
};
use crate::resilience::{
    retryable, AttemptOutcome, AttemptRecord, QuarantineBook, ResilienceConfig,
};

/// What happened in one iteration of the cycle.
#[derive(Debug, Default)]
pub struct CycleReport {
    /// Artifacts produced by generation.
    pub artifacts: usize,
    /// Knowledge items extracted.
    pub extracted: usize,
    /// Ids assigned by persistence (one per extracted item).
    pub persisted_ids: Vec<u64>,
    /// Findings from analysis.
    pub findings: Vec<Finding>,
    /// Combined usage outcome.
    pub usage: UsageOutcome,
    /// Per-phase module names that ran (execution trace, useful for
    /// reproducibility reports).
    pub trace: Vec<(PhaseKind, String)>,
    /// Retry record per module invocation (attempt counts, virtual
    /// backoff, final outcome).
    pub attempts: Vec<AttemptRecord>,
    /// Human-readable notes about non-critical failures the cycle
    /// continued past.
    pub degradations: Vec<String>,
    /// Modules skipped this iteration because they are quarantined.
    pub quarantined: Vec<(PhaseKind, String)>,
}

impl CycleReport {
    /// Serialize the report as JSON — the reproducibility trace of one
    /// cycle iteration (which modules ran in which phase, what they
    /// produced, what usage scheduled next).
    #[must_use]
    pub fn to_json(&self) -> iokc_util::json::Json {
        use iokc_util::json::Json;
        Json::obj(vec![
            ("artifacts", Json::from(self.artifacts)),
            ("extracted", Json::from(self.extracted)),
            (
                "persisted_ids",
                Json::Arr(self.persisted_ids.iter().map(|i| Json::from(*i)).collect()),
            ),
            (
                "findings",
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("tag", Json::from(f.tag.as_str())),
                                (
                                    "knowledge_id",
                                    f.knowledge_id.map(Json::from).unwrap_or(Json::Null),
                                ),
                                ("message", Json::from(f.message.as_str())),
                                (
                                    "values",
                                    Json::Arr(f.values.iter().map(|v| Json::from(*v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "usage",
                Json::obj(vec![
                    (
                        "new_commands",
                        Json::Arr(
                            self.usage
                                .new_commands
                                .iter()
                                .map(|c| Json::from(c.as_str()))
                                .collect(),
                        ),
                    ),
                    (
                        "recommendations",
                        Json::Arr(
                            self.usage
                                .recommendations
                                .iter()
                                .map(|c| Json::from(c.as_str()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "trace",
                Json::Arr(
                    self.trace
                        .iter()
                        .map(|(phase, module)| {
                            Json::obj(vec![
                                ("phase", Json::from(phase.as_str())),
                                ("module", Json::from(module.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "attempts",
                Json::Arr(
                    self.attempts
                        .iter()
                        .map(|a| {
                            Json::obj(vec![
                                ("phase", Json::from(a.phase.as_str())),
                                ("module", Json::from(a.module.as_str())),
                                ("attempts", Json::from(u64::from(a.attempts))),
                                ("backoff_ms", Json::from(a.backoff_ms)),
                                ("outcome", Json::from(a.outcome.as_str())),
                                (
                                    "last_error",
                                    a.last_error
                                        .as_deref()
                                        .map(Json::from)
                                        .unwrap_or(Json::Null),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "degradations",
                Json::Arr(
                    self.degradations
                        .iter()
                        .map(|d| Json::from(d.as_str()))
                        .collect(),
                ),
            ),
            (
                "quarantined",
                Json::Arr(
                    self.quarantined
                        .iter()
                        .map(|(phase, module)| {
                            Json::obj(vec![
                                ("phase", Json::from(phase.as_str())),
                                ("module", Json::from(module.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Did this iteration complete without any degradation or skip?
    #[must_use]
    pub fn fully_healthy(&self) -> bool {
        self.degradations.is_empty() && self.quarantined.is_empty()
    }
}

/// The knowledge cycle engine.
#[derive(Default)]
pub struct KnowledgeCycle {
    generators: Vec<Box<dyn Generator>>,
    extractors: Vec<Box<dyn Extractor>>,
    persisters: Vec<Box<dyn Persister>>,
    analyzers: Vec<Box<dyn Analyzer>>,
    usage_modules: Vec<Box<dyn UsageModule>>,
    resilience: ResilienceConfig,
    quarantine: QuarantineBook,
}

impl KnowledgeCycle {
    /// An empty cycle with no modules.
    #[must_use]
    pub fn new() -> KnowledgeCycle {
        KnowledgeCycle::default()
    }

    /// Replace the resilience configuration (retries, deadlines,
    /// quarantine). The default retries nothing and quarantines after 3
    /// consecutive failures.
    pub fn set_resilience(&mut self, config: ResilienceConfig) -> &mut Self {
        self.resilience = config;
        self
    }

    /// The active resilience configuration.
    #[must_use]
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// The quarantine ledger (state persists across iterations).
    #[must_use]
    pub fn quarantine(&self) -> &QuarantineBook {
        &self.quarantine
    }

    /// Lift the quarantine of one module.
    pub fn release_quarantine(&mut self, phase: PhaseKind, module: &str) {
        self.quarantine.release(phase, module);
    }

    /// Register a generation module.
    pub fn add_generator(&mut self, module: Box<dyn Generator>) -> &mut Self {
        self.generators.push(module);
        self
    }

    /// Register an extraction module.
    pub fn add_extractor(&mut self, module: Box<dyn Extractor>) -> &mut Self {
        self.extractors.push(module);
        self
    }

    /// Register a persistence module. The first registered persister is
    /// the *primary* one: analysis reads the accumulated knowledge from
    /// it. Additional persisters (e.g. a public/remote database next to
    /// the local one, Fig. 4) receive the same writes.
    pub fn add_persister(&mut self, module: Box<dyn Persister>) -> &mut Self {
        self.persisters.push(module);
        self
    }

    /// Register an analysis module.
    pub fn add_analyzer(&mut self, module: Box<dyn Analyzer>) -> &mut Self {
        self.analyzers.push(module);
        self
    }

    /// Register a usage module.
    pub fn add_usage(&mut self, module: Box<dyn UsageModule>) -> &mut Self {
        self.usage_modules.push(module);
        self
    }

    /// Names of registered modules per phase (the registry view).
    #[must_use]
    pub fn registry(&self) -> Vec<(PhaseKind, Vec<String>)> {
        vec![
            (
                PhaseKind::Generation,
                self.generators
                    .iter()
                    .map(|m| m.name().to_owned())
                    .collect(),
            ),
            (
                PhaseKind::Extraction,
                self.extractors
                    .iter()
                    .map(|m| m.name().to_owned())
                    .collect(),
            ),
            (
                PhaseKind::Persistence,
                self.persisters
                    .iter()
                    .map(|m| m.name().to_owned())
                    .collect(),
            ),
            (
                PhaseKind::Analysis,
                self.analyzers.iter().map(|m| m.name().to_owned()).collect(),
            ),
            (
                PhaseKind::Usage,
                self.usage_modules
                    .iter()
                    .map(|m| m.name().to_owned())
                    .collect(),
            ),
        ]
    }

    /// Run one full iteration of the cycle.
    ///
    /// Module failures are handled per the registered
    /// [`ResilienceConfig`]: transient errors are retried with
    /// deterministic virtual backoff; exhausted non-critical modules
    /// degrade (their contribution is skipped and noted in
    /// [`CycleReport::degradations`]); quarantined analyzers and usage
    /// modules are skipped with a recorded finding. Only critical
    /// failures — a generator that never produced artifacts, or the
    /// *primary* persister refusing writes — return an error.
    pub fn run_once(&mut self) -> Result<CycleReport, CycleError> {
        let mut report = CycleReport::default();

        // Phase I: Generation. A failed generator degrades (its artifacts
        // are simply absent this iteration) unless it is critical: with a
        // single registered generator, losing it means the iteration can
        // produce nothing at all.
        let critical_generation = self.generators.len() == 1;
        let mut artifacts: Vec<Artifact> = Vec::new();
        for generator in &mut self.generators {
            let name = generator.name().to_owned();
            let produced = invoke_module(
                &self.resilience,
                &mut self.quarantine,
                &mut report,
                PhaseKind::Generation,
                &name,
                critical_generation,
                false,
                || generator.generate(),
            )?;
            artifacts.extend(produced.into_iter().flatten());
        }
        report.artifacts = artifacts.len();

        // Phase II: Extraction. Every extractor sees the artifacts it
        // accepts; an artifact may feed several extractors. A failed
        // extractor degrades — the other extractors' knowledge survives.
        let mut items: Vec<KnowledgeItem> = Vec::new();
        for extractor in &self.extractors {
            let accepted: Vec<&Artifact> =
                artifacts.iter().filter(|a| extractor.accepts(a)).collect();
            if accepted.is_empty() {
                continue;
            }
            let name = extractor.name().to_owned();
            let extracted = invoke_module(
                &self.resilience,
                &mut self.quarantine,
                &mut report,
                PhaseKind::Extraction,
                &name,
                false,
                false,
                || extractor.extract(&accepted),
            )?;
            items.extend(extracted.into_iter().flatten());
        }
        report.extracted = items.len();

        // Phase III: Persistence. The primary persister's ids are
        // reported; mirrors receive the same writes. Losing the primary
        // is critical (knowledge would be dropped on the floor); a failed
        // mirror degrades.
        for (index, persister) in self.persisters.iter_mut().enumerate() {
            let name = persister.name().to_owned();
            let ids = invoke_module(
                &self.resilience,
                &mut self.quarantine,
                &mut report,
                PhaseKind::Persistence,
                &name,
                index == 0,
                false,
                || persister.persist(&items),
            )?;
            if index == 0 {
                report.persisted_ids = ids.unwrap_or_default();
            }
        }

        // Phase IV: Analysis over the full accumulated knowledge base.
        // When the primary store cannot be read back, analysis degrades
        // to this iteration's fresh items rather than aborting.
        let corpus: Vec<KnowledgeItem> = match self.persisters.first() {
            Some(primary) => match primary.load_all() {
                Ok(corpus) => corpus,
                Err(err) => {
                    report.degradations.push(format!(
                        "analysis corpus degraded to this iteration's items: {err}"
                    ));
                    items.clone()
                }
            },
            None => items.clone(),
        };
        for analyzer in &self.analyzers {
            let name = analyzer.name().to_owned();
            let findings = invoke_module(
                &self.resilience,
                &mut self.quarantine,
                &mut report,
                PhaseKind::Analysis,
                &name,
                false,
                true,
                || analyzer.analyze(&corpus),
            )?;
            report.findings.extend(findings.into_iter().flatten());
        }

        // Phase V: Usage. Modules see the findings as they stood after
        // analysis (a snapshot, so resilience bookkeeping during this
        // phase cannot change what later modules observe).
        let findings = report.findings.clone();
        for module in &mut self.usage_modules {
            let name = module.name().to_owned();
            let findings = &findings;
            let outcome = invoke_module(
                &self.resilience,
                &mut self.quarantine,
                &mut report,
                PhaseKind::Usage,
                &name,
                false,
                true,
                || module.apply(&corpus, findings),
            )?;
            if let Some(outcome) = outcome {
                report.usage.merge(outcome);
            }
        }

        Ok(report)
    }

    /// Run the cycle iteratively: after each iteration, feed the usage
    /// phase's `new_commands` to the generators (the first one whose
    /// [`Generator::reconfigure`] accepts each command wins) and go
    /// again, up to `max_iterations` or until usage schedules nothing new
    /// — "this iterative cyclic process is either re-launched or
    /// terminated" (§III).
    pub fn run_iterative(&mut self, max_iterations: u32) -> Result<Vec<CycleReport>, CycleError> {
        let mut reports = Vec::new();
        for _ in 0..max_iterations {
            let report = self.run_once()?;
            let commands = report.usage.new_commands.clone();
            reports.push(report);
            if commands.is_empty() {
                break;
            }
            let mut any_applied = false;
            for command in &commands {
                for generator in &mut self.generators {
                    if generator.reconfigure(command) {
                        any_applied = true;
                        break;
                    }
                }
            }
            if !any_applied {
                break;
            }
        }
        Ok(reports)
    }
}

/// Run one module invocation under the resilience policy.
///
/// Returns `Ok(Some(value))` on success, `Ok(None)` when the module was
/// skipped (quarantine) or degraded past its retry budget without being
/// critical, and `Err` when a critical module exhausted its budget.
#[allow(clippy::too_many_arguments)]
fn invoke_module<T>(
    config: &ResilienceConfig,
    quarantine: &mut QuarantineBook,
    report: &mut CycleReport,
    phase: PhaseKind,
    name: &str,
    critical: bool,
    quarantinable: bool,
    mut attempt_once: impl FnMut() -> Result<T, CycleError>,
) -> Result<Option<T>, CycleError> {
    if quarantinable && quarantine.is_quarantined(phase, name) {
        report.attempts.push(AttemptRecord {
            phase,
            module: name.to_owned(),
            attempts: 0,
            backoff_ms: 0,
            outcome: AttemptOutcome::Skipped,
            last_error: None,
        });
        report.findings.push(Finding {
            tag: "quarantine".into(),
            knowledge_id: None,
            message: format!(
                "module {name} is quarantined in the {} phase and was skipped",
                phase.as_str()
            ),
            values: Vec::new(),
        });
        report.quarantined.push((phase, name.to_owned()));
        return Ok(None);
    }

    report.trace.push((phase, name.to_owned()));
    let mut attempts = 0u32;
    let mut backoff_ms = 0u64;
    loop {
        attempts += 1;
        match attempt_once() {
            Ok(value) => {
                if quarantinable {
                    quarantine.record_success(phase, name);
                }
                report.attempts.push(AttemptRecord {
                    phase,
                    module: name.to_owned(),
                    attempts,
                    backoff_ms,
                    outcome: AttemptOutcome::Succeeded,
                    last_error: None,
                });
                return Ok(Some(value));
            }
            Err(err) => {
                let mut deadline_note = "";
                if retryable(err.class, attempts, &config.retry) {
                    let delay = config.retry.delay_ms(phase, name, attempts + 1);
                    let within_deadline = config
                        .phase_deadline_ms
                        .is_none_or(|deadline| backoff_ms.saturating_add(delay) <= deadline);
                    if within_deadline {
                        backoff_ms += delay;
                        continue;
                    }
                    deadline_note = " (phase deadline exhausted)";
                }
                // Retry budget spent. Quarantine bookkeeping, then either
                // degrade or — for critical modules — fail the iteration.
                if quarantinable
                    && quarantine.record_failure(
                        phase,
                        name,
                        &err.message,
                        config.quarantine_threshold,
                    )
                {
                    report.findings.push(Finding {
                        tag: "quarantine".into(),
                        knowledge_id: None,
                        message: format!(
                            "module {name} quarantined after {} consecutive failures in the {} \
                             phase: {}",
                            quarantine.failures(phase, name),
                            phase.as_str(),
                            err.message
                        ),
                        values: Vec::new(),
                    });
                }
                report.attempts.push(AttemptRecord {
                    phase,
                    module: name.to_owned(),
                    attempts,
                    backoff_ms,
                    outcome: AttemptOutcome::Degraded,
                    last_error: Some(err.message.clone()),
                });
                if critical {
                    return Err(err);
                }
                report.degradations.push(format!(
                    "{} phase, module {name}: degraded after {attempts} attempt(s){deadline_note}: {} [{}]",
                    phase.as_str(),
                    err.message,
                    err.class.as_str(),
                ));
                return Ok(None);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Knowledge, KnowledgeSource};
    use crate::phases::{ArtifactKind, Payload};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct FakeGenerator {
        command: String,
        runs: u32,
    }

    impl Generator for FakeGenerator {
        fn name(&self) -> &str {
            "fake-ior"
        }
        fn reconfigure(&mut self, command: &str) -> bool {
            if command.starts_with("ior") {
                self.command = command.to_owned();
                true
            } else {
                false
            }
        }
        fn generate(&mut self) -> Result<Vec<Artifact>, CycleError> {
            self.runs += 1;
            Ok(vec![Artifact::text(
                ArtifactKind::IorOutput,
                "stdout",
                format!("RESULT bw=100 run={} cmd={}", self.runs, self.command),
            )
            .with_meta("command", &self.command)])
        }
    }

    struct FakeExtractor;

    impl Extractor for FakeExtractor {
        fn name(&self) -> &str {
            "fake-extractor"
        }
        fn accepts(&self, artifact: &Artifact) -> bool {
            artifact.kind == ArtifactKind::IorOutput
        }
        fn extract(&self, artifacts: &[&Artifact]) -> Result<Vec<KnowledgeItem>, CycleError> {
            Ok(artifacts
                .iter()
                .map(|a| {
                    KnowledgeItem::Benchmark(Knowledge::new(
                        KnowledgeSource::Ior,
                        a.meta.get("command").map(String::as_str).unwrap_or(""),
                    ))
                })
                .collect())
        }
    }

    #[derive(Default)]
    struct MemPersister {
        items: Rc<RefCell<Vec<KnowledgeItem>>>,
    }

    impl Persister for MemPersister {
        fn name(&self) -> &str {
            "memory"
        }
        fn persist(&mut self, items: &[KnowledgeItem]) -> Result<Vec<u64>, CycleError> {
            let mut store = self.items.borrow_mut();
            let mut ids = Vec::new();
            for item in items {
                store.push(item.clone());
                ids.push(store.len() as u64);
            }
            Ok(ids)
        }
        fn load_all(&self) -> Result<Vec<KnowledgeItem>, CycleError> {
            Ok(self.items.borrow().clone())
        }
    }

    struct CountingAnalyzer;

    impl Analyzer for CountingAnalyzer {
        fn name(&self) -> &str {
            "counter"
        }
        fn analyze(&self, items: &[KnowledgeItem]) -> Result<Vec<Finding>, CycleError> {
            Ok(vec![Finding {
                tag: "observation".into(),
                knowledge_id: None,
                message: format!("{} items in corpus", items.len()),
                values: vec![items.len() as f64],
            }])
        }
    }

    /// Usage module that schedules one follow-up command, then stops.
    struct OneFollowUp {
        fired: bool,
    }

    impl UsageModule for OneFollowUp {
        fn name(&self) -> &str {
            "regenerate"
        }
        fn apply(
            &mut self,
            _items: &[KnowledgeItem],
            _findings: &[Finding],
        ) -> Result<UsageOutcome, CycleError> {
            if self.fired {
                return Ok(UsageOutcome::default());
            }
            self.fired = true;
            Ok(UsageOutcome {
                new_commands: vec!["ior -b 8m".into()],
                ..UsageOutcome::default()
            })
        }
    }

    fn full_cycle(shared: Rc<RefCell<Vec<KnowledgeItem>>>) -> KnowledgeCycle {
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(FakeGenerator {
                command: "ior -b 4m".into(),
                runs: 0,
            }))
            .add_extractor(Box::new(FakeExtractor))
            .add_persister(Box::new(MemPersister { items: shared }))
            .add_analyzer(Box::new(CountingAnalyzer))
            .add_usage(Box::new(OneFollowUp { fired: false }));
        cycle
    }

    #[test]
    fn run_once_flows_through_all_phases() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = full_cycle(store.clone());
        let report = cycle.run_once().unwrap();
        assert_eq!(report.artifacts, 1);
        assert_eq!(report.extracted, 1);
        assert_eq!(report.persisted_ids, vec![1]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.usage.new_commands, vec!["ior -b 8m".to_owned()]);
        // Trace covers all five phases.
        let phases: Vec<PhaseKind> = report.trace.iter().map(|(p, _)| *p).collect();
        for kind in PhaseKind::ALL {
            assert!(phases.contains(&kind), "missing {kind:?} in trace");
        }
        assert_eq!(store.borrow().len(), 1);
    }

    #[test]
    fn report_serializes_to_json() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = full_cycle(store);
        let report = cycle.run_once().unwrap();
        let json = report.to_json();
        assert_eq!(json.get("artifacts").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            json.get("trace")
                .and_then(|t| t.at(0))
                .and_then(|e| e.get("phase"))
                .and_then(|p| p.as_str()),
            Some("generation")
        );
        // The document parses back.
        let text = json.to_pretty();
        assert!(iokc_util::json::parse(&text).is_ok());
        assert!(text.contains("new_commands"));
    }

    #[test]
    fn iterative_run_feeds_commands_back() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = full_cycle(store.clone());
        let reports = cycle.run_iterative(5).unwrap();
        // Iteration 1 schedules a follow-up; iteration 2 does not.
        assert_eq!(reports.len(), 2);
        assert_eq!(store.borrow().len(), 2);
        // The corpus grows across iterations (the whole point of the
        // knowledge base).
        assert_eq!(reports[1].findings[0].values[0], 2.0);
    }

    #[test]
    fn iterative_stops_when_no_generator_accepts() {
        // Schedule a non-ior command that the generator declines.
        struct AlienUsage;
        impl UsageModule for AlienUsage {
            fn name(&self) -> &str {
                "alien"
            }
            fn apply(
                &mut self,
                _items: &[KnowledgeItem],
                _findings: &[Finding],
            ) -> Result<UsageOutcome, CycleError> {
                Ok(UsageOutcome {
                    new_commands: vec!["fio --bs=4k".into()],
                    ..UsageOutcome::default()
                })
            }
        }
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(FakeGenerator {
                command: "ior -b 4m".into(),
                runs: 0,
            }))
            .add_extractor(Box::new(FakeExtractor))
            .add_persister(Box::new(MemPersister { items: store }))
            .add_usage(Box::new(AlienUsage));
        let reports = cycle.run_iterative(5).unwrap();
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn registry_lists_modules() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let cycle = full_cycle(store);
        let registry = cycle.registry();
        assert_eq!(registry.len(), 5);
        assert_eq!(registry[0].1, vec!["fake-ior".to_owned()]);
        assert_eq!(registry[2].1, vec!["memory".to_owned()]);
    }

    #[test]
    fn cycle_without_persister_analyzes_fresh_items() {
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }))
            .add_extractor(Box::new(FakeExtractor))
            .add_analyzer(Box::new(CountingAnalyzer));
        let report = cycle.run_once().unwrap();
        assert_eq!(report.findings[0].values[0], 1.0);
        assert!(report.persisted_ids.is_empty());
    }

    #[test]
    fn extractor_skips_foreign_artifacts() {
        struct BinaryGen;
        impl Generator for BinaryGen {
            fn name(&self) -> &str {
                "darshan"
            }
            fn generate(&mut self) -> Result<Vec<Artifact>, CycleError> {
                Ok(vec![Artifact {
                    kind: ArtifactKind::DarshanLog,
                    name: "log".into(),
                    payload: Payload::Binary(vec![0]),
                    meta: Default::default(),
                }])
            }
        }
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(BinaryGen))
            .add_extractor(Box::new(FakeExtractor));
        let report = cycle.run_once().unwrap();
        assert_eq!(report.artifacts, 1);
        assert_eq!(report.extracted, 0);
    }

    /// Generator that fails (transiently) a fixed number of times before
    /// producing.
    struct FlakyGenerator {
        failures_left: u32,
    }

    impl Generator for FlakyGenerator {
        fn name(&self) -> &str {
            "flaky-gen"
        }
        fn generate(&mut self) -> Result<Vec<Artifact>, CycleError> {
            if self.failures_left > 0 {
                self.failures_left -= 1;
                return Err(CycleError::transient(
                    PhaseKind::Generation,
                    "flaky-gen",
                    "node dropped off the fabric",
                ));
            }
            Ok(vec![Artifact::text(
                ArtifactKind::IorOutput,
                "stdout",
                "RESULT bw=100".into(),
            )
            .with_meta("command", "ior")])
        }
    }

    struct FailingAnalyzer;

    impl Analyzer for FailingAnalyzer {
        fn name(&self) -> &str {
            "broken-analyzer"
        }
        fn analyze(&self, _items: &[KnowledgeItem]) -> Result<Vec<Finding>, CycleError> {
            Err(CycleError::new(
                PhaseKind::Analysis,
                "broken-analyzer",
                "division by zero in model fit",
            ))
        }
    }

    #[test]
    fn transient_generator_failure_is_retried_to_success() {
        use crate::resilience::{ResilienceConfig, RetryPolicy};
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(FlakyGenerator { failures_left: 2 }))
            .add_extractor(Box::new(FakeExtractor));
        cycle.set_resilience(
            ResilienceConfig::new().with_retry(RetryPolicy::with_retries(3).seeded(42)),
        );
        let report = cycle.run_once().unwrap();
        assert_eq!(report.artifacts, 1);
        assert_eq!(report.extracted, 1);
        let record = &report.attempts[0];
        assert_eq!(record.attempts, 3);
        assert_eq!(record.outcome, crate::resilience::AttemptOutcome::Succeeded);
        assert!(record.backoff_ms > 0);
        assert!(report.fully_healthy());
    }

    #[test]
    fn transient_failure_without_retries_is_critical_for_sole_generator() {
        let mut cycle = KnowledgeCycle::new();
        cycle.add_generator(Box::new(FlakyGenerator { failures_left: 1 }));
        // Default config retries nothing, and a sole generator is
        // critical.
        let err = cycle.run_once().unwrap_err();
        assert_eq!(err.phase, PhaseKind::Generation);
        assert!(err.is_transient());
    }

    #[test]
    fn secondary_generator_failure_degrades() {
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }))
            .add_generator(Box::new(FlakyGenerator { failures_left: 99 }))
            .add_extractor(Box::new(FakeExtractor))
            .add_persister(Box::new(MemPersister { items: store }));
        let report = cycle.run_once().unwrap();
        // The healthy generator's artifact flowed through.
        assert_eq!(report.artifacts, 1);
        assert_eq!(report.persisted_ids, vec![1]);
        assert_eq!(report.degradations.len(), 1);
        assert!(
            report.degradations[0].contains("flaky-gen"),
            "{:?}",
            report.degradations
        );
        assert!(!report.fully_healthy());
    }

    #[test]
    fn primary_persister_failure_is_critical() {
        struct RefusingPersister;
        impl Persister for RefusingPersister {
            fn name(&self) -> &str {
                "refusing"
            }
            fn persist(&mut self, _items: &[KnowledgeItem]) -> Result<Vec<u64>, CycleError> {
                Err(CycleError::new(
                    PhaseKind::Persistence,
                    "refusing",
                    "disk full",
                ))
            }
            fn load_all(&self) -> Result<Vec<KnowledgeItem>, CycleError> {
                Ok(Vec::new())
            }
        }
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }))
            .add_extractor(Box::new(FakeExtractor))
            .add_persister(Box::new(RefusingPersister));
        let err = cycle.run_once().unwrap_err();
        assert_eq!(err.phase, PhaseKind::Persistence);
        assert_eq!(err.module, "refusing");
    }

    #[test]
    fn failing_analyzer_degrades_then_quarantines_across_iterations() {
        use crate::resilience::ResilienceConfig;
        let store = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }))
            .add_extractor(Box::new(FakeExtractor))
            .add_persister(Box::new(MemPersister { items: store }))
            .add_analyzer(Box::new(FailingAnalyzer))
            .add_analyzer(Box::new(CountingAnalyzer));
        cycle.set_resilience(ResilienceConfig::new().with_quarantine_threshold(2));

        // Iteration 1: degraded, not yet quarantined.
        let r1 = cycle.run_once().unwrap();
        assert_eq!(r1.degradations.len(), 1);
        assert!(r1.quarantined.is_empty());
        assert_eq!(
            r1.findings.len(),
            1,
            "healthy analyzer still ran: {:?}",
            r1.findings
        );

        // Iteration 2: second consecutive failure trips the quarantine.
        let r2 = cycle.run_once().unwrap();
        assert!(r2.findings.iter().any(|f| f.tag == "quarantine"));
        assert!(cycle
            .quarantine()
            .is_quarantined(PhaseKind::Analysis, "broken-analyzer"));

        // Iteration 3: skipped outright, with a recorded finding; the
        // cycle keeps producing knowledge.
        let r3 = cycle.run_once().unwrap();
        assert_eq!(
            r3.quarantined,
            vec![(PhaseKind::Analysis, "broken-analyzer".to_owned())]
        );
        assert!(r3
            .findings
            .iter()
            .any(|f| f.tag == "quarantine" && f.message.contains("skipped")));
        assert!(r3.trace.iter().all(|(_, m)| m != "broken-analyzer"));
        assert_eq!(r3.persisted_ids.len(), 1);

        // Release lifts the quarantine.
        cycle.release_quarantine(PhaseKind::Analysis, "broken-analyzer");
        let r4 = cycle.run_once().unwrap();
        assert!(r4.quarantined.is_empty());
        assert_eq!(r4.degradations.len(), 1);
    }

    #[test]
    fn phase_deadline_bounds_retry_backoff() {
        use crate::resilience::{ResilienceConfig, RetryPolicy};
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }))
            .add_generator(Box::new(FlakyGenerator { failures_left: 99 }));
        cycle.set_resilience(
            ResilienceConfig::new()
                .with_retry(RetryPolicy::with_retries(50).seeded(1))
                .with_phase_deadline_ms(Some(300)),
        );
        let report = cycle.run_once().unwrap();
        let record = report
            .attempts
            .iter()
            .find(|a| a.module == "flaky-gen")
            .unwrap();
        // With a 100 ms base delay doubling per retry, the 300 ms budget
        // admits only a couple of retries, not all 50.
        assert!(record.attempts < 5, "attempts = {}", record.attempts);
        assert!(record.backoff_ms <= 300);
        assert!(
            report.degradations[0].contains("deadline"),
            "{:?}",
            report.degradations
        );
    }

    #[test]
    fn retry_accounting_is_deterministic() {
        use crate::resilience::{ResilienceConfig, RetryPolicy};
        let run = || {
            let mut cycle = KnowledgeCycle::new();
            cycle
                .add_generator(Box::new(FlakyGenerator { failures_left: 2 }))
                .add_extractor(Box::new(FakeExtractor));
            cycle.set_resilience(
                ResilienceConfig::new().with_retry(RetryPolicy::with_retries(4).seeded(7)),
            );
            let report = cycle.run_once().unwrap();
            report.attempts.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn permanent_error_is_not_retried() {
        struct PermanentGen;
        impl Generator for PermanentGen {
            fn name(&self) -> &str {
                "permanent"
            }
            fn generate(&mut self) -> Result<Vec<Artifact>, CycleError> {
                Err(CycleError::new(
                    PhaseKind::Generation,
                    "permanent",
                    "bad config",
                ))
            }
        }
        use crate::resilience::{ResilienceConfig, RetryPolicy};
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(PermanentGen))
            .add_generator(Box::new(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }));
        cycle.set_resilience(ResilienceConfig::new().with_retry(RetryPolicy::with_retries(5)));
        let report = cycle.run_once().unwrap();
        let record = report
            .attempts
            .iter()
            .find(|a| a.module == "permanent")
            .unwrap();
        assert_eq!(record.attempts, 1);
        assert_eq!(record.backoff_ms, 0);
    }

    #[test]
    fn mirror_persister_receives_items_but_primary_reports_ids() {
        let primary = Rc::new(RefCell::new(Vec::new()));
        let mirror = Rc::new(RefCell::new(Vec::new()));
        let mut cycle = KnowledgeCycle::new();
        cycle
            .add_generator(Box::new(FakeGenerator {
                command: "ior".into(),
                runs: 0,
            }))
            .add_extractor(Box::new(FakeExtractor))
            .add_persister(Box::new(MemPersister {
                items: primary.clone(),
            }))
            .add_persister(Box::new(MemPersister {
                items: mirror.clone(),
            }));
        let report = cycle.run_once().unwrap();
        assert_eq!(report.persisted_ids, vec![1]);
        assert_eq!(primary.borrow().len(), 1);
        assert_eq!(mirror.borrow().len(), 1);
    }
}
